"""Table III — gas cost breakdown in US$ (Twitter).

Paper shape: MI's cost is write-dominated (C_sstore/C_supdate); SMI's is
dominated by the "others" bucket (the logarithmic UpdVO as txdata); CI
pays almost only writes (cnt updates) and zero reads; CI* roughly
doubles CI's write cost for the Bloom filter words.
"""

from repro.bench.runner import experiment_tab3


def test_tab3_gas_breakdown(benchmark, size_medium):
    rows = benchmark.pedantic(
        experiment_tab3, kwargs={"size": size_medium}, rounds=1, iterations=1
    )
    split = {r.scheme: r.breakdown_usd() for r in rows}
    benchmark.extra_info.update(
        {s: round(b["total"], 4) for s, b in split.items()}
    )
    # MI: writes dominate.
    assert split["mi"]["write"] > split["mi"]["others"]
    # SMI: txdata/hash dominate the storage operations.
    assert split["smi"]["others"] > split["smi"]["write"]
    # CI: no read cost at all; cheapest total.
    assert split["ci"]["read"] == 0.0
    assert split["ci"]["total"] < split["smi"]["total"] < split["mi"]["total"]
    # CI*: costs more than CI (filters) but stays near-constant.
    assert split["ci"]["total"] < split["ci*"]["total"] < split["mi"]["total"]
