"""Sharded-SP benchmark and its acceptance gates.

Runs the shard experiment (bulk-ingest scaling across shard counts with
a process executor, concurrent conjunctive query throughput, and the
byte-level transparency check), writes the rows to ``BENCH_shard.json``
at the repo root, and asserts the acceptance criteria:

* transparency is unconditional: answers, encoded VOs and gas at the
  top shard count equal the single-shard system for every scheme;
* every concurrently-served query verifies;
* with >= 2 cores the 8-shard process-pool ingest beats the single-shard
  pass by >= 1.5x (skipped on single-core runners, where no parallel
  speedup is physically possible — the committed JSON records the
  machine's ``cpu_count`` for exactly this reason).
"""

import json
import pathlib

from repro.bench.shard import experiment_shard

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def test_sharded_sp(benchmark, size_small):
    rows = benchmark.pedantic(
        experiment_shard,
        kwargs={"size": max(300, 5 * size_small), "identity_size": 60},
        rounds=1,
        iterations=1,
    )
    payload = {
        "experiment": "shard",
        "seed": 7,
        "rows": {
            "cpu_count": rows["cpu_count"],
            "ingest": [row.to_json() for row in rows["ingest"]],
            "query": [row.to_json() for row in rows["query"]],
            "identity": [row.to_json() for row in rows["identity"]],
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    for row in rows["identity"]:
        assert row.transparent, row
    for row in rows["query"]:
        assert row.all_verified, row

    by_shards = {row.shards: row for row in rows["ingest"]}
    if rows["cpu_count"] >= 2 and 8 in by_shards:
        speedup = by_shards[1].ingest_ms / by_shards[8].ingest_ms
        benchmark.extra_info["ingest_speedup_8shard"] = round(speedup, 2)
        assert speedup >= 1.5, rows["ingest"]
