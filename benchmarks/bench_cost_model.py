"""Analytical model vs simulator: Table II's formulas, quantitatively.

Prints predicted vs measured per-object gas for every scheme and
asserts the paper's claim that the measurements "conform to the
theoretical cost analysis".
"""

from repro.bench.runner import SCHEME_LABELS, measure_maintenance
from repro.core.cost_model import predict_insert_cost, predicted_ordering


def test_cost_model_vs_simulator(benchmark, size_small):
    def run():
        return {
            scheme: measure_maintenance(scheme, "twitter", size_small)
            for scheme in ("mi", "smi", "ci", "ci*")
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    tree_size = max(10, size_small // 8)
    keywords = 6.0
    print("\nAnalytical model vs simulator (gas/object)")
    print(f"{'scheme':<8}{'predicted':>12}{'measured':>12}{'ratio':>8}")
    for scheme, row in measured.items():
        predicted = predict_insert_cost(scheme, tree_size, keywords)
        ratio = predicted.per_object_gas / row.avg_gas
        print(
            f"{SCHEME_LABELS[scheme]:<8}{predicted.per_object_gas:>12,.0f}"
            f"{row.avg_gas:>12,.0f}{ratio:>8.2f}"
        )
        benchmark.extra_info[scheme] = round(ratio, 2)
        assert 1 / 3 <= ratio <= 3
    measured_order = [
        s for s, _ in sorted(measured.items(), key=lambda kv: kv[1].avg_gas)
    ]
    assert measured_order == predicted_ordering(tree_size, keywords)
