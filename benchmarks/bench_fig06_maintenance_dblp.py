"""Fig. 6 — average maintenance gas on DBLP: MI vs GEM^2 vs SMI.

Paper shape: MI is the most expensive, the GEM^2-tree saves part of the
cost by partial suppression, and the fully suppressed SMI is cheapest of
the three Merkle-family schemes.
"""

from repro.bench.runner import SCHEME_LABELS, experiment_fig6


def test_fig6_maintenance_dblp(benchmark, size_small):
    rows = benchmark.pedantic(
        experiment_fig6, kwargs={"size": size_small}, rounds=1, iterations=1
    )
    gas = {SCHEME_LABELS[r.scheme]: round(r.avg_gas) for r in rows}
    benchmark.extra_info.update(gas)
    assert gas["MI"] > gas["GEM2"] > gas["SMI"]
