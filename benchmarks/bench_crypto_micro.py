"""Micro-benchmarks for the cryptographic substrate.

Documents the performance asymmetry the paper leans on: CVC (pairing /
group-exponentiation) verification is orders of magnitude slower than
hashing, which is why Chameleon^inv* trades Bloom-filter words on-chain
for skipped CVC verifications at the client (Section V-D).
"""

import pytest

from repro.core import mbtree
from repro.core.chameleon import ChameleonTreeDO, ChameleonTreeSP, verify_membership
from repro.crypto import vc
from repro.crypto.hashing import sha3
from repro.crypto.prf import generate_key


@pytest.fixture(scope="module")
def cvc_pair():
    pp, td = vc.shared_test_params(3)
    return vc.ChameleonVectorCommitment(3, _pp=pp, _td=td)


def test_sha3_hash(benchmark):
    benchmark(sha3, b"x" * 64)


def test_cvc_verify(benchmark, cvc_pair):
    c, aux = cvc_pair.commit([b"m", None, None], randomiser=5)
    proof = cvc_pair.open(1, b"m", aux)
    result = benchmark(cvc_pair.verify, c, 1, b"m", proof)
    assert result


def test_cvc_collision(benchmark, cvc_pair):
    c, aux = cvc_pair.commit_empty(randomiser=5)

    def collide():
        return cvc_pair.collide(c, 1, None, b"m", aux, check=False)

    benchmark(collide)


def test_mbtree_append(benchmark):
    def build():
        tree = mbtree.MBTree(fanout=4)
        for key in range(200):
            tree.insert(key, sha3(b"%d" % key))
        return tree

    tree = benchmark(build)
    assert len(tree) == 200


def test_mbtree_membership_verify(benchmark):
    tree = mbtree.MBTree(fanout=4)
    for key in range(500):
        tree.insert(key, sha3(b"%d" % key))
    entry, path = tree.prove(250)
    result = benchmark(path.compute_root, entry)
    assert result == tree.root_hash


def test_chameleon_membership_verify(benchmark, cvc_pair):
    do = ChameleonTreeDO(cvc_pair, generate_key(seed=1), "kw", arity=2)
    sp = ChameleonTreeSP(do.root_commitment, arity=2)
    for oid in range(1, 32):
        sp.apply_insertion(do.insert(oid, sha3(b"%d" % oid)))
    entry = sp.entry_at(20)
    proof = sp.prove_membership(20)
    benchmark(
        verify_membership,
        cvc_pair.pp,
        do.root_commitment,
        sp.count,
        2,
        entry.key,
        entry.value_hash,
        proof,
    )


def test_hash_vs_cvc_gap(cvc_pair):
    """The motivating claim: CVC verify >> hash, by orders of magnitude."""
    import time

    c, aux = cvc_pair.commit([b"m", None, None], randomiser=5)
    proof = cvc_pair.open(1, b"m", aux)
    t0 = time.perf_counter()
    for _ in range(200):
        sha3(b"x" * 64)
    hash_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(200):
        cvc_pair.verify(c, 1, b"m", proof)
    cvc_time = time.perf_counter() - t0
    assert cvc_time > 20 * hash_time
