"""Table II — asymptotic maintenance-cost check.

Paper claims: MI maintenance is ``O(L*C1*log n)`` (grows with n, with
expensive storage-operation coefficients); SMI is
``O(L*C1 + L*C2*log n)`` — only its *cheap* component grows; CI and CI*
are ``O(L*C1)`` — flat in n.
"""

from repro.bench.runner import experiment_tab2


def test_tab2_growth_shapes(benchmark, size_small):
    sizes = tuple(max(40, size_small // f) for f in (4, 2, 1))
    growth = benchmark.pedantic(
        experiment_tab2, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            scheme: [round(r.avg_gas) for r in rows]
            for scheme, rows in growth.items()
        }
    )
    # MI's total grows with n (logarithmic tree maintenance).
    mi = [r.avg_gas for r in growth["mi"]]
    assert mi[-1] > mi[0]
    # CI's total does not grow with n (constant maintenance).
    ci = [r.avg_gas for r in growth["ci"]]
    assert ci[-1] <= ci[0] * 1.10
    # CI* likewise stays flat.
    ci_star = [r.avg_gas for r in growth["ci*"]]
    assert ci_star[-1] <= ci_star[0] * 1.10
    # SMI's *expensive* component (storage writes per object) is constant
    # in n; only the cheap txdata/hash component grows.
    smi_writes = [
        r.meter.write_gas / r.measured_objects for r in growth["smi"]
    ]
    assert smi_writes[-1] <= smi_writes[0] * 1.20
    mi_writes = [r.meter.write_gas / r.measured_objects for r in growth["mi"]]
    assert mi_writes[-1] > mi_writes[0]
