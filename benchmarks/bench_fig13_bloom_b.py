"""Fig. 13 — Chameleon* query metrics vs Bloom capacity ``b``.

Paper shape: a sweet spot around the default b=30 — too-small filters
rarely prove absence (fixed creation overhead, little pruning), while
too-large ones saturate the fixed 256-bit array and lose pruning power
to false positives.
"""

from repro.bench.runner import experiment_fig13


def test_fig13_bloom_capacity(benchmark, size_small):
    rows = benchmark.pedantic(
        experiment_fig13,
        kwargs={
            "size": size_small,
            "capacities": (20, 30, 40, 50),
            "num_queries": 5,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {r.scheme: round(r.vo_kb, 2) for r in rows}
    )
    assert len(rows) == 4
    # Every configuration must produce verifiable answers (non-negative
    # metrics); the b-sweep's curve shape is recorded in extra_info and
    # discussed in EXPERIMENTS.md.
    for row in rows:
        assert row.vo_kb > 0
        assert row.verify_ms > 0
