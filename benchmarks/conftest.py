"""Benchmark configuration.

Experiment benches are deterministic gas measurements wrapped in
``benchmark.pedantic(rounds=1)`` — the interesting output is the gas
table (printed, and attached as ``extra_info``), not the wall time.
Micro-benches (crypto, tree ops) are ordinary timed benchmarks.

Scale knobs: set ``REPRO_BENCH_SIZE`` to override corpus sizes.
"""

import os

import pytest


def bench_size(default: int) -> int:
    return int(os.environ.get("REPRO_BENCH_SIZE", default))


@pytest.fixture(scope="session")
def size_small():
    return bench_size(120)


@pytest.fixture(scope="session")
def size_medium():
    return bench_size(240)
