"""Fig. 12 — query processing & verification vs #keywords (DBLP).

Same protocol as Fig. 11 on the DBLP-like corpus.
"""

from repro.bench.runner import experiment_fig12


def test_fig12_query_dblp(benchmark, size_small):
    rows = benchmark.pedantic(
        experiment_fig12,
        kwargs={
            "size": size_small,
            "keyword_counts": (2, 4, 6),
            "num_queries": 5,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["points"] = len(rows)
    by_scheme = {}
    for row in rows:
        by_scheme.setdefault(row.scheme, []).append(row)
    # VO sizes grow (weakly) with the number of query keywords.
    for scheme_rows in by_scheme.values():
        ordered = sorted(scheme_rows, key=lambda r: r.num_keywords)
        assert ordered[-1].vo_kb >= 0
    # The CVC schemes ship bigger VOs than the hash-based family.
    ci = by_scheme["ci"][0]
    mi = by_scheme["mi"][0]
    assert ci.vo_kb > mi.vo_kb
