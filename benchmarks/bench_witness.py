"""Batch witness engine benchmark and its acceptance gates.

Runs the witness experiment (per-scheme naive / fast-path / warmed cold
verification, the ``open_all`` divide-and-conquer micro-bench and the
cross-query coalescing bench), writes the rows to ``BENCH_witness.json``
at the repo root, and asserts the acceptance criteria:

* warming delivers >= 5x over the fast-path cold pass on the Chameleon
  scheme (the headline number; the committed JSON shows ~200x at full
  corpus — 5x is the conservative CI floor);
* ``open_all`` beats per-slot opening by >= 2x, cold, bit-identically;
* every mode (batched ingest, coalesced openings, warmed cache) yields
  byte-identical VOs and passing client verification.
"""

import json
import pathlib

from repro.bench.witness import experiment_witness

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_witness.json"


def test_witness_engine(benchmark, size_small):
    rows = benchmark.pedantic(
        experiment_witness,
        kwargs={"size": max(60, size_small), "repeats": 2},
        rounds=1,
        iterations=1,
    )
    payload = {
        "experiment": "witness",
        "seed": 7,
        "rows": {
            "schemes": [row.to_json() for row in rows["schemes"]],
            "open_all": rows["open_all"].to_json(),
            "coalesce": rows["coalesce"].to_json(),
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    by_scheme = {row.scheme: row for row in rows["schemes"]}
    for row in rows["schemes"]:
        # Correctness gates hold for every scheme and every mode.
        assert row.vo_identical, row
        assert row.batch_verified, row
        assert row.warmed_verified, row

    ci = by_scheme["ci"]
    benchmark.extra_info["ci_warm_speedup_cold"] = round(ci.speedup_cold, 2)
    assert ci.speedup_cold >= 5.0, ci

    open_all = rows["open_all"]
    benchmark.extra_info["open_all_speedup"] = round(open_all.speedup, 2)
    assert open_all.identical, open_all
    assert open_all.speedup >= 2.0, open_all

    coalesce = rows["coalesce"]
    benchmark.extra_info["coalesce_dedup"] = coalesce.deduped
    assert coalesce.identical, coalesce
    assert coalesce.deduped > 0, coalesce
