"""Ablation benches: the design-choice sweeps DESIGN.md calls out.

Each bench runs one ablation at reduced scale, attaches the measured
numbers as ``extra_info`` and asserts the qualitative claim the design
relies on.
"""

from repro.bench.ablations import (
    ablation_arity,
    ablation_batch_size,
    ablation_fanout,
    ablation_join_plan,
)


def test_ablation_fanout(benchmark, size_small):
    rows = benchmark.pedantic(
        ablation_fanout,
        kwargs={"size": size_small, "fanouts": (3, 4, 8)},
        rounds=1,
        iterations=1,
    )
    gas = {row.value: row.metrics["avg_gas"] for row in rows}
    benchmark.extra_info.update({str(k): round(v) for k, v in gas.items()})
    # The paper's F=4 must not be worse than the extremes of the sweep.
    assert gas[4] <= max(gas[3], gas[8])


def test_ablation_arity(benchmark, size_small):
    rows = benchmark.pedantic(
        ablation_arity,
        kwargs={"size": max(60, size_small // 2), "arities": (2, 4)},
        rounds=1,
        iterations=1,
    )
    vo = {row.value: row.metrics["vo_kb"] for row in rows}
    benchmark.extra_info.update({str(k): round(v, 2) for k, v in vo.items()})
    # Higher arity shortens proof chains, shrinking the VO.
    assert vo[4] < vo[2]


def test_ablation_join_plan(benchmark, size_small):
    rows = benchmark.pedantic(
        ablation_join_plan,
        kwargs={"size": size_small, "num_queries": 5},
        rounds=1,
        iterations=1,
    )
    vo = {row.value: row.metrics["vo_kb"] for row in rows}
    benchmark.extra_info.update({k: round(v, 2) for k, v in vo.items()})
    # On sparse conjunctions the semi-join plan ships smaller VOs.
    assert vo["semijoin"] <= vo["cyclic"]


def test_ablation_batch_size(benchmark, size_small):
    rows = benchmark.pedantic(
        ablation_batch_size,
        kwargs={"size": max(40, size_small // 2), "batch_sizes": (1, 8)},
        rounds=1,
        iterations=1,
    )
    gas = {row.value: row.metrics["avg_gas"] for row in rows}
    benchmark.extra_info.update({str(k): round(v) for k, v in gas.items()})
    # Batching amortises C_tx: strictly cheaper per object.
    assert gas[8] < gas[1]
