"""Fig. 10 — gas per object insertion vs dataset size, all four schemes.

Paper shape: every proposed scheme (SMI, CI, CI*) beats the MI baseline;
MI grows with dataset size while CI/CI* stay flat and SMI grows only in
its cheap (txdata/hash) component.
"""

from repro.bench.runner import experiment_fig10


def test_fig10_gas_vs_size(benchmark, size_small):
    sizes = tuple(max(20, size_small // f) for f in (8, 4, 2, 1))
    rows = benchmark.pedantic(
        experiment_fig10,
        kwargs={"sizes": sizes},
        rounds=1,
        iterations=1,
    )
    by_key = {(r.dataset, r.scheme, r.corpus_size): r.avg_gas for r in rows}
    benchmark.extra_info["points"] = len(rows)
    for dataset in ("dblp", "twitter"):
        largest = max(n for (d, s, n) in by_key if d == dataset and s == "mi")
        mi = by_key[(dataset, "mi", largest)]
        smi = by_key[(dataset, "smi", largest)]
        ci = by_key[(dataset, "ci", largest)]
        ci_star = by_key[(dataset, "ci*", largest)]
        # Who-wins ordering at the largest size (paper's Fig. 10).
        assert mi > smi > ci
        assert ci < ci_star < mi
