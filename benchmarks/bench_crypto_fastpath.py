"""Fast-path verification benchmark and its acceptance gate.

Measures repeated-entry DNF query verification naive (independent
``pow``, no cache) versus fast (simultaneous multi-exp + fixed-base
tables + verification cache) for every scheme, writes the rows to
``BENCH_fastpath.json`` at the repo root, and asserts the acceptance
criterion: at least 2x on the Chameleon family once the cache is warm.
"""

import json
import pathlib

from repro.bench.fastpath import experiment_fastpath

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"


def test_fastpath_speedup(benchmark, size_small):
    rows = benchmark.pedantic(
        experiment_fastpath,
        kwargs={"size": max(60, size_small)},
        rounds=1,
        iterations=1,
    )
    payload = {
        "experiment": "fastpath",
        "rows": [row.to_json() for row in rows],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    by_scheme = {row.scheme: row for row in rows}
    for scheme in ("ci", "ci*"):
        row = by_scheme[scheme]
        benchmark.extra_info[f"{scheme}_speedup_cold"] = round(
            row.speedup_cold, 2
        )
        benchmark.extra_info[f"{scheme}_speedup_cached"] = round(
            row.speedup_cached, 2
        )
        # Acceptance: >= 2x on repeated-entry DNF verification for the
        # CVC schemes (the cache alone delivers orders of magnitude; the
        # bound is deliberately conservative for slow CI machines).
        assert row.speedup_cached >= 2.0, (scheme, row)
        # The algebraic layer alone must already win, cache aside.
        assert row.speedup_cold > 1.2, (scheme, row)
        assert row.cache_hits > 0
    # The Merkle-only scheme never touches the fixed-base tables, so the
    # fast path must not regress its cold pass (it used to, by forcing a
    # table rebuild into the timed region).
    smi = by_scheme["smi"]
    benchmark.extra_info["smi_speedup_cold"] = round(smi.speedup_cold, 2)
    assert smi.speedup_cold >= 1.0, smi
