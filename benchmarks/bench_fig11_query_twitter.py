"""Fig. 11 — query processing & verification vs #keywords (Twitter).

Paper shape: all metrics grow with the number of query keywords; CI*'s
Bloom filters yield smaller VOs than CI and cut part of the CVC-heavy
verification time; the Merkle family verifies fastest (hashing only).
"""

import statistics

from repro.bench.runner import experiment_fig11


def test_fig11_query_twitter(benchmark, size_small):
    rows = benchmark.pedantic(
        experiment_fig11,
        kwargs={
            "size": size_small,
            "keyword_counts": (2, 4, 6),
            "num_queries": 5,
        },
        rounds=1,
        iterations=1,
    )
    by_scheme = {}
    for row in rows:
        by_scheme.setdefault(row.scheme, []).append(row)
    benchmark.extra_info["points"] = len(rows)
    mean_verify = {
        s: statistics.mean(r.verify_ms for r in rs)
        for s, rs in by_scheme.items()
    }
    mean_vo = {
        s: statistics.mean(r.vo_kb for r in rs) for s, rs in by_scheme.items()
    }
    # Merkle-family verification (hash-only) beats the CVC-based schemes.
    assert mean_verify["mi"] < mean_verify["ci"]
    # Bloom filters shrink CI's VO.
    assert mean_vo["ci*"] < mean_vo["ci"]
