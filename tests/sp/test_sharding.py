"""Shard-transparency tests: sharding must be invisible above the SP.

The design invariant: each keyword's ADS receives exactly the insert
sequence a single-shard system applies, so answers, per-conjunct VO
encodings, gas receipts and verification outcomes are byte-identical
for any shard count.  These tests pin that down for every scheme and
both engines, plus a concurrent mixed insert/query load.
"""

import sys
import threading

import pytest

from repro.core.objects import DataObject
from repro.core.query.parser import KeywordQuery
from repro.core.system import HybridStorageSystem

SCHEMES = ["mi", "smi", "ci", "ci*"]

QUERIES = [
    "alpha AND gamma",
    "alpha AND beta",
    "delta",
    "(alpha AND beta) OR (gamma AND delta)",
    "alpha AND missing",
]


def make_docs(count=10):
    keyword_sets = [
        ("alpha", "beta", "delta"),
        ("alpha", "gamma"),
        ("beta", "gamma", "delta"),
        ("alpha", "beta", "gamma", "delta"),
        ("gamma",),
    ]
    return [
        DataObject(i, keyword_sets[i % len(keyword_sets)], b"payload-%d" % i)
        for i in range(count)
    ]


def build(scheme, shards, **kwargs):
    system = HybridStorageSystem(
        scheme=scheme, seed=13, shards=shards, cvc_modulus_bits=512, **kwargs
    )
    reports = [system.add_object(obj) for obj in make_docs()]
    return system, reports


@pytest.mark.parametrize("scheme", SCHEMES)
class TestShardTransparency:
    def test_answers_vo_and_gas_identical(self, scheme):
        base, base_reports = build(scheme, shards=1)
        sharded, sharded_reports = build(scheme, shards=8)

        # Gas receipts: the chain never sees the shard layout.
        assert [r.gas for r in base_reports] == [
            r.gas for r in sharded_reports
        ]

        for text in QUERIES:
            query = KeywordQuery.parse(text)
            answer_base = base.process_query(query)
            answer_sharded = sharded.process_query(query)
            assert answer_base.result_ids == answer_sharded.result_ids
            # Per-conjunct VOs, byte for byte through the wire codec.
            from repro.core.query.vo import QueryVO

            for vo_base, vo_sharded in zip(
                answer_base.vo.conjuncts, answer_sharded.vo.conjuncts
            ):
                assert base._codec.encode(
                    QueryVO(conjuncts=(vo_base,))
                ) == sharded._codec.encode(QueryVO(conjuncts=(vo_sharded,)))

            result_base = base.query(text)
            result_sharded = sharded.query(text)
            assert result_base.verified and result_sharded.verified
            assert result_base.result_ids == result_sharded.result_ids
            assert result_base.vo_sp_bytes == result_sharded.vo_sp_bytes
            assert result_base.vo_chain_bytes == result_sharded.vo_chain_bytes
        base.close()
        sharded.close()

    def test_objects_reachable_from_any_shard_count(self, scheme):
        system, _ = build(scheme, shards=8)
        assert len(system) == 10
        assert system.all_object_ids() == list(range(10))
        for object_id in system.all_object_ids():
            assert system.get_object(object_id).object_id == object_id
        system.close()

    def test_disk_engine_is_equally_transparent(self, scheme, tmp_path):
        base, _ = build(scheme, shards=1)
        sharded, _ = build(scheme, shards=4, engine="disk", engine_dir=tmp_path)
        for text in QUERIES[:3]:
            result_base = base.query(text)
            result_sharded = sharded.query(text)
            assert result_base.verified and result_sharded.verified
            assert result_base.result_ids == result_sharded.result_ids
            assert result_base.vo_sp_bytes == result_sharded.vo_sp_bytes
        base.close()
        sharded.close()


class TestConcurrentMixedLoad:
    def test_one_writer_seven_readers(self):
        previous = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            system = HybridStorageSystem(scheme="mi", seed=3, shards=8)
            for obj in make_docs(6):
                system.add_object(obj)

            n_readers = 7
            barrier = threading.Barrier(n_readers + 1)
            errors = []

            def writer():
                barrier.wait()
                try:
                    for i in range(6, 30):
                        system.add_object(
                            DataObject(
                                i,
                                ("alpha", "hot%d" % (i % 3)),
                                b"w-%d" % i,
                            )
                        )
                except BaseException as exc:
                    errors.append(exc)

            def reader(index):
                barrier.wait()
                try:
                    for _ in range(12):
                        result = system.query("alpha AND beta")
                        assert result.verified
                        # Snapshot isolation: whatever prefix of the
                        # write stream we see, the answer verifies and
                        # only complete objects appear.
                        for object_id in result.result_ids:
                            assert (
                                system.get_object(object_id).object_id
                                == object_id
                            )
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader, args=(i,))
                for i in range(n_readers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert len(system) == 30
            final = system.query("alpha AND beta")
            assert final.verified
            system.close()
        finally:
            sys.setswitchinterval(previous)


class TestShardTelemetry:
    """Acceptance: process-executor shard work is visible in the trace."""

    def test_four_shard_process_trace_has_spans_from_every_shard(self):
        from repro import obs
        from repro.parallel import TASK_SPAN

        system = HybridStorageSystem(
            scheme="mi",
            seed=13,
            shards=4,
            executor="process",
            executor_workers=2,
        )
        try:
            # Enough distinct keywords that every shard owns a few.
            docs = [
                DataObject(
                    i,
                    (f"kw-{i % 16}", f"kw-{(i + 5) % 16}", "common"),
                    b"payload-%d" % i,
                )
                for i in range(24)
            ]
            with obs.collect() as col:
                system.add_objects_batched(docs)
                result = system.query("common")
            assert result.verified
        finally:
            system.close()

        tasks = [
            s
            for s in col.spans
            if s.name == TASK_SPAN and "shard" in s.attributes
        ]
        # Every shard's scatter task is in the trace, labeled.
        assert sorted(t.attributes["shard"] for t in tasks) == [0, 1, 2, 3]
        # Spans recorded *inside* the worker processes came back too,
        # nested under their task span and stamped with the worker pid.
        builds = [s for s in col.spans if s.name == "sp.shard.build"]
        assert len(builds) == 4
        task_ids = {t.span_id for t in tasks}
        for build_span in builds:
            assert build_span.parent_id in task_ids
            assert "pid" in build_span.attributes

    def test_critpath_report_attributes_the_sharded_run(self):
        from repro import obs

        system = HybridStorageSystem(
            scheme="mi",
            seed=13,
            shards=4,
            executor="process",
            executor_workers=2,
        )
        try:
            docs = [
                DataObject(
                    i,
                    (f"kw-{i % 16}", "common"),
                    b"payload-%d" % i,
                )
                for i in range(16)
            ]
            with obs.collect() as col:
                system.add_objects_batched(docs)
        finally:
            system.close()

        report = obs.analyze(col.spans)
        phases = {p.name: p for p in report.phases}
        assert "sp.shard.build" in phases
        assert phases["sp.shard.build"].self_s > 0
        assert report.wall_s > 0
        assert 0 < report.efficiency <= 1.0
        assert report.lanes >= 2  # main process plus pool workers
        text = report.render()
        assert "sp.shard.build" in text
        assert "efficiency" in text
