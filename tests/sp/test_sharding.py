"""Shard-transparency tests: sharding must be invisible above the SP.

The design invariant: each keyword's ADS receives exactly the insert
sequence a single-shard system applies, so answers, per-conjunct VO
encodings, gas receipts and verification outcomes are byte-identical
for any shard count.  These tests pin that down for every scheme and
both engines, plus a concurrent mixed insert/query load.
"""

import sys
import threading

import pytest

from repro.core.objects import DataObject
from repro.core.query.parser import KeywordQuery
from repro.core.system import HybridStorageSystem

SCHEMES = ["mi", "smi", "ci", "ci*"]

QUERIES = [
    "alpha AND gamma",
    "alpha AND beta",
    "delta",
    "(alpha AND beta) OR (gamma AND delta)",
    "alpha AND missing",
]


def make_docs(count=10):
    keyword_sets = [
        ("alpha", "beta", "delta"),
        ("alpha", "gamma"),
        ("beta", "gamma", "delta"),
        ("alpha", "beta", "gamma", "delta"),
        ("gamma",),
    ]
    return [
        DataObject(i, keyword_sets[i % len(keyword_sets)], b"payload-%d" % i)
        for i in range(count)
    ]


def build(scheme, shards, **kwargs):
    system = HybridStorageSystem(
        scheme=scheme, seed=13, shards=shards, cvc_modulus_bits=512, **kwargs
    )
    reports = [system.add_object(obj) for obj in make_docs()]
    return system, reports


@pytest.mark.parametrize("scheme", SCHEMES)
class TestShardTransparency:
    def test_answers_vo_and_gas_identical(self, scheme):
        base, base_reports = build(scheme, shards=1)
        sharded, sharded_reports = build(scheme, shards=8)

        # Gas receipts: the chain never sees the shard layout.
        assert [r.gas for r in base_reports] == [
            r.gas for r in sharded_reports
        ]

        for text in QUERIES:
            query = KeywordQuery.parse(text)
            answer_base = base.process_query(query)
            answer_sharded = sharded.process_query(query)
            assert answer_base.result_ids == answer_sharded.result_ids
            # Per-conjunct VOs, byte for byte through the wire codec.
            from repro.core.query.vo import QueryVO

            for vo_base, vo_sharded in zip(
                answer_base.vo.conjuncts, answer_sharded.vo.conjuncts
            ):
                assert base._codec.encode(
                    QueryVO(conjuncts=(vo_base,))
                ) == sharded._codec.encode(QueryVO(conjuncts=(vo_sharded,)))

            result_base = base.query(text)
            result_sharded = sharded.query(text)
            assert result_base.verified and result_sharded.verified
            assert result_base.result_ids == result_sharded.result_ids
            assert result_base.vo_sp_bytes == result_sharded.vo_sp_bytes
            assert result_base.vo_chain_bytes == result_sharded.vo_chain_bytes
        base.close()
        sharded.close()

    def test_objects_reachable_from_any_shard_count(self, scheme):
        system, _ = build(scheme, shards=8)
        assert len(system) == 10
        assert system.all_object_ids() == list(range(10))
        for object_id in system.all_object_ids():
            assert system.get_object(object_id).object_id == object_id
        system.close()

    def test_disk_engine_is_equally_transparent(self, scheme, tmp_path):
        base, _ = build(scheme, shards=1)
        sharded, _ = build(scheme, shards=4, engine="disk", engine_dir=tmp_path)
        for text in QUERIES[:3]:
            result_base = base.query(text)
            result_sharded = sharded.query(text)
            assert result_base.verified and result_sharded.verified
            assert result_base.result_ids == result_sharded.result_ids
            assert result_base.vo_sp_bytes == result_sharded.vo_sp_bytes
        base.close()
        sharded.close()


class TestConcurrentMixedLoad:
    def test_one_writer_seven_readers(self):
        previous = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            system = HybridStorageSystem(scheme="mi", seed=3, shards=8)
            for obj in make_docs(6):
                system.add_object(obj)

            n_readers = 7
            barrier = threading.Barrier(n_readers + 1)
            errors = []

            def writer():
                barrier.wait()
                try:
                    for i in range(6, 30):
                        system.add_object(
                            DataObject(
                                i,
                                ("alpha", "hot%d" % (i % 3)),
                                b"w-%d" % i,
                            )
                        )
                except BaseException as exc:
                    errors.append(exc)

            def reader(index):
                barrier.wait()
                try:
                    for _ in range(12):
                        result = system.query("alpha AND beta")
                        assert result.verified
                        # Snapshot isolation: whatever prefix of the
                        # write stream we see, the answer verifies and
                        # only complete objects appear.
                        for object_id in result.result_ids:
                            assert (
                                system.get_object(object_id).object_id
                                == object_id
                            )
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader, args=(i,))
                for i in range(n_readers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert len(system) == 30
            final = system.query("alpha AND beta")
            assert final.verified
            system.close()
        finally:
            sys.setswitchinterval(previous)
