"""CacheWarmer: warmed proofs verify, tampering fails closed, signals."""

import dataclasses

import pytest

from repro import obs
from repro.core.objects import DataObject
from repro.core.system import HybridStorageSystem
from repro.errors import ReproError, VerificationError
from repro.sp.warmer import ACCESS_METRIC_PREFIX, CacheWarmer


def corpus():
    return [
        DataObject(1, ("alpha", "beta"), b"one"),
        DataObject(2, ("alpha",), b"two"),
        DataObject(3, ("beta", "gamma"), b"three"),
    ]


def make_system(**kwargs):
    kwargs.setdefault("witness_warmer", True)
    kwargs.setdefault("warm_hot_threshold", 0)
    system = HybridStorageSystem(scheme="smi", seed=13, **kwargs)
    for obj in corpus():
        system.add_object(obj)
    return system


class TestWarming:
    def test_warmed_proofs_land_in_cache_and_queries_hit(self):
        system = make_system()
        assert sorted(system.warmer.pending()) == ["alpha", "beta", "gamma"]
        warmed = system.warm_pending()
        assert warmed > 0
        assert system.warmer.pending() == []
        # Warming went through real verification: only misses so far.
        assert system.verify_cache.misses >= warmed
        assert system.verify_cache.hits == 0
        result = system.query('"alpha" AND "beta"')
        assert result.verified
        assert system.verify_cache.hits > 0

    def test_insert_redirties_only_touched_keywords(self):
        system = make_system()
        system.warm_pending()
        system.add_object(DataObject(4, ("alpha",), b"four"))
        assert system.warmer.pending() == ["alpha"]

    def test_empty_keyword_clears_dirty(self):
        system = make_system()
        system.warmer.note_insert(["ghost"])
        assert "ghost" in system.warmer.pending()
        assert system.warmer.warm("ghost") == 0
        assert "ghost" not in system.warmer.pending()

    def test_warm_pending_requires_warmer(self):
        system = HybridStorageSystem(scheme="smi", seed=13)
        with pytest.raises(ReproError):
            system.warm_pending()


class TestFailClosed:
    def test_tampered_entries_never_reach_the_cache(self):
        system = make_system()
        genuine = system._sp_view("alpha").all_proven()
        tampered = [
            dataclasses.replace(entry, object_hash=bytes(32))
            for entry in genuine
        ]
        warmer = CacheWarmer(
            prove=lambda kw: tampered,
            proof_system=system.chain_proof_system,
            hot_threshold=0,
        )
        warmer.note_insert(["alpha"])
        with obs.collect() as col:
            assert warmer.warm("alpha") == 0
            snap = col.metrics.snapshot()
        assert snap["sp.warm.failures"] == len(tampered)
        assert snap.get("sp.warm.entries", 0) == 0
        # The keyword stays dirty so the failure is re-observed.
        assert "alpha" in warmer.pending()
        # Nothing was cached: verifying a tampered entry still raises.
        ps = system.chain_proof_system(frozenset(("alpha",)))
        with pytest.raises(VerificationError):
            ps.verify_entry("alpha", tampered[0])

    def test_partial_tampering_caches_only_good_entries(self):
        system = make_system()
        genuine = system._sp_view("alpha").all_proven()
        assert len(genuine) >= 2
        mixed = [genuine[0]] + [
            dataclasses.replace(entry, object_hash=bytes(32))
            for entry in genuine[1:]
        ]
        warmer = CacheWarmer(
            prove=lambda kw: mixed,
            proof_system=system.chain_proof_system,
            hot_threshold=0,
        )
        warmer.note_insert(["alpha"])
        assert warmer.warm("alpha") == 1
        assert "alpha" in warmer.pending()


class TestSignals:
    def test_hot_threshold_gates_pending(self):
        system = make_system(warm_hot_threshold=2)
        warmer = system.warmer
        assert warmer.pending() == []
        warmer.note_access(["alpha"])
        assert warmer.pending() == []
        warmer.note_access(["alpha"])
        assert warmer.pending() == ["alpha"]

    def test_queries_feed_the_access_signal(self):
        system = make_system(warm_hot_threshold=2)
        system.query('"alpha"')
        system.query('"alpha"')
        assert system.warmer.pending() == ["alpha"]

    def test_sync_from_metrics_consumes_deltas(self):
        warmer = CacheWarmer(
            prove=lambda kw: [], proof_system=None, hot_threshold=2
        )
        with obs.collect():
            obs.inc(ACCESS_METRIC_PREFIX + "alpha", 2)
            assert warmer.sync_from_metrics() == 2
            # Already-consumed counts are not absorbed twice.
            assert warmer.sync_from_metrics() == 0
            obs.inc(ACCESS_METRIC_PREFIX + "alpha")
            assert warmer.sync_from_metrics() == 1
        warmer.note_insert(["alpha"])
        assert warmer.pending() == ["alpha"]

    def test_sync_without_registry_is_a_noop(self):
        warmer = CacheWarmer(
            prove=lambda kw: [], proof_system=None, hot_threshold=0
        )
        assert warmer.sync_from_metrics() == 0


class TestBackground:
    def test_background_thread_warms_until_idle(self):
        system = make_system()
        assert system.warmer.pending()
        system.warmer.start(interval_s=0.01)
        try:
            assert system.warmer.wait_idle(timeout_s=5.0)
        finally:
            system.warmer.stop()
        assert system.verify_cache.misses > 0
        assert system.query('"gamma"').verified

    def test_start_twice_and_close_are_safe(self):
        system = make_system()
        system.warmer.start(interval_s=0.01)
        system.warmer.start(interval_s=0.01)
        system.close()
        system.close()

    def test_stop_joins_and_reports_exit(self):
        import threading

        warmer = CacheWarmer(
            prove=lambda kw: [], proof_system=None, hot_threshold=0
        )
        before = threading.active_count()
        warmer.start(interval_s=0.01)
        assert threading.active_count() == before + 1
        assert warmer.stop() is True
        assert threading.active_count() == before
        # Idempotent, including the never-started case.
        assert warmer.stop() is True
        assert CacheWarmer(
            prove=lambda kw: [], proof_system=None, hot_threshold=0
        ).stop() is True

    def test_close_leaks_no_warmer_threads(self):
        import threading

        system = make_system()
        system.warmer.start(interval_s=0.01)
        system.close()
        assert not any(
            thread.name == "cache-warmer" and thread.is_alive()
            for thread in threading.enumerate()
        )

    def test_sharded_stop_aggregates_every_shard(self):
        from repro.sp.engine import ShardRouter
        from repro.sp.warmer import ShardedCacheWarmer

        warmers = [
            CacheWarmer(
                prove=lambda kw: [], proof_system=None, hot_threshold=0
            )
            for _ in range(3)
        ]
        sharded = ShardedCacheWarmer(warmers, ShardRouter(3, seed=1))
        sharded.start(interval_s=0.01)
        assert sharded.stop() is True
        for warmer in warmers:
            assert warmer._thread is None
