"""Multiproof compression through the warmer and the affine pool.

Two integration seams of the v3 VO path:

* the :class:`~repro.sp.warmer.CacheWarmer` pre-verifies a keyword's
  full cover and seeds the multiproof cache key, so a later compressed
  query's fold is a cache hit;
* shard-affine scatter-gather (including the Chameleon batched-ingest
  path, whose witness computations coalesce through the
  :class:`~repro.sp.scheduler.WitnessScheduler`) stays byte-identical
  at any shard count with compression on.
"""

import pytest

from repro.core.objects import DataObject
from repro.core.query.parser import KeywordQuery
from repro.core.system import HybridStorageSystem

from tests.sp.test_sharding import QUERIES, build, make_docs


class TestWarmerMultiproof:
    def make_system(self):
        system = HybridStorageSystem(
            scheme="smi", seed=13, witness_warmer=True, warm_hot_threshold=0
        )
        for i in range(12):
            kws = ("alpha", "beta") if i % 2 else ("alpha",)
            system.add_object(DataObject(i, kws, b"x%d" % i))
        return system

    def test_warm_preverifies_the_query_multiproof(self):
        system = self.make_system()
        assert system.warm_pending() > 0
        hits_before = system.verify_cache.hits
        answer = system.process_query(KeywordQuery.parse('"alpha"'))
        # The full scan compresses: one multiproof covering the tree —
        # the very cover the warmer just folded and cached.
        assert answer.vo.multiproofs
        result = system.query('"alpha" AND "beta"')
        assert result.verified
        assert system.verify_cache.hits > hits_before

    def test_unwarmed_query_folds_then_caches(self):
        system = self.make_system()
        first = system.query('"alpha"')
        assert first.verified
        hits_after_first = system.verify_cache.hits
        second = system.query('"alpha"')
        assert second.verified
        assert system.verify_cache.hits > hits_after_first


class TestAffineMultiproofParity:
    """1 vs 8 affine shards must be byte-identical, compression on."""

    def test_mi_v3_frames_identical_across_shards(self):
        base, _ = build("mi", shards=1)
        affine, _ = build("mi", shards=8, pool="affine")
        try:
            saw_multiproof = False
            for text in QUERIES:
                query = KeywordQuery.parse(text)
                answer_base = base.process_query(query)
                answer_affine = affine.process_query(query)
                assert answer_base.result_ids == answer_affine.result_ids
                saw_multiproof |= bool(answer_base.vo.multiproofs)
                assert base._codec.encode(answer_base.vo) == affine._codec.encode(
                    answer_affine.vo
                )
                assert base.query(text).verified
                assert affine.query(text).verified
            assert saw_multiproof, "no query exercised the v3 path"
        finally:
            base.close()
            affine.close()

    def test_ci_scheduler_batched_ingest_identical_across_shards(self):
        serial = HybridStorageSystem(
            scheme="ci", seed=13, shards=1, cvc_modulus_bits=512
        )
        affine = HybridStorageSystem(
            scheme="ci", seed=13, shards=8, cvc_modulus_bits=512, pool="affine"
        )
        try:
            docs = make_docs(10)
            # Batched ingest routes every witness computation through the
            # coalescing WitnessScheduler on both sides.
            serial.add_objects_batched(docs)
            affine.add_objects_batched(docs)
            for text in QUERIES[:4]:
                query = KeywordQuery.parse(text)
                answer_serial = serial.process_query(query)
                answer_affine = affine.process_query(query)
                assert answer_serial.result_ids == answer_affine.result_ids
                assert serial._codec.encode(
                    answer_serial.vo
                ) == affine._codec.encode(answer_affine.vo)
                assert serial.query(text).verified
                assert affine.query(text).verified
        finally:
            serial.close()
            affine.close()
