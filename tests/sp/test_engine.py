"""Tests for the pluggable index-shard engines and the router."""

import pytest

from repro.core.merkle_family import MerkleInvertedSP
from repro.errors import ParameterError, ReproError
from repro.sp.engine import (
    DiskShardEngine,
    MemoryShardEngine,
    ShardRouter,
    make_engine,
)


def merkle_factory():
    return MerkleInvertedSP(fanout=4)


class TestShardRouter:
    def test_rejects_zero_shards(self):
        with pytest.raises(ParameterError):
            ShardRouter(0)

    def test_deterministic_across_instances(self):
        a = ShardRouter(8, seed=11)
        b = ShardRouter(8, seed=11)
        keywords = [f"kw{i}" for i in range(200)]
        assert [a.route(kw) for kw in keywords] == [
            b.route(kw) for kw in keywords
        ]

    def test_seed_changes_routing(self):
        a = ShardRouter(8, seed=1)
        b = ShardRouter(8, seed=2)
        keywords = [f"kw{i}" for i in range(200)]
        assert [a.route(kw) for kw in keywords] != [
            b.route(kw) for kw in keywords
        ]

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1, seed=5)
        assert {router.route(f"kw{i}") for i in range(50)} == {0}

    def test_distribution_covers_all_shards(self):
        router = ShardRouter(8, seed=7)
        counts = [0] * 8
        for i in range(400):
            counts[router.route(f"kw{i}")] += 1
        assert all(count > 0 for count in counts)
        # No pathological skew: every shard holds a sane share.
        assert max(counts) < 4 * min(counts)

    def test_memoised_route_is_stable(self):
        router = ShardRouter(8, seed=7)
        assert router.route("alpha") == router.route("alpha")


class TestMakeEngine:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError):
            make_engine("papyrus", 0, merkle_factory)

    def test_disk_requires_directory(self):
        with pytest.raises(ParameterError):
            make_engine("disk", 0, merkle_factory)

    def test_kinds(self, tmp_path):
        assert isinstance(
            make_engine("memory", 0, merkle_factory), MemoryShardEngine
        )
        disk = make_engine("disk", 0, merkle_factory, directory=tmp_path)
        assert isinstance(disk, DiskShardEngine)
        disk.close()


class TestDiskEngineReplay:
    def fill(self, engine):
        entries = [
            ("alpha", 1, b"h1"),
            ("beta", 2, b"h2"),
            ("alpha", 3, b"h3"),
            ("gamma", 4, b"h4"),
            ("alpha", 5, b"h5"),
        ]
        for keyword, object_id, payload in entries:
            engine.insert_entry(keyword, object_id, payload.ljust(32, b"\0"))

    def test_round_trip_rebuilds_identical_trees(self, tmp_path):
        engine = DiskShardEngine(3, merkle_factory, tmp_path)
        self.fill(engine)
        roots = {
            kw: engine.tree(kw).root_hash
            for kw in ("alpha", "beta", "gamma")
        }
        engine.close()
        assert (tmp_path / "shard-003.jsonl").exists()

        reopened = DiskShardEngine(3, merkle_factory, tmp_path)
        for keyword, root in roots.items():
            assert reopened.tree(keyword).root_hash == root
        reopened.close()

    def test_replay_does_not_duplicate_journal(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        self.fill(engine)
        engine.close()
        lines = (tmp_path / "shard-000.jsonl").read_text().splitlines()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        reopened.close()
        assert (
            tmp_path / "shard-000.jsonl"
        ).read_text().splitlines() == lines

    def test_mutations_after_reopen_append(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        self.fill(engine)
        engine.close()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        reopened.insert_entry("alpha", 9, b"h9".ljust(32, b"\0"))
        root = reopened.tree("alpha").root_hash
        reopened.close()

        third = DiskShardEngine(0, merkle_factory, tmp_path)
        assert third.tree("alpha").root_hash == root
        third.close()

    def test_object_round_trip(self, tmp_path):
        from repro.core.objects import DataObject

        engine = DiskShardEngine(1, merkle_factory, tmp_path)
        engine.put_object(DataObject(7, ("alpha",), b"payload"))
        engine.close()

        reopened = DiskShardEngine(1, merkle_factory, tmp_path)
        assert reopened.all_object_ids() == [7]
        assert reopened.get_object(7).content == b"payload"
        reopened.close()

    def test_unknown_journal_op_rejected(self, tmp_path):
        path = tmp_path / "shard-000.jsonl"
        path.write_text('{"op": "explode"}\n')
        with pytest.raises(ReproError):
            DiskShardEngine(0, merkle_factory, tmp_path)


class TestTornTailRecovery:
    """Crash mid-append: the torn tail is dropped, everything before
    it recovers, and the file is truncated to the last good record."""

    def fill_and_close(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        for object_id in range(4):
            engine.insert_entry(
                "alpha", object_id, bytes([object_id]) * 32
            )
        root = engine.tree("alpha").root_hash
        engine.close()
        return tmp_path / "shard-000.jsonl", root

    def test_bytes_after_last_newline_are_truncated(self, tmp_path):
        path, root = self.fill_and_close(tmp_path)
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"op": "entry", "kw": "al')

        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        assert engine.tree("alpha").root_hash == root
        engine.close()
        assert path.read_bytes() == intact

    def test_undecodable_final_line_is_truncated(self, tmp_path):
        path, root = self.fill_and_close(tmp_path)
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"op": "entry", "kw\x00\x01\n')

        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        assert engine.tree("alpha").root_hash == root
        engine.close()
        assert path.read_bytes() == intact

    def test_appends_after_truncation_stay_replayable(self, tmp_path):
        path, _ = self.fill_and_close(tmp_path)
        path.write_bytes(path.read_bytes() + b"garbage-tail")

        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        engine.insert_entry("alpha", 9, b"h9".ljust(32, b"\0"))
        root = engine.tree("alpha").root_hash
        engine.close()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        assert reopened.tree("alpha").root_hash == root
        reopened.close()

    def test_undecodable_interior_line_raises(self, tmp_path):
        path, _ = self.fill_and_close(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines.insert(1, b"not json at all\n")
        path.write_bytes(b"".join(lines))
        with pytest.raises(ReproError, match="corrupt journal record"):
            DiskShardEngine(0, merkle_factory, tmp_path)


class TestBatchedJournal:
    def entries(self, count=6):
        return [(object_id, bytes([object_id]) * 32) for object_id in range(count)]

    def test_apply_bulk_journals_one_append(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        writes = []
        original = engine._log.write
        engine._log.write = lambda text: writes.append(text) or original(text)
        assert engine.apply_bulk([("alpha", self.entries())]) == 6
        assert len(writes) == 1
        root = engine.tree("alpha").root_hash
        engine.close()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        assert reopened.tree("alpha").root_hash == root
        reopened.close()

    def test_adopt_tree_journals_one_append(self, tmp_path):
        from repro.core.mbtree import MBTree

        entries = self.entries()
        tree = MBTree(fanout=4)
        for object_id, object_hash in entries:
            tree.insert(object_id, object_hash)

        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        writes = []
        original = engine._log.write
        engine._log.write = lambda text: writes.append(text) or original(text)
        engine.adopt_tree("alpha", tree, entries)
        assert len(writes) == 1
        engine.close()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        assert reopened.tree("alpha").root_hash == tree.root_hash
        reopened.close()

    def test_apply_records_round_trips_through_replay_path(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        records = [
            {"op": "entry", "kw": "alpha", "id": i, "hash": ("%02x" % i) * 32}
            for i in range(4)
        ]
        assert engine.apply_records(records) == 4
        root = engine.tree("alpha").root_hash
        engine.close()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        assert reopened.tree("alpha").root_hash == root
        reopened.close()

    def test_close_is_idempotent(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        engine.insert_entry("alpha", 1, bytes(32))
        engine.close()
        engine.close()
        assert engine._log is None
