"""Tests for the pluggable index-shard engines and the router."""

import pytest

from repro.core.merkle_family import MerkleInvertedSP
from repro.errors import ParameterError, ReproError
from repro.sp.engine import (
    DiskShardEngine,
    MemoryShardEngine,
    ShardRouter,
    make_engine,
)


def merkle_factory():
    return MerkleInvertedSP(fanout=4)


class TestShardRouter:
    def test_rejects_zero_shards(self):
        with pytest.raises(ParameterError):
            ShardRouter(0)

    def test_deterministic_across_instances(self):
        a = ShardRouter(8, seed=11)
        b = ShardRouter(8, seed=11)
        keywords = [f"kw{i}" for i in range(200)]
        assert [a.route(kw) for kw in keywords] == [
            b.route(kw) for kw in keywords
        ]

    def test_seed_changes_routing(self):
        a = ShardRouter(8, seed=1)
        b = ShardRouter(8, seed=2)
        keywords = [f"kw{i}" for i in range(200)]
        assert [a.route(kw) for kw in keywords] != [
            b.route(kw) for kw in keywords
        ]

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1, seed=5)
        assert {router.route(f"kw{i}") for i in range(50)} == {0}

    def test_distribution_covers_all_shards(self):
        router = ShardRouter(8, seed=7)
        counts = [0] * 8
        for i in range(400):
            counts[router.route(f"kw{i}")] += 1
        assert all(count > 0 for count in counts)
        # No pathological skew: every shard holds a sane share.
        assert max(counts) < 4 * min(counts)

    def test_memoised_route_is_stable(self):
        router = ShardRouter(8, seed=7)
        assert router.route("alpha") == router.route("alpha")


class TestMakeEngine:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError):
            make_engine("papyrus", 0, merkle_factory)

    def test_disk_requires_directory(self):
        with pytest.raises(ParameterError):
            make_engine("disk", 0, merkle_factory)

    def test_kinds(self, tmp_path):
        assert isinstance(
            make_engine("memory", 0, merkle_factory), MemoryShardEngine
        )
        disk = make_engine("disk", 0, merkle_factory, directory=tmp_path)
        assert isinstance(disk, DiskShardEngine)
        disk.close()


class TestDiskEngineReplay:
    def fill(self, engine):
        entries = [
            ("alpha", 1, b"h1"),
            ("beta", 2, b"h2"),
            ("alpha", 3, b"h3"),
            ("gamma", 4, b"h4"),
            ("alpha", 5, b"h5"),
        ]
        for keyword, object_id, payload in entries:
            engine.insert_entry(keyword, object_id, payload.ljust(32, b"\0"))

    def test_round_trip_rebuilds_identical_trees(self, tmp_path):
        engine = DiskShardEngine(3, merkle_factory, tmp_path)
        self.fill(engine)
        roots = {
            kw: engine.tree(kw).root_hash
            for kw in ("alpha", "beta", "gamma")
        }
        engine.close()
        assert (tmp_path / "shard-003.jsonl").exists()

        reopened = DiskShardEngine(3, merkle_factory, tmp_path)
        for keyword, root in roots.items():
            assert reopened.tree(keyword).root_hash == root
        reopened.close()

    def test_replay_does_not_duplicate_journal(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        self.fill(engine)
        engine.close()
        lines = (tmp_path / "shard-000.jsonl").read_text().splitlines()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        reopened.close()
        assert (
            tmp_path / "shard-000.jsonl"
        ).read_text().splitlines() == lines

    def test_mutations_after_reopen_append(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        self.fill(engine)
        engine.close()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        reopened.insert_entry("alpha", 9, b"h9".ljust(32, b"\0"))
        root = reopened.tree("alpha").root_hash
        reopened.close()

        third = DiskShardEngine(0, merkle_factory, tmp_path)
        assert third.tree("alpha").root_hash == root
        third.close()

    def test_object_round_trip(self, tmp_path):
        from repro.core.objects import DataObject

        engine = DiskShardEngine(1, merkle_factory, tmp_path)
        engine.put_object(DataObject(7, ("alpha",), b"payload"))
        engine.close()

        reopened = DiskShardEngine(1, merkle_factory, tmp_path)
        assert reopened.all_object_ids() == [7]
        assert reopened.get_object(7).content == b"payload"
        reopened.close()

    def test_unknown_journal_op_rejected(self, tmp_path):
        path = tmp_path / "shard-000.jsonl"
        path.write_text('{"op": "explode"}\n')
        with pytest.raises(ReproError):
            DiskShardEngine(0, merkle_factory, tmp_path)
