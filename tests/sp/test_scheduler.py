"""WitnessScheduler: dedup, batching, concurrency, failure propagation."""

import threading

import pytest

from repro import obs
from repro.core.chameleon import ChameleonTreeDO
from repro.crypto import vc
from repro.crypto.prf import generate_key
from repro.errors import ReproError
from repro.sp.scheduler import WitnessScheduler, tree_aux_source


ARITY = 2


class FakeOwner:
    """Minimal stand-in exposing ``trees`` like ChameleonDataOwner."""

    def __init__(self, trees):
        self.trees = trees


@pytest.fixture(scope="module")
def owner():
    pp, td = vc.shared_test_params(ARITY + 1)
    cvc = vc.ChameleonVectorCommitment(ARITY + 1, _pp=pp, _td=td)
    trees = {}
    for name in ("alpha", "beta"):
        tree = ChameleonTreeDO(
            cvc, generate_key(seed=11), keyword=name, arity=ARITY
        )
        for index in range(3):
            tree.insert(object_id=index + 1, object_hash=bytes(32))
        trees[name] = tree
    return FakeOwner(trees), pp


def make_scheduler(owner, **kwargs):
    fake, pp = owner
    return WitnessScheduler(tree_aux_source(fake), pp, **kwargs)


def reference_openings(owner, requests):
    """Per-slot openings computed independently of the scheduler."""
    fake, pp = owner
    return {
        (kw, pos, slot): vc.open_many(
            pp, [slot], fake.trees[kw].aux_at(pos), strategy="per-slot"
        )[slot]
        for kw, pos, slot in requests
    }


class TestRequestDedup:
    def test_duplicate_requests_share_one_future(self, owner):
        scheduler = make_scheduler(owner)
        first = scheduler.request("alpha", 0, 1)
        second = scheduler.request("alpha", 0, 1)
        assert first is second
        assert scheduler.pending_count() == 1
        scheduler.flush()

    def test_distinct_requests_get_distinct_futures(self, owner):
        scheduler = make_scheduler(owner)
        futures = scheduler.request_many(
            [("alpha", 0, 1), ("alpha", 0, 2), ("beta", 0, 1)]
        )
        assert len({id(f) for f in futures}) == 3
        assert scheduler.pending_count() == 3
        scheduler.flush()

    def test_results_match_independent_openings(self, owner):
        requests = [
            ("alpha", 0, 1),
            ("alpha", 0, 2),
            ("alpha", 0, 3),
            ("beta", 0, 2),
        ]
        scheduler = make_scheduler(owner)
        futures = scheduler.request_many(requests)
        computed = scheduler.flush()
        assert computed == len(requests)
        reference = reference_openings(owner, requests)
        for key, future in zip(requests, futures):
            assert future.result() == reference[key]

    def test_flush_empties_queue_and_inflight(self, owner):
        scheduler = make_scheduler(owner)
        future = scheduler.request("alpha", 0, 1)
        scheduler.flush()
        assert scheduler.pending_count() == 0
        assert future.done()
        # After delivery the key is no longer in flight: a new request
        # starts a fresh computation rather than joining the old future.
        again = scheduler.request("alpha", 0, 1)
        assert again is not future
        scheduler.flush()
        assert again.result() == future.result()

    def test_open_convenience(self, owner):
        scheduler = make_scheduler(owner)
        proof = scheduler.open("alpha", 0, 1)
        assert proof == reference_openings(owner, [("alpha", 0, 1)])[
            ("alpha", 0, 1)
        ]

    def test_unknown_keyword_fails_flush(self, owner):
        scheduler = make_scheduler(owner)
        future = scheduler.request("missing", 0, 1)
        with pytest.raises(ReproError):
            scheduler.flush()
        assert isinstance(future.exception(), ReproError)
        # The failed key was evicted: the scheduler stays usable.
        assert scheduler.pending_count() == 0
        ok = scheduler.request("alpha", 0, 1)
        scheduler.flush()
        assert ok.result() == reference_openings(owner, [("alpha", 0, 1)])[
            ("alpha", 0, 1)
        ]


class TestConcurrencyStress:
    THREADS = 8

    def test_dedup_under_concurrency_exact_counters(self, owner):
        """8 threads, identical request sets: exact counter totals."""
        fake, pp = owner
        requests = [
            (kw, 0, slot)
            for kw in ("alpha", "beta")
            for slot in range(1, ARITY + 2)
        ]
        with obs.collect() as col:
            scheduler = make_scheduler(owner)
            results: list[list] = [None] * self.THREADS
            barrier = threading.Barrier(self.THREADS)

            def worker(rank: int) -> None:
                barrier.wait()
                futures = scheduler.request_many(requests)
                results[rank] = futures

            threads = [
                threading.Thread(target=worker, args=(rank,))
                for rank in range(self.THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert scheduler.pending_count() == len(requests)
            computed = scheduler.flush()
            snap = col.metrics.snapshot()

        distinct = len(requests)
        total = distinct * self.THREADS
        assert computed == distinct
        assert snap["sp.batch.requests"] == total
        assert snap["sp.batch.deduped"] == total - distinct
        assert snap["sp.batch.openings"] == distinct
        assert snap["sp.batch.commitments"] == 2  # one group per keyword
        assert snap["sp.batch.flushes"] == 1
        # vc layer: one open_many per commitment, all slots covered.
        assert snap["vc.batch.requests"] == 2
        assert snap["vc.batch.openings"] == distinct

        reference = reference_openings(owner, requests)
        for futures in results:
            for key, future in zip(requests, futures):
                assert future.result() == reference[key]

    def test_concurrent_flushes_deliver_every_future(self, owner):
        """Racing registration against flushing loses no future."""
        scheduler = make_scheduler(owner)
        requests = [
            (kw, 0, slot)
            for kw in ("alpha", "beta")
            for slot in range(1, ARITY + 2)
        ]
        futures = []
        lock = threading.Lock()
        stop = threading.Event()

        def register() -> None:
            for _ in range(50):
                got = scheduler.request_many(requests)
                with lock:
                    futures.extend(got)

        def flusher() -> None:
            while not stop.is_set():
                scheduler.flush()

        workers = [threading.Thread(target=register) for _ in range(4)]
        drain = threading.Thread(target=flusher)
        drain.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        drain.join()
        scheduler.flush()
        reference = reference_openings(owner, requests)
        assert len(futures) == 4 * 50 * len(requests)
        for key, future in zip(requests * (4 * 50), futures):
            assert future.result(timeout=5) == reference[key]
