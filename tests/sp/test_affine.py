"""Shard-affine worker pool: parity, guarding, recovery, telemetry.

The affine pool must be invisible above the SP exactly like the
stateless scatter path: byte-identical VOs, answers and gas at any
shard count, with the structural invariant that resident shard state
(trees, index mirrors, engines) never crosses the pipe toward a worker.
"""

import pickle

import pytest

from repro import obs
from repro.core.merkle_family import MerkleInvertedSP
from repro.core.objects import DataObject
from repro.core.query.parser import KeywordQuery
from repro.core.query.vo import QueryVO
from repro.core.system import HybridStorageSystem
from repro.errors import ParameterError, ReproError
from repro.parallel import RemoteTraceback
from repro.sp.affine import (
    RPC_SPAN,
    AffineEngineProxy,
    AffineWorkerPool,
    EngineSpec,
    guarded_dumps,
)
from repro.sp.engine import MemoryShardEngine

from tests.sp.test_sharding import QUERIES, SCHEMES, build, make_docs

MERKLE_SPEC = ("merkle", {"fanout": 4})


def make_pool(shards=1, **kwargs):
    return AffineWorkerPool(
        [
            EngineSpec(
                shard_id=shard, engine="memory", index_spec=MERKLE_SPEC, **kwargs
            )
            for shard in range(shards)
        ]
    )


@pytest.mark.parametrize("scheme", SCHEMES)
class TestAffineParity:
    """Resident workers vs the serial single-shard reference."""

    def test_answers_vo_and_gas_identical(self, scheme):
        base, base_reports = build(scheme, shards=1)
        affine, affine_reports = build(scheme, shards=4, pool="affine")

        assert [r.gas for r in base_reports] == [
            r.gas for r in affine_reports
        ]
        for text in QUERIES:
            query = KeywordQuery.parse(text)
            answer_base = base.process_query(query)
            answer_affine = affine.process_query(query)
            assert answer_base.result_ids == answer_affine.result_ids
            for vo_base, vo_affine in zip(
                answer_base.vo.conjuncts, answer_affine.vo.conjuncts
            ):
                assert base._codec.encode(
                    QueryVO(conjuncts=(vo_base,))
                ) == affine._codec.encode(QueryVO(conjuncts=(vo_affine,)))

            result_base = base.query(text)
            result_affine = affine.query(text)
            assert result_base.verified and result_affine.verified
            assert result_base.result_ids == result_affine.result_ids
            assert result_base.vo_sp_bytes == result_affine.vo_sp_bytes
        base.close()
        affine.close()

    def test_batched_ingest_matches_per_object(self, scheme):
        serial = HybridStorageSystem(
            scheme=scheme, seed=13, shards=1, cvc_modulus_bits=512
        )
        affine = HybridStorageSystem(
            scheme=scheme,
            seed=13,
            shards=4,
            cvc_modulus_bits=512,
            pool="affine",
        )
        docs = make_docs(8)
        for obj in docs:
            serial.add_object(obj)
        affine.add_objects_batched(docs)
        for text in QUERIES[:3]:
            result_serial = serial.query(text)
            result_affine = affine.query(text)
            assert result_serial.verified and result_affine.verified
            assert result_serial.result_ids == result_affine.result_ids
            assert result_serial.vo_sp_bytes == result_affine.vo_sp_bytes
        serial.close()
        affine.close()


class TestObjectHoming:
    def test_objects_reachable_and_counted(self):
        system, _ = build("mi", shards=4, pool="affine")
        assert len(system) == 10
        assert system.all_object_ids() == list(range(10))
        for object_id in system.all_object_ids():
            assert system.get_object(object_id).object_id == object_id
        system.close()

    def test_duplicate_insert_rejected(self):
        system, _ = build("mi", shards=4, pool="affine")
        with pytest.raises(ReproError):
            system.add_object(DataObject(0, ("alpha",), b"dup"))
        system.close()


class TestRequestGuard:
    """Resident shard state must never be pickled into a request."""

    def test_trees_and_mirrors_rejected(self):
        engine = MemoryShardEngine(0, lambda: MerkleInvertedSP(fanout=4))
        engine.insert_entry("alpha", 1, bytes(32))
        for forbidden in (
            engine.tree("alpha"),
            MerkleInvertedSP(fanout=4),
            engine,
        ):
            with pytest.raises(ParameterError, match="resident shard state"):
                guarded_dumps(forbidden)
            # Nesting does not smuggle it past the guard.
            with pytest.raises(ParameterError, match="resident shard state"):
                guarded_dumps(("apply", [forbidden], False))

    def test_plain_delta_payloads_pass(self):
        payload = ("apply", [{"op": "entry", "kw": "a", "id": 1}], False)
        assert pickle.loads(guarded_dumps(payload)) == payload

    def test_dispatch_refuses_state_and_pool_survives(self):
        pool = make_pool()
        try:
            tree_holder = MerkleInvertedSP(fanout=4)
            with pytest.raises(ParameterError, match="resident shard state"):
                pool.dispatch([(0, "ping", tree_holder)])
            # The guard fired before anything hit the pipe.
            assert pool.request(0, "ping", 41) == 41
        finally:
            pool.close()

    def test_guard_sees_subclasses_defined_after_first_dumps(self):
        # Prime the dispatch table, then define a subclass: a cached
        # table would let it pickle straight past the guard.
        guarded_dumps(("ping", None, False))

        class LateMirror(MerkleInvertedSP):
            pass

        with pytest.raises(ParameterError, match="resident shard state"):
            guarded_dumps(LateMirror(fanout=4))

    def test_guard_failure_mid_dispatch_drains_sent_replies(self):
        pool = make_pool(shards=2)
        try:
            tree_holder = MerkleInvertedSP(fanout=4)
            # Two requests go out before the third call's payload is
            # rejected; their replies must be consumed, or the next
            # dispatch would read them as its own.
            with pytest.raises(ParameterError, match="resident shard state"):
                pool.dispatch(
                    [(0, "ping", 10), (1, "ping", 11), (0, "ping", tree_holder)]
                )
            assert pool.dispatch(
                [(0, "ping", "x"), (1, "ping", "y")]
            ) == ["x", "y"]
        finally:
            pool.close()


class TestPoolMechanics:
    def test_worker_errors_carry_remote_traceback(self):
        pool = make_pool()
        try:
            with pytest.raises(ParameterError, match="unknown affine op"):
                pool.request(0, "explode")
            try:
                pool.request(0, "explode")
            except ParameterError as exc:
                assert isinstance(exc.__cause__, RemoteTraceback)
                assert "_handle" in str(exc.__cause__)
            # The worker loop survived the failed request.
            assert pool.request(0, "ping", 7) == 7
        finally:
            pool.close()

    def test_error_in_multi_call_dispatch_does_not_desync(self):
        pool = make_pool(shards=2)
        try:
            # The failing call sits between healthy ones; every reply —
            # including those after the failure — must be drained so the
            # next dispatch pairs with its own replies, not stale ones.
            with pytest.raises(ParameterError, match="unknown affine op"):
                pool.dispatch(
                    [
                        (0, "ping", 1),
                        (1, "explode", None),
                        (0, "ping", 2),
                        (1, "ping", 3),
                    ]
                )
            assert pool.dispatch(
                [(0, "ping", "a"), (1, "ping", "b"), (0, "ping", "c")]
            ) == ["a", "b", "c"]
        finally:
            pool.close()

    def test_dead_worker_marks_pool_broken(self):
        pool = make_pool()
        pool._workers[0].process.kill()
        pool._workers[0].process.join()
        with pytest.raises((OSError, EOFError)):
            pool.dispatch([(0, "ping", 1)])
        # The pipe is desynchronized for good: fail fast from now on.
        with pytest.raises(ReproError, match="broken"):
            pool.dispatch([(0, "ping", 1)])
        pool.close()

    def test_close_is_idempotent_and_reaps_workers(self):
        pool = make_pool(shards=2)
        processes = [worker.process for worker in pool._workers]
        pool.close()
        pool.close()
        assert all(not process.is_alive() for process in processes)
        with pytest.raises(ReproError, match="closed"):
            pool.dispatch([(0, "ping", None)])

    def test_proxy_chunks_mutations(self):
        pool = make_pool()
        try:
            proxy = AffineEngineProxy(pool, 0, chunk_records=2)
            for i in range(5):
                proxy.insert_entry("alpha", i, bytes([i]) * 32)
            # Two full chunks auto-flushed; one record still buffered.
            assert len(proxy._pending) == 1
            tree = proxy.tree("alpha")  # reads flush first
            assert proxy._pending == []
            serial = MerkleInvertedSP(fanout=4)
            for i in range(5):
                serial.tree_for("alpha").insert(i, bytes([i]) * 32)
            assert tree.root_hash == serial.tree_for("alpha").root_hash
        finally:
            pool.close()

    def test_ingest_counter_tracks_delta_bytes_only(self):
        pool = make_pool()
        try:
            proxy = AffineEngineProxy(pool, 0)
            proxy.insert_entry("alpha", 1, bytes(32))
            proxy.flush()
            after_ingest = pool.ingest_bytes
            assert after_ingest > 0
            pool.request(0, "object_ids")  # a read
            assert pool.ingest_bytes == after_ingest
            pool.reset_counters()
            assert (pool.request_bytes, pool.ingest_bytes) == (0, 0)
        finally:
            pool.close()


class TestDiskRecovery:
    """Crash/restart: workers replay their shard journals on boot."""

    def build_sp(self, tmp_path, **kwargs):
        from repro.core.sp_frontend import ShardedStorageProvider
        from repro.parallel import make_executor

        return ShardedStorageProvider(
            index_factory=lambda: MerkleInvertedSP(fanout=4),
            executor=make_executor("serial"),
            scheme_value="mi",
            join_order="size",
            join_plan="sorted",
            shards=3,
            engine="disk",
            engine_dir=tmp_path,
            seed=13,
            fanout=4,
            pool="affine",
            index_spec=MERKLE_SPEC,
            **kwargs,
        )

    def fill(self, sp):
        from repro.core.objects import ObjectMetadata

        for i, keyword in enumerate(("alpha", "beta", "gamma", "delta")):
            for j in range(3):
                object_id = 10 * i + j
                obj = DataObject(object_id, (keyword,), b"p-%d" % object_id)
                sp.insert_entries(ObjectMetadata.of(obj))
                sp.put_object(obj)
        sp.flush_mutations()

    def test_restart_rebuilds_trees_and_locations(self, tmp_path):
        sp = self.build_sp(tmp_path)
        self.fill(sp)
        roots = {
            kw: sp.tree(kw).root_hash
            for kw in ("alpha", "beta", "gamma", "delta")
        }
        object_ids = sp.all_object_ids()
        sp.close()

        reopened = self.build_sp(tmp_path)
        try:
            for keyword, root in roots.items():
                assert reopened.tree(keyword).root_hash == root
            assert reopened.all_object_ids() == object_ids
            # The handshake rebuilt the ID -> shard map: objects are
            # fetchable without re-ingesting anything.
            for object_id in object_ids:
                assert reopened.get_object(object_id).object_id == object_id
        finally:
            reopened.close()

    def test_torn_tail_is_truncated_on_worker_boot(self, tmp_path):
        sp = self.build_sp(tmp_path)
        self.fill(sp)
        roots = {kw: sp.tree(kw).root_hash for kw in ("alpha", "beta")}
        sp.close()
        # Simulate a crash mid-append: a torn, newline-less tail.
        journal = sorted(tmp_path.glob("shard-*.jsonl"))[0]
        with journal.open("ab") as log:
            log.write(b'{"op": "entry", "kw": "al')

        reopened = self.build_sp(tmp_path)
        try:
            for keyword, root in roots.items():
                assert reopened.tree(keyword).root_hash == root
        finally:
            reopened.close()
        assert not journal.read_bytes().endswith(b'"al')


class TestAffineTelemetry:
    """Worker-side spans come home and connect into one trace."""

    def test_rpc_spans_are_adopted_and_parented(self):
        system = HybridStorageSystem(
            scheme="mi", seed=13, shards=4, pool="affine"
        )
        try:
            docs = [
                DataObject(
                    i,
                    (f"kw-{i % 16}", f"kw-{(i + 5) % 16}", "common"),
                    b"payload-%d" % i,
                )
                for i in range(24)
            ]
            with obs.collect() as col:
                system.add_objects_batched(docs)
                result = system.query("common")
            assert result.verified
        finally:
            system.close()

        rpcs = [s for s in col.spans if s.name == RPC_SPAN]
        assert sorted({s.attributes["shard"] for s in rpcs}) == [0, 1, 2, 3]
        assert {s.attributes["op"] for s in rpcs} >= {"bulk"}
        span_ids = {s.span_id for s in col.spans}
        for span in rpcs:
            assert span.parent_id in span_ids
            assert "worker" in span.attributes

    def test_critpath_report_includes_affine_rpcs(self):
        system = HybridStorageSystem(
            scheme="mi", seed=13, shards=4, pool="affine"
        )
        try:
            docs = [
                DataObject(i, (f"kw-{i % 16}", "common"), b"p-%d" % i)
                for i in range(16)
            ]
            with obs.collect() as col:
                system.add_objects_batched(docs)
        finally:
            system.close()

        report = obs.analyze(col.spans)
        phases = {p.name: p for p in report.phases}
        assert RPC_SPAN in phases
        assert report.wall_s > 0
        assert RPC_SPAN in report.render()

    def test_untraced_dispatch_skips_snapshots(self):
        pool = make_pool()
        try:
            assert obs.trace.current() is None
            assert pool.request(0, "ping", 5) == 5
        finally:
            pool.close()
