"""Error-path desync tests for the affine pool.

The pipe protocol's invariant — exactly one reply consumed per request
sent — is easiest to break on error paths: a guard rejection after some
requests already hit their pipes, a worker dying mid-conversation, or
several dispatchers racing one failure.  Each test here constructs one
of those paths and asserts the pool either fully recovers (replies
drained, next dispatch sees fresh results) or latches broken for every
caller — never the silent third option where a stale reply feeds the
next dispatch.
"""

import threading

import pytest

from repro.core.merkle_family import MerkleInvertedSP
from repro.errors import ParameterError, ReproError
from repro.sp.affine import AffineEngineProxy, AffineWorkerPool, EngineSpec

MERKLE_SPEC = ("merkle", {"fanout": 4})


def make_pool(shards=2):
    return AffineWorkerPool(
        [
            EngineSpec(
                shard_id=shard, engine="memory", index_spec=MERKLE_SPEC
            )
            for shard in range(shards)
        ]
    )


class TestGuardRejectionMidSend:
    def test_prior_sends_are_drained_and_pool_survives(self):
        pool = make_pool(shards=2)
        try:
            # Two requests reach their pipes before the third call's
            # payload is rejected by guarded_dumps.
            calls = [
                (0, "ping", 11),
                (1, "ping", 22),
                (0, "ping", MerkleInvertedSP(fanout=4)),
            ]
            with pytest.raises(ParameterError, match="resident shard state"):
                pool.dispatch(calls)
            assert not pool._broken
            # Both already-sent replies were consumed: a fresh dispatch
            # must see its own echoes, not the stale 11/22.
            assert pool.request(0, "ping", 41) == 41
            assert pool.request(1, "ping", 42) == 42
        finally:
            pool.close()

    def test_concurrent_dispatch_against_guard_rejections(self):
        pool = make_pool(shards=2)
        errors = []
        barrier = threading.Barrier(3)

        def echoer(base):
            try:
                barrier.wait(timeout=10)
                for i in range(25):
                    value = base + i
                    got = pool.dispatch(
                        [(0, "ping", value), (1, "ping", -value)]
                    )
                    if got != [value, -value]:
                        errors.append((value, got))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def rejecter():
            barrier.wait(timeout=10)
            for _ in range(25):
                with pytest.raises(
                    ParameterError, match="resident shard state"
                ):
                    pool.dispatch(
                        [
                            (0, "ping", 0),
                            (1, "ping", MerkleInvertedSP(fanout=4)),
                        ]
                    )

        try:
            threads = [
                threading.Thread(target=echoer, args=(1000,)),
                threading.Thread(target=echoer, args=(100000,)),
                threading.Thread(target=rejecter),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            assert errors == []
            assert not pool._broken
        finally:
            pool.close()


class TestDeadPipe:
    def test_dead_worker_latches_pool_broken(self):
        pool = make_pool(shards=2)
        try:
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            with pytest.raises((EOFError, OSError, ReproError)):
                pool.dispatch([(0, "ping", 1)])
            assert pool._broken
            with pytest.raises(ReproError, match="broken"):
                pool.dispatch([(1, "ping", 2)])
        finally:
            pool.close()
            pool.close()  # idempotent, even when broken

    def test_broken_pool_fails_fast_for_every_thread(self):
        pool = make_pool(shards=1)
        try:
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            with pytest.raises((EOFError, OSError, ReproError)):
                pool.dispatch([(0, "ping", 1)])
            assert pool._broken

            outcomes = []

            def poke():
                try:
                    pool.dispatch([(0, "ping", 1)])
                    outcomes.append("returned")
                except ReproError:
                    outcomes.append("refused")

            threads = [threading.Thread(target=poke) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert outcomes == ["refused"] * 4
        finally:
            pool.close()


class TestProxyFlushFailure:
    def test_failed_flush_leaves_no_dangling_records(self):
        pool = make_pool(shards=1)
        try:
            proxy = AffineEngineProxy(pool, 0, chunk_records=100)
            proxy.insert_entry("alpha", 1, bytes(32))
            proxy.insert_entry("beta", 2, bytes(32))
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            with pytest.raises((EOFError, OSError, ReproError)):
                proxy.flush()
            # The failed chunk is not silently requeued: replaying it
            # against a rebuilt pool could double-apply a prefix the
            # worker had already journalled before dying.
            assert proxy._pending == []
            assert proxy.flush() == 0
            assert pool._broken
        finally:
            pool.close()
