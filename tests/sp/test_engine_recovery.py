"""Crash-recovery tests for checkpointed disk shard engines.

The checkpoint/journal protocol ties both files together with an epoch
number; these tests cut the :meth:`DiskShardEngine.snapshot` sequence
at every crash point the protocol documents and assert the next open
lands in exactly the documented state — no double-applied records, no
silently adopted garbage.
"""

import json

import pytest

from repro.core.merkle_family import MerkleInvertedSP
from repro.errors import IntegrityError, ReproError
from repro.sp.engine import DiskShardEngine


def merkle_factory():
    return MerkleInvertedSP(fanout=4)


def fill(engine, count=6, start=0):
    for object_id in range(start, start + count):
        engine.insert_entry(
            f"kw{object_id % 3}", object_id, bytes([object_id % 251]) * 32
        )


def roots_of(engine):
    return {kw: engine.tree(kw).root_hash for kw in engine.index.trees}


class TestCompactRestart:
    def test_compact_truncates_and_reopens_identically(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        fill(engine)
        expected = roots_of(engine)
        before = (tmp_path / "shard-000.jsonl").stat().st_size
        report = engine.compact()
        engine.close()

        assert report["journal_bytes_before"] == before
        assert report["journal_bytes_after"] < before
        assert report["reclaimed"] == before - report["journal_bytes_after"]
        # The truncated journal holds only the epoch header.
        lines = (tmp_path / "shard-000.jsonl").read_text().splitlines()
        assert [json.loads(line)["op"] for line in lines] == ["epoch"]

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        assert roots_of(reopened) == expected
        assert reopened.epoch == 1
        reopened.close()

    def test_suffix_after_checkpoint_is_replayed(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        fill(engine)
        engine.compact()
        fill(engine, count=3, start=10)  # journaled at the new epoch
        expected = roots_of(engine)
        engine.close()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        assert roots_of(reopened) == expected
        # Replay must not re-append the suffix it just consumed.
        lines = (tmp_path / "shard-000.jsonl").read_text().splitlines()
        assert len(lines) == 1 + 3  # epoch header + three entries
        reopened.close()

    def test_repeated_compaction_advances_epoch(self, tmp_path):
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        fill(engine)
        engine.compact()
        fill(engine, count=2, start=20)
        engine.compact()
        expected = roots_of(engine)
        engine.close()

        reopened = DiskShardEngine(0, merkle_factory, tmp_path)
        assert reopened.epoch == 2
        assert roots_of(reopened) == expected
        reopened.close()


class TestCrashMidCompaction:
    def checkpointed(self, tmp_path):
        """An engine that compacted once, with the old journal saved."""
        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        fill(engine)
        stale = (tmp_path / "shard-000.jsonl").read_bytes()
        expected = roots_of(engine)
        engine.compact()
        engine.close()
        return stale, expected

    def test_stale_journal_discarded_after_rename_crash(self, tmp_path):
        # Crash window: checkpoint renamed into place, journal swap never
        # happened — the full-history (epoch 0) journal is still on disk.
        stale, expected = self.checkpointed(tmp_path)
        (tmp_path / "shard-000.jsonl").write_bytes(stale)

        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        assert engine.epoch == 1
        assert roots_of(engine) == expected
        engine.close()
        # The interrupted swap was finished: the journal now carries the
        # checkpoint's epoch instead of the replayed history.
        lines = (tmp_path / "shard-000.jsonl").read_text().splitlines()
        assert json.loads(lines[0]) == {"op": "epoch", "n": 1}
        assert len(lines) == 1

    def test_missing_journal_recovers_from_checkpoint_alone(self, tmp_path):
        _, expected = self.checkpointed(tmp_path)
        (tmp_path / "shard-000.jsonl").unlink()

        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        assert roots_of(engine) == expected
        engine.close()

    def test_torn_tmp_files_are_swept(self, tmp_path):
        _, expected = self.checkpointed(tmp_path)
        (tmp_path / "shard-000.ckpt.tmp").write_bytes(b"half a checkpoint")
        (tmp_path / "shard-000.jsonl.tmp").write_bytes(b'{"op":')

        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        assert roots_of(engine) == expected
        engine.close()
        assert not (tmp_path / "shard-000.ckpt.tmp").exists()
        assert not (tmp_path / "shard-000.jsonl.tmp").exists()

    def test_corrupt_checkpoint_falls_back_to_full_history(self, tmp_path):
        # The checkpoint fails its digest but the journal was never
        # swapped (epoch 0): drop the checkpoint, replay everything.
        stale, expected = self.checkpointed(tmp_path)
        (tmp_path / "shard-000.jsonl").write_bytes(stale)
        ckpt = tmp_path / "shard-000.ckpt"
        blob = bytearray(ckpt.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        ckpt.write_bytes(blob)

        engine = DiskShardEngine(0, merkle_factory, tmp_path)
        assert engine.epoch == 0
        assert roots_of(engine) == expected
        engine.close()
        assert not ckpt.exists()

    def test_corrupt_checkpoint_with_truncated_journal_raises(self, tmp_path):
        # Once the journal was truncated to the new epoch, the
        # checkpoint is the only copy of history — corruption is fatal.
        self.checkpointed(tmp_path)
        ckpt = tmp_path / "shard-000.ckpt"
        blob = bytearray(ckpt.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        ckpt.write_bytes(blob)

        with pytest.raises(IntegrityError):
            DiskShardEngine(0, merkle_factory, tmp_path)

    def test_journal_ahead_of_checkpoint_raises(self, tmp_path):
        self.checkpointed(tmp_path)
        journal = tmp_path / "shard-000.jsonl"
        journal.write_text(json.dumps({"op": "epoch", "n": 7}) + "\n")

        with pytest.raises(ReproError):
            DiskShardEngine(0, merkle_factory, tmp_path)

    def test_epoch_journal_without_checkpoint_raises(self, tmp_path):
        self.checkpointed(tmp_path)
        (tmp_path / "shard-000.ckpt").unlink()

        with pytest.raises(ReproError):
            DiskShardEngine(0, merkle_factory, tmp_path)
