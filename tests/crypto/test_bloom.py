"""Unit tests for Bloom filters and the per-tree filter chains."""

import pytest

from repro.crypto import bloom


class TestOptimalHashCount:
    def test_clamped_to_range(self):
        assert 1 <= bloom.optimal_hash_count(256, 1000) <= 8
        assert 1 <= bloom.optimal_hash_count(256, 1) <= 8

    def test_default_parameters(self):
        # m=256, n=30 -> k ~ 5.9 -> 6
        assert bloom.optimal_hash_count(256, 30) == 6

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bloom.optimal_hash_count(256, 0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        flt = bloom.BloomFilter()
        ids = list(range(100, 130))
        for i in ids:
            flt.add(i)
        assert all(flt.might_contain(i) for i in ids)

    def test_capacity_enforced(self):
        flt = bloom.BloomFilter(capacity=2)
        flt.add(1)
        flt.add(2)
        assert flt.is_full
        with pytest.raises(ValueError):
            flt.add(3)

    def test_range_tracking(self):
        flt = bloom.BloomFilter()
        for i in (5, 3, 9):
            flt.add(i)
        assert flt.min_id == 3
        assert flt.max_id == 9
        assert flt.covers(4)
        assert not flt.covers(10)

    def test_word_encoding(self):
        flt = bloom.BloomFilter()
        flt.add(42)
        word = flt.to_word()
        assert len(word) == 32
        assert int.from_bytes(word, "big") == flt.bits

    def test_false_positive_rate_monotone(self):
        flt = bloom.BloomFilter()
        assert flt.false_positive_rate() == 0.0
        flt.add(1)
        low = flt.false_positive_rate()
        for i in range(2, 30):
            flt.add(i)
        assert flt.false_positive_rate() > low

    def test_digest_binds_contents_and_range(self):
        f1, f2 = bloom.BloomFilter(), bloom.BloomFilter()
        f1.add(1)
        f2.add(2)
        assert f1.digest() != f2.digest()

    def test_exact_members(self):
        flt = bloom.BloomFilter()
        flt.add(7)
        assert flt.exact_members() == frozenset({7})

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            bloom.BloomFilter(filter_bits=0)
        with pytest.raises(ValueError):
            bloom.BloomFilter(capacity=0)


class TestBloomFilterChain:
    def test_rollover_at_capacity(self):
        chain = bloom.BloomFilterChain(capacity=3)
        created_flags = [chain.add(i)[1] for i in range(1, 8)]
        assert created_flags == [True, False, False, True, False, False, True]
        assert len(chain) == 3

    def test_filter_for_locates_ranges(self):
        chain = bloom.BloomFilterChain(capacity=2)
        for i in (1, 2, 10, 11, 20):
            chain.add(i)
        assert chain.filter_for(1)[0] == 0
        assert chain.filter_for(11)[0] == 1
        assert chain.filter_for(20)[0] == 2
        assert chain.filter_for(5) is None  # gap between filters
        assert chain.filter_for(99) is None

    def test_definitely_absent_semantics(self):
        chain = bloom.BloomFilterChain(capacity=2)
        for i in (10, 20, 30, 40):
            chain.add(i)
        # Present IDs are never reported absent.
        for i in (10, 20, 30, 40):
            assert not chain.definitely_absent(i)
        # Below the first filter's min: conclusively absent.
        assert chain.definitely_absent(5)
        # Empty chain: everything is absent.
        assert bloom.BloomFilterChain().definitely_absent(1)

    def test_absent_ids_mostly_detected(self):
        chain = bloom.BloomFilterChain(capacity=30)
        for i in range(0, 600, 2):  # even IDs only
            chain.add(i)
        absent = sum(chain.definitely_absent(i) for i in range(1, 600, 2))
        # Bloom false positives allowed, but the bulk must be detected.
        assert absent > 200

    def test_snapshot_roundtrip(self):
        chain = bloom.BloomFilterChain(capacity=3)
        for i in (1, 5, 9, 12, 15):
            chain.add(i)
        snapshot = chain.snapshot()
        rebuilt = bloom.BloomFilterChain.from_snapshot(snapshot, capacity=3)
        for i in range(1, 20):
            assert chain.definitely_absent(i) == rebuilt.definitely_absent(i)

    def test_might_contain_tristate(self):
        chain = bloom.BloomFilterChain(capacity=2)
        chain.add(10)
        chain.add(12)
        assert chain.might_contain(10) is True
        assert chain.might_contain(99) is None
