"""Batch witness engine, crypto layer: D&C openings match per-slot ones.

The whole engine rests on one invariant: an opening of a chameleon
vector commitment is a *unique* group element (slot exponents are
coprime to the group order, so ``x -> x^e`` is a bijection), so however
an opening is computed — per slot, divide-and-conquer, before or after
trapdoor collisions — the bits must be identical.  These tests pin that
invariant across arities, randomisers, strategies and both fast-path
settings.
"""

import dataclasses

import pytest

from repro import obs
from repro.crypto import vc
from repro.crypto.numbers import batch_openings, clear_fixed_base_tables
from repro.errors import CommitmentError, ParameterError


def messages_for(arity: int) -> list[bytes]:
    return [f"message-{index}".encode() for index in range(arity)]


@pytest.fixture(params=[2, 4, 8], scope="module")
def committed(request):
    """(pp, td, commitment, aux) at the parametrised arity."""
    arity = request.param
    pp, td = vc.shared_test_params(arity)
    c, aux = vc.commit(pp, messages_for(arity), randomiser=987654321)
    return pp, td, c, aux


def slot_openings(pp, aux, raw=None):
    """Reference openings straight from ``open_slot``.

    ``raw`` holds the slot messages as originally committed (``aux``
    stores only their encodings, and ``open_slot`` takes the raw form).
    """
    if raw is None:
        raw = messages_for(pp.arity)
    return {
        slot: vc.open_slot(pp, slot, raw[slot - 1], aux)
        for slot in range(1, pp.arity + 1)
    }


class TestOpenManyParity:
    @pytest.mark.parametrize("strategy", ["auto", "batch", "per-slot"])
    @pytest.mark.parametrize("fast", [True, False])
    def test_all_strategies_match_open_slot(self, committed, strategy, fast):
        pp, _td, _c, aux = committed
        reference = slot_openings(pp, aux)
        with vc.fastpath(fast):
            openings = vc.open_all(pp, aux, strategy=strategy)
        assert openings == reference

    def test_every_opening_verifies(self, committed):
        pp, _td, c, aux = committed
        raw = messages_for(pp.arity)
        openings = vc.open_all(pp, aux, strategy="batch")
        for slot, proof in openings.items():
            assert vc.verify(pp, c, slot, raw[slot - 1], proof)

    def test_subset_and_duplicate_slots(self, committed):
        pp, _td, _c, aux = committed
        reference = slot_openings(pp, aux)
        openings = vc.open_many(pp, [2, 1, 2, 1], aux, strategy="batch")
        assert openings == {1: reference[1], 2: reference[2]}

    def test_parity_after_collisions(self, committed):
        """Openings from a collided aux still match — and still verify."""
        pp, td, c, aux = committed
        raw = messages_for(pp.arity)
        aux = vc.find_collision(pp, td, c, 1, raw[0], b"replacement", aux)
        aux = vc.find_collision(pp, td, c, 2, raw[1], b"again", aux)
        raw[0], raw[1] = b"replacement", b"again"
        reference = slot_openings(pp, aux, raw=raw)
        assert vc.open_all(pp, aux, strategy="batch") == reference
        for slot, proof in reference.items():
            assert vc.verify(pp, c, slot, raw[slot - 1], proof)

    def test_parity_across_randomisers(self):
        pp, _td = vc.shared_test_params(3)
        for randomiser in (0, 1, 2**64 - 1, 987654321):
            _c, aux = vc.commit(pp, messages_for(3), randomiser=randomiser)
            assert vc.open_all(pp, aux, strategy="batch") == slot_openings(
                pp, aux
            )

    def test_legacy_params_without_base_fall_back(self, committed):
        """Parameters predating ``base`` retention cannot batch — but work."""
        pp, _td, _c, aux = committed
        legacy = dataclasses.replace(pp, base=0)
        assert vc.open_all(legacy, aux, strategy="batch") == slot_openings(
            legacy, aux
        )

    def test_unknown_strategy_rejected(self, committed):
        pp, _td, _c, aux = committed
        with pytest.raises(ParameterError):
            vc.open_many(pp, [1], aux, strategy="bogus")

    def test_out_of_range_slot_rejected(self, committed):
        pp, _td, _c, aux = committed
        with pytest.raises(CommitmentError):
            vc.open_many(pp, [pp.arity + 1], aux)

    def test_facade_methods_delegate(self, committed):
        pp, td, _c, aux = committed
        cvc = vc.ChameleonVectorCommitment(pp.arity, _pp=pp, _td=td)
        reference = slot_openings(pp, aux)
        assert cvc.open_all(aux) == reference
        assert cvc.open_many([1, 2], aux) == {
            1: reference[1],
            2: reference[2],
        }

    def test_counters_emitted(self, committed):
        pp, _td, _c, aux = committed
        with obs.collect() as col:
            vc.open_many(pp, [1, 2, 2], aux, strategy="batch")
            snap = col.metrics.snapshot()
        assert snap["vc.batch.requests"] == 1
        assert snap["vc.batch.openings"] == 2  # duplicates deduplicated
        assert snap["vc.batch.dnc"] == 1

    def test_auto_prefers_batch_on_cold_tables(self, committed):
        pp, _td, _c, aux = committed
        with vc.fastpath(True):
            clear_fixed_base_tables()
            with obs.collect() as col:
                vc.open_all(pp, aux, strategy="auto")
                snap = col.metrics.snapshot()
        assert snap.get("vc.batch.dnc", 0) == 1

    def test_auto_prefers_per_slot_on_warm_tables(self, committed):
        pp, _td, _c, aux = committed
        if (pp.arity + 1) * pp.arity // 2 > 64:
            pytest.skip("pair working set exceeds the table cache")
        with vc.fastpath(True):
            clear_fixed_base_tables()
            vc.prewarm_tables(pp, pairs=True)
            with obs.collect() as col:
                vc.open_all(pp, aux, strategy="auto")
                snap = col.metrics.snapshot()
        assert snap.get("vc.batch.per_slot", 0) == 1


class TestBatchOpeningsUnit:
    """Direct unit coverage of the D&C recursion over toy groups."""

    def test_matches_definition_small(self):
        # Hand-checkable instance: L_i = a^{sum_{j!=i} z_j * P/(e_i e_j)}.
        modulus = 101 * 103
        base = 7
        exponents = [3, 5, 11]
        weights = [4, 9, 2]
        product = 3 * 5 * 11
        expected = {}
        for i, e_i in enumerate(exponents):
            exponent = sum(
                z * (product // (e_i * e_j))
                for j, (e_j, z) in enumerate(zip(exponents, weights))
                if j != i
            )
            expected[i] = pow(base, exponent, modulus)
        assert (
            batch_openings(base, exponents, weights, modulus) == expected
        )

    def test_indices_prune_to_subset(self):
        modulus = 101 * 103
        full = batch_openings(7, [3, 5, 11, 13], [4, 9, 2, 6], modulus)
        subset = batch_openings(
            7, [3, 5, 11, 13], [4, 9, 2, 6], modulus, indices=[0, 3]
        )
        assert subset == {0: full[0], 3: full[3]}

    def test_rejects_misaligned_weights(self):
        with pytest.raises(ParameterError):
            batch_openings(7, [3, 5], [1], 101)

    def test_rejects_bad_index(self):
        with pytest.raises(ParameterError):
            batch_openings(7, [3, 5], [1, 2], 101, indices=[2])

    def test_rejects_negative_weight(self):
        with pytest.raises(ParameterError):
            batch_openings(7, [3, 5], [1, -2], 101)

    def test_empty_cases(self):
        assert batch_openings(7, [], [], 101) == {}
        assert batch_openings(7, [3], [1], 101, indices=[]) == {}
