"""Unit tests for the number-theoretic primitives."""

import pytest

from repro.crypto import numbers
from repro.errors import ParameterError


class TestMillerRabin:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 7919, 104729, 2**31 - 1])
    def test_accepts_primes(self, p):
        assert numbers.is_probable_prime(p)

    @pytest.mark.parametrize(
        "n", [0, 1, 4, 100, 7917, 561, 41041, 2**31 - 3]
    )
    def test_rejects_composites(self, n):
        # 561 and 41041 are Carmichael numbers.
        assert not numbers.is_probable_prime(n)


class TestDeterministicRandom:
    def test_reproducible(self):
        a = numbers.DeterministicRandom(5)
        b = numbers.DeterministicRandom(5)
        assert [a.randbits(64) for _ in range(10)] == [
            b.randbits(64) for _ in range(10)
        ]

    def test_randint_bounds(self):
        rng = numbers.DeterministicRandom(1)
        for _ in range(200):
            value = rng.randint(10, 20)
            assert 10 <= value <= 20

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            numbers.DeterministicRandom(1).randint(5, 4)

    def test_randbits_rejects_non_positive(self):
        with pytest.raises(ValueError):
            numbers.DeterministicRandom(1).randbits(0)


class TestPrimeGeneration:
    def test_exact_bit_length(self):
        rng = numbers.DeterministicRandom(2)
        for bits in (16, 64, 128):
            p = numbers.generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert numbers.is_probable_prime(p)

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ParameterError):
            numbers.generate_prime(4, numbers.DeterministicRandom(1))

    def test_distinct_primes(self):
        rng = numbers.DeterministicRandom(3)
        primes = numbers.generate_distinct_primes(5, 32, rng)
        assert len(set(primes)) == 5
        assert all(numbers.is_probable_prime(p) for p in primes)


class TestModInverse:
    def test_inverse_property(self):
        assert numbers.mod_inverse(3, 11) * 3 % 11 == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ParameterError):
            numbers.mod_inverse(6, 9)


class TestRSAModulus:
    def test_generation(self):
        rng = numbers.DeterministicRandom(4)
        modulus = numbers.generate_rsa_modulus(128, rng)
        assert modulus.n == modulus.p * modulus.q
        assert modulus.p != modulus.q
        assert numbers.is_probable_prime(modulus.p)
        assert numbers.is_probable_prime(modulus.q)

    def test_phi(self):
        modulus = numbers.RSAModulus(n=15, p=3, q=5)
        assert modulus.phi == 8

    def test_root_extraction(self):
        rng = numbers.DeterministicRandom(5)
        modulus = numbers.generate_rsa_modulus(128, rng)
        value = 123456789 % modulus.n
        exponent = 65537
        root = modulus.root(value, exponent)
        assert pow(root, exponent, modulus.n) == value

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ParameterError):
            numbers.generate_rsa_modulus(32, numbers.DeterministicRandom(1))

    def test_make_random_dispatch(self):
        assert isinstance(numbers.make_random(1), numbers.DeterministicRandom)
        assert isinstance(numbers.make_random(None), numbers.SystemRandom)

    def test_system_random_bounds(self):
        rng = numbers.SystemRandom()
        for _ in range(50):
            assert 3 <= rng.randint(3, 9) <= 9
        assert 0 <= rng.randbits(16) < 1 << 16
