"""Unit tests for RSA-FDH signatures."""

import pytest

from repro.crypto import signatures


@pytest.fixture(scope="module")
def key():
    return signatures.generate_keypair(bits=512, seed=21)


class TestSignVerify:
    def test_roundtrip(self, key):
        sig = key.sign(b"root-hash")
        assert key.public_key.verify(b"root-hash", sig)

    def test_wrong_message_rejected(self, key):
        sig = key.sign(b"root-hash")
        assert not key.public_key.verify(b"other", sig)

    def test_wrong_key_rejected(self, key):
        other = signatures.generate_keypair(bits=512, seed=22)
        sig = key.sign(b"m")
        assert not other.public_key.verify(b"m", sig)

    def test_out_of_range_signature_rejected(self, key):
        assert not key.public_key.verify(b"m", 0)
        assert not key.public_key.verify(b"m", key.n)

    def test_deterministic_with_seed(self):
        k1 = signatures.generate_keypair(bits=512, seed=5)
        k2 = signatures.generate_keypair(bits=512, seed=5)
        assert k1.n == k2.n
        assert k1.d == k2.d

    def test_public_key_byte_size(self, key):
        assert key.public_key.byte_size() == 64 + 4
