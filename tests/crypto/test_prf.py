"""Unit tests for the keyed PRF."""

import pytest

import repro.crypto.prf as prf


class TestGenerateKey:
    def test_seeded_keys_reproducible(self):
        assert prf.generate_key(seed=5) == prf.generate_key(seed=5)

    def test_different_seeds_differ(self):
        assert prf.generate_key(seed=5) != prf.generate_key(seed=6)

    def test_unseeded_keys_random(self):
        assert prf.generate_key() != prf.generate_key()

    def test_key_size(self):
        assert len(prf.generate_key(seed=1)) == prf.KEY_SIZE


class TestPrf:
    def test_deterministic(self):
        key = prf.generate_key(seed=1)
        assert prf.prf(key, b"m") == prf.prf(key, b"m")

    def test_key_separation(self):
        k1, k2 = prf.generate_key(seed=1), prf.generate_key(seed=2)
        assert prf.prf(k1, b"m") != prf.prf(k2, b"m")

    def test_message_separation(self):
        key = prf.generate_key(seed=1)
        assert prf.prf(key, b"m1") != prf.prf(key, b"m2")

    def test_rejects_bad_key_size(self):
        with pytest.raises(ValueError):
            prf.prf(b"short", b"m")


class TestPrfInt:
    def test_within_range(self):
        key = prf.generate_key(seed=3)
        for bits in (1, 8, 100, 256, 300, 512):
            value = prf.prf_int(key, b"m", bits=bits)
            assert 0 <= value < (1 << bits)

    def test_rejects_non_positive_bits(self):
        key = prf.generate_key(seed=3)
        with pytest.raises(ValueError):
            prf.prf_int(key, b"m", bits=0)

    def test_wide_output_uses_counter_mode(self):
        key = prf.generate_key(seed=3)
        wide = prf.prf_int(key, b"m", bits=512)
        assert wide.bit_length() > 256  # overwhelmingly likely


class TestNodeRandomness:
    def test_position_and_keyword_bind(self, prf_key):
        r1 = prf.node_randomness(prf_key, 1, "covid")
        r2 = prf.node_randomness(prf_key, 2, "covid")
        r3 = prf.node_randomness(prf_key, 1, "vaccine")
        assert len({r1, r2, r3}) == 3

    def test_deterministic(self, prf_key):
        assert prf.node_randomness(prf_key, 7, "w") == prf.node_randomness(
            prf_key, 7, "w"
        )
