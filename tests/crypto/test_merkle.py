"""Unit tests for the binary Merkle hash tree."""

import pytest

from repro.crypto import merkle
from repro.crypto.hashing import EMPTY_DIGEST
from repro.errors import VerificationError


class TestEmptyTree:
    def test_root_is_empty_digest(self):
        assert merkle.MerkleTree().root == EMPTY_DIGEST

    def test_len(self):
        assert len(merkle.MerkleTree()) == 0


class TestProofs:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_all_leaves_provable(self, n):
        payloads = [b"leaf-%d" % i for i in range(n)]
        tree = merkle.MerkleTree(payloads)
        for i, payload in enumerate(payloads):
            proof = tree.prove(i)
            tree.verify(payload, proof)
            assert merkle.verify_proof(tree.root, payload, proof)

    def test_wrong_payload_fails(self):
        tree = merkle.MerkleTree([b"a", b"b", b"c"])
        proof = tree.prove(1)
        with pytest.raises(VerificationError):
            tree.verify(b"tampered", proof)

    def test_wrong_index_proof_fails(self):
        tree = merkle.MerkleTree([b"a", b"b", b"c", b"d"])
        assert not merkle.verify_proof(tree.root, b"a", tree.prove(1))

    def test_out_of_range_index(self):
        tree = merkle.MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.prove(5)

    def test_proof_byte_size(self):
        tree = merkle.MerkleTree([b"%d" % i for i in range(8)])
        proof = tree.prove(0)
        assert proof.byte_size() == 32 * 3 + 1 + 8


class TestAppend:
    def test_append_changes_root(self):
        tree = merkle.MerkleTree([b"a"])
        root_before = tree.root
        index = tree.append(b"b")
        assert index == 1
        assert tree.root != root_before

    def test_old_proofs_invalid_after_append(self):
        tree = merkle.MerkleTree([b"a", b"b"])
        proof = tree.prove(0)
        old_root = tree.root
        tree.append(b"c")
        assert merkle.verify_proof(old_root, b"a", proof)
        assert not merkle.verify_proof(tree.root, b"a", proof)


class TestDomainSeparation:
    def test_leaf_vs_node(self):
        digest = merkle.leaf_hash(b"x")
        # A single-leaf tree's root is the leaf hash, not a node hash.
        tree = merkle.MerkleTree([b"x"])
        assert tree.root == digest
        assert merkle.node_hash(digest, digest) != digest

    def test_second_preimage_structure(self):
        # An inner node's children cannot be replayed as a leaf payload.
        tree = merkle.MerkleTree([b"a", b"b", b"c", b"d"])
        left = merkle.leaf_hash(b"a")
        right = merkle.leaf_hash(b"b")
        forged_payload = left + right
        assert merkle.leaf_hash(forged_payload) != merkle.node_hash(left, right)
