"""Parity suite: the crypto fast path must be bit-identical to the naive path.

The multi-exponentiation and fixed-base-table code is a pure performance
layer: every result must equal what independent ``pow`` calls produce,
for randomized bases, exponents and message vectors, and the CVC
commit/open/verify round trip must be unchanged under either path.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto import vc
from repro.crypto.numbers import (
    FixedBaseTable,
    clear_fixed_base_tables,
    fixed_base_table,
    multi_exp,
)
from repro.errors import ParameterError

MODULUS = 0xC7F4E3F1_9B3D5A77 * 0xE5C0A98F_0D3B1F63  # two 64-bit odd factors


def naive_multi_exp(pairs, modulus):
    out = 1 % modulus
    for base, exponent in pairs:
        out = out * pow(base, exponent, modulus) % modulus
    return out


class TestMultiExp:
    def test_matches_naive_for_random_vectors(self):
        rng = random.Random(1234)
        for trial in range(50):
            k = rng.randint(1, 5)
            pairs = [
                (rng.randrange(1, MODULUS), rng.getrandbits(rng.randint(1, 300)))
                for _ in range(k)
            ]
            assert multi_exp(pairs, MODULUS) == naive_multi_exp(pairs, MODULUS), (
                trial,
                pairs,
            )

    def test_zero_exponents_and_empty_input(self):
        assert multi_exp([], MODULUS) == 1
        assert multi_exp([(5, 0), (7, 0)], MODULUS) == 1

    def test_single_pair_degenerates_to_pow(self):
        assert multi_exp([(12345, 6789)], MODULUS) == pow(12345, 6789, MODULUS)

    def test_with_tables_matches_naive(self):
        rng = random.Random(99)
        for _ in range(20):
            pairs = [
                (rng.randrange(2, MODULUS), rng.getrandbits(256))
                for _ in range(3)
            ]
            tables = [
                FixedBaseTable(pairs[0][0], MODULUS, 256),
                None,
                FixedBaseTable(pairs[2][0], MODULUS, 256),
            ]
            assert multi_exp(pairs, MODULUS, tables=tables) == naive_multi_exp(
                pairs, MODULUS
            )

    def test_misaligned_tables_rejected(self):
        with pytest.raises(ParameterError):
            multi_exp([(2, 3)], MODULUS, tables=[None, None])

    def test_negative_exponent_rejected(self):
        with pytest.raises(ParameterError):
            multi_exp([(2, -1)], MODULUS)

    def test_bad_modulus_rejected(self):
        with pytest.raises(ParameterError):
            multi_exp([(2, 3)], 0)


class TestFixedBaseTable:
    def test_matches_pow_across_exponent_sizes(self):
        rng = random.Random(7)
        base = rng.randrange(2, MODULUS)
        table = FixedBaseTable(base, MODULUS, 300)
        for bits in (1, 8, 63, 64, 255, 299, 300):
            exponent = rng.getrandbits(bits) | (1 << (bits - 1))
            assert table.pow(exponent) == pow(base, exponent, MODULUS), bits
        assert table.pow(0) == 1

    def test_oversized_exponent_falls_back(self):
        table = FixedBaseTable(3, MODULUS, 64)
        exponent = 1 << 200
        assert table.pow(exponent) == pow(3, exponent, MODULUS)

    def test_negative_exponent_rejected(self):
        table = FixedBaseTable(3, MODULUS, 64)
        with pytest.raises(ParameterError):
            table.pow(-1)

    def test_cache_reuses_and_rebuilds(self):
        clear_fixed_base_tables()
        small = fixed_base_table(11, MODULUS, 64)
        again = fixed_base_table(11, MODULUS, 32)
        assert again is small  # wider cached table serves narrower requests
        wider = fixed_base_table(11, MODULUS, 128)
        assert wider is not small
        assert wider.max_bits >= 128
        clear_fixed_base_tables()


class TestCVCFastpathParity:
    def test_commit_open_verify_identical(self, cvc_params):
        """Randomized vectors: both paths agree on every group element."""
        pp, _ = cvc_params
        rng = random.Random(42)
        for trial in range(15):
            messages = [
                None if rng.random() < 0.3 else rng.randbytes(12)
                for _ in range(pp.arity)
            ]
            randomiser = rng.getrandbits(256)
            with vc.fastpath(False):
                c_naive, aux_naive = vc.commit(pp, messages, randomiser)
                proofs_naive = [
                    vc.open_slot(pp, slot, messages[slot - 1], aux_naive)
                    for slot in range(1, pp.arity + 1)
                ]
            with vc.fastpath(True):
                c_fast, aux_fast = vc.commit(pp, messages, randomiser)
                proofs_fast = [
                    vc.open_slot(pp, slot, messages[slot - 1], aux_fast)
                    for slot in range(1, pp.arity + 1)
                ]
            assert c_fast == c_naive, trial
            assert proofs_fast == proofs_naive, trial
            for slot in range(1, pp.arity + 1):
                for enabled in (False, True):
                    with vc.fastpath(enabled):
                        assert vc.verify(
                            pp, c_fast, slot, messages[slot - 1], proofs_fast[slot - 1]
                        )
                        # Wrong message must fail under either path.
                        assert not vc.verify(
                            pp, c_fast, slot, b"wrong", proofs_fast[slot - 1]
                        )

    def test_collision_round_trip_on_fast_path(self, cvc):
        """Trapdoor collisions (the DO hot path) stay consistent."""
        c, aux = cvc.commit([b"a", b"b", None], randomiser=12345)
        aux2 = cvc.collide(c, 3, None, b"c", aux)
        proof = cvc.open(3, b"c", aux2)
        assert cvc.verify(c, 3, b"c", proof)
        with vc.fastpath(False):
            assert cvc.verify(c, 3, b"c", proof)

    def test_toggle_restores_previous_state(self):
        original = vc.fastpath_enabled()
        with vc.fastpath(not original):
            assert vc.fastpath_enabled() is (not original)
            with vc.fastpath(original):
                assert vc.fastpath_enabled() is original
            assert vc.fastpath_enabled() is (not original)
        assert vc.fastpath_enabled() is original
