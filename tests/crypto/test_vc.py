"""Unit tests for the vector commitment / chameleon vector commitment."""

import pytest

from repro.crypto import vc
from repro.errors import CommitmentError, ParameterError, TrapdoorRequiredError


@pytest.fixture(scope="module")
def pp_td():
    return vc.shared_test_params(3)


class TestEncodeMessage:
    def test_none_and_empty_encode_to_zero(self):
        assert vc.encode_message(None) == 0
        assert vc.encode_message(b"") == 0
        assert vc.encode_message(0) == 0

    def test_bytes_and_ints_fit_message_space(self):
        assert vc.encode_message(b"hello") < 1 << vc.MESSAGE_BITS
        assert vc.encode_message(12345) < 1 << vc.MESSAGE_BITS

    def test_type_separation(self):
        # The same raw content as bytes vs int encodes differently.
        assert vc.encode_message(b"\x01") != vc.encode_message(1)

    def test_rejects_unknown_types(self):
        with pytest.raises(CommitmentError):
            vc.encode_message(3.14)  # type: ignore[arg-type]


class TestKeygen:
    def test_rejects_zero_arity(self):
        with pytest.raises(ParameterError):
            vc.keygen(0, modulus_bits=512, seed=1)

    def test_deterministic_with_seed(self):
        pp1, _ = vc.keygen(2, modulus_bits=512, seed=42)
        pp2, _ = vc.keygen(2, modulus_bits=512, seed=42)
        assert pp1.modulus == pp2.modulus
        assert pp1.exponents == pp2.exponents

    def test_exponents_are_distinct(self, pp_td):
        pp, _ = pp_td
        assert len(set(pp.exponents)) == pp.arity + 1

    def test_pair_bases_symmetric(self, pp_td):
        pp, _ = pp_td
        assert pp.pair_base(0, 1) == pp.pair_base(1, 0)

    def test_pair_base_rejects_equal_indices(self, pp_td):
        pp, _ = pp_td
        with pytest.raises(CommitmentError):
            pp.pair_base(1, 1)

    def test_slot_range_enforced(self, pp_td):
        pp, _ = pp_td
        with pytest.raises(CommitmentError):
            pp.slot_exponent(0)
        with pytest.raises(CommitmentError):
            pp.slot_base(pp.arity + 1)

    def test_byte_size_positive(self, pp_td):
        pp, _ = pp_td
        assert pp.byte_size() > 0


class TestCommitOpenVerify:
    def test_roundtrip_all_slots(self, pp_td):
        pp, _ = pp_td
        messages = [b"alpha", b"beta", b"gamma"]
        c, aux = vc.commit(pp, messages, randomiser=777)
        for slot, message in enumerate(messages, start=1):
            proof = vc.open_slot(pp, slot, message, aux)
            assert vc.verify(pp, c, slot, message, proof)

    def test_empty_slots_open_to_none(self, pp_td):
        pp, _ = pp_td
        c, aux = vc.commit(pp, [b"only", None, None], randomiser=1)
        proof = vc.open_slot(pp, 2, None, aux)
        assert vc.verify(pp, c, 2, None, proof)

    def test_wrong_message_rejected(self, pp_td):
        pp, _ = pp_td
        c, aux = vc.commit(pp, [b"a", b"b", b"c"], randomiser=5)
        proof = vc.open_slot(pp, 1, b"a", aux)
        assert not vc.verify(pp, c, 1, b"evil", proof)

    def test_wrong_slot_rejected(self, pp_td):
        pp, _ = pp_td
        c, aux = vc.commit(pp, [b"a", b"b", b"c"], randomiser=5)
        proof = vc.open_slot(pp, 1, b"a", aux)
        assert not vc.verify(pp, c, 2, b"a", proof)

    def test_out_of_range_values_rejected(self, pp_td):
        pp, _ = pp_td
        c, aux = vc.commit(pp, [b"a", None, None], randomiser=5)
        proof = vc.open_slot(pp, 1, b"a", aux)
        assert not vc.verify(pp, c, 1, b"a", 0)
        assert not vc.verify(pp, c, 1, b"a", pp.modulus)
        assert not vc.verify(pp, 0, 1, b"a", proof)
        assert not vc.verify(pp, c, 99, b"a", proof)

    def test_open_rejects_inconsistent_aux(self, pp_td):
        pp, _ = pp_td
        _, aux = vc.commit(pp, [b"a", b"b", b"c"], randomiser=5)
        with pytest.raises(CommitmentError):
            vc.open_slot(pp, 1, b"not-a", aux)

    def test_commit_rejects_wrong_length(self, pp_td):
        pp, _ = pp_td
        with pytest.raises(CommitmentError):
            vc.commit(pp, [b"a"], randomiser=1)

    def test_randomiser_changes_commitment(self, pp_td):
        pp, _ = pp_td
        c1, _ = vc.commit(pp, [b"a", None, None], randomiser=1)
        c2, _ = vc.commit(pp, [b"a", None, None], randomiser=2)
        assert c1 != c2


class TestCollision:
    def test_collision_preserves_commitment(self, pp_td):
        pp, td = pp_td
        c, aux = vc.commit(pp, [None, None, None], randomiser=9)
        aux2 = vc.find_collision(pp, td, c, 1, None, b"new", aux)
        proof = vc.open_slot(pp, 1, b"new", aux2)
        assert vc.verify(pp, c, 1, b"new", proof)

    def test_other_slots_still_open(self, pp_td):
        pp, td = pp_td
        c, aux = vc.commit(pp, [b"keep", None, None], randomiser=9)
        aux2 = vc.find_collision(pp, td, c, 2, None, b"new", aux)
        proof = vc.open_slot(pp, 1, b"keep", aux2)
        assert vc.verify(pp, c, 1, b"keep", proof)

    def test_chained_collisions(self, pp_td):
        pp, td = pp_td
        c, aux = vc.commit(pp, [None, None, None], randomiser=3)
        aux = vc.find_collision(pp, td, c, 1, None, b"one", aux)
        aux = vc.find_collision(pp, td, c, 2, None, b"two", aux)
        aux = vc.find_collision(pp, td, c, 1, b"one", b"one'", aux)
        for slot, message in ((1, b"one'"), (2, b"two"), (3, None)):
            proof = vc.open_slot(pp, slot, message, aux)
            assert vc.verify(pp, c, slot, message, proof)

    def test_requires_trapdoor(self, pp_td):
        pp, _ = pp_td
        c, aux = vc.commit(pp, [None, None, None], randomiser=3)
        with pytest.raises(TrapdoorRequiredError):
            vc.find_collision(pp, None, c, 1, None, b"x", aux)

    def test_rejects_wrong_old_message(self, pp_td):
        pp, td = pp_td
        c, aux = vc.commit(pp, [b"actual", None, None], randomiser=3)
        with pytest.raises(CommitmentError):
            vc.find_collision(pp, td, c, 1, b"claimed", b"new", aux)

    def test_check_flag_detects_mismatched_commitment(self, pp_td):
        pp, td = pp_td
        _, aux = vc.commit(pp, [None, None, None], randomiser=3)
        c_other, _ = vc.commit(pp, [None, None, None], randomiser=4)
        with pytest.raises(CommitmentError):
            vc.find_collision(pp, td, c_other, 1, None, b"x", aux, check=True)

    def test_old_proof_invalid_after_collision(self, pp_td):
        pp, td = pp_td
        c, aux = vc.commit(pp, [b"old", None, None], randomiser=3)
        old_proof = vc.open_slot(pp, 1, b"old", aux)
        vc.find_collision(pp, td, c, 1, b"old", b"new", aux)
        # The stale proof still verifies for the OLD message (that is the
        # chameleon property: both openings exist), but never for new.
        assert vc.verify(pp, c, 1, b"old", old_proof)
        assert not vc.verify(pp, c, 1, b"new", old_proof)


class TestFacades:
    def test_plain_vector_commitment(self):
        facade = vc.VectorCommitment(2, modulus_bits=512, seed=8)
        c, aux = facade.commit([b"x", b"y"], randomiser=4)
        proof = facade.open(2, b"y", aux)
        assert facade.verify(c, 2, b"y", proof)

    def test_chameleon_public_view_lacks_trapdoor(self, cvc):
        public = cvc.public_view()
        assert cvc.has_trapdoor
        assert not public.has_trapdoor
        c, aux = public.commit_empty(randomiser=1)
        with pytest.raises(TrapdoorRequiredError):
            public.collide(c, 1, None, b"x", aux)

    def test_value_byte_size(self, cvc):
        assert cvc.value_byte_size() == (cvc.pp.modulus.bit_length() + 7) // 8

    def test_shared_params_cached(self):
        assert vc.shared_test_params(3) is vc.shared_test_params(3)
