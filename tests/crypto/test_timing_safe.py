"""Regression tests: digest equality on verify paths is constant-time.

``digests_equal`` resolves ``hmac.compare_digest`` through the module
attribute at call time, so monkeypatching ``hmac.compare_digest`` with a
counting spy observes every constant-time comparison made anywhere in
the verification stack — even though call sites import ``digests_equal``
by name.
"""

import hmac

import pytest

from repro.core.mbtree import MBTree
from repro.core.range_queries import range_query, verify_range
from repro.crypto.hashing import digests_equal, sha3
from repro.crypto.merkle import MerkleTree, verify_proof
from repro.crypto.signatures import generate_keypair


@pytest.fixture()
def compare_digest_spy(monkeypatch):
    calls = []
    real = hmac.compare_digest

    def spy(a, b):
        calls.append((bytes(a), bytes(b)))
        return real(a, b)

    monkeypatch.setattr(hmac, "compare_digest", spy)
    return calls


def test_digests_equal_wraps_compare_digest(compare_digest_spy):
    assert digests_equal(b"\x01" * 32, b"\x01" * 32)
    assert not digests_equal(b"\x01" * 32, b"\x02" * 32)
    assert len(compare_digest_spy) == 2


def test_merkle_verify_path_uses_compare_digest(compare_digest_spy):
    tree = MerkleTree([b"obj-%d" % i for i in range(8)])
    proof = tree.prove(3)
    tree.verify(b"obj-3", proof)
    assert verify_proof(tree.root, b"obj-3", proof)
    assert len(compare_digest_spy) == 2
    # Both comparisons ran over the actual root digest.
    assert all(tree.root in call for call in compare_digest_spy)


def test_range_verification_uses_compare_digest(compare_digest_spy):
    tree = MBTree(fanout=4)
    for key in range(0, 30, 3):
        tree.insert(key, sha3(b"v%d" % key))
    _, vo = range_query(tree, 6, 18)
    verify_range(tree.root_hash, vo)
    # One path check per result plus the two boundary entries.
    assert len(compare_digest_spy) >= len(vo.results) + 2


def test_rsa_fdh_verify_uses_compare_digest(compare_digest_spy):
    key = generate_keypair(bits=512, seed=7)
    signature = key.sign(b"authenticated digest")
    assert key.public_key.verify(b"authenticated digest", signature)
    assert not key.public_key.verify(b"tampered digest", signature)
    assert len(compare_digest_spy) == 2
