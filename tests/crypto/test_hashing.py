"""Unit tests for the hashing utilities."""

import pytest

from repro.crypto import hashing


class TestSha3:
    def test_digest_size(self):
        assert len(hashing.sha3(b"abc")) == hashing.DIGEST_SIZE

    def test_deterministic(self):
        assert hashing.sha3(b"x") == hashing.sha3(b"x")

    def test_different_inputs_differ(self):
        assert hashing.sha3(b"x") != hashing.sha3(b"y")


class TestHashConcat:
    def test_equals_manual_concatenation(self):
        assert hashing.hash_concat(b"ab", b"cd") == hashing.sha3(b"abcd")

    def test_empty_parts(self):
        assert hashing.hash_concat() == hashing.sha3(b"")


class TestTaggedHash:
    def test_tags_separate_domains(self):
        assert hashing.tagged_hash("leaf", b"m") != hashing.tagged_hash(
            "node", b"m"
        )

    def test_same_tag_same_payload(self):
        assert hashing.tagged_hash("t", b"a", b"b") == hashing.tagged_hash(
            "t", b"a", b"b"
        )

    def test_tag_not_confusable_with_payload(self):
        # tag digest is repeated twice, so a payload cannot emulate a tag.
        assert hashing.tagged_hash("t", b"") != hashing.sha3(b"t")


class TestHashInt:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hashing.hash_int(-1)

    def test_zero_and_one_differ(self):
        assert hashing.hash_int(0) != hashing.hash_int(1)

    def test_digest_roundtrip_to_int(self):
        digest = hashing.sha3(b"z")
        value = hashing.digest_to_int(digest)
        assert value.to_bytes(32, "big") == digest


class TestWordCount:
    @pytest.mark.parametrize(
        "length,expected",
        [(0, 0), (1, 1), (31, 1), (32, 1), (33, 2), (64, 2), (65, 3)],
    )
    def test_lengths(self, length, expected):
        assert hashing.word_count(length) == expected

    def test_accepts_bytes(self):
        assert hashing.word_count(b"a" * 40) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hashing.word_count(-1)


class TestEmptyDigest:
    def test_is_all_zero(self):
        assert hashing.EMPTY_DIGEST == b"\x00" * 32

    def test_combine_digests_matches_concat(self):
        a, b = hashing.sha3(b"a"), hashing.sha3(b"b")
        assert hashing.combine_digests([a, b]) == hashing.hash_concat(a, b)
