"""Property-based tests for the chameleon vector commitment.

Invariants:

* any committed vector opens correctly at every slot;
* an arbitrary sequence of trapdoor collisions never changes the
  commitment value, and the final vector opens correctly everywhere;
* verification never accepts a message other than the committed one.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto import vc

_PP, _TD = vc.shared_test_params(3)

messages_strategy = st.lists(
    st.one_of(st.none(), st.binary(min_size=1, max_size=16)),
    min_size=3,
    max_size=3,
)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(messages=messages_strategy, randomiser=st.integers(1, 2**64))
def test_commit_open_verify_roundtrip(messages, randomiser):
    c, aux = vc.commit(_PP, messages, randomiser)
    for slot, message in enumerate(messages, start=1):
        proof = vc.open_slot(_PP, slot, message, aux)
        assert vc.verify(_PP, c, slot, message, proof)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    updates=st.lists(
        st.tuples(st.integers(1, 3), st.binary(min_size=1, max_size=8)),
        min_size=1,
        max_size=6,
    ),
    randomiser=st.integers(1, 2**64),
)
def test_collision_sequences_preserve_commitment(updates, randomiser):
    c, aux = vc.commit(_PP, [None, None, None], randomiser)
    current: list = [None, None, None]
    for slot, new_message in updates:
        aux = vc.find_collision(
            _PP, _TD, c, slot, current[slot - 1], new_message, aux
        )
        current[slot - 1] = new_message
    for slot, message in enumerate(current, start=1):
        proof = vc.open_slot(_PP, slot, message, aux)
        assert vc.verify(_PP, c, slot, message, proof)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    committed=st.binary(min_size=1, max_size=16),
    forged=st.binary(min_size=1, max_size=16),
)
def test_verification_binds_message(committed, forged):
    c, aux = vc.commit(_PP, [committed, None, None], randomiser=99)
    proof = vc.open_slot(_PP, 1, committed, aux)
    if forged != committed:
        assert not vc.verify(_PP, c, 1, forged, proof)
