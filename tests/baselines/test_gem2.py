"""Unit tests for the GEM^2-tree baseline contract."""

import pytest

from repro.baselines.gem2 import Gem2Contract
from repro.core.objects import DataObject, ObjectMetadata
from repro.crypto.hashing import EMPTY_DIGEST
from repro.ethereum.chain import Blockchain
from repro.ethereum.gas import GasMeter


def drive(contract, n, keywords=("kw",)):
    chain = Blockchain()
    chain.deploy("gem2", contract)
    total = GasMeter()
    receipts = []
    for oid in range(1, n + 1):
        md = ObjectMetadata.of(DataObject(oid, keywords, b"c%d" % oid))
        receipt = chain.send_transaction(
            "do", "gem2", "register_and_insert",
            md.object_id, md.object_hash, md.keywords,
            payload=md.payload_bytes(),
        )
        assert receipt.status
        receipts.append(receipt)
        total.merge(receipt.gas)
    return chain, receipts, total


class TestGem2Contract:
    def test_merge_fires_at_threshold(self):
        contract = Gem2Contract(merge_threshold=4)
        chain, receipts, _ = drive(contract, 9)
        merge_events = [
            e
            for r in receipts
            for e in r.events
            if e.name == "Merged"
        ]
        assert len(merge_events) == 2  # at objects 4 and 8

    def test_materialised_root_after_merge(self):
        contract = Gem2Contract(merge_threshold=3)
        chain, _, _ = drive(contract, 3)
        assert chain.call_view("gem2", "view_root", "kw") != EMPTY_DIGEST

    def test_suppressed_root_updates_every_insert(self):
        contract = Gem2Contract(merge_threshold=100)
        chain, _, _ = drive(contract, 2)
        assert chain.call_view("gem2", "view_suppressed_root", "kw") != EMPTY_DIGEST
        assert chain.call_view("gem2", "view_root", "kw") == EMPTY_DIGEST

    def test_merge_rounds_cost_more(self):
        contract = Gem2Contract(merge_threshold=8)
        _, receipts, _ = drive(contract, 16)
        merge_gas = receipts[7].gas.total
        buffer_gas = receipts[5].gas.total
        assert merge_gas > buffer_gas


class TestFig6Ordering:
    def test_between_mi_and_smi(self):
        """GEM^2's average cost must land between MI and SMI (Fig. 6)."""
        from repro.bench.runner import measure_maintenance

        mi = measure_maintenance("mi", "dblp", 120)
        gem2 = measure_maintenance("gem2", "dblp", 120)
        smi = measure_maintenance("smi", "dblp", 120)
        assert smi.avg_gas < gem2.avg_gas < mi.avg_gas
