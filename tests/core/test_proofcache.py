"""Verification-cache behaviour: bounded LRU, metrics, and soundness.

The soundness property under test: a cache hit may only ever skip work
that already succeeded on the exact same proven tuple.  Tampering with
any component of an entry changes the key, misses the cache and fails
verification from scratch — a warm (or even poisoned) cache never turns
a failing proof into a passing one.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro import DataObject, HybridStorageSystem, obs
from repro.core.proofcache import VerificationCache
from repro.errors import VerificationError


class TestVerificationCacheUnit:
    def test_miss_then_hit(self):
        cache = VerificationCache(maxsize=4)
        assert not cache.seen("k")
        cache.add("k")
        assert cache.seen("k")
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = VerificationCache(maxsize=2)
        cache.add("a")
        cache.add("b")
        assert cache.seen("a")  # refreshes "a"; "b" is now oldest
        cache.add("c")
        assert len(cache) == 2
        assert cache.seen("a")
        assert not cache.seen("b")

    def test_disabled_cache_never_stores(self):
        cache = VerificationCache(maxsize=0)
        cache.add("k")
        assert not cache.seen("k")
        assert len(cache) == 0
        assert cache.hits == 0

    def test_clear_resets(self):
        cache = VerificationCache(maxsize=4)
        cache.add("k")
        cache.seen("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_pickle_roundtrip_for_process_pools(self):
        cache = VerificationCache(maxsize=4)
        cache.add("k")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.seen("k")
        clone.add("j")  # the restored lock must be functional

    def test_metrics_exported(self):
        cache = VerificationCache(maxsize=4, metric_prefix="vc.verify")
        with obs.collect() as col:
            cache.seen("k")
            cache.add("k")
            cache.seen("k")
        snap = col.metrics.snapshot()
        assert snap["vc.verify.cache_miss"] == 1
        assert snap["vc.verify.cache_hit"] == 1


@pytest.fixture(params=["ci", "ci*", "smi"], scope="module")
def warm_deployment(request):
    docs = [
        DataObject(1, ("covid-19", "vaccine"), b"a"),
        DataObject(2, ("covid-19",), b"b"),
        DataObject(3, ("covid-19", "vaccine", "symptom"), b"c"),
        DataObject(4, ("vaccine",), b"d"),
    ]
    system = HybridStorageSystem(
        scheme=request.param, cvc_modulus_bits=512, seed=11
    )
    system.add_objects(docs)
    return system


class TestProofSystemCaching:
    def test_repeat_verification_hits_cache(self, warm_deployment):
        system = warm_deployment
        ps = system.chain_proof_system(frozenset({"covid-19"}))
        entry = system._sp_view("covid-19").first_proven()
        assert entry is not None
        system.verify_cache.clear()
        ps.verify_entry("covid-19", entry)
        assert system.verify_cache.hits == 0
        ps.verify_entry("covid-19", entry)
        assert system.verify_cache.hits == 1

    def test_cache_shared_across_proof_systems(self, warm_deployment):
        system = warm_deployment
        entry = system._sp_view("vaccine").first_proven()
        system.verify_cache.clear()
        system.chain_proof_system(frozenset({"vaccine"})).verify_entry(
            "vaccine", entry
        )
        # A later query builds a fresh proof system over the same chain
        # state; the expensive work must not repeat.
        system.chain_proof_system(frozenset({"vaccine"})).verify_entry(
            "vaccine", entry
        )
        assert system.verify_cache.hits == 1

    def test_tampered_entry_misses_warm_cache_and_fails(self, warm_deployment):
        system = warm_deployment
        ps = system.chain_proof_system(frozenset({"covid-19"}))
        entry = system._sp_view("covid-19").first_proven()
        ps.verify_entry("covid-19", entry)  # warm the cache
        evil = dataclasses.replace(entry, object_hash=b"\x13" * 32)
        hits_before = system.verify_cache.hits
        with pytest.raises(VerificationError):
            ps.verify_entry("covid-19", evil)
        assert system.verify_cache.hits == hits_before

    def test_poisoned_cache_does_not_mask_other_proofs(self, warm_deployment):
        """Even a key injected behind the API's back only short-circuits
        that exact tuple: a forged entry still forms a different key and
        is rejected by real verification."""
        system = warm_deployment
        ps = system.chain_proof_system(frozenset({"covid-19"}))
        entry = system._sp_view("covid-19").first_proven()
        system.verify_cache.add(("bogus-poison-key",))
        forged = dataclasses.replace(entry, object_id=entry.object_id + 1000)
        with pytest.raises(VerificationError):
            ps.verify_entry("covid-19", forged)

    def test_failed_verifications_are_never_cached(self, warm_deployment):
        system = warm_deployment
        ps = system.chain_proof_system(frozenset({"covid-19"}))
        entry = system._sp_view("covid-19").first_proven()
        evil = dataclasses.replace(entry, object_hash=b"\x77" * 32)
        system.verify_cache.clear()
        for _ in range(2):
            with pytest.raises(VerificationError):
                ps.verify_entry("covid-19", evil)
        # Both attempts were misses: the failure never entered the cache.
        assert system.verify_cache.hits == 0
        assert system.verify_cache.misses == 2

    def test_disabled_cache_end_to_end(self):
        docs = [DataObject(1, ("alpha",), b"a"), DataObject(2, ("alpha",), b"b")]
        system = HybridStorageSystem(
            scheme="ci", cvc_modulus_bits=512, seed=11, verify_cache_size=0
        )
        system.add_objects(docs)
        assert system.verify_cache is None
        result = system.query("alpha")
        assert result.verified and result.result_ids == [1, 2]

    def test_query_counters_exported(self, warm_deployment):
        system = warm_deployment
        system.verify_cache.clear()
        prefix = system.verify_cache.metric_prefix
        with obs.collect() as col:
            system.query("covid-19 AND vaccine")
            system.query("covid-19 AND vaccine")
        snap = col.metrics.snapshot()
        assert snap.get(f"{prefix}.cache_miss", 0) > 0
        assert snap.get(f"{prefix}.cache_hit", 0) > 0
