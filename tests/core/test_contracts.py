"""Unit tests for the four ADS smart contracts."""

import pytest

from repro.core.chameleon_index import (
    ChameleonContract,
    CountUpdate,
    commitment_to_words,
    words_to_commitment,
)
from repro.core.chameleon_star import ChameleonStarContract
from repro.core.mbtree import MBTree
from repro.core.merkle_inv import MerkleInvContract
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.suppressed import (
    KeywordUpdate,
    SuppressedMerkleContract,
    build_updates,
    updates_payload,
)
from repro.crypto.bloom import BloomFilterChain
from repro.crypto.hashing import sha3
from repro.ethereum.chain import Blockchain


def make_chain(name, contract):
    chain = Blockchain()
    chain.deploy(name, contract)
    return chain


def metadata_for(oid, keywords):
    return ObjectMetadata.of(DataObject(oid, keywords, b"c%d" % oid))


class TestMerkleInvContract:
    def test_root_matches_reference_tree(self):
        chain = make_chain("mi", MerkleInvContract(fanout=4))
        reference = MBTree(fanout=4)
        for oid in range(1, 40):
            md = metadata_for(oid, ("kw",))
            receipt = chain.send_transaction(
                "do", "mi", "register_and_insert",
                md.object_id, md.object_hash, md.keywords,
                payload=md.payload_bytes(),
            )
            assert receipt.status
            reference.insert(md.object_id, md.object_hash)
            assert chain.call_view("mi", "view_root", "kw") == reference.root_hash

    def test_gas_grows_with_tree_size(self):
        chain = make_chain("mi", MerkleInvContract())
        early, late = 0, 0
        for oid in range(1, 101):
            md = metadata_for(oid, ("kw",))
            receipt = chain.send_transaction(
                "do", "mi", "register_and_insert",
                md.object_id, md.object_hash, md.keywords,
                payload=md.payload_bytes(),
            )
            if oid <= 10:
                early += receipt.gas.total
            if oid > 90:
                late += receipt.gas.total
        assert late > early  # logarithmic growth in n

    def test_object_hash_registered(self):
        chain = make_chain("mi", MerkleInvContract())
        md = metadata_for(1, ("a",))
        chain.send_transaction(
            "do", "mi", "register_and_insert",
            md.object_id, md.object_hash, md.keywords,
            payload=md.payload_bytes(),
        )
        assert chain.call_view("mi", "view_object_hash", 1) == md.object_hash

    def test_write_gas_dominates(self):
        chain = make_chain("mi", MerkleInvContract())
        md = metadata_for(1, ("a", "b"))
        receipt = chain.send_transaction(
            "do", "mi", "register_and_insert",
            md.object_id, md.object_hash, md.keywords,
            payload=md.payload_bytes(),
        )
        assert receipt.gas.write_gas > receipt.gas.other_gas


class TestSuppressedContract:
    def _insert(self, chain, trees, oid, keywords):
        md = metadata_for(oid, keywords)
        chain.send_transaction(
            "do", "smi", "register_object",
            md.object_id, md.object_hash, md.keywords,
            payload=md.payload_bytes(),
        )
        updates = build_updates(trees, md.object_id, md.keywords)
        receipt = chain.send_transaction(
            "sp", "smi", "insert",
            md.object_id, md.object_hash, updates,
            payload=updates_payload(updates),
        )
        for kw in md.keywords:
            trees.setdefault(kw, MBTree(4)).insert(md.object_id, md.object_hash)
        return receipt

    def test_root_tracks_sp_tree(self):
        chain = make_chain("smi", SuppressedMerkleContract(fanout=4))
        trees: dict[str, MBTree] = {}
        for oid in range(1, 60):
            receipt = self._insert(chain, trees, oid, ("kw",))
            assert receipt.status, receipt.error
            assert (
                chain.call_view("smi", "view_root", "kw")
                == trees["kw"].root_hash
            )

    def test_multiple_keywords_one_tx(self):
        chain = make_chain("smi", SuppressedMerkleContract(fanout=4))
        trees: dict[str, MBTree] = {}
        receipt = self._insert(chain, trees, 1, ("a", "b", "c"))
        assert receipt.status
        for kw in ("a", "b", "c"):
            assert chain.call_view("smi", "view_root", kw) == trees[kw].root_hash

    def test_unregistered_hash_rejected(self):
        chain = make_chain("smi", SuppressedMerkleContract(fanout=4))
        md = metadata_for(1, ("kw",))
        updates = build_updates({}, 1, ("kw",))
        receipt = chain.send_transaction(
            "sp", "smi", "insert", 1, md.object_hash, updates,
            payload=updates_payload(updates),
        )
        assert not receipt.status
        assert "IntegrityError" in receipt.error

    def test_tampered_spine_rejected(self):
        chain = make_chain("smi", SuppressedMerkleContract(fanout=4))
        trees: dict[str, MBTree] = {}
        self._insert(chain, trees, 1, ("kw",))
        # Attempt insert of object 2 with a forged spine.
        md = metadata_for(2, ("kw",))
        chain.send_transaction(
            "do", "smi", "register_object",
            md.object_id, md.object_hash, md.keywords,
            payload=md.payload_bytes(),
        )
        forged = KeywordUpdate(
            keyword="kw",
            spine_bytes=b"\x00\x01" + sha3(b"forged"),
        )
        receipt = chain.send_transaction(
            "sp", "smi", "insert", 2, md.object_hash, [forged],
            payload=updates_payload([forged]),
        )
        assert not receipt.status
        assert "IntegrityError" in receipt.error

    def test_storage_cost_constant_per_keyword(self):
        """The expensive ops must not grow with n (Table II)."""
        chain = make_chain("smi", SuppressedMerkleContract(fanout=4))
        trees: dict[str, MBTree] = {}
        writes = []
        for oid in range(1, 80):
            receipt = self._insert(chain, trees, oid, ("kw",))
            writes.append(receipt.gas.write_gas)
        # After the first insert (sstore), every root write is supdate.
        assert set(writes[1:]) == {5_000}


class TestChameleonContract:
    def test_setup_and_counts(self):
        chain = make_chain("ci", ChameleonContract(value_bytes=64))
        md = metadata_for(1, ("kw",))
        receipt = chain.send_transaction(
            "do", "ci", "insert_object",
            md.object_id, md.object_hash,
            [CountUpdate(keyword="kw", count=1)],
            [("kw", 0xABCDEF)],
            payload=b"x" * 50,
        )
        assert receipt.status
        commitment, count = chain.call_view("ci", "view_digest", "kw")
        assert commitment == 0xABCDEF
        assert count == 1

    def test_unknown_keyword_digest(self):
        chain = make_chain("ci", ChameleonContract())
        assert chain.call_view("ci", "view_digest", "nope") == (None, 0)

    def test_count_updates_are_supdates(self):
        chain = make_chain("ci", ChameleonContract(value_bytes=64))
        md = metadata_for(1, ("kw",))
        chain.send_transaction(
            "do", "ci", "insert_object", 1, md.object_hash,
            [CountUpdate("kw", 1)], [("kw", 5)], payload=b"",
        )
        md2 = metadata_for(2, ("kw",))
        receipt = chain.send_transaction(
            "do", "ci", "insert_object", 2, md2.object_hash,
            [CountUpdate("kw", 2)], [], payload=b"",
        )
        # Steady state: count update (supdate) + fresh objhash (sstore).
        assert receipt.gas.by_operation["supdate"] == 5_000
        assert receipt.gas.by_operation["sstore"] == 20_000

    def test_commitment_word_roundtrip(self):
        value = 0x1234567890ABCDEF << 256
        words = commitment_to_words(value, 64)
        assert len(words) == 2
        assert words_to_commitment(words) == value


class TestChameleonStarContract:
    def test_bloom_snapshot_matches_mirror(self):
        chain = make_chain("cis", ChameleonStarContract(
            value_bytes=64, bloom_capacity=3))
        mirror = BloomFilterChain(capacity=3)
        for oid in range(1, 11):
            md = metadata_for(oid, ("kw",))
            new = [("kw", 7)] if oid == 1 else []
            receipt = chain.send_transaction(
                "do", "cis", "insert_object", oid, md.object_hash,
                [CountUpdate("kw", oid)], new, payload=b"",
            )
            assert receipt.status
            mirror.add(oid)
        snapshot = chain.call_view("cis", "view_bloom_snapshot", "kw")
        assert snapshot == mirror.snapshot()
        rebuilt = BloomFilterChain.from_snapshot(snapshot, capacity=3)
        for oid in range(1, 11):
            assert not rebuilt.definitely_absent(oid)

    def test_bloom_params_view(self):
        chain = make_chain("cis", ChameleonStarContract(bloom_capacity=30))
        assert chain.call_view("cis", "view_bloom_params") == (256, 30)

    def test_filter_maintenance_cost_constant(self):
        chain = make_chain("cis", ChameleonStarContract(
            value_bytes=64, bloom_capacity=30))
        gas_per_insert = []
        for oid in range(1, 40):
            md = metadata_for(oid, ("kw",))
            new = [("kw", 7)] if oid == 1 else []
            receipt = chain.send_transaction(
                "do", "cis", "insert_object", oid, md.object_hash,
                [CountUpdate("kw", oid)], new, payload=b"",
            )
            gas_per_insert.append(receipt.gas.total)
        # Steady-state inserts (no new filter) cost the same regardless of n.
        steady = [
            g for i, g in enumerate(gas_per_insert[1:], start=2)
            if (i - 1) % 30 != 0
        ]
        assert max(steady) == min(steady)
