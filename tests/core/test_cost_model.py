"""The analytical cost model vs the simulator (Table II validation)."""

import pytest

from repro.bench.runner import measure_maintenance
from repro.core.cost_model import (
    ci_insert_cost,
    ci_star_insert_cost,
    mi_insert_cost,
    predict_insert_cost,
    predicted_ordering,
    smi_insert_cost,
)
from repro.ethereum.gas import GAS_SLOAD, GAS_SSTORE, GAS_SUPDATE


class TestFormulas:
    def test_mi_grows_logarithmically(self):
        assert mi_insert_cost(1000) > mi_insert_cost(100) > mi_insert_cost(10)
        # Quadrupling n adds one more F=4 level's worth of cost.
        delta = mi_insert_cost(4**5) - mi_insert_cost(4**4)
        per_level = mi_insert_cost(4**4) - mi_insert_cost(4**3)
        assert delta == pytest.approx(per_level, rel=1e-6)

    def test_smi_storage_component_constant(self):
        """SMI's expensive operations do not grow with n (Table II)."""
        storage_part = 2 * GAS_SLOAD + GAS_SUPDATE
        for n in (10, 1000, 100_000):
            growth = smi_insert_cost(n) - storage_part
            assert growth > 0
        # The storage component is identical at every size by definition.
        assert smi_insert_cost(10) < smi_insert_cost(100_000)

    def test_ci_constant(self):
        assert ci_insert_cost(10) == ci_insert_cost(10**6) == GAS_SUPDATE

    def test_ci_star_constant_and_b_sensitivity(self):
        assert ci_star_insert_cost(10) == ci_star_insert_cost(10**6)
        assert ci_star_insert_cost(bloom_capacity=20) > ci_star_insert_cost(
            bloom_capacity=50
        )
        # The amortised filter word: C_sstore / b.
        diff = ci_star_insert_cost(bloom_capacity=10) - (
            2 * GAS_SUPDATE + GAS_SLOAD
        )
        assert diff == pytest.approx(GAS_SSTORE / 10)

    def test_scheme_ordering_matches_paper(self):
        # At any realistic size: CI < CI* < SMI < MI per keyword.
        for n in (100, 10_000, 1_000_000):
            assert (
                ci_insert_cost(n)
                < ci_star_insert_cost(n)
                < smi_insert_cost(n)
                < mi_insert_cost(n)
            )

    def test_predicted_ordering(self):
        assert predicted_ordering(1000, 6.0) == ["ci", "ci*", "smi", "mi"]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            predict_insert_cost("nope", 10, 2.0)


class TestModelAgainstSimulator:
    """The model must predict the simulator within a small factor.

    The model is a *worst-case* bound with simplified constants, so we
    require (a) the predicted cost ordering to match the measured one
    and (b) every prediction to fall within 3x of the measurement.
    """

    @pytest.fixture(scope="class")
    def measured(self):
        size = 300
        return {
            scheme: measure_maintenance(scheme, "twitter", size)
            for scheme in ("mi", "smi", "ci", "ci*")
        }

    def test_within_factor_three(self, measured):
        # Typical per-keyword tree population for the Twitter workload:
        # keyword instances / vocabulary at the measured size.
        tree_size = 40
        keywords = 6.0
        for scheme, row in measured.items():
            predicted = predict_insert_cost(
                scheme, tree_size, keywords
            ).per_object_gas
            ratio = predicted / row.avg_gas
            assert 1 / 3 <= ratio <= 3, (scheme, predicted, row.avg_gas)

    def test_ordering_matches(self, measured):
        measured_order = [
            s for s, _ in sorted(measured.items(), key=lambda kv: kv[1].avg_gas)
        ]
        assert measured_order == predicted_ordering(40, 6.0)
