"""Unit tests for the Merkle B-tree."""

import pytest

from repro.core import mbtree
from repro.crypto.hashing import EMPTY_DIGEST, sha3
from repro.errors import IntegrityError, ReproError


def value_of(key: int) -> bytes:
    return sha3(b"value-%d" % key)


def build(keys, fanout=4):
    tree = mbtree.MBTree(fanout=fanout)
    for k in keys:
        tree.insert(k, value_of(k))
    return tree


class TestBasics:
    def test_empty_tree(self):
        tree = mbtree.MBTree()
        assert len(tree) == 0
        assert tree.root_hash == EMPTY_DIGEST
        assert tree.height == 0
        assert tree.first_entry() is None
        assert tree.last_entry() is None

    def test_fanout_validation(self):
        with pytest.raises(ReproError):
            mbtree.MBTree(fanout=2)

    def test_duplicate_key_rejected(self):
        tree = build([1, 2, 3])
        with pytest.raises(ReproError):
            tree.insert(2, value_of(2))

    def test_iteration_sorted(self):
        tree = build([5, 1, 9, 3, 7])
        assert [e.key for e in tree.iter_entries()] == [1, 3, 5, 7, 9]

    def test_height_grows_logarithmically(self):
        tree = build(range(100), fanout=4)
        assert 3 <= tree.height <= 5

    def test_max_key_tracked(self):
        tree = build([1, 5, 3])
        assert tree.max_key == 5


class TestProofs:
    def test_membership_proofs(self):
        tree = build(range(1, 50))
        for key in (1, 17, 33, 49):
            entry, path = tree.prove(key)
            assert entry.key == key
            assert path.compute_root(entry) == tree.root_hash

    def test_missing_key(self):
        tree = build([1, 2, 3])
        with pytest.raises(ReproError):
            tree.prove(99)

    def test_first_last_flags(self):
        tree = build(range(1, 30))
        _, first = tree.first_entry()
        _, last = tree.last_entry()
        assert first.is_leftmost() and not first.is_rightmost()
        assert last.is_rightmost() and not last.is_leftmost()

    def test_path_byte_size_positive(self):
        tree = build(range(1, 30))
        _, path = tree.prove(10)
        assert path.byte_size() > 0


class TestBoundaries:
    def test_exact_match(self):
        tree = build([2, 4, 6, 8])
        result = tree.boundaries(4)
        assert result.matched
        assert result.lower.key == 4
        assert result.upper.key == 6

    def test_between_keys(self):
        tree = build([2, 4, 6, 8])
        result = tree.boundaries(5)
        assert not result.matched
        assert result.lower.key == 4
        assert result.upper.key == 6

    def test_before_first(self):
        tree = build([2, 4])
        result = tree.boundaries(1)
        assert result.lower is None
        assert result.upper.key == 2
        assert result.upper_path.is_leftmost()

    def test_after_last(self):
        tree = build([2, 4])
        result = tree.boundaries(9)
        assert result.upper is None
        assert result.lower.key == 4
        assert result.lower_path.is_rightmost()

    def test_boundary_proofs_verify(self):
        tree = build(range(0, 100, 3))
        result = tree.boundaries(50)
        assert result.lower_path.compute_root(result.lower) == tree.root_hash
        assert result.upper_path.compute_root(result.upper) == tree.root_hash


class TestAdjacency:
    def test_consecutive_entries_adjacent(self):
        tree = build(range(1, 60))
        for key in range(1, 59):
            _, p1 = tree.prove(key)
            _, p2 = tree.prove(key + 1)
            assert mbtree.paths_adjacent(p1, p2)

    def test_non_consecutive_not_adjacent(self):
        tree = build(range(1, 60))
        _, p1 = tree.prove(10)
        _, p3 = tree.prove(12)
        assert not mbtree.paths_adjacent(p1, p3)

    def test_reversed_order_not_adjacent(self):
        tree = build(range(1, 60))
        _, p1 = tree.prove(10)
        _, p2 = tree.prove(11)
        assert not mbtree.paths_adjacent(p2, p1)

    def test_same_entry_not_adjacent(self):
        tree = build(range(1, 10))
        _, p = tree.prove(5)
        assert not mbtree.paths_adjacent(p, p)


class TestUpdateSpine:
    def test_spine_matches_real_insertions(self):
        tree = mbtree.MBTree(fanout=4)
        for key in range(1, 150):
            spine = tree.gen_update_proof(key)
            assert mbtree.reconstruct_root(spine) == tree.root_hash
            new_entry = mbtree.entry_digest(key, value_of(key))
            predicted = mbtree.compute_updated_root(spine, new_entry, 4)
            tree.insert(key, value_of(key))
            assert predicted == tree.root_hash

    def test_spine_rejects_non_monotonic(self):
        tree = build([5])
        with pytest.raises(ReproError):
            tree.gen_update_proof(3)

    def test_serialise_roundtrip(self):
        tree = build(range(1, 40))
        spine = tree.gen_update_proof(100)
        rebuilt = mbtree.UpdateSpine.deserialise(spine.serialise())
        assert rebuilt == spine

    def test_deserialise_rejects_truncation(self):
        tree = build(range(1, 40))
        raw = tree.gen_update_proof(100).serialise()
        with pytest.raises(IntegrityError):
            mbtree.UpdateSpine.deserialise(raw[:-1])

    def test_deserialise_rejects_trailing_bytes(self):
        tree = build(range(1, 40))
        raw = tree.gen_update_proof(100).serialise()
        with pytest.raises(IntegrityError):
            mbtree.UpdateSpine.deserialise(raw + b"x")

    def test_empty_tree_spine(self):
        tree = mbtree.MBTree()
        spine = tree.gen_update_proof(1)
        assert mbtree.reconstruct_root(spine) == EMPTY_DIGEST
        new_entry = mbtree.entry_digest(1, value_of(1))
        predicted = mbtree.compute_updated_root(spine, new_entry, 4)
        tree.insert(1, value_of(1))
        assert predicted == tree.root_hash

    def test_byte_size_grows_with_depth(self):
        small = build(range(1, 5)).gen_update_proof(100)
        large = build(range(1, 200)).gen_update_proof(500)
        assert large.byte_size() > small.byte_size()


class RecordingObserver:
    """Counts structural events for cost-model assertions."""

    def __init__(self):
        self.visited = 0
        self.inserted = 0
        self.rehashed = 0
        self.splits = 0
        self.roots = 0

    def node_visited(self, node):
        self.visited += 1

    def entry_inserted(self, leaf):
        self.inserted += 1

    def node_rehashed(self, node):
        self.rehashed += 1

    def node_split(self, original, sibling):
        self.splits += 1

    def root_replaced(self, root):
        self.roots += 1


class TestObserver:
    def test_events_fire(self):
        tree = mbtree.MBTree(fanout=4)
        observer = RecordingObserver()
        for key in range(1, 30):
            tree.insert(key, value_of(key), observer=observer)
        assert observer.inserted == 28  # first insert creates the root leaf
        assert observer.visited > 0
        assert observer.splits > 0
        assert observer.roots >= 2  # initial leaf + at least one root split

    def test_observer_optional(self):
        tree = mbtree.MBTree()
        tree.insert(1, value_of(1))
        assert len(tree) == 1
