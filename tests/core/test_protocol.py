"""Tests for the SP query protocol (bytes-only boundary)."""

import pytest

from repro import DataObject, HybridStorageSystem
from repro.core.query.codec import VOCodec
from repro.sp.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_QUERY,
    QueryRequest,
    QueryResponse,
    RemoteClient,
    StorageProviderServer,
    decode_object,
    encode_object,
)
from repro.errors import QueryError, ReproError, VerificationError


@pytest.fixture(params=["smi", "ci*"], scope="module")
def deployment(request):
    docs = [
        DataObject(1, ("covid-19", "sars-cov-2"), b"a"),
        DataObject(2, ("covid-19",), b"b"),
        DataObject(4, ("covid-19", "symptom", "vaccine"), b"c"),
        DataObject(5, ("covid-19", "vaccine"), b"d"),
        DataObject(6, ("symptom",), b"e"),
    ]
    system = HybridStorageSystem(
        scheme=request.param, cvc_modulus_bits=512, seed=8
    )
    system.add_objects(docs)
    server = StorageProviderServer(system)
    client = RemoteClient(transport=server.handle, system=system)
    return system, server, client


class TestObjectEncoding:
    def test_roundtrip(self):
        import io

        obj = DataObject(42, ("alpha", "beta"), b"\x00\x01payload")
        decoded = decode_object(io.BytesIO(encode_object(obj)))
        assert decoded == obj


class TestRequestResponseEncoding:
    def test_request_roundtrip(self):
        req = QueryRequest(query_text='a AND "b c"')
        assert QueryRequest.decode(req.encode()) == req

    def test_request_version_check(self):
        payload = bytes([99]) + b"\x00\x01a"
        with pytest.raises(ReproError):
            QueryRequest.decode(payload)

    def test_error_response_roundtrip(self):
        resp = QueryResponse(
            result_ids=[],
            objects=[],
            vo_bytes=b"",
            error="bad query",
            error_code=ERR_QUERY,
        )
        decoded = QueryResponse.decode(resp.encode())
        assert decoded.error == "bad query"
        assert decoded.error_code == ERR_QUERY

    def test_error_without_code_defaults_to_internal(self):
        resp = QueryResponse(
            result_ids=[], objects=[], vo_bytes=b"", error="oops"
        )
        assert QueryResponse.decode(resp.encode()).error_code == ERR_INTERNAL

    def test_truncated_response(self):
        resp = QueryResponse(result_ids=[1], objects=[], vo_bytes=b"xx")
        with pytest.raises(ReproError):
            QueryResponse.decode(resp.encode()[:-1])


class TestEndToEnd:
    def test_verified_remote_query(self, deployment):
        _, _, client = deployment
        result = client.query("covid-19 AND vaccine")
        assert result.result_ids == [4, 5]
        assert result.vo_sp_bytes > 0
        assert result.vo_chain_bytes > 0

    def test_disjunctive_remote_query(self, deployment):
        _, _, client = deployment
        result = client.query("(covid-19 AND symptom) OR sars-cov-2")
        assert result.result_ids == [1, 4]

    def test_malformed_query_surfaces_sp_error(self, deployment):
        _, _, client = deployment
        with pytest.raises(QueryError):
            client.query("covid-19 AND NOT vaccine")

    def test_unparsable_query_reports_query_code(self, deployment):
        _, server, _ = deployment
        raw = server.handle(QueryRequest("covid-19 AND NOT x").encode())
        response = QueryResponse.decode(raw)
        assert response.error is not None
        assert response.error_code == ERR_QUERY

    def test_garbage_request_reports_bad_request_code(self, deployment):
        _, server, _ = deployment
        response = QueryResponse.decode(server.handle(b"\x99junk"))
        assert response.error is not None
        assert response.error_code == ERR_BAD_REQUEST

    def test_tampering_transport_detected(self, deployment):
        system, server, _ = deployment

        def evil_transport(request_bytes: bytes) -> bytes:
            response = QueryResponse.decode(server.handle(request_bytes))
            # Drop a result and its object: the VO no longer matches.
            response.result_ids = response.result_ids[:-1]
            response.objects = response.objects[:-1]
            return response.encode()

        client = RemoteClient(transport=evil_transport, system=system)
        with pytest.raises(VerificationError):
            client.query("covid-19 AND vaccine")

    def test_vo_substitution_detected(self, deployment):
        system, server, _ = deployment
        codec = VOCodec(value_bytes=system.value_bytes)

        def swap_transport(request_bytes: bytes) -> bytes:
            # Answer the real query but attach the VO of a different one.
            other = QueryRequest(query_text="symptom").encode()
            real = QueryResponse.decode(server.handle(request_bytes))
            fake = QueryResponse.decode(server.handle(other))
            real.vo_bytes = fake.vo_bytes
            return real.encode()

        client = RemoteClient(transport=swap_transport, system=system)
        with pytest.raises(VerificationError):
            client.query("covid-19 AND vaccine")
