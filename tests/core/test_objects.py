"""Unit tests for data objects and meta-data."""

import pytest

from repro.core.objects import (
    DataObject,
    ObjectMetadata,
    ObjectStore,
    normalise_keyword,
)
from repro.errors import DatasetError


class TestNormalisation:
    def test_lowercase_and_strip(self):
        assert normalise_keyword("  COVID-19 ") == "covid-19"

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            normalise_keyword("   ")


class TestDataObject:
    def test_keywords_normalised_and_deduped(self):
        obj = DataObject(1, ("Vaccine", "vaccine", " COVID-19"), b"x")
        assert obj.keywords == ("vaccine", "covid-19")

    def test_rejects_negative_id(self):
        with pytest.raises(DatasetError):
            DataObject(-1, ("a",), b"x")

    def test_digest_binds_all_fields(self):
        base = DataObject(1, ("a", "b"), b"content")
        assert base.digest() != DataObject(2, ("a", "b"), b"content").digest()
        assert base.digest() != DataObject(1, ("a",), b"content").digest()
        assert base.digest() != DataObject(1, ("a", "b"), b"other").digest()

    def test_digest_deterministic(self):
        a = DataObject(1, ("a",), b"x")
        b = DataObject(1, ("a",), b"x")
        assert a.digest() == b.digest()

    def test_matches_conjunction(self):
        obj = DataObject(1, ("a", "b", "c"), b"x")
        assert obj.matches_conjunction(frozenset({"a", "c"}))
        assert not obj.matches_conjunction(frozenset({"a", "z"}))


class TestMetadata:
    def test_of_object(self):
        obj = DataObject(5, ("kw",), b"data")
        metadata = ObjectMetadata.of(obj)
        assert metadata.object_id == 5
        assert metadata.object_hash == obj.digest()

    def test_payload_bytes_shape(self):
        obj = DataObject(5, ("alpha", "beta"), b"data")
        payload = ObjectMetadata.of(obj).payload_bytes()
        # 8 id + 2 count + keywords + separator + 32 hash
        assert len(payload) == 8 + 2 + len(b"alpha\x00beta") + 32


class TestObjectStore:
    def test_put_get(self):
        store = ObjectStore()
        obj = DataObject(1, ("a",), b"x")
        store.put(obj)
        assert store.get(1) is obj
        assert 1 in store
        assert len(store) == 1

    def test_objects_immutable(self):
        store = ObjectStore()
        store.put(DataObject(1, ("a",), b"x"))
        with pytest.raises(DatasetError):
            store.put(DataObject(1, ("b",), b"y"))

    def test_missing_object(self):
        with pytest.raises(DatasetError):
            ObjectStore().get(42)

    def test_all_ids_sorted(self):
        store = ObjectStore()
        for oid in (3, 1, 2):
            store.put(DataObject(oid, ("a",), b"x"))
        assert store.all_ids() == [1, 2, 3]
