"""Tests for the ``repro`` operational CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture()
def registry(tmp_path):
    directory = str(tmp_path / "registry")
    assert main(["init", directory, "--scheme", "smi", "--seed", "3"]) == 0
    return directory


class TestInit:
    def test_creates_manifest(self, registry, tmp_path):
        manifest = json.loads(
            (tmp_path / "registry" / "manifest.json").read_text()
        )
        assert manifest["scheme"] == "smi"
        assert manifest["seed"] == 3


class TestAddAndQuery:
    def test_single_add_and_query(self, registry, capsys):
        assert (
            main(
                [
                    "add",
                    registry,
                    "--id",
                    "1",
                    "--keywords",
                    "covid-19,vaccine",
                    "--content",
                    "trial report",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["query", registry, "covid-19 AND vaccine"]) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "results:  [1]" in out

    def test_bulk_add_from_jsonl(self, registry, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        corpus.write_text(
            "\n".join(
                json.dumps(
                    {"id": i, "keywords": ["a", "b"], "content": f"doc{i}"}
                )
                for i in (1, 2, 3)
            )
        )
        assert main(["add", registry, "--from-jsonl", str(corpus)]) == 0
        capsys.readouterr()
        assert main(["query", registry, "a AND b", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result_ids"] == [1, 2, 3]
        assert payload["verified"]

    def test_add_requires_arguments(self, registry, capsys):
        assert main(["add", registry]) == 1
        assert "error" in capsys.readouterr().err

    def test_info(self, registry, capsys):
        main(
            [
                "add",
                registry,
                "--id",
                "1",
                "--keywords",
                "x",
                "--content",
                "c",
            ]
        )
        capsys.readouterr()
        assert main(["info", registry]) == 0
        out = capsys.readouterr().out
        assert "objects:       1" in out
        assert "chain linked:  True" in out

    def test_query_missing_directory(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nope"), "a"]) == 1


class TestCompact:
    @pytest.fixture()
    def disk_registry(self, tmp_path):
        directory = str(tmp_path / "disk-registry")
        assert (
            main(
                [
                    "init",
                    directory,
                    "--scheme",
                    "smi",
                    "--seed",
                    "3",
                    "--shards",
                    "2",
                    "--engine",
                    "disk",
                ]
            )
            == 0
        )
        for object_id in ("1", "2", "3"):
            assert (
                main(
                    [
                        "add",
                        directory,
                        "--id",
                        object_id,
                        "--keywords",
                        "a,b",
                        "--content",
                        f"doc{object_id}",
                    ]
                )
                == 0
            )
        return directory

    def test_compact_truncates_journals(self, disk_registry, capsys):
        capsys.readouterr()
        assert main(["compact", disk_registry, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["shards_compacted"] == 2
        assert report["journal_bytes_after"] < report["journal_bytes_before"]
        assert report["reclaimed"] > 0
        assert report["checkpoint_bytes"] > 0
        ckpts = sorted(
            p.name
            for p in (Path(disk_registry) / "shard-journals").glob("*.ckpt")
        )
        assert ckpts == ["shard-000.ckpt", "shard-001.ckpt"]

    def test_queries_verify_after_compaction(self, disk_registry, capsys):
        assert main(["compact", disk_registry]) == 0
        out = capsys.readouterr().out
        assert "compacted 2 shard journal(s)" in out
        assert main(["query", disk_registry, "a AND b", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified"]
        assert payload["result_ids"] == [1, 2, 3]

    def test_compact_is_idempotent(self, disk_registry, capsys):
        assert main(["compact", disk_registry]) == 0
        capsys.readouterr()
        assert main(["compact", disk_registry, "--json"]) == 0
        again = json.loads(capsys.readouterr().out)
        assert again["shards_compacted"] == 2
        assert again["reclaimed"] >= 0

    def test_memory_engine_has_nothing_to_compact(self, registry, capsys):
        assert main(["compact", registry]) == 0
        out = capsys.readouterr().out
        assert "nothing to compact" in out
        assert not (Path(registry) / "shard-journals").exists()


class TestObsSubcommands:
    def _add_one(self, registry):
        assert (
            main(
                [
                    "add",
                    registry,
                    "--id",
                    "1",
                    "--keywords",
                    "alpha,beta",
                    "--content",
                    "hello",
                ]
            )
            == 0
        )

    def test_bare_obs_form_still_traces(self, registry, capsys):
        self._add_one(registry)
        capsys.readouterr()
        assert main(["obs", registry, "alpha"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "metrics:" in out

    def test_explicit_trace_subcommand(self, registry, capsys, tmp_path):
        self._add_one(registry)
        capsys.readouterr()
        trace = tmp_path / "t.jsonl"
        assert (
            main(["obs", "trace", registry, "alpha", "--trace-out", str(trace)])
            == 0
        )
        assert trace.exists()
        assert "spans to" in capsys.readouterr().out

    def test_critpath_over_dumped_trace(self, registry, capsys, tmp_path):
        self._add_one(registry)
        trace = tmp_path / "t.jsonl"
        assert (
            main(["obs", "trace", registry, "alpha", "--trace-out", str(trace)])
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "critpath", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "per-phase self-time" in out
        assert "efficiency" in out

    def test_critpath_json_output(self, registry, capsys, tmp_path):
        self._add_one(registry)
        trace = tmp_path / "t.jsonl"
        assert (
            main(["obs", "trace", registry, "alpha", "--trace-out", str(trace)])
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "critpath", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["critical_path"]
        assert payload["phases"]
