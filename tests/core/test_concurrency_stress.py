"""Concurrency stress tests for the verification cache and obs metrics.

Many threads hammer :class:`VerificationCache` and the metrics
instruments with an aggressively lowered thread switch interval; the
assertions demand *exact* totals, so any lost update (a mutation outside
the lock) fails the test rather than showing up as flaky telemetry.
"""

import sys
import threading

import pytest

from repro.core.proofcache import VerificationCache
from repro.obs.metrics import MetricsRegistry

N_THREADS = 8


@pytest.fixture(autouse=True)
def aggressive_thread_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def hammer(worker):
    """Run ``worker(thread_index)`` on N_THREADS threads, gate-released."""
    barrier = threading.Barrier(N_THREADS)
    errors = []

    def run(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # surfaced via the assertion below
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class TestVerificationCacheStress:
    def test_hit_miss_counters_exact_under_contention(self):
        cache = VerificationCache(maxsize=128, metric_prefix="stress.cache")
        per_thread = 2000

        def worker(index):
            for i in range(per_thread):
                key = ("proof", i % 200)
                if not cache.seen(key):
                    cache.add(key)

        hammer(worker)
        assert cache.hits + cache.misses == N_THREADS * per_thread
        assert len(cache) <= 128

    def test_disabled_cache_still_counts_exactly(self):
        cache = VerificationCache(maxsize=0, metric_prefix="stress.off")
        per_thread = 2000

        def worker(index):
            for i in range(per_thread):
                cache.seen(("proof", i))

        hammer(worker)
        assert cache.misses == N_THREADS * per_thread
        assert cache.hits == 0
        assert len(cache) == 0

    def test_clear_during_contention_keeps_totals_consistent(self):
        cache = VerificationCache(maxsize=64, metric_prefix="stress.clear")
        per_thread = 1000

        def worker(index):
            for i in range(per_thread):
                key = ("proof", i % 50)
                if not cache.seen(key):
                    cache.add(key)
                if index == 0 and i % 250 == 0:
                    cache.clear()

        hammer(worker)
        # clear() resets the counters under the same lock as seen(), so
        # the final tallies are a consistent (if partial) count.
        assert 0 <= cache.hits + cache.misses <= N_THREADS * per_thread
        assert len(cache) <= 64


class TestMetricsStress:
    def test_counter_no_lost_increments(self):
        registry = MetricsRegistry()
        per_thread = 5000

        def worker(index):
            for _ in range(per_thread):
                registry.counter("stress.count").inc()

        hammer(worker)
        assert registry.counter("stress.count").value == N_THREADS * per_thread

    def test_histogram_exact_count_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("stress.hist")
        per_thread = 3000

        def worker(index):
            for i in range(per_thread):
                hist.observe(float(i % 7))

        hammer(worker)
        snap = hist.snapshot()
        assert snap["count"] == N_THREADS * per_thread
        # Integer-valued floats sum exactly below 2**53.
        assert snap["sum"] == N_THREADS * sum(i % 7 for i in range(per_thread))
        assert sum(n for _, n in snap["buckets"]) == N_THREADS * per_thread
        assert snap["min"] == 0.0
        assert snap["max"] == 6.0

    def test_concurrent_instrument_creation_agrees(self):
        registry = MetricsRegistry()
        per_thread = 500

        def worker(index):
            for i in range(per_thread):
                registry.counter(f"stress.created.{i % 20}").inc()

        hammer(worker)
        snap = registry.snapshot()
        total = sum(snap[f"stress.created.{i}"] for i in range(20))
        assert total == N_THREADS * per_thread

    def test_merge_preserves_totals(self):
        source = MetricsRegistry()
        target = MetricsRegistry()
        for i in range(100):
            source.counter("merged.count").inc()
            source.histogram("merged.hist").observe(float(i))
            target.histogram("merged.hist").observe(float(i))
        target.merge(source)
        assert target.counter("merged.count").value == 100
        snap = target.histogram("merged.hist").snapshot()
        assert snap["count"] == 200
        assert snap["sum"] == 2 * sum(range(100))
