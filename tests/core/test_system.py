"""End-to-end tests of the HybridStorageSystem facade, all four schemes."""

import pytest

from repro import DataObject, HybridStorageSystem, Scheme
from repro.errors import DatasetError, ReproError

SCHEMES = ("mi", "smi", "ci", "ci*")


def small_system(scheme, docs):
    system = HybridStorageSystem(
        scheme=scheme, cvc_modulus_bits=512, seed=5
    )
    system.add_objects(docs)
    return system


class TestSchemeParsing:
    def test_accepts_strings_and_enum(self):
        assert Scheme.parse("CI*") is Scheme.CHAMELEON_STAR
        assert Scheme.parse(Scheme.MERKLE_INV) is Scheme.MERKLE_INV

    def test_rejects_unknown(self):
        with pytest.raises(ReproError):
            Scheme.parse("nope")


@pytest.mark.parametrize("scheme", SCHEMES)
class TestEndToEnd:
    def test_queries_match_brute_force(self, scheme, small_docs):
        system = small_system(scheme, small_docs)
        by_id = {obj.object_id: obj for obj in small_docs}
        for text in (
            "covid-19 AND symptom",
            "covid-19 AND vaccine",
            "symptom",
            "(covid-19 AND vaccine) OR (sars-cov-2 AND vaccine)",
            "covid-19 AND missing-keyword",
            "sars-cov-2",
        ):
            result = system.query(text)
            expected = sorted(
                oid
                for oid, obj in by_id.items()
                if result.query.matches(obj.keyword_set())
            )
            assert result.result_ids == expected, (scheme, text)
            assert result.verified

    def test_result_objects_returned(self, scheme, small_docs):
        system = small_system(scheme, small_docs)
        result = system.query("covid-19 AND symptom")
        assert set(result.objects) >= set(result.result_ids)

    def test_vo_sizes_positive(self, scheme, small_docs):
        system = small_system(scheme, small_docs)
        result = system.query("covid-19 AND symptom")
        assert result.vo_sp_bytes > 0
        assert result.vo_chain_bytes > 0
        assert result.vo_total_bytes == result.vo_sp_bytes + result.vo_chain_bytes

    def test_maintenance_gas_recorded(self, scheme, small_docs):
        system = small_system(scheme, small_docs)
        assert system.maintenance_meter().total > 0
        assert system.average_gas_per_object() > 0
        assert len(system) == len(small_docs)

    def test_duplicate_object_rejected(self, scheme, small_docs):
        system = small_system(scheme, small_docs)
        with pytest.raises(DatasetError):
            system.add_object(DataObject(1, ("x",), b"dup"))

    def test_blocks_mined_and_linked(self, scheme, small_docs):
        system = small_system(scheme, small_docs)
        assert system.chain.height == len(small_docs)
        assert system.chain.verify_chain()


class TestGasOrdering:
    def test_paper_cost_ranking(self, small_docs):
        """MI must cost the most; CI the least (Table II / Fig. 10)."""
        totals = {}
        for scheme in SCHEMES:
            system = small_system(scheme, small_docs)
            totals[scheme] = system.maintenance_meter().total
        assert totals["mi"] > totals["smi"]
        assert totals["smi"] > totals["ci"]
        assert totals["ci"] < totals["ci*"]

    def test_ci_write_cost_constant(self, small_docs):
        """The Chameleon index's storage writes do not grow with n."""
        system = HybridStorageSystem(scheme="ci", cvc_modulus_bits=512, seed=5)
        writes = []
        for obj in small_docs:
            before = system.maintenance_meter().write_gas
            system.add_object(obj)
            writes.append(system.maintenance_meter().write_gas - before)
        # Steady state (after keyword setups): writes track keyword count
        # only, never tree size.
        per_kw = [
            w / len(obj.keywords)
            for w, obj in zip(writes, small_docs)
        ]
        assert max(per_kw[-3:]) <= max(per_kw[:3])


class TestMineEvery:
    def test_batched_mining(self, small_docs):
        system = HybridStorageSystem(scheme="smi", mine_every=4, seed=5)
        system.add_objects(small_docs)
        assert system.chain.height == len(small_docs) // 4
