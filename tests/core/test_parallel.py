"""Executor policy: resolution, equivalence with serial, error paths.

The contract of :mod:`repro.parallel` is that swapping ``serial`` for a
pool changes wall-clock time only: ordering, results and raised
exceptions are identical.  Process pools are exercised sparingly (one
smoke test) because of their per-worker start-up cost.
"""

from __future__ import annotations

import pytest

from repro import DataObject, HybridStorageSystem
from repro.errors import ParameterError, VerificationError
from repro.parallel import (
    EXECUTOR_KINDS,
    PoolExecutor,
    RemoteTraceback,
    SerialExecutor,
    make_executor,
)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


class TestMakeExecutor:
    def test_defaults_to_serial(self):
        assert make_executor(None).kind == "serial"
        assert make_executor("serial").kind == "serial"

    def test_passthrough_of_instances(self):
        ex = SerialExecutor()
        assert make_executor(ex) is ex

    def test_thread_pool(self):
        ex = make_executor("thread", workers=2)
        try:
            assert ex.kind == "thread"
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            ex.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError):
            make_executor("gpu")

    def test_kinds_registry(self):
        assert set(EXECUTOR_KINDS) == {"serial", "thread", "process"}


class TestExecutorSemantics:
    def test_order_preserved(self):
        ex = PoolExecutor("thread", workers=4)
        try:
            items = list(range(50))
            assert ex.map(_square, items) == [x * x for x in items]
        finally:
            ex.close()

    def test_first_error_propagates(self):
        for ex in (SerialExecutor(), PoolExecutor("thread", workers=2)):
            try:
                with pytest.raises(ValueError):
                    ex.map(_boom, [1, 2])
            finally:
                ex.close()

    def test_first_failing_item_in_input_order_wins(self):
        ex = PoolExecutor("thread", workers=4)
        try:
            with pytest.raises(ValueError, match="boom on 2"):
                ex.map(_boom_on_even, [1, 3, 2, 4, 6])
        finally:
            ex.close()


def _boom_on_even(x):
    if x % 2 == 0:
        raise ValueError(f"boom on {x}")
    return x


class TestRemoteTraceback:
    """Worker failures surface with their original type and traceback."""

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_worker_traceback_chained_as_cause(self, kind):
        ex = PoolExecutor(kind, workers=2)
        try:
            with pytest.raises(ValueError, match="boom on 1") as info:
                ex.map(_boom, [1, 2])
        finally:
            ex.close()
        cause = info.value.__cause__
        assert isinstance(cause, RemoteTraceback)
        # The worker-side frame (the raise inside _boom) is preserved.
        assert "_boom" in cause.formatted
        assert "boom on 1" in cause.formatted
        assert "(worker traceback)" in str(cause)


class TestChunksize:
    def test_chunked_process_map_matches_serial(self):
        ex = PoolExecutor("process", workers=2, chunksize=5)
        try:
            items = list(range(20))
            assert ex.map(_square, items) == [x * x for x in items]
            # A per-call override beats the executor default.
            assert ex.map(_square, items, chunksize=3) == [
                x * x for x in items
            ]
        finally:
            ex.close()

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ParameterError):
            PoolExecutor("thread", chunksize=0)
        ex = PoolExecutor("thread", workers=1)
        try:
            with pytest.raises(ParameterError):
                ex.map(_square, [1], chunksize=0)
        finally:
            ex.close()

    def test_make_executor_forwards_chunksize(self):
        ex = make_executor("thread", workers=1, chunksize=4)
        try:
            assert ex.chunksize == 4
        finally:
            ex.close()


DOCS = [
    DataObject(1, ("covid-19", "sars-cov-2"), b"a"),
    DataObject(2, ("covid-19",), b"b"),
    DataObject(4, ("covid-19", "symptom", "vaccine"), b"c"),
    DataObject(5, ("covid-19", "vaccine"), b"d"),
    DataObject(6, ("symptom",), b"e"),
    DataObject(7, ("sars-cov-2", "vaccine"), b"f"),
]

QUERIES = (
    "(covid-19 AND vaccine) OR (sars-cov-2 AND vaccine) OR symptom",
    "covid-19 AND vaccine",
    "symptom OR missing-keyword",
    "covid-19",
)


@pytest.mark.parametrize("scheme", ["smi", "ci", "ci*"])
class TestParallelQueryEquivalence:
    def test_thread_executor_matches_serial(self, scheme):
        serial = HybridStorageSystem(
            scheme=scheme, cvc_modulus_bits=512, seed=21
        )
        threaded = HybridStorageSystem(
            scheme=scheme,
            cvc_modulus_bits=512,
            seed=21,
            executor="thread",
            executor_workers=3,
        )
        try:
            serial.add_objects(DOCS)
            threaded.add_objects(DOCS)
            for text in QUERIES:
                a = serial.query(text)
                b = threaded.query(text)
                assert a.result_ids == b.result_ids, (scheme, text)
                assert b.verified
        finally:
            threaded.close()

    def test_tampering_detected_under_parallel_verification(self, scheme):
        system = HybridStorageSystem(
            scheme=scheme,
            cvc_modulus_bits=512,
            seed=21,
            executor="thread",
            executor_workers=3,
        )
        try:
            system.add_objects(DOCS)
            answer = system.process_query(
                system.query("covid-19 OR symptom").query
            )
            answer.result_ids.pop()  # SP silently drops a result
            from repro.core.query.parser import KeywordQuery
            from repro.core.query.verify import verify_query

            query = KeywordQuery.parse("covid-19 OR symptom")
            ps = system.chain_proof_system(query.all_keywords())
            with pytest.raises(VerificationError):
                verify_query(query, answer, ps, executor=system.executor)
        finally:
            system.close()


class TestProcessExecutorSmoke:
    def test_process_pool_round_trip(self):
        """One end-to-end query through a process pool: results, the
        verification verdict and picklability of every task payload."""
        system = HybridStorageSystem(
            scheme="ci",
            cvc_modulus_bits=512,
            seed=21,
            executor="process",
            executor_workers=2,
        )
        try:
            system.add_objects(DOCS[:5])
            result = system.query("(covid-19 AND vaccine) OR symptom")
            assert result.verified
            assert result.result_ids == [4, 5, 6]
        finally:
            system.close()


class TestReadWriteLock:
    def test_concurrent_readers(self):
        import threading

        from repro.parallel import ReadWriteLock

        lock = ReadWriteLock()
        inside = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # all 4 readers hold the lock together

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers(self):
        import threading

        from repro.parallel import ReadWriteLock

        lock = ReadWriteLock()
        order = []
        writer_in = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                order.append("write")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read():
                order.append("read")

        lock.acquire_read()
        w = threading.Thread(target=writer)
        w.start()
        # The writer queues behind the live reader; a new reader must
        # now wait for it (writer preference).
        r = threading.Thread(target=reader)
        r.start()
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert order == ["write", "read"]

    def test_reentrant_read(self):
        from repro.parallel import ReadWriteLock

        lock = ReadWriteLock()
        with lock.read():
            with lock.read():
                pass
        # Fully released: a writer can proceed inline.
        with lock.write():
            pass

    def test_write_then_nested_read(self):
        from repro.parallel import ReadWriteLock

        lock = ReadWriteLock()
        with lock.write():
            with lock.read():
                pass
            with lock.write():
                pass

    def test_upgrade_rejected(self):
        from repro.parallel import ReadWriteLock

        lock = ReadWriteLock()
        with lock.read():
            with pytest.raises(ParameterError):
                lock.acquire_write()

    def test_misuse_rejected(self):
        from repro.parallel import ReadWriteLock

        lock = ReadWriteLock()
        with pytest.raises(ParameterError):
            lock.release_read()
        with pytest.raises(ParameterError):
            lock.release_write()


# -- executor telemetry -------------------------------------------------------


def _traced_square(x):
    from repro import obs

    with obs.span("work.square", x=x):
        obs.inc("work.calls")
        obs.observe("work.input", float(x))
        return x * x


class TestExecutorTelemetry:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_labeled_task_spans_reach_the_parent_trace(self, kind):
        from repro import obs
        from repro.parallel import TASK_SPAN

        executor = PoolExecutor(kind, workers=2)
        try:
            with obs.collect() as col:
                with obs.span("dispatch") as root:
                    results = executor.map(
                        _traced_square,
                        [1, 2, 3],
                        labels=[{"shard": i} for i in range(3)],
                    )
        finally:
            executor.close()
        assert results == [1, 4, 9]
        tasks = sorted(
            (s for s in col.spans if s.name == TASK_SPAN),
            key=lambda s: s.attributes["task"],
        )
        assert [t.attributes["shard"] for t in tasks] == [0, 1, 2]
        assert all(t.parent_id == root.span_id for t in tasks)
        inner = [s for s in col.spans if s.name == "work.square"]
        assert len(inner) == 3
        task_ids = {t.span_id for t in tasks}
        assert all(s.parent_id in task_ids for s in inner)

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_metric_totals_exact_after_worker_merge(self, kind):
        from repro import obs

        executor = PoolExecutor(kind, workers=2)
        try:
            with obs.collect() as col:
                executor.map(_traced_square, list(range(1, 9)))
        finally:
            executor.close()
        snap = col.metrics.snapshot()
        assert snap["work.calls"] == 8
        assert snap["work.input"]["count"] == 8
        assert snap["work.input"]["sum"] == pytest.approx(36.0)
        assert snap["work.input"]["min"] == pytest.approx(1.0)
        assert snap["work.input"]["max"] == pytest.approx(8.0)

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_failing_task_still_records_a_complete_span(self, kind):
        from repro import obs
        from repro.parallel import TASK_SPAN

        executor = PoolExecutor(kind, workers=2)
        try:
            with obs.collect() as col:
                with pytest.raises(ValueError) as excinfo:
                    executor.map(_boom_on_even, [1, 2, 3])
        finally:
            executor.close()
        assert isinstance(excinfo.value.__cause__, RemoteTraceback)
        tasks = [s for s in col.spans if s.name == TASK_SPAN]
        assert tasks, "the failing task's span must still be recorded"
        assert all(t.end_s is not None for t in tasks)

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_no_collector_means_no_task_spans(self, kind):
        from repro import obs

        executor = PoolExecutor(kind, workers=2)
        try:
            results = executor.map(_square, [1, 2, 3])
        finally:
            executor.close()
        assert results == [1, 4, 9]
        assert obs.current() is None

    def test_labels_length_mismatch_raises(self):
        from repro import obs

        executor = PoolExecutor("thread", workers=1)
        try:
            with obs.collect():
                with pytest.raises(ParameterError):
                    executor.map(_square, [1, 2], labels=[{"shard": 0}])
        finally:
            executor.close()

    def test_serial_executor_ignores_labels(self):
        from repro import obs

        with obs.collect() as col:
            results = SerialExecutor().map(
                _traced_square, [2, 3], labels=[{"shard": 0}, {"shard": 1}]
            )
        assert results == [4, 9]
        assert [s.name for s in col.spans] == ["work.square", "work.square"]
