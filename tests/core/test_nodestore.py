"""Tests for the flat-buffer node store underneath the ADS trees.

Covers the storage invariants the trees rely on but never observe
directly: free-list reuse during split-heavy builds, blob round-trips
that preserve roots and proofs byte for byte, and a golden fixture
pinning the v1 record layout so a layout change cannot slip through as
a silent format break.
"""

from pathlib import Path

import pytest

from repro.core.mbtree import MBTree
from repro.core.nodestore import (
    HEADER_SIZE,
    KIND_CHAMELEON,
    KIND_MBTREE,
    NIL,
    NODESTORE_VERSION,
    ChameleonStore,
    NodeStore,
    mb_record_size,
)
from repro.crypto.hashing import sha3
from repro.errors import IntegrityError

FIXTURES = Path(__file__).parent.parent / "fixtures"

#: Root hash of the golden fixture tree (fanout 4, keys 1..10 with
#: ``sha3(b"obj-<key>")`` value hashes) — pinned, not recomputed.
GOLDEN_ROOT = "ec70cd6b32e190ab533d4b1cc94930e49e94964d6592734652183d7b2925bb8f"


def build_tree(n: int, fanout: int = 4) -> MBTree:
    tree = MBTree(fanout=fanout)
    for key in range(1, n + 1):
        tree.insert(key, sha3(b"obj-%d" % key))
    return tree


class TestNodeStoreAllocation:
    def test_alloc_grows_then_free_list_reuses_lifo(self):
        store = NodeStore(KIND_MBTREE, mb_record_size(4), param=4)
        a, b, c = store.alloc(), store.alloc(), store.alloc()
        assert (a, b, c) == (0, 1, 2)
        store.free(b)
        store.free(a)
        assert store.free_count() == 2
        assert store.alloc() == a  # last freed, first reused
        assert store.alloc() == b
        assert store.free_count() == 0
        assert store.allocated == 3

    def test_free_zeroes_the_record(self):
        store = NodeStore(KIND_MBTREE, mb_record_size(4), param=4)
        index = store.alloc()
        off = store.offset(index)
        store.blob[off + 10 : off + 20] = b"\xaa" * 10
        store.free(index)
        # Everything except the free-list next pointer must be zero.
        record = bytes(store.blob[off : off + store.record_size])
        assert record[8:] == bytes(store.record_size - 8)

    def test_split_heavy_build_leaves_no_dead_records(self):
        # Sequential inserts split the right spine over and over; each
        # split frees the original record and the next allocation must
        # reuse it, or the blob would grow with every rebuild.
        tree = build_tree(2000)
        store = tree.store.store
        view = tree.store

        def live(index: int) -> int:
            if view.is_leaf(index):
                return 1
            return 1 + sum(live(child) for child in view.children(index))

        assert store.free_count() == 0
        assert store.allocated == live(store.root)

    def test_header_round_trip(self):
        store = NodeStore(KIND_MBTREE, mb_record_size(4), param=4, param2=5)
        store.alloc()
        store.root = 0
        store.count = 1
        store.max_key = 99
        clone = NodeStore.from_blob(store.to_bytes())
        assert clone.kind == KIND_MBTREE
        assert clone.record_size == mb_record_size(4)
        assert (clone.param, clone.param2) == (4, 5)
        assert (clone.root, clone.count, clone.max_key) == (0, 1, 99)
        assert clone.allocated == 1

    def test_from_blob_rejects_bad_magic(self):
        store = NodeStore(KIND_MBTREE, mb_record_size(4), param=4)
        blob = bytearray(store.to_bytes())
        blob[:4] = b"NOPE"
        with pytest.raises(IntegrityError):
            NodeStore.from_blob(blob)


class TestMBTreeBlobRoundTrip:
    def test_root_and_proofs_identical(self):
        tree = build_tree(300)
        clone = MBTree.from_blob(tree.to_blob())
        assert clone.root_hash == tree.root_hash
        assert len(clone) == len(tree)
        assert list(clone.iter_entries()) == list(tree.iter_entries())
        for key in (1, 150, 300):
            entry_a, path_a = tree.prove(key)
            entry_b, path_b = clone.prove(key)
            assert entry_a == entry_b
            assert path_a == path_b
            assert path_b.compute_root(entry_b) == tree.root_hash

    def test_reserialisation_is_byte_identical(self):
        tree = build_tree(57)
        blob = tree.to_blob()
        assert MBTree.from_blob(blob).to_blob() == blob

    def test_empty_tree_round_trips(self):
        tree = MBTree(fanout=4)
        clone = MBTree.from_blob(tree.to_blob())
        assert len(clone) == 0
        assert clone.root_hash == tree.root_hash
        clone.insert(1, sha3(b"x"))
        assert len(clone) == 1

    def test_loaded_tree_keeps_growing_identically(self):
        grown = build_tree(120)
        half = build_tree(60)
        resumed = MBTree.from_blob(half.to_blob())
        for key in range(61, 121):
            resumed.insert(key, sha3(b"obj-%d" % key))
        assert resumed.root_hash == grown.root_hash
        assert resumed.to_blob() == grown.to_blob()


class TestChameleonBlobRoundTrip:
    def test_fields_survive(self):
        store = ChameleonStore.create(arity=2, value_bytes=16)
        store.root_commitment = 0xDEADBEEF
        for pos in range(1, 8):
            store.append(
                object_id=pos * 10,
                object_hash=sha3(b"o%d" % pos),
                commitment=1000 + pos,
                slot1_proof=2000 + pos,
                parent_link_proof=3000 + pos,
                child_index=(pos % 2) + 1,
            )
        clone = ChameleonStore.from_blob(store.to_blob())
        assert clone.arity == 2
        assert clone.value_bytes == 16
        assert clone.count == 7
        assert clone.root_commitment == 0xDEADBEEF
        for pos in range(1, 8):
            assert clone.object_id(pos) == pos * 10
            assert clone.object_hash(pos) == sha3(b"o%d" % pos)
            assert clone.commitment(pos) == 1000 + pos
            assert clone.slot1_proof(pos) == 2000 + pos
            assert clone.parent_link_proof(pos) == 3000 + pos
            assert clone.child_index(pos) == (pos % 2) + 1
        assert clone.rank_of(35) == 3

    def test_kind_confusion_rejected(self):
        mb = build_tree(5).to_blob()
        with pytest.raises(IntegrityError):
            ChameleonStore.from_blob(mb)


class TestGoldenV1Layout:
    """The committed fixture pins the v1 record layout byte for byte.

    If this test fails after a layout change, bump
    :data:`~repro.core.nodestore.NODESTORE_VERSION`, teach
    ``from_blob`` to read the old layout, and regenerate the fixture —
    do not just refresh the bytes.
    """

    fixture = FIXTURES / "nodestore_v1_mbtree.bin"

    def test_fixture_loads_with_pinned_root(self):
        tree = MBTree.from_blob(self.fixture.read_bytes())
        assert NODESTORE_VERSION == 1
        assert tree.root_hash.hex() == GOLDEN_ROOT
        assert len(tree) == 10
        assert [e.key for e in tree.iter_entries()] == list(range(1, 11))

    def test_fresh_build_reproduces_fixture_bytes(self):
        assert build_tree(10).to_blob() == self.fixture.read_bytes()

    def test_fixture_header_fields(self):
        blob = self.fixture.read_bytes()
        store = NodeStore.from_blob(blob)
        assert blob[:4] == b"RNS1"
        assert int.from_bytes(blob[4:6], "big") == NODESTORE_VERSION
        assert store.kind == KIND_MBTREE
        assert store.record_size == mb_record_size(4)
        assert store.root != NIL
        assert len(blob) == HEADER_SIZE + store.allocated * store.record_size
