"""Unit tests for the Chameleon index SP/DO/proof-system glue."""

import pytest

from repro.core.chameleon_index import (
    ChameleonDataOwner,
    ChameleonProofSystem,
    ChameleonSP,
    CountUpdate,
)
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.query.vo import ProvenEntry
from repro.crypto.bloom import BloomFilterChain
from repro.crypto.hashing import sha3
from repro.errors import ReproError, VerificationError


@pytest.fixture()
def owner(cvc, prf_key):
    return ChameleonDataOwner(cvc, prf_key, arity=2)


@pytest.fixture()
def sp(cvc):
    return ChameleonSP(pp=cvc.pp, arity=2)


def insert(owner, sp, oid, keywords):
    metadata = ObjectMetadata.of(DataObject(oid, keywords, b"c%d" % oid))
    proofs, counts, new_keywords = owner.insert(metadata)
    for kw, commitment in new_keywords.items():
        sp.register_keyword(kw, commitment)
    for kw, proof in proofs.items():
        sp.apply_insertion(kw, proof)
    return counts


class TestChameleonDataOwner:
    def test_requires_trapdoor(self, cvc, prf_key):
        with pytest.raises(ReproError):
            ChameleonDataOwner(cvc.public_view(), prf_key, arity=2)

    def test_insert_reports_new_keywords_once(self, owner, sp):
        insert(owner, sp, 1, ("x", "y"))
        metadata = ObjectMetadata.of(DataObject(2, ("x", "z"), b"c2"))
        _, counts, new_keywords = owner.insert(metadata)
        assert set(new_keywords) == {"z"}
        assert {c.keyword: c.count for c in counts} == {"x": 2, "z": 1}

    def test_counts_are_per_keyword(self, owner, sp):
        counts = insert(owner, sp, 1, ("x", "y"))
        assert all(c.count == 1 for c in counts)
        counts = insert(owner, sp, 2, ("x",))
        assert counts == [CountUpdate(keyword="x", count=2)]


class TestChameleonSPUnits:
    def test_unknown_keyword_view_is_empty(self, sp):
        view = sp.view("nothing")
        assert len(view) == 0
        assert view.first_proven() is None

    def test_apply_requires_registration(self, owner, sp):
        metadata = ObjectMetadata.of(DataObject(1, ("kw",), b"c"))
        proofs, _, _ = owner.insert(metadata)
        with pytest.raises(ReproError):
            sp.apply_insertion("kw", proofs["kw"])

    def test_view_boundaries(self, owner, sp):
        for oid in (2, 5, 9):
            insert(owner, sp, oid, ("kw",))
        lower, upper = sp.view("kw").boundaries_proven(6)
        assert lower.object_id == 5
        assert upper.object_id == 9

    def test_view_all_proven(self, owner, sp):
        for oid in (1, 2, 3):
            insert(owner, sp, oid, ("kw",))
        assert [e.object_id for e in sp.view("kw").all_proven()] == [1, 2, 3]


class TestChameleonProofSystemUnits:
    def make_ps(self, owner, sp, keywords, blooms=None):
        digests = {}
        for kw in keywords:
            tree = owner.trees.get(kw)
            if tree is None:
                digests[kw] = (None, 0)
            else:
                digests[kw] = (tree.root_commitment, tree.count)
        return ChameleonProofSystem(
            pp=owner.cvc.pp, digests=digests, arity=2, blooms=blooms,
            value_bytes=64,
        )

    def test_entry_verification(self, owner, sp):
        for oid in (1, 2, 3):
            insert(owner, sp, oid, ("kw",))
        ps = self.make_ps(owner, sp, ("kw",))
        entry = sp.view("kw").first_proven()
        ps.verify_entry("kw", entry)
        assert ps.is_first("kw", entry)
        assert not ps.is_last("kw", entry)

    def test_missing_commitment_rejected(self, owner, sp):
        insert(owner, sp, 1, ("kw",))
        ps = self.make_ps(owner, sp, ("ghost",))
        entry = sp.view("kw").first_proven()
        with pytest.raises(VerificationError):
            ps.verify_entry("ghost", entry)

    def test_bad_proof_type_rejected(self, owner, sp):
        insert(owner, sp, 1, ("kw",))
        ps = self.make_ps(owner, sp, ("kw",))
        entry = ProvenEntry(object_id=1, object_hash=sha3(b"x"), proof="junk")
        with pytest.raises(VerificationError):
            ps.verify_entry("kw", entry)

    def test_adjacency_by_position(self, owner, sp):
        for oid in (1, 4, 9):
            insert(owner, sp, oid, ("kw",))
        ps = self.make_ps(owner, sp, ("kw",))
        entries = sp.view("kw").all_proven()
        assert ps.adjacent("kw", entries[0], entries[1])
        assert not ps.adjacent("kw", entries[0], entries[2])

    def test_keyword_empty(self, owner, sp):
        ps = self.make_ps(owner, sp, ("ghost",))
        assert ps.keyword_empty("ghost")

    def test_bloom_absence_delegation(self, owner, sp):
        insert(owner, sp, 5, ("kw",))
        chain = BloomFilterChain(capacity=4)
        chain.add(5)
        ps = self.make_ps(owner, sp, ("kw",), blooms={"kw": chain})
        assert not ps.definitely_absent("kw", 5)
        assert ps.definitely_absent("kw", 1)  # below the first filter min
        ps_none = self.make_ps(owner, sp, ("kw",))
        assert not ps_none.definitely_absent("kw", 1)

    def test_chain_digest_bytes_counts_blooms(self, owner, sp):
        insert(owner, sp, 5, ("kw",))
        chain = BloomFilterChain(capacity=4)
        chain.add(5)
        bare = self.make_ps(owner, sp, ("kw",))
        with_bloom = self.make_ps(owner, sp, ("kw",), blooms={"kw": chain})
        assert with_bloom.chain_digest_bytes() > bare.chain_digest_bytes()
