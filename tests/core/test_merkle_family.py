"""Unit tests for the shared Merkle-family SP machinery."""

import pytest

from repro.core.merkle_family import MBTreeView, MerkleInvertedSP, MerkleProofSystem
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.query.vo import ProvenEntry
from repro.crypto.hashing import EMPTY_DIGEST, sha3
from repro.errors import VerificationError


@pytest.fixture()
def sp():
    index = MerkleInvertedSP()
    for oid, kws in ((1, ("a", "b")), (2, ("a",)), (3, ("a", "b")), (5, ("b",))):
        index.insert(ObjectMetadata.of(DataObject(oid, kws, b"c%d" % oid)))
    return index


class TestMerkleInvertedSP:
    def test_trees_created_lazily(self, sp):
        assert set(sp.trees) == {"a", "b"}
        assert len(sp.view("new-keyword")) == 0

    def test_root_hash_for_unknown_keyword(self, sp):
        assert sp.root_hash("ghost") == EMPTY_DIGEST

    def test_view_len(self, sp):
        assert len(sp.view("a")) == 3
        assert len(sp.view("b")) == 3


class TestMBTreeView:
    def test_first_proven(self, sp):
        first = sp.view("a").first_proven()
        assert first.object_id == 1
        assert first.proof.is_leftmost()

    def test_first_proven_empty(self, sp):
        assert sp.view("ghost").first_proven() is None

    def test_boundaries_proven(self, sp):
        lower, upper = sp.view("b").boundaries_proven(4)
        assert lower.object_id == 3
        assert upper.object_id == 5

    def test_all_proven_ordered(self, sp):
        entries = sp.view("a").all_proven()
        assert [e.object_id for e in entries] == [1, 2, 3]

    def test_never_claims_bloom_absence(self, sp):
        assert sp.view("a").definitely_absent(42) is False


class TestMerkleProofSystem:
    def make_ps(self, sp, keywords=("a", "b")):
        return MerkleProofSystem(
            roots={kw: sp.root_hash(kw) for kw in keywords}
        )

    def test_verify_entry_roundtrip(self, sp):
        ps = self.make_ps(sp)
        entry = sp.view("a").first_proven()
        ps.verify_entry("a", entry)

    def test_verify_entry_wrong_keyword(self, sp):
        ps = self.make_ps(sp)
        entry = sp.view("a").first_proven()
        with pytest.raises(VerificationError):
            ps.verify_entry("b", entry)

    def test_verify_entry_bad_proof_type(self, sp):
        ps = self.make_ps(sp)
        entry = ProvenEntry(object_id=1, object_hash=sha3(b"x"), proof=None)
        with pytest.raises(VerificationError):
            ps.verify_entry("a", entry)

    def test_first_last_adjacent(self, sp):
        ps = self.make_ps(sp)
        entries = sp.view("a").all_proven()
        assert ps.is_first("a", entries[0])
        assert ps.is_last("a", entries[-1])
        assert ps.adjacent("a", entries[0], entries[1])
        assert not ps.adjacent("a", entries[0], entries[2])

    def test_keyword_empty(self, sp):
        ps = MerkleProofSystem(roots={"ghost": EMPTY_DIGEST})
        assert ps.keyword_empty("ghost")
        assert ps.keyword_empty("never-mentioned")
        ps2 = self.make_ps(sp)
        assert not ps2.keyword_empty("a")

    def test_chain_digest_bytes(self, sp):
        ps = self.make_ps(sp)
        assert ps.chain_digest_bytes() == 64  # two 32-byte roots

    def test_definitely_absent_never(self, sp):
        ps = self.make_ps(sp)
        assert ps.definitely_absent("a", 999) is False
