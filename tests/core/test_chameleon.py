"""Unit tests for the Chameleon tree (DO and SP sides)."""

import pytest

from repro.core import chameleon
from repro.crypto.hashing import sha3
from repro.errors import ReproError, VerificationError


def value_of(key: int) -> bytes:
    return sha3(b"obj-%d" % key)


@pytest.fixture()
def trees(cvc, prf_key):
    do = chameleon.ChameleonTreeDO(cvc, prf_key, "kw", arity=2)
    sp = chameleon.ChameleonTreeSP(do.root_commitment, arity=2)
    return do, sp


def fill(do, sp, ids):
    for object_id in ids:
        sp.apply_insertion(do.insert(object_id, value_of(object_id)))


class TestPositions:
    @pytest.mark.parametrize(
        "pos,arity,expected",
        [(1, 2, (0, 1)), (2, 2, (0, 2)), (3, 2, (1, 1)), (6, 2, (2, 2)),
         (1, 3, (0, 1)), (4, 3, (1, 1)), (13, 3, (4, 1))],
    )
    def test_parent_position(self, pos, arity, expected):
        assert chameleon.parent_position(pos, arity) == expected

    def test_roundtrip(self):
        for arity in (2, 3, 4):
            for pos in range(1, 50):
                par, j = chameleon.parent_position(pos, arity)
                assert chameleon.child_position(par, j, arity) == pos

    def test_root_has_no_parent(self):
        with pytest.raises(ReproError):
            chameleon.parent_position(0, 2)

    def test_child_index_range(self):
        with pytest.raises(ReproError):
            chameleon.child_position(0, 3, 2)


class TestDataOwner:
    def test_requires_trapdoor(self, cvc, prf_key):
        with pytest.raises(ReproError):
            chameleon.ChameleonTreeDO(cvc.public_view(), prf_key, "kw", arity=2)

    def test_arity_must_match_cvc(self, cvc, prf_key):
        with pytest.raises(ReproError):
            chameleon.ChameleonTreeDO(cvc, prf_key, "kw", arity=3)

    def test_insertion_proof_fields(self, trees):
        do, _ = trees
        proof = do.insert(10, value_of(10))
        assert proof.position == 1
        assert proof.parent_position == 0
        assert proof.child_index == 1
        assert proof.object_id == 10

    def test_deterministic_commitments(self, cvc, prf_key):
        do1 = chameleon.ChameleonTreeDO(cvc, prf_key, "same", arity=2)
        do2 = chameleon.ChameleonTreeDO(cvc, prf_key, "same", arity=2)
        assert do1.root_commitment == do2.root_commitment

    def test_keyword_separates_commitments(self, cvc, prf_key):
        do1 = chameleon.ChameleonTreeDO(cvc, prf_key, "a", arity=2)
        do2 = chameleon.ChameleonTreeDO(cvc, prf_key, "b", arity=2)
        assert do1.root_commitment != do2.root_commitment


class TestStorageProvider:
    def test_insertions_must_be_ordered(self, trees):
        do, sp = trees
        p1 = do.insert(1, value_of(1))
        p2 = do.insert(2, value_of(2))
        with pytest.raises(ReproError):
            sp.apply_insertion(p2)  # position 2 before position 1
        sp.apply_insertion(p1)
        sp.apply_insertion(p2)
        assert sp.count == 2

    def test_ids_must_increase(self, trees):
        do, sp = trees
        sp.apply_insertion(do.insert(5, value_of(5)))
        proof = do.insert(3, value_of(3))
        with pytest.raises(ReproError):
            sp.apply_insertion(proof)

    def test_position_lookup(self, trees):
        do, sp = trees
        fill(do, sp, [2, 4, 9])
        assert sp.position_of(4) == 2
        assert sp.position_of(5) is None
        assert sp.id_at_position(3) == 9
        with pytest.raises(ReproError):
            sp.id_at_position(4)

    def test_boundaries(self, trees):
        do, sp = trees
        fill(do, sp, [2, 4, 9, 15])
        result = sp.boundaries(9)
        assert result.matched
        assert result.lower.key == 9
        assert result.upper.key == 15
        result = sp.boundaries(1)
        assert result.lower is None
        assert result.upper.key == 2
        result = sp.boundaries(99)
        assert result.upper is None
        assert result.lower.key == 15

    def test_all_entries_in_order(self, trees):
        do, sp = trees
        fill(do, sp, [1, 3, 5])
        entries = sp.all_entries()
        assert [e.key for e, _ in entries] == [1, 3, 5]


class TestMembershipVerification:
    def test_all_positions_verify(self, trees, cvc_params):
        pp, _ = cvc_params
        do, sp = trees
        ids = [1, 2, 4, 5, 7, 8, 10]
        fill(do, sp, ids)
        for pos in range(1, len(ids) + 1):
            entry = sp.entry_at(pos)
            proof = sp.prove_membership(pos)
            chameleon.verify_membership(
                pp, do.root_commitment, sp.count, 2,
                entry.key, entry.value_hash, proof,
            )

    def test_wrong_id_rejected(self, trees, cvc_params):
        pp, _ = cvc_params
        do, sp = trees
        fill(do, sp, [1, 2, 3])
        proof = sp.prove_membership(2)
        with pytest.raises(VerificationError):
            chameleon.verify_membership(
                pp, do.root_commitment, sp.count, 2, 99, value_of(2), proof
            )

    def test_wrong_hash_rejected(self, trees, cvc_params):
        pp, _ = cvc_params
        do, sp = trees
        fill(do, sp, [1, 2, 3])
        proof = sp.prove_membership(2)
        with pytest.raises(VerificationError):
            chameleon.verify_membership(
                pp, do.root_commitment, sp.count, 2, 2, value_of(99), proof
            )

    def test_stale_count_rejects_new_positions(self, trees, cvc_params):
        pp, _ = cvc_params
        do, sp = trees
        fill(do, sp, [1, 2, 3])
        entry = sp.entry_at(3)
        proof = sp.prove_membership(3)
        with pytest.raises(VerificationError):
            chameleon.verify_membership(
                pp, do.root_commitment, 2, 2, entry.key, entry.value_hash, proof
            )

    def test_claimed_position_must_match_links(self, trees, cvc_params):
        pp, _ = cvc_params
        do, sp = trees
        fill(do, sp, [1, 2, 3, 4, 5])
        proof = sp.prove_membership(3)
        forged = chameleon.MembershipProof(
            position=4,
            entry_commitment=proof.entry_commitment,
            slot1_proof=proof.slot1_proof,
            links=proof.links,
        )
        entry = sp.entry_at(3)
        with pytest.raises(VerificationError):
            chameleon.verify_membership(
                pp, do.root_commitment, sp.count, 2,
                entry.key, entry.value_hash, forged,
            )

    def test_wrong_root_rejected(self, trees, cvc_params, cvc, prf_key):
        pp, _ = cvc_params
        do, sp = trees
        fill(do, sp, [1, 2])
        other = chameleon.ChameleonTreeDO(cvc, prf_key, "other", arity=2)
        entry = sp.entry_at(1)
        proof = sp.prove_membership(1)
        with pytest.raises(VerificationError):
            chameleon.verify_membership(
                pp, other.root_commitment, sp.count, 2,
                entry.key, entry.value_hash, proof,
            )

    def test_empty_links_rejected(self, cvc_params):
        pp, _ = cvc_params
        proof = chameleon.MembershipProof(
            position=1, entry_commitment=1, slot1_proof=1, links=()
        )
        with pytest.raises(VerificationError):
            chameleon.verify_membership(pp, 123, 5, 2, 1, value_of(1), proof)

    def test_proof_byte_size(self, trees):
        do, sp = trees
        fill(do, sp, list(range(1, 16)))
        shallow = sp.prove_membership(1)
        deep = sp.prove_membership(15)
        assert deep.byte_size(64) > shallow.byte_size(64)
