"""Unit tests for the generalized-index Merkle multiproof (PR 9)."""

import dataclasses
import random

import pytest

from repro.core.mbtree import Entry, MBTree, MerklePath, paths_adjacent
from repro.core.multiproof import (
    SLOT_DESCEND,
    SLOT_HELPER,
    SLOT_LEAF,
    TreeMultiproof,
    build_multiproof,
    compute_multiproof_indices,
    leaf_gindex,
)
from repro.core.query.vo import ProvenEntry
from repro.errors import ReproError, VerificationError


def vhash(key: int) -> bytes:
    return bytes([key % 251]) * 32


def make_tree(size: int, fanout: int = 4) -> MBTree:
    tree = MBTree(fanout=fanout)
    for key in range(size):
        tree.insert(key, vhash(key))
    return tree


def proven(tree: MBTree, keys) -> list[tuple[ProvenEntry, MerklePath]]:
    out = []
    for key in keys:
        entry, path = tree.prove(key)
        out.append(
            (
                ProvenEntry(
                    object_id=entry.key,
                    object_hash=entry.value_hash,
                    proof=path,
                ),
                path,
            )
        )
    return out


class TestGeneralizedIndex:
    def test_binary_gindex_matches_classic_formula(self):
        # For width-2 trees, g = 2**depth + leaf_index.
        assert leaf_gindex((0, 0), (2, 2)) == 4
        assert leaf_gindex((0, 1), (2, 2)) == 5
        assert leaf_gindex((1, 1), (2, 2)) == 7

    def test_mixed_radix_is_injective_per_level(self):
        widths = (4, 3)
        seen = set()
        for a in range(4):
            for b in range(3):
                seen.add(leaf_gindex((a, b), widths))
        assert len(seen) == 12

    def test_root_has_gindex_one(self):
        assert leaf_gindex((), ()) == 1


class TestIndexPartition:
    def test_single_leaf_binary_tree(self):
        codes = compute_multiproof_indices([(0, 1)], [(2, 2)])
        assert codes[(0,)] == SLOT_DESCEND
        assert codes[(1,)] == SLOT_HELPER
        assert codes[(0, 0)] == SLOT_HELPER
        assert codes[(0, 1)] == SLOT_LEAF

    def test_shared_parent_is_descended_once(self):
        codes = compute_multiproof_indices(
            [(0, 0), (0, 1)], [(2, 2), (2, 2)]
        )
        assert codes[(0,)] == SLOT_DESCEND
        assert codes[(0, 0)] == SLOT_LEAF
        assert codes[(0, 1)] == SLOT_LEAF
        assert codes[(1,)] == SLOT_HELPER

    def test_depth_mismatch_rejected(self):
        with pytest.raises(ReproError):
            compute_multiproof_indices([(0,), (0, 1)], [(2,), (2, 2)])

    def test_conflicting_widths_rejected(self):
        with pytest.raises(ReproError):
            compute_multiproof_indices([(0, 0), (0, 1)], [(2, 2), (3, 2)])

    def test_empty_leaf_set_rejected(self):
        with pytest.raises(ReproError):
            compute_multiproof_indices([], [])


class TestBuildFoldParity:
    @pytest.mark.parametrize("fanout", [3, 4])
    @pytest.mark.parametrize("size", [5, 17, 60])
    def test_fold_root_matches_tree_root(self, fanout, size):
        tree = make_tree(size, fanout=fanout)
        rng = random.Random(size * fanout)
        keys = rng.sample(range(size), k=max(1, size // 3))
        multiproof, ordinals = build_multiproof(proven(tree, keys))
        assert multiproof.fold_root() == tree.root_hash
        assert len(multiproof.leaves) == len(set(keys))
        assert len(ordinals) == len(set(keys))

    def test_full_cover_has_no_helpers(self):
        tree = make_tree(16)
        multiproof, _ = build_multiproof(proven(tree, range(16)))
        assert multiproof.helpers == ()
        assert multiproof.fold_root() == tree.root_hash

    def test_duplicate_entries_deduplicate(self):
        tree = make_tree(12)
        pairs = proven(tree, [3, 7, 3, 7, 3])
        multiproof, ordinals = build_multiproof(pairs)
        assert len(multiproof.leaves) == 2
        assert multiproof.fold_root() == tree.root_hash
        assert sorted(ordinals.values()) == [0, 1]

    def test_leaf_ordinals_follow_key_order(self):
        tree = make_tree(30)
        multiproof, _ = build_multiproof(proven(tree, [25, 2, 14]))
        keys = [entry[0] for entry in multiproof.leaves]
        assert keys == sorted(keys) == [2, 14, 25]

    def test_multiproof_smaller_than_paths(self):
        tree = make_tree(60)
        pairs = proven(tree, range(0, 60, 2))
        multiproof, _ = build_multiproof(pairs)
        path_bytes = sum(40 + path.byte_size() for _, path in pairs)
        assert multiproof.byte_size() < path_bytes / 2

    def test_conflicting_sibling_digests_rejected(self):
        tree = make_tree(20)
        # Keys 0 and 1 share a leaf, so their leaf-level rows both claim
        # the digests of the leaf's remaining entries — tampering one
        # path's copy contradicts the other's.
        pairs = proven(tree, [0, 1])
        entry, path = pairs[1]
        step = path.steps[0]
        assert step.after, "keys 0 and 1 must share a non-full leaf"
        bad_step = dataclasses.replace(
            step, after=(bytes(32),) * len(step.after)
        )
        bad_path = dataclasses.replace(
            path, steps=(bad_step,) + path.steps[1:]
        )
        with pytest.raises(ReproError):
            build_multiproof([pairs[0], (entry, bad_path)])

    def test_mixed_depth_paths_rejected(self):
        shallow = make_tree(3)
        deep = make_tree(40)
        with pytest.raises(ReproError):
            build_multiproof(proven(shallow, [1]) + proven(deep, [1]))


class TestBoundaryPredicates:
    def test_leftmost_rightmost_match_paths(self):
        tree = make_tree(23)
        multiproof, ordinals = build_multiproof(
            proven(tree, [0, 5, 22])
        )
        by_key = {
            multiproof.leaves[ordinal][0]: ordinal
            for ordinal in range(len(multiproof.leaves))
        }
        assert multiproof.is_leftmost(by_key[0])
        assert not multiproof.is_leftmost(by_key[5])
        assert multiproof.is_rightmost(by_key[22])
        assert not multiproof.is_rightmost(by_key[5])

    @pytest.mark.parametrize("fanout", [3, 4])
    def test_adjacency_matches_paths_adjacent(self, fanout):
        size = 29
        tree = make_tree(size, fanout=fanout)
        multiproof, _ = build_multiproof(proven(tree, range(size)))
        paths = {key: tree.prove(key)[1] for key in range(size)}
        for left in range(size - 1):
            for right in (left + 1, min(left + 5, size - 1)):
                expected = paths_adjacent(paths[left], paths[right])
                assert multiproof.adjacent(left, right) == expected

    def test_adjacent_rejects_out_of_range_ordinals(self):
        tree = make_tree(9)
        multiproof, _ = build_multiproof(proven(tree, [1, 2]))
        with pytest.raises(VerificationError):
            multiproof.adjacent(0, 5)


class TestFailClosed:
    def build(self, size=21, keys=(2, 9, 17)):
        tree = make_tree(size)
        multiproof, _ = build_multiproof(proven(tree, keys))
        return tree, multiproof

    def test_dropped_helper_fails(self):
        tree, mp = self.build()
        bad = dataclasses.replace(mp, helpers=mp.helpers[:-1])
        with pytest.raises(VerificationError):
            bad.fold_root()

    def test_duplicated_helper_changes_root_or_fails(self):
        tree, mp = self.build()
        bad = dataclasses.replace(mp, helpers=mp.helpers + mp.helpers[:1])
        with pytest.raises(VerificationError):
            bad.fold_root()

    def test_reordered_helpers_change_the_root(self):
        tree, mp = self.build()
        assert len(mp.helpers) >= 2
        swapped = (mp.helpers[1], mp.helpers[0]) + mp.helpers[2:]
        if swapped == mp.helpers:
            pytest.skip("helpers coincide")
        bad = dataclasses.replace(mp, helpers=swapped)
        try:
            root = bad.fold_root()
        except VerificationError:
            return
        assert root != tree.root_hash

    def test_truncated_nodes_fail(self):
        _, mp = self.build()
        bad = dataclasses.replace(mp, nodes=mp.nodes[:-1])
        with pytest.raises(VerificationError):
            bad.fold_root()

    def test_tampered_leaf_hash_changes_the_root(self):
        tree, mp = self.build()
        key, _ = mp.leaves[0]
        bad_leaves = ((key, bytes(32)),) + mp.leaves[1:]
        bad = dataclasses.replace(mp, leaves=bad_leaves)
        assert bad.fold_root() != tree.root_hash

    def test_leaf_entry_bounds_checked(self):
        _, mp = self.build()
        with pytest.raises(VerificationError):
            mp.leaf_entry(len(mp.leaves))

    def test_cache_token_binds_structure(self):
        tree, mp = self.build()
        other_tree, other = self.build(size=22, keys=(2, 9, 17))
        assert mp.cache_token() != other.cache_token()
        bad = dataclasses.replace(
            mp, helpers=(bytes(32),) + mp.helpers[1:]
        )
        assert bad.cache_token() != mp.cache_token()


class TestStackMachineRobustness:
    def test_descend_at_leaf_level_fails(self):
        mp = TreeMultiproof(
            height=1,
            nodes=((SLOT_DESCEND,),),
            helpers=(),
            leaves=((1, vhash(1)),),
        )
        with pytest.raises(VerificationError):
            mp.fold_root()

    def test_unconsumed_leaves_fail(self):
        mp = TreeMultiproof(
            height=1,
            nodes=((SLOT_LEAF,),),
            helpers=(),
            leaves=((1, vhash(1)), (2, vhash(2))),
        )
        with pytest.raises(VerificationError):
            mp.fold_root()

    def test_all_helper_cover_fails(self):
        mp = TreeMultiproof(
            height=1,
            nodes=((SLOT_HELPER, SLOT_HELPER),),
            helpers=(bytes(32), bytes(32)),
            leaves=(),
        )
        with pytest.raises(VerificationError):
            mp.fold_root()
