"""The ``verified`` flag must be earned, never asserted.

Regression tests for a bug where ``HybridStorageSystem.query`` returned
``verified=True`` unconditionally.  Now the flag is derived from the
actual verification outcome, and — more importantly — any tampering
with SP-side state surfaces as :class:`VerificationError` raised out of
``query()`` itself, for every scheme.
"""

from __future__ import annotations

import pytest

from repro import DataObject, HybridStorageSystem
from repro.errors import VerificationError

SCHEMES = ("mi", "smi", "ci", "ci*")

DOCS = [
    DataObject(1, ("covid-19", "sars-cov-2"), b"a"),
    DataObject(2, ("covid-19",), b"b"),
    DataObject(4, ("covid-19", "symptom", "vaccine"), b"c"),
    DataObject(5, ("covid-19", "vaccine"), b"d"),
    DataObject(6, ("symptom",), b"e"),
]


def build(scheme):
    system = HybridStorageSystem(scheme=scheme, cvc_modulus_bits=512, seed=9)
    system.add_objects(DOCS)
    return system


@pytest.mark.parametrize("scheme", SCHEMES)
class TestVerifiedFlag:
    def test_honest_query_reports_verified(self, scheme):
        system = build(scheme)
        result = system.query("covid-19 AND vaccine")
        assert result.verified is True
        assert result.result_ids == [4, 5]

    def test_swapped_object_content_raises(self, scheme):
        """SP substitutes an object's bytes: the digest check must fire
        inside query(), not silently return verified=True."""
        system = build(scheme)
        honest = system.store.get(4)
        system.store._objects[4] = DataObject(
            4, honest.keywords, b"forged-content"
        )
        with pytest.raises(VerificationError):
            system.query("covid-19 AND symptom")

    def test_dropped_index_entry_raises(self, scheme):
        """SP rebuilds its index with one posting missing: completeness
        verification must reject the shrunken answer."""
        system = build(scheme)
        truncated = [obj for obj in DOCS if obj.object_id != 4]
        fresh = HybridStorageSystem(
            scheme=scheme, cvc_modulus_bits=512, seed=9
        )
        fresh.add_objects(truncated)
        # Splice the truncated SP index under the original chain state.
        system.sp_index = fresh.sp_index
        if hasattr(fresh, "_sp_blooms"):
            system._sp_blooms = fresh._sp_blooms
        system.store = fresh.store
        with pytest.raises(VerificationError):
            system.query("covid-19 AND symptom")
