"""Tests for batched DO insertions and the join-order knob."""

import pytest

from repro import DataObject, HybridStorageSystem
from repro.core.query.join import conjunctive_join
from repro.errors import QueryError, ReproError


def make_docs(n):
    return [
        DataObject(
            oid,
            tuple(
                kw
                for kw, mod in (("alpha", 2), ("beta", 3), ("gamma", 5))
                if oid % mod != 0
            )
            or ("alpha",),
            b"c%d" % oid,
        )
        for oid in range(1, n + 1)
    ]


class TestBatchedInsertion:
    def test_batched_matches_sequential_results(self):
        docs = make_docs(12)
        batched = HybridStorageSystem(scheme="ci", cvc_modulus_bits=512, seed=6)
        batched.add_objects_batched(docs)
        sequential = HybridStorageSystem(
            scheme="ci", cvc_modulus_bits=512, seed=6
        )
        sequential.add_objects(docs)
        for text in ("alpha AND beta", "gamma", "alpha AND gamma"):
            assert (
                batched.query(text).result_ids
                == sequential.query(text).result_ids
            )

    def test_batching_amortises_tx_base(self):
        docs = make_docs(12)
        batched = HybridStorageSystem(scheme="ci", cvc_modulus_bits=512, seed=6)
        batched.add_objects_batched(docs)
        sequential = HybridStorageSystem(
            scheme="ci", cvc_modulus_bits=512, seed=6
        )
        sequential.add_objects(docs)
        assert (
            batched.maintenance_meter().total
            < sequential.maintenance_meter().total
        )
        # The saving is one C_tx per object beyond the first.
        saving = (
            sequential.maintenance_meter().total
            - batched.maintenance_meter().total
        )
        assert saving == 21_000 * (len(docs) - 1)

    def test_batched_star_scheme(self):
        docs = make_docs(8)
        system = HybridStorageSystem(
            scheme="ci*", cvc_modulus_bits=512, seed=6, bloom_capacity=4
        )
        system.add_objects_batched(docs)
        result = system.query("alpha AND beta")
        assert result.verified

    def test_merkle_family_falls_back(self):
        docs = make_docs(5)
        system = HybridStorageSystem(scheme="smi", seed=6)
        report = system.add_objects_batched(docs)
        assert len(report.receipts) == 10  # register + insert per object
        assert system.query("alpha").verified

    def test_empty_batch_rejected(self):
        system = HybridStorageSystem(scheme="ci", cvc_modulus_bits=512, seed=6)
        with pytest.raises(ReproError):
            system.add_objects_batched([])


class TestJoinOrder:
    def test_given_order_still_correct(self):
        docs = make_docs(30)
        for order in ("size", "given"):
            system = HybridStorageSystem(scheme="smi", seed=6, join_order=order)
            system.add_objects(docs)
            result = system.query("alpha AND beta AND gamma")
            expected = sorted(
                d.object_id
                for d in docs
                if {"alpha", "beta", "gamma"} <= d.keyword_set()
            )
            assert result.result_ids == expected

    def test_unknown_order_rejected(self):
        system = HybridStorageSystem(scheme="smi", seed=6)
        system.add_objects(make_docs(4))
        views = [system._sp_view("alpha"), system._sp_view("beta")]
        with pytest.raises(QueryError):
            conjunctive_join(views, order="bogus")
