"""Unit tests for signed digest checkpoints."""

import pytest

from repro.core.checkpoints import Checkpoint, CheckpointIssuer, CheckpointVerifier
from repro.crypto.hashing import sha3
from repro.crypto.signatures import generate_keypair
from repro.errors import VerificationError


@pytest.fixture(scope="module")
def issuer():
    return CheckpointIssuer(generate_keypair(bits=512, seed=33))


@pytest.fixture()
def verifier(issuer):
    return CheckpointVerifier(issuer.public_key)


def digests(**kwargs):
    return {k: sha3(v.encode()) for k, v in kwargs.items()}


class TestIssueAccept:
    def test_roundtrip(self, issuer, verifier):
        cp = issuer.issue(10, digests(covid="root1", vaccine="root2"))
        verifier.accept(cp)
        assert verifier.latest is cp
        assert verifier.digest_for("covid") == sha3(b"root1")

    def test_bad_signature_rejected(self, issuer, verifier):
        cp = issuer.issue(10, digests(covid="root1"))
        forged = Checkpoint(
            height=cp.height, digests=cp.digests, signature=cp.signature + 1
        )
        with pytest.raises(VerificationError):
            verifier.accept(forged)

    def test_tampered_digest_rejected(self, issuer, verifier):
        cp = issuer.issue(10, digests(covid="root1"))
        forged = Checkpoint(
            height=cp.height,
            digests={"covid": sha3(b"evil")},
            signature=cp.signature,
        )
        with pytest.raises(VerificationError):
            verifier.accept(forged)

    def test_tampered_height_rejected(self, issuer, verifier):
        cp = issuer.issue(10, digests(covid="root1"))
        forged = Checkpoint(
            height=11, digests=cp.digests, signature=cp.signature
        )
        with pytest.raises(VerificationError):
            verifier.accept(forged)

    def test_rollback_rejected(self, issuer, verifier):
        verifier.accept(issuer.issue(20, digests(a="x")))
        old = issuer.issue(10, digests(a="y"))
        with pytest.raises(VerificationError):
            verifier.accept(old)

    def test_wrong_issuer_rejected(self, verifier):
        other = CheckpointIssuer(generate_keypair(bits=512, seed=34))
        with pytest.raises(VerificationError):
            verifier.accept(other.issue(5, digests(a="x")))


class TestQueries:
    def test_digest_for_unknown_keyword(self, issuer, verifier):
        verifier.accept(issuer.issue(5, digests(a="x")))
        with pytest.raises(VerificationError):
            verifier.digest_for("unknown")

    def test_no_checkpoint_yet(self, issuer):
        fresh = CheckpointVerifier(issuer.public_key)
        with pytest.raises(VerificationError):
            fresh.digest_for("a")

    def test_byte_size(self, issuer):
        cp = issuer.issue(5, digests(a="x", b="y"))
        assert cp.byte_size() > 64


class TestOfflineVerificationFlow:
    def test_checkpointed_merkle_verification(self, issuer):
        """Verify a query answer offline against a signed checkpoint."""
        from repro import DataObject, HybridStorageSystem, KeywordQuery
        from repro.core.merkle_family import MerkleProofSystem
        from repro.core.query.verify import verify_query

        system = HybridStorageSystem(scheme="smi", seed=4)
        for oid, kws in ((1, ("a", "b")), (2, ("a",)), (3, ("b",))):
            system.add_object(DataObject(oid, kws, b"c%d" % oid))
        snapshot = {
            kw: system.chain.call_view("ads", "view_root", kw)
            for kw in ("a", "b")
        }
        checkpoint = issuer.issue(system.chain.height, snapshot)

        # The offline client verifies with checkpoint digests only.
        offline = CheckpointVerifier(issuer.public_key)
        offline.accept(checkpoint)
        query = KeywordQuery.parse("a AND b")
        answer = system.process_query(query)
        ps = MerkleProofSystem(
            roots={kw: offline.digest_for(kw) for kw in ("a", "b")}
        )
        verified = verify_query(query, answer, ps)
        assert verified.ids == {1}
