"""Unit and attack tests for suppressed authenticated range queries."""

import dataclasses

import pytest

from repro.core.mbtree import MBTree
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.range_queries import (
    AuthenticatedRangeIndex,
    RangeVO,
    range_query,
    verify_range,
)
from repro.crypto.hashing import EMPTY_DIGEST, sha3
from repro.errors import QueryError, VerificationError


def value_of(key: int) -> bytes:
    return sha3(b"v%d" % key)


@pytest.fixture()
def tree():
    t = MBTree(fanout=4)
    for key in range(0, 100, 3):  # 0, 3, 6, ..., 99
        t.insert(key, value_of(key))
    return t


class TestRangeQuery:
    def test_inner_range(self, tree):
        entries, vo = range_query(tree, 10, 20)
        assert [e.key for e in entries] == [12, 15, 18]
        assert vo.left_boundary.entry.key == 9
        assert vo.right_boundary.entry.key == 21
        assert verify_range(tree.root_hash, vo) == entries

    def test_range_touching_edges(self, tree):
        entries, vo = range_query(tree, 0, 99)
        assert len(entries) == 34
        assert vo.left_boundary is None
        assert vo.right_boundary is None
        verify_range(tree.root_hash, vo)

    def test_empty_range_between_keys(self, tree):
        entries, vo = range_query(tree, 13, 14)
        assert entries == []
        assert vo.left_boundary.entry.key == 12
        assert vo.right_boundary.entry.key == 15
        assert verify_range(tree.root_hash, vo) == []

    def test_range_before_all(self, tree):
        entries, vo = range_query(tree, -10, -1)
        assert entries == []
        assert vo.left_boundary is None
        assert vo.right_boundary.entry.key == 0
        verify_range(tree.root_hash, vo)

    def test_range_after_all(self, tree):
        entries, vo = range_query(tree, 500, 600)
        assert entries == []
        assert vo.right_boundary is None
        assert vo.left_boundary.entry.key == 99
        verify_range(tree.root_hash, vo)

    def test_inverted_range_rejected(self, tree):
        with pytest.raises(QueryError):
            range_query(tree, 5, 4)

    def test_empty_tree(self):
        empty = MBTree(fanout=4)
        entries, vo = range_query(empty, 1, 10)
        assert entries == []
        assert verify_range(EMPTY_DIGEST, vo) == []

    def test_vo_byte_size(self, tree):
        _, small = range_query(tree, 10, 12)
        _, large = range_query(tree, 0, 60)
        assert large.byte_size() > small.byte_size()


class TestRangeAttacks:
    def test_dropped_middle_result(self, tree):
        _, vo = range_query(tree, 10, 30)
        forged = dataclasses.replace(
            vo, results=vo.results[:2] + vo.results[3:]
        )
        with pytest.raises(VerificationError):
            verify_range(tree.root_hash, forged)

    def test_dropped_first_result(self, tree):
        _, vo = range_query(tree, 10, 30)
        forged = dataclasses.replace(vo, results=vo.results[1:])
        with pytest.raises(VerificationError):
            verify_range(tree.root_hash, forged)

    def test_dropped_last_result(self, tree):
        _, vo = range_query(tree, 10, 30)
        forged = dataclasses.replace(vo, results=vo.results[:-1])
        with pytest.raises(VerificationError):
            verify_range(tree.root_hash, forged)

    def test_missing_boundary(self, tree):
        _, vo = range_query(tree, 10, 30)
        forged = dataclasses.replace(vo, left_boundary=None)
        with pytest.raises(VerificationError):
            verify_range(tree.root_hash, forged)

    def test_false_empty_claim(self, tree):
        # Claim [10, 30] is empty using the boundaries of a truly empty
        # sub-range: adjacency must fail.
        _, narrow = range_query(tree, 13, 14)
        forged = RangeVO(
            lo=10,
            hi=30,
            results=(),
            left_boundary=narrow.left_boundary,
            right_boundary=narrow.right_boundary,
        )
        # Boundaries 12/15 are adjacent but do not bracket [10, 30]:
        # 12 >= 10 violates "left boundary below the range".
        with pytest.raises(VerificationError):
            verify_range(tree.root_hash, forged)

    def test_tampered_value_hash(self, tree):
        _, vo = range_query(tree, 10, 20)
        entry = vo.results[0]
        forged_entry = dataclasses.replace(
            entry,
            entry=dataclasses.replace(entry.entry, value_hash=sha3(b"evil")),
        )
        forged = dataclasses.replace(
            vo, results=(forged_entry,) + vo.results[1:]
        )
        with pytest.raises(VerificationError):
            verify_range(tree.root_hash, forged)

    def test_stale_root(self, tree):
        _, vo = range_query(tree, 10, 20)
        tree.insert(1000, value_of(1000))
        with pytest.raises(VerificationError):
            verify_range(tree.root_hash, vo)


class TestAuthenticatedRangeIndex:
    def test_end_to_end(self):
        index = AuthenticatedRangeIndex(fanout=4)
        for oid in range(1, 31):
            metadata = ObjectMetadata.of(
                DataObject(oid, ("tag",), b"payload-%d" % oid)
            )
            receipts = index.insert(metadata)
            assert all(r.status for r in receipts)
        entries, vo = index.query(10, 20)
        assert [e.key for e in entries] == list(range(10, 21))
        verified = index.verify(vo)
        assert [e.key for e in verified] == list(range(10, 21))

    def test_contract_root_matches_sp(self):
        index = AuthenticatedRangeIndex(fanout=4)
        for oid in range(1, 12):
            index.insert(
                ObjectMetadata.of(DataObject(oid, ("t",), b"x%d" % oid))
            )
        from repro.core.range_queries import PRIMARY_INDEX_KEY

        on_chain = index.chain.call_view(
            "range-index", "view_root", PRIMARY_INDEX_KEY
        )
        assert on_chain == index.tree.root_hash


class TestUnorderedRangeIndex:
    def test_shuffled_stream_end_to_end(self):
        import random

        index = AuthenticatedRangeIndex(fanout=4, ordered=False)
        ids = list(range(1, 31))
        random.Random(13).shuffle(ids)
        for oid in ids:
            metadata = ObjectMetadata.of(
                DataObject(oid, ("tag",), b"payload-%d" % oid)
            )
            receipts = index.insert(metadata)
            assert all(r.status for r in receipts), [r.error for r in receipts]
        entries, vo = index.query(10, 20)
        assert [e.key for e in entries] == list(range(10, 21))
        verified = index.verify(vo)
        assert [e.key for e in verified] == list(range(10, 21))

    def test_ordered_index_rejects_out_of_order(self):
        from repro.errors import ReproError

        index = AuthenticatedRangeIndex(fanout=4, ordered=True)
        index.insert(ObjectMetadata.of(DataObject(10, ("t",), b"a")))
        # The right-most-spine UpdVO cannot describe an out-of-order
        # insertion; the SP-side generator refuses before any tx is sent.
        with pytest.raises(ReproError):
            index.insert(ObjectMetadata.of(DataObject(5, ("t",), b"b")))
        assert len(index.tree) == 1
