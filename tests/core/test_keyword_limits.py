"""Keyword byte-length limits across ingestion, codec and SP protocol.

The SP wire format stores each keyword behind a one-byte length prefix,
so 255 UTF-8 bytes is a protocol constant.  Before the fix, a >255-byte
keyword was accepted at ingestion and only blew up later as an
``OverflowError`` inside ``encode_object``; now it is rejected at the
door, the codec double-checks defensively, and the SP server answers
over-long query keywords with ``ERR_BAD_REQUEST``.
"""

from __future__ import annotations

import io

import pytest

from repro import DataObject, HybridStorageSystem
from repro.core.objects import MAX_KEYWORD_BYTES, normalise_keyword
from repro.core.query.parser import KeywordQuery
from repro.errors import DatasetError, ReproError
from repro.sp.protocol import (
    ERR_BAD_REQUEST,
    QueryRequest,
    QueryResponse,
    StorageProviderServer,
    decode_object,
    encode_object,
)

KW_255 = "k" * 255
KW_256 = "k" * 256
#: 128 two-byte UTF-8 code points: 128 characters but 256 bytes.
KW_MULTIBYTE_256 = "é" * 128


class TestIngestionBoundary:
    def test_255_byte_keyword_accepted(self):
        assert normalise_keyword(KW_255) == KW_255
        obj = DataObject(1, (KW_255,), b"x")
        assert obj.keywords == (KW_255,)

    def test_256_byte_keyword_rejected(self):
        with pytest.raises(DatasetError):
            normalise_keyword(KW_256)
        with pytest.raises(DatasetError):
            DataObject(1, (KW_256,), b"x")

    def test_limit_counts_utf8_bytes_not_characters(self):
        assert len(KW_MULTIBYTE_256) == 128  # well under 255 characters
        with pytest.raises(DatasetError):
            normalise_keyword(KW_MULTIBYTE_256)

    def test_query_parser_enforces_the_same_limit(self):
        with pytest.raises(DatasetError):
            KeywordQuery.parse(f'"{KW_256}"')
        parsed = KeywordQuery.parse(f'"{KW_255}"')
        assert parsed.all_keywords() == {KW_255}


class TestCodecBoundary:
    def test_roundtrip_at_the_limit(self):
        obj = DataObject(7, (KW_255, "small"), b"payload")
        assert decode_object(io.BytesIO(encode_object(obj))) == obj

    def test_codec_rejects_oversized_keyword_with_library_error(self):
        # Bypass DataObject validation to hit the codec's own guard.
        rogue = DataObject(7, ("ok",), b"payload")
        object.__setattr__(rogue, "keywords", (KW_256,))
        with pytest.raises(ReproError):
            encode_object(rogue)


class TestServerBoundary:
    @pytest.fixture(scope="class")
    def server(self):
        system = HybridStorageSystem(
            scheme="smi", seed=13
        )
        system.add_object(DataObject(1, ("alpha", KW_255), b"a"))
        return StorageProviderServer(system)

    def test_query_at_the_limit_is_served(self, server):
        raw = server.handle(QueryRequest(f'"{KW_255}"').encode())
        response = QueryResponse.decode(raw)
        assert response.error is None
        assert response.result_ids == [1]

    def test_overlong_query_keyword_reports_bad_request(self, server):
        raw = server.handle(QueryRequest(f'"{KW_256}"').encode())
        response = QueryResponse.decode(raw)
        assert response.error is not None
        assert response.error_code == ERR_BAD_REQUEST
