"""Tests for the generalised (non-monotonic-key) suppressed updates."""

import random

import dataclasses
import pytest

from repro.core.mbtree import MBTree
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.suppressed_general import (
    GeneralSuppressedContract,
    GeneralUpdateProof,
    generate_general_update,
    verify_and_update_root,
)
from repro.crypto.hashing import EMPTY_DIGEST, sha3
from repro.errors import IntegrityError, ReproError
from repro.ethereum.chain import Blockchain


def value_of(key: int) -> bytes:
    return sha3(b"v%d" % key)


class TestRootEquivalence:
    @pytest.mark.parametrize("fanout", [3, 4, 6])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_insertion_orders(self, fanout, seed):
        """Predicted root == actual root for arbitrary key orders."""
        rng = random.Random(seed)
        keys = rng.sample(range(10_000), 120)
        tree = MBTree(fanout=fanout)
        root = EMPTY_DIGEST
        for key in keys:
            proof = generate_general_update(tree, key)
            predicted = verify_and_update_root(
                proof, key, value_of(key), root, fanout
            )
            tree.insert(key, value_of(key))
            assert predicted == tree.root_hash, key
            root = predicted

    def test_monotonic_orders_still_work(self):
        tree = MBTree(fanout=4)
        root = EMPTY_DIGEST
        for key in range(60):
            proof = generate_general_update(tree, key)
            root = verify_and_update_root(proof, key, value_of(key), root, 4)
            tree.insert(key, value_of(key))
            assert root == tree.root_hash

    def test_descending_orders(self):
        tree = MBTree(fanout=4)
        root = EMPTY_DIGEST
        for key in range(60, 0, -1):
            proof = generate_general_update(tree, key)
            root = verify_and_update_root(proof, key, value_of(key), root, 4)
            tree.insert(key, value_of(key))
            assert root == tree.root_hash

    def test_duplicate_rejected_sp_side(self):
        tree = MBTree(fanout=4)
        tree.insert(5, value_of(5))
        with pytest.raises(ReproError):
            generate_general_update(tree, 5)


def build_tree(keys, fanout=4):
    tree = MBTree(fanout=fanout)
    for key in keys:
        tree.insert(key, value_of(key))
    return tree


class TestOrderingEnforcement:
    def test_wrong_leaf_rejected(self):
        """Routing an insertion into the wrong leaf must fail on-chain."""
        tree = build_tree(range(0, 100, 5))  # several leaves
        # Build a proof for key 7 (belongs near the start), then try to
        # use it for key 93 (belongs near the end).
        proof = generate_general_update(tree, 7)
        with pytest.raises(IntegrityError):
            verify_and_update_root(
                proof, 93, value_of(93), tree.root_hash, 4
            )

    def test_tampered_leaf_entry_rejected(self):
        tree = build_tree(range(0, 40, 3))
        proof = generate_general_update(tree, 10)
        forged = dataclasses.replace(
            proof,
            leaf_entries=proof.leaf_entries[:-1],
        )
        with pytest.raises(IntegrityError):
            verify_and_update_root(forged, 10, value_of(10), tree.root_hash, 4)

    def _leaf_front_proof(self, tree):
        """Craft a proof placing a key at the FRONT of a middle leaf — a
        valid alternative to the standard descent's end-of-previous-leaf
        placement, reachable only with neighbour evidence.  Scans for a
        between-leaves gap whose successor is a leaf's first entry.
        """
        from repro.core.suppressed_general import NeighbourProof

        for between_key in range(1, 99):
            search = tree.boundaries(between_key)
            if search.lower is None or search.upper is None:
                continue
            if search.lower.key == between_key:
                continue
            probe = generate_general_update(tree, search.upper.key + 1)
            if probe.leaf_entries[0].key != search.upper.key:
                continue
            return (
                dataclasses.replace(
                    probe,
                    insert_index=0,
                    predecessor=NeighbourProof(
                        entry=search.lower, path=search.lower_path
                    ),
                    successor=None,
                ),
                between_key,
                search,
            )
        pytest.skip("tree shape exposes no leaf-front slot")

    def test_leaf_front_placement_with_predecessor_accepted(self):
        tree = build_tree(range(0, 100, 5))
        proof, key, _ = self._leaf_front_proof(tree)
        new_root = verify_and_update_root(
            proof, key, value_of(key), tree.root_hash, 4
        )
        assert new_root != tree.root_hash

    def test_missing_predecessor_rejected(self):
        """Edge insertion into a middle leaf needs neighbour evidence."""
        tree = build_tree(range(0, 100, 5))
        proof, key, _ = self._leaf_front_proof(tree)
        forged = dataclasses.replace(proof, predecessor=None)
        with pytest.raises(IntegrityError):
            verify_and_update_root(
                forged, key, value_of(key), tree.root_hash, 4
            )

    def test_non_adjacent_predecessor_rejected(self):
        from repro.core.suppressed_general import NeighbourProof

        tree = build_tree(range(0, 100, 5))
        proof, key, search = self._leaf_front_proof(tree)
        # Swap in an earlier (verified but non-adjacent) predecessor.
        earlier = [k for k in range(0, 100, 5) if k < search.lower.key]
        if not earlier:
            pytest.skip("no earlier entry available")
        entry, path = tree.prove(earlier[0])
        forged = dataclasses.replace(
            proof, predecessor=NeighbourProof(entry=entry, path=path)
        )
        with pytest.raises(IntegrityError):
            verify_and_update_root(
                forged, key, value_of(key), tree.root_hash, 4
            )

    def test_stale_root_rejected(self):
        tree = build_tree(range(10))
        proof = generate_general_update(tree, 100)
        tree.insert(50, value_of(50))
        with pytest.raises(IntegrityError):
            verify_and_update_root(proof, 100, value_of(100), tree.root_hash, 4)

    def test_empty_proof_against_nonempty_root(self):
        tree = build_tree(range(5))
        empty = GeneralUpdateProof(levels=(), leaf_entries=(), insert_index=0)
        with pytest.raises(IntegrityError):
            verify_and_update_root(empty, 9, value_of(9), tree.root_hash, 4)


class TestGeneralSuppressedContract:
    def test_end_to_end_random_keys(self):
        chain = Blockchain()
        contract = GeneralSuppressedContract(fanout=4)
        chain.deploy("gsmi", contract)
        tree = MBTree(fanout=4)
        rng = random.Random(9)
        keys = rng.sample(range(1000), 50)
        for object_id, key in enumerate(keys, start=1):
            metadata = ObjectMetadata.of(
                DataObject(object_id, ("kw",), b"c%d" % object_id)
            )
            chain.send_transaction(
                "do", "gsmi", "register_object",
                metadata.object_id, metadata.object_hash,
                payload=metadata.payload_bytes(),
            )
            proof = generate_general_update(tree, key)
            receipt = chain.send_transaction(
                "sp", "gsmi", "insert",
                "idx", key, metadata.object_id, metadata.object_hash, proof,
                payload=b"\x00" * proof.byte_size(),
            )
            assert receipt.status, receipt.error
            tree.insert(key, metadata.object_hash)
            assert chain.call_view("gsmi", "view_root", "idx") == tree.root_hash

    def test_bad_registration_rejected(self):
        chain = Blockchain()
        chain.deploy("gsmi", GeneralSuppressedContract(fanout=4))
        tree = MBTree(fanout=4)
        proof = generate_general_update(tree, 1)
        receipt = chain.send_transaction(
            "sp", "gsmi", "insert", "idx", 1, 99, sha3(b"unregistered"), proof,
            payload=b"",
        )
        assert not receipt.status
        assert "IntegrityError" in receipt.error

    def test_storage_writes_constant(self):
        """Only the root word is written per insertion (suppressed)."""
        chain = Blockchain()
        chain.deploy("gsmi", GeneralSuppressedContract(fanout=4))
        tree = MBTree(fanout=4)
        writes = []
        for object_id, key in enumerate((5, 2, 9, 1, 7, 3), start=1):
            metadata = ObjectMetadata.of(
                DataObject(object_id, ("kw",), b"c%d" % object_id)
            )
            chain.send_transaction(
                "do", "gsmi", "register_object",
                metadata.object_id, metadata.object_hash,
                payload=metadata.payload_bytes(),
            )
            proof = generate_general_update(tree, key)
            receipt = chain.send_transaction(
                "sp", "gsmi", "insert",
                "idx", key, metadata.object_id, metadata.object_hash, proof,
                payload=b"",
            )
            assert receipt.status
            tree.insert(key, metadata.object_hash)
            writes.append(receipt.gas.write_gas)
        assert set(writes[1:]) == {5_000}  # one supdate of the root word
