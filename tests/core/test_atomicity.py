"""Insertion atomicity: a failed transaction must leave no trace.

Regression tests for a bug where ``_add_objects_batched`` (and the
single-object chameleon path) mutated the object store and the data
owner's off-chain trees *before* the batched transaction was accepted.
After a gas-limit abort the system claimed the objects yet could not
prove them, so every later query on the touched keywords failed
verification.  Now all mutations are staged and rolled back on a failed
receipt, keeping the store, the DO and the chain in lockstep.
"""

from __future__ import annotations

import pytest

from repro import DataObject, HybridStorageSystem
from repro.errors import ChainError


def docs_stream(n, keywords_per_object=6, start=1):
    return [
        DataObject(
            oid,
            tuple(f"kw{(oid + j) % 40:02d}" for j in range(keywords_per_object)),
            b"content-%d" % oid,
        )
        for oid in range(start, start + n)
    ]


@pytest.mark.parametrize("scheme", ["ci", "ci*"])
class TestBatchedInsertAtomicity:
    def make_system(self, scheme):
        # Roomy enough for single inserts (~920k gas worst case for ci*
        # at 512 bits), far too small for a 15-object batch.
        return HybridStorageSystem(
            scheme=scheme, cvc_modulus_bits=512, seed=3, gas_limit=1_000_000
        )

    def test_failed_batch_rolls_back_everything(self, scheme):
        system = self.make_system(scheme)
        seeded = docs_stream(3)
        system.add_objects(seeded)
        tree_counts = {
            kw: tree.count for kw, tree in system._do.trees.items()
        }
        gas_before = system.maintenance_meter().total
        with pytest.raises(ChainError):
            system.add_objects_batched(docs_stream(15, start=4))
        # Nothing changed: not the store, the DO trees, nor the meter.
        assert len(system) == 3
        assert system.store.all_ids() == [1, 2, 3]
        assert {
            kw: tree.count for kw, tree in system._do.trees.items()
        } == tree_counts
        assert system.maintenance_meter().total == gas_before

    def test_queries_still_verify_after_failed_batch(self, scheme):
        system = self.make_system(scheme)
        system.add_objects(docs_stream(3))
        expected = system.query("kw04 AND kw05").result_ids
        with pytest.raises(ChainError):
            system.add_objects_batched(docs_stream(15, start=4))
        result = system.query("kw04 AND kw05")
        assert result.verified
        assert result.result_ids == expected

    def test_batch_retry_succeeds_after_rollback(self, scheme):
        system = self.make_system(scheme)
        system.add_objects(docs_stream(3))
        with pytest.raises(ChainError):
            system.add_objects_batched(docs_stream(15, start=4))
        # A batch that fits must now succeed from the rolled-back state.
        system.add_objects_batched(docs_stream(2, start=4))
        assert len(system) == 5
        result = system.query("kw05")
        assert result.verified
        assert 4 in result.result_ids

    def test_failed_batch_with_new_keywords_forgets_them(self, scheme):
        system = self.make_system(scheme)
        system.add_objects(docs_stream(2))
        fat = [
            DataObject(
                100 + i, tuple(f"fresh{i:02d}-{j}" for j in range(8)), b"x"
            )
            for i in range(12)
        ]
        with pytest.raises(ChainError):
            system.add_objects_batched(fat)
        assert all(not kw.startswith("fresh") for kw in system._do.trees)
        # The never-registered keyword reads as empty — and verifiably so.
        result = system.query("fresh00-0")
        assert result.verified
        assert result.result_ids == []


class TestSingleInsertAtomicity:
    def test_failed_single_insert_rolls_back(self):
        system = HybridStorageSystem(
            scheme="ci", cvc_modulus_bits=512, seed=3, gas_limit=1_000_000
        )
        system.add_objects(docs_stream(3))
        # 40 first-seen keywords cost far beyond the 1M block limit.
        monster = DataObject(
            99, tuple(f"huge{j:02d}" for j in range(40)), b"monster"
        )
        with pytest.raises(ChainError):
            system.add_object(monster)
        assert len(system) == 3
        assert 99 not in system.store
        assert all(not kw.startswith("huge") for kw in system._do.trees)
        result = system.query("kw04")
        assert result.verified

    def test_merkle_store_untouched_on_failure(self):
        system = HybridStorageSystem(scheme="smi", seed=3, gas_limit=30_000)
        obj = DataObject(1, ("alpha", "beta"), b"a")
        with pytest.raises(ChainError):
            system.add_object(obj)
        assert len(system) == 0
        assert 1 not in system.store
