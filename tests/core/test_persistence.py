"""Tests for replay-based persistence."""

import json

import pytest

from repro import DataObject, HybridStorageSystem
from repro.core.persistence import load_system, save_system
from repro.errors import ReproError


def make_docs():
    return [
        DataObject(1, ("a", "b"), b"one"),
        DataObject(2, ("a",), b"two"),
        DataObject(3, ("b", "c"), b"three"),
        DataObject(5, ("a", "c"), b"five"),
    ]


@pytest.mark.parametrize("scheme", ["smi", "ci", "ci*"])
class TestSaveLoadRoundTrip:
    def test_state_equivalence(self, scheme, tmp_path):
        original = HybridStorageSystem(
            scheme=scheme, cvc_modulus_bits=512, seed=11
        )
        original.add_objects(make_docs())
        save_system(original, tmp_path / "snap", seed=11)
        restored = load_system(tmp_path / "snap")
        assert len(restored) == len(original)
        # Same on-chain digests, gas accounting and query behaviour.
        assert (
            restored.maintenance_meter().total
            == original.maintenance_meter().total
        )
        for text in ("a AND b", "c", "a AND missing"):
            assert (
                restored.query(text).result_ids
                == original.query(text).result_ids
            )

    def test_restored_system_accepts_new_objects(self, scheme, tmp_path):
        original = HybridStorageSystem(
            scheme=scheme, cvc_modulus_bits=512, seed=11
        )
        original.add_objects(make_docs())
        save_system(original, tmp_path / "snap", seed=11)
        restored = load_system(tmp_path / "snap")
        restored.add_object(DataObject(9, ("a", "b"), b"nine"))
        assert restored.query("a AND b").result_ids == [1, 9]


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ReproError):
            load_system(tmp_path / "nowhere")

    def test_version_mismatch(self, tmp_path):
        system = HybridStorageSystem(scheme="smi", seed=1)
        path = save_system(system, tmp_path / "snap", seed=1)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError):
            load_system(path)

    def test_truncated_log_detected(self, tmp_path):
        system = HybridStorageSystem(scheme="smi", seed=1)
        system.add_objects(make_docs())
        path = save_system(system, tmp_path / "snap", seed=1)
        lines = (path / "objects.jsonl").read_text().splitlines()
        (path / "objects.jsonl").write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ReproError):
            load_system(path)

    def test_empty_system_roundtrip(self, tmp_path):
        system = HybridStorageSystem(scheme="smi", seed=1)
        path = save_system(system, tmp_path / "snap", seed=1)
        restored = load_system(path)
        assert len(restored) == 0
