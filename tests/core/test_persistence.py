"""Tests for replay-based persistence."""

import json

import pytest

from repro import DataObject, HybridStorageSystem
from repro.core.persistence import load_system, save_system
from repro.errors import ReproError


def make_docs():
    return [
        DataObject(1, ("a", "b"), b"one"),
        DataObject(2, ("a",), b"two"),
        DataObject(3, ("b", "c"), b"three"),
        DataObject(5, ("a", "c"), b"five"),
    ]


@pytest.mark.parametrize("scheme", ["smi", "ci", "ci*"])
class TestSaveLoadRoundTrip:
    def test_state_equivalence(self, scheme, tmp_path):
        original = HybridStorageSystem(
            scheme=scheme, cvc_modulus_bits=512, seed=11
        )
        original.add_objects(make_docs())
        save_system(original, tmp_path / "snap", seed=11)
        restored = load_system(tmp_path / "snap")
        assert len(restored) == len(original)
        # Same on-chain digests, gas accounting and query behaviour.
        assert (
            restored.maintenance_meter().total
            == original.maintenance_meter().total
        )
        for text in ("a AND b", "c", "a AND missing"):
            assert (
                restored.query(text).result_ids
                == original.query(text).result_ids
            )

    def test_restored_system_accepts_new_objects(self, scheme, tmp_path):
        original = HybridStorageSystem(
            scheme=scheme, cvc_modulus_bits=512, seed=11
        )
        original.add_objects(make_docs())
        save_system(original, tmp_path / "snap", seed=11)
        restored = load_system(tmp_path / "snap")
        restored.add_object(DataObject(9, ("a", "b"), b"nine"))
        assert restored.query("a AND b").result_ids == [1, 9]


@pytest.mark.parametrize("shards", [1, 2, 8])
@pytest.mark.parametrize("scheme", ["mi", "smi", "ci", "ci*"])
class TestFullConfigGrid:
    """The v1 manifest dropped most knobs; v2 must round-trip them all.

    Every scheme is saved with non-default modulus / gas / cache /
    witness knobs at several shard counts; the restored system must
    carry the exact configuration and produce byte-identical digests
    and VOs (a wrong restored modulus changes key derivation, so the
    query comparison below would fail loudly).
    """

    KNOBS = dict(
        cvc_modulus_bits=768,
        gas_limit=9_000_000,
        verify_cache_size=64,
        witness_batching=False,
        warm_hot_threshold=5,
    )

    def test_round_trip_preserves_config_and_vo(
        self, scheme, shards, tmp_path
    ):
        original = HybridStorageSystem(
            scheme=scheme, seed=11, shards=shards, **self.KNOBS
        )
        original.add_objects(make_docs())
        save_system(original, tmp_path / "snap", seed=11)
        restored = load_system(tmp_path / "snap")

        for field, expected in {**self.KNOBS, "shards": shards}.items():
            assert getattr(restored, field) == expected, field
        assert restored.scheme == original.scheme

        assert (
            restored.maintenance_meter().total
            == original.maintenance_meter().total
        )
        for text in ("a AND b", "c", "a AND missing"):
            result = original.query(text)
            restored_result = restored.query(text)
            assert restored_result.verified
            assert restored_result.result_ids == result.result_ids
            assert restored_result.vo_sp_bytes == result.vo_sp_bytes
            assert restored_result.vo_chain_bytes == result.vo_chain_bytes

        # Post-restore insertions keep verifying against the replayed
        # digests.
        restored.add_object(DataObject(9, ("a", "b"), b"nine"))
        post = restored.query("a AND b")
        assert post.verified
        assert post.result_ids == [1, 9]
        original.close()
        restored.close()


class TestLegacyManifests:
    def test_v1_manifest_still_loads(self, tmp_path):
        system = HybridStorageSystem(
            scheme="ci", cvc_modulus_bits=512, seed=11
        )
        system.add_objects(make_docs())
        path = save_system(system, tmp_path / "snap", seed=11)
        manifest = json.loads((path / "manifest.json").read_text())
        # Rewrite as the v1 schema: the seven-field config map plus a
        # top-level cvc_modulus_bits recording the modulus bit length
        # (which may sit one short of the nominal keygen size).
        manifest["version"] = 1
        manifest["cvc_modulus_bits"] = 511
        manifest["config"] = {
            field: manifest["config"][field]
            for field in (
                "fanout",
                "arity",
                "bloom_capacity",
                "filter_bits",
                "join_order",
                "join_plan",
                "mine_every",
            )
        }
        (path / "manifest.json").write_text(json.dumps(manifest))
        restored = load_system(path)
        assert restored.cvc_modulus_bits == 512
        for text in ("a AND b", "c"):
            assert (
                restored.query(text).result_ids
                == system.query(text).result_ids
            )
        system.close()
        restored.close()

    def test_disk_engine_restores_in_memory_by_default(self, tmp_path):
        original = HybridStorageSystem(
            scheme="smi",
            seed=3,
            shards=2,
            engine="disk",
            engine_dir=tmp_path / "journals",
        )
        original.add_objects(make_docs())
        save_system(original, tmp_path / "snap", seed=3)
        # Without a fresh engine_dir the journals must not be reused —
        # replaying them on top of the object-log replay would
        # double-apply every record.
        restored = load_system(tmp_path / "snap")
        assert all(e.kind == "memory" for e in restored._sp.engines)
        # The runtime substitution must not leak into the recorded
        # configuration: a re-save keeps the declared disk engine.
        assert restored.engine == "disk"
        resaved = save_system(restored, tmp_path / "resnap", seed=3)
        remanifest = json.loads((resaved / "manifest.json").read_text())
        assert remanifest["config"]["engine"] == "disk"
        assert restored.query("a AND b").result_ids == [1]
        fresh = load_system(
            tmp_path / "snap", engine_dir=tmp_path / "fresh-journals"
        )
        assert fresh.engine == "disk"
        assert all(e.kind == "disk" for e in fresh._sp.engines)
        assert fresh.query("a AND b").result_ids == [1]
        original.close()
        restored.close()
        fresh.close()


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ReproError):
            load_system(tmp_path / "nowhere")

    def test_version_mismatch(self, tmp_path):
        system = HybridStorageSystem(scheme="smi", seed=1)
        path = save_system(system, tmp_path / "snap", seed=1)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError):
            load_system(path)

    def test_truncated_log_detected(self, tmp_path):
        system = HybridStorageSystem(scheme="smi", seed=1)
        system.add_objects(make_docs())
        path = save_system(system, tmp_path / "snap", seed=1)
        lines = (path / "objects.jsonl").read_text().splitlines()
        (path / "objects.jsonl").write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ReproError):
            load_system(path)

    def test_empty_system_roundtrip(self, tmp_path):
        system = HybridStorageSystem(scheme="smi", seed=1)
        path = save_system(system, tmp_path / "snap", seed=1)
        restored = load_system(path)
        assert len(restored) == 0
