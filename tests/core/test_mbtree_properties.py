"""Property-based tests for the Merkle B-tree.

Model-based checking against a sorted list: for any key set and fan-out,
the tree must iterate in sorted order, prove every member, compute
boundaries that match the model, and keep append-mode spine updates in
lockstep with real insertions.
"""

from hypothesis import given, settings, strategies as st

from repro.core import mbtree
from repro.crypto.hashing import sha3

key_sets = st.sets(st.integers(0, 10_000), min_size=1, max_size=120)
fanouts = st.integers(3, 8)


def value_of(key: int) -> bytes:
    return sha3(b"v%d" % key)


@settings(max_examples=40, deadline=None)
@given(keys=key_sets, fanout=fanouts)
def test_sorted_iteration_and_proofs(keys, fanout):
    tree = mbtree.MBTree(fanout=fanout)
    for key in keys:
        tree.insert(key, value_of(key))
    ordered = sorted(keys)
    assert [e.key for e in tree.iter_entries()] == ordered
    # Every member proves against the root.
    for key in ordered[:: max(1, len(ordered) // 7)]:
        entry, path = tree.prove(key)
        assert path.compute_root(entry) == tree.root_hash


@settings(max_examples=40, deadline=None)
@given(
    keys=key_sets,
    fanout=fanouts,
    target=st.integers(-5, 10_005),
)
def test_boundaries_match_sorted_model(keys, fanout, target):
    tree = mbtree.MBTree(fanout=fanout)
    for key in keys:
        tree.insert(key, value_of(key))
    ordered = sorted(keys)
    expected_lower = max((k for k in ordered if k <= target), default=None)
    expected_upper = min((k for k in ordered if k > target), default=None)
    result = tree.boundaries(target)
    assert (result.lower.key if result.lower else None) == expected_lower
    assert (result.upper.key if result.upper else None) == expected_upper
    if result.lower is not None:
        assert result.lower_path.compute_root(result.lower) == tree.root_hash
    if result.upper is not None:
        assert result.upper_path.compute_root(result.upper) == tree.root_hash
    if result.lower is not None and result.upper is not None:
        assert mbtree.paths_adjacent(result.lower_path, result.upper_path)


@settings(max_examples=30, deadline=None)
@given(
    num_keys=st.integers(1, 80),
    fanout=fanouts,
    gap_seed=st.integers(0, 2**31),
)
def test_append_spine_equivalence(num_keys, fanout, gap_seed):
    """Algorithm 2's root prediction always equals the real insertion."""
    import random

    rng = random.Random(gap_seed)
    tree = mbtree.MBTree(fanout=fanout)
    key = 0
    for _ in range(num_keys):
        key += rng.randint(1, 5)
        spine = tree.gen_update_proof(key)
        assert mbtree.reconstruct_root(spine) == tree.root_hash
        new_entry = mbtree.entry_digest(key, value_of(key))
        predicted = mbtree.compute_updated_root(spine, new_entry, fanout)
        tree.insert(key, value_of(key))
        assert predicted == tree.root_hash


@settings(max_examples=30, deadline=None)
@given(keys=st.sets(st.integers(0, 2_000), min_size=2, max_size=60))
def test_adjacency_exactly_consecutive(keys):
    tree = mbtree.MBTree(fanout=4)
    for key in keys:
        tree.insert(key, value_of(key))
    ordered = sorted(keys)
    proofs = {k: tree.prove(k)[1] for k in ordered}
    for a, b in zip(ordered, ordered[1:]):
        assert mbtree.paths_adjacent(proofs[a], proofs[b])
    # A non-consecutive pair must never verify as adjacent.
    if len(ordered) >= 3:
        assert not mbtree.paths_adjacent(proofs[ordered[0]], proofs[ordered[2]])
