"""Property-based tests for the Chameleon tree.

Model: a sorted list of inserted IDs.  For any insertion sequence, every
membership proof must verify, boundary lookups must match the model, and
position adjacency must mirror rank adjacency.
"""

import bisect

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.chameleon import ChameleonTreeDO, ChameleonTreeSP, verify_membership
from repro.crypto import vc
from repro.crypto.hashing import sha3
from repro.crypto.prf import generate_key

_PP, _TD = vc.shared_test_params(3)
_CVC = vc.ChameleonVectorCommitment(3, _pp=_PP, _td=_TD)
_KEY = generate_key(seed=77)

id_lists = st.lists(
    st.integers(1, 10_000), min_size=1, max_size=18, unique=True
).map(sorted)


def build(ids, keyword="prop"):
    do = ChameleonTreeDO(_CVC, _KEY, keyword, arity=2)
    sp = ChameleonTreeSP(do.root_commitment, arity=2)
    for object_id in ids:
        sp.apply_insertion(do.insert(object_id, sha3(b"%d" % object_id)))
    return do, sp


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ids=id_lists)
def test_all_memberships_verify(ids):
    do, sp = build(ids)
    for pos in range(1, len(ids) + 1):
        entry = sp.entry_at(pos)
        proof = sp.prove_membership(pos)
        verify_membership(
            _PP, do.root_commitment, sp.count, 2,
            entry.key, entry.value_hash, proof,
        )
        assert proof.position == pos


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ids=id_lists, target=st.integers(0, 10_001))
def test_boundaries_match_sorted_model(ids, target):
    _, sp = build(ids)
    search = sp.boundaries(target)
    idx = bisect.bisect_right(ids, target)
    expected_lower = ids[idx - 1] if idx > 0 else None
    expected_upper = ids[idx] if idx < len(ids) else None
    assert (search.lower.key if search.lower else None) == expected_lower
    assert (search.upper.key if search.upper else None) == expected_upper
    if search.lower_proof is not None and search.upper_proof is not None:
        assert search.upper_proof.position == search.lower_proof.position + 1
