"""Property-based tests for authenticated range queries."""

from hypothesis import given, settings, strategies as st

from repro.core.mbtree import MBTree
from repro.core.range_queries import range_query, verify_range
from repro.crypto.hashing import sha3

key_sets = st.sets(st.integers(0, 500), min_size=0, max_size=60)


@settings(max_examples=40, deadline=None)
@given(keys=key_sets, lo=st.integers(-10, 510), span=st.integers(0, 200))
def test_range_query_matches_model_and_verifies(keys, lo, span):
    hi = lo + span
    tree = MBTree(fanout=4)
    for key in sorted(keys):
        tree.insert(key, sha3(b"%d" % key))
    entries, vo = range_query(tree, lo, hi)
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert [e.key for e in entries] == expected
    verified = verify_range(tree.root_hash, vo)
    assert [e.key for e in verified] == expected
