"""Framework-level tests: suppressions, module keys, registry, findings."""

import pytest

from repro.analysis import lint_source, registered_rules
from repro.analysis.findings import Finding
from repro.analysis.framework import default_checkers, module_key_for

TIMING_BAD_LINE = "ok = stored_root == computed_root\n"

ALL_RULES = {
    "timing-safe-compare",
    "crypto-hygiene",
    "determinism",
    "verification-discipline",
    "gas-integrality",
    "lock-discipline",
}


class TestSuppressions:
    def test_same_line_disable(self):
        src = (
            "ok = stored_root == computed_root"
            "  # reprolint: disable=timing-safe-compare\n"
        )
        assert lint_source(src, module="crypto/merkle.py") == []

    def test_disable_next_line(self):
        src = (
            "# reprolint: disable-next-line=timing-safe-compare\n"
            + TIMING_BAD_LINE
        )
        assert lint_source(src, module="crypto/merkle.py") == []

    def test_disable_all(self):
        src = "ok = stored_root == computed_root  # reprolint: disable=all\n"
        assert lint_source(src, module="crypto/merkle.py") == []

    def test_unrelated_rule_does_not_suppress(self):
        src = (
            "ok = stored_root == computed_root"
            "  # reprolint: disable=determinism\n"
        )
        findings = lint_source(src, module="crypto/merkle.py")
        assert [f.rule for f in findings] == ["timing-safe-compare"]

    def test_multiple_rules_in_one_comment(self):
        src = (
            "ok = stored_root == computed_root"
            "  # reprolint: disable=determinism,timing-safe-compare\n"
        )
        assert lint_source(src, module="crypto/merkle.py") == []


class TestModuleKeys:
    def test_path_inside_repro_package(self):
        assert module_key_for("src/repro/crypto/merkle.py") == "crypto/merkle.py"
        assert (
            module_key_for("/root/repo/src/repro/core/query/verify.py")
            == "core/query/verify.py"
        )

    def test_path_outside_repro_keys_on_basename(self):
        assert module_key_for("/tmp/fixtures/check_me.py") == "check_me.py"


class TestRegistry:
    def test_all_six_rules_registered(self):
        default_checkers()  # import side effect registers the built-ins
        assert ALL_RULES <= set(registered_rules())

    def test_select_subset(self):
        checkers = default_checkers(["timing-safe-compare"])
        assert [c.rule for c in checkers] == ["timing-safe-compare"]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            default_checkers(["no-such-rule"])


class TestFindings:
    def test_baseline_key_is_line_independent(self):
        a = Finding(
            path="src/repro/crypto/merkle.py",
            module="crypto/merkle.py",
            line=10,
            col=5,
            rule="timing-safe-compare",
            message="m",
            symbol="MerkleTree.verify",
        )
        b = Finding(
            path="src/repro/crypto/merkle.py",
            module="crypto/merkle.py",
            line=99,
            col=1,
            rule="timing-safe-compare",
            message="m",
            symbol="MerkleTree.verify",
        )
        assert a.baseline_key == b.baseline_key

    def test_render_carries_location_and_rule(self):
        finding = Finding(
            path="x.py",
            module="x.py",
            line=3,
            col=7,
            rule="determinism",
            message="msg",
            symbol="f",
        )
        assert "x.py:3:7" in finding.render()
        assert "determinism" in finding.render()
