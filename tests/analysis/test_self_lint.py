"""The tree must lint clean: repro-lint over src/repro with the committed
baseline is part of the tier-1 suite, so re-introducing (say) a ``==``
digest comparison in a verification module fails the build immediately.
"""

import os

from repro.analysis import run_lint
from repro.analysis.baseline import Baseline

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE = os.path.join(REPO_ROOT, "tools", "reprolint-baseline.json")


def test_source_tree_lints_clean():
    result = run_lint([os.path.join(REPO_ROOT, "src", "repro")])
    assert result.errors == []
    assert result.files_scanned > 50
    findings = result.findings
    if os.path.exists(BASELINE):
        findings, _, _ = Baseline.load(BASELINE).apply(findings)
    assert not findings, "\n".join(f.render() for f in findings)


def test_committed_baseline_is_empty():
    # The whole point of this PR: every finding was fixed, not baselined.
    if os.path.exists(BASELINE):
        assert Baseline.load(BASELINE).entries == {}
