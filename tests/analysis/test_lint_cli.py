"""Exit-code and reporting tests for the ``repro-lint`` CLI."""

import json

from repro.analysis.cli import main

# A verifier that fails open — verification-discipline applies to every
# module key, so the fixture works from any temporary path.
BAD_SOURCE = "def verify_thing(vo):\n    return True\n"

CLEAN_SOURCE = "def verify_thing(vo):\n    check(vo)\n    return True\n"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestExitCodes:
    def test_findings_exit_one(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", BAD_SOURCE)
        assert main([bad]) == 1
        out = capsys.readouterr().out
        assert "verification-discipline" in out
        assert "bad.py:2" in out

    def test_clean_exit_zero(self, tmp_path, capsys):
        clean = write(tmp_path, "clean.py", CLEAN_SOURCE)
        assert main([clean]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_exit_two(self, tmp_path):
        clean = write(tmp_path, "clean.py", CLEAN_SOURCE)
        assert main([clean, "--select", "no-such-rule"]) == 2

    def test_syntax_error_exit_one(self, tmp_path, capsys):
        broken = write(tmp_path, "broken.py", "def broken(:\n")
        assert main([broken]) == 1
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "timing-safe-compare",
            "crypto-hygiene",
            "determinism",
            "verification-discipline",
            "gas-integrality",
            "lock-discipline",
        ):
            assert rule in out


class TestBaselineFlow:
    def test_write_then_pass_with_baseline(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", BAD_SOURCE)
        baseline = str(tmp_path / "baseline.json")
        assert main([bad, "--baseline", baseline, "--write-baseline"]) == 0
        # The grandfathered finding no longer fails the build...
        assert main([bad, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # ...but a second, new finding does.
        worse = write(tmp_path, "worse.py", BAD_SOURCE + BAD_SOURCE.replace("thing", "other"))
        assert main([bad, worse, "--baseline", baseline]) == 1

    def test_corrupt_baseline_exit_two(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", BAD_SOURCE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        assert main([bad, "--baseline", str(baseline)]) == 2

    def test_stale_baseline_keys_are_reported(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", BAD_SOURCE)
        baseline = str(tmp_path / "baseline.json")
        assert main([bad, "--baseline", baseline, "--write-baseline"]) == 0
        fixed = write(tmp_path, "bad.py", CLEAN_SOURCE)
        assert main([fixed, "--baseline", baseline]) == 0
        assert "stale" in capsys.readouterr().out


class TestJsonFormat:
    def test_json_report_parses(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", BAD_SOURCE)
        assert main([bad, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "verification-discipline"
        assert payload["files_scanned"] == 1
