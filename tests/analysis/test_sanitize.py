"""Tests for the runtime lock-order sanitizer.

These tests drive :mod:`repro.analysis.sanitize` directly (constructing
``SanitizedLock`` objects, or calling :func:`install`/:func:`uninstall`
around a scope) rather than relying on ``REPRO_SANITIZE=1`` — the env
hook itself is exercised in a subprocess so the patched factories never
leak into the surrounding pytest process.
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.analysis import sanitize
from tests.analysis import lockorder_fixture

# Under an env-installed sanitizer (the CI sanitizer job) these tests
# must not run: the fixture's uninstall() would tear down the global
# hooks mid-session, and the deliberate violations staged here would
# poison the empty-findings gate in tests/conftest.py.
pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SANITIZE") == "1",
    reason="sanitizer already installed process-wide via REPRO_SANITIZE",
)

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


@pytest.fixture()
def san():
    """A live sanitizer state, fully restored afterwards."""
    state = sanitize.install()
    try:
        yield state
    finally:
        sanitize.uninstall()
        sanitize.reset()


def violations(kind=None):
    snapshot = sanitize.report()
    found = snapshot["violations"]
    if kind is not None:
        found = [v for v in found if v["kind"] == kind]
    return found


class TestLockOrderRuntime:
    def test_inversion_detected_without_deadlock(self, san):
        a = sanitize.SanitizedLock("a")
        b = sanitize.SanitizedLock("b")
        with a:
            with b:
                pass
        with b:
            with a:  # reverse order: flagged, single-threaded
                pass
        found = violations("lock-order-inversion")
        assert len(found) == 1
        assert "Lock(a)" in found[0]["message"]
        assert "Lock(b)" in found[0]["message"]
        assert found[0]["reverse_witness"], "must carry the first edge"

    def test_consistent_order_is_silent(self, san):
        a = sanitize.SanitizedLock("a")
        b = sanitize.SanitizedLock("b")
        for _ in range(3):
            with a, b:
                pass
        assert violations() == []

    def test_three_lock_cycle_via_path(self, san):
        a = sanitize.SanitizedLock("a")
        b = sanitize.SanitizedLock("b")
        c = sanitize.SanitizedLock("c")
        with a, b:
            pass
        with b, c:
            pass
        with c, a:  # closes a->b->c->a without a direct reverse edge
            pass
        assert len(violations("lock-order-inversion")) == 1

    def test_fixture_module_detected_at_runtime(self, san):
        lock_a = sanitize.SanitizedLock("fixture_a")
        lock_b = sanitize.SanitizedLock("fixture_b")
        lockorder_fixture.use_locks(lock_a, lock_b)
        try:
            lockorder_fixture.first()
            lockorder_fixture.second()
        finally:
            lockorder_fixture.use_locks(threading.Lock(), threading.Lock())
        found = violations("lock-order-inversion")
        assert len(found) == 1
        assert "fixture" in found[0]["message"]

    def test_rlock_reentry_is_not_an_edge(self, san):
        r = sanitize.SanitizedRLock("r")
        with r:
            with r:
                pass
        assert sanitize.report()["edges"] == []
        assert violations() == []

    def test_condition_wait_releases_held_tracking(self, san):
        r = sanitize.SanitizedRLock("r")
        cond = threading.Condition(r)
        woke = threading.Event()

        def waker():
            with cond:
                cond.notify_all()

        with cond:
            t = threading.Thread(target=waker)
            t.start()
            cond.wait(timeout=5.0)
            woke.set()
        t.join()
        assert woke.is_set()
        assert sanitize.state().held_now() == []
        assert violations() == []


class TestBlockingUnderLock:
    def test_send_while_holding_lock(self, san):
        import multiprocessing

        lock = sanitize.SanitizedLock("guard")
        a, b = multiprocessing.Pipe()
        try:
            with lock:
                a.send_bytes(b"x")
            b.recv_bytes()
        finally:
            a.close()
            b.close()
        found = violations("blocking-under-lock")
        assert len(found) == 1
        assert "send_bytes" in found[0]["message"]
        assert "Lock(guard)" in found[0]["message"]

    def test_pipe_marked_lock_is_exempt(self, san):
        import multiprocessing

        lock = sanitize.mark_pipe_lock(sanitize.SanitizedLock("pipe"))
        a, b = multiprocessing.Pipe()
        try:
            with lock:
                a.send_bytes(b"x")
            b.recv_bytes()
        finally:
            a.close()
            b.close()
        assert violations() == []

    def test_unlocked_send_is_silent(self, san):
        import multiprocessing

        a, b = multiprocessing.Pipe()
        try:
            a.send_bytes(b"x")
            b.recv_bytes()
        finally:
            a.close()
            b.close()
        assert violations() == []


class TestFactoriesAndReport:
    def test_factory_wraps_repro_and_test_callers(self, san):
        lock = threading.Lock()  # this file lives under tests/
        assert isinstance(lock, sanitize.SanitizedLock)
        rlock = threading.RLock()
        assert isinstance(rlock, sanitize.SanitizedRLock)

    def test_uninstall_restores_native_factories(self):
        sanitize.install()
        sanitize.uninstall()
        sanitize.reset()
        assert threading.Lock is sanitize._ORIG_LOCK
        assert threading.RLock is sanitize._ORIG_RLOCK

    def test_report_shape_and_render(self, san):
        a = sanitize.SanitizedLock("a")
        b = sanitize.SanitizedLock("b")
        with a, b:
            pass
        snapshot = sanitize.report()
        assert snapshot["installed"]
        assert snapshot["locks"] >= 2
        assert any(
            e["src"] == "Lock(a)" and e["dst"] == "Lock(b)"
            for e in snapshot["edges"]
        )
        text = sanitize.render_report(snapshot)
        assert "Lock(a) -> Lock(b)" in text
        assert "no violations" in text

    def test_report_publishes_obs_gauges(self, san):
        from repro import obs

        with obs.collect() as collector:
            a = sanitize.SanitizedLock("a")
            with a:
                pass
            sanitize.report()
            snapshot = collector.metrics.snapshot()
        assert snapshot["sanitize.acquisitions"] >= 1
        assert snapshot["sanitize.violation_count"] == 0


class TestEnvHook:
    def test_repro_sanitize_env_installs_and_dumps(self, tmp_path):
        out = tmp_path / "sanitize.json"
        code = (
            "import repro\n"
            "from repro.analysis import sanitize\n"
            "assert sanitize.installed()\n"
            "a = sanitize.SanitizedLock('a')\n"
            "b = sanitize.SanitizedLock('b')\n"
            "with a, b: pass\n"
            "with b:\n"
            "    with a: pass\n"
        )
        env = dict(os.environ)
        env["REPRO_SANITIZE"] = "1"
        env["REPRO_SANITIZE_OUT"] = str(out)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        dump = json.loads(out.read_text())
        kinds = [v["kind"] for v in dump["violations"]]
        assert "lock-order-inversion" in kinds

    def test_cli_renders_dump_and_gates(self, tmp_path):
        from repro.analysis.cli import main

        dump = {
            "installed": True,
            "locks": 2,
            "acquisitions": 4,
            "edges": [{"src": "Lock(a)", "dst": "Lock(b)", "stack": []}],
            "violations": [
                {
                    "kind": "lock-order-inversion",
                    "thread": 1,
                    "message": "acquiring Lock(a) while holding Lock(b)",
                    "stack": ["x.py:1:f"],
                }
            ],
            "infos": [],
        }
        path = tmp_path / "dump.json"
        path.write_text(json.dumps(dump))
        assert main(["--sanitize-report", str(path)]) == 1
        dump["violations"] = []
        path.write_text(json.dumps(dump))
        assert main(["--sanitize-report", str(path)]) == 0
