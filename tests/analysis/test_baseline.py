"""Baseline round-trip, absorption, and staleness tests."""

import json

import pytest

from repro.analysis.baseline import BASELINE_VERSION, Baseline
from repro.analysis.findings import Finding


def make_finding(line=1, rule="timing-safe-compare", symbol="f"):
    return Finding(
        path="src/repro/crypto/merkle.py",
        module="crypto/merkle.py",
        line=line,
        col=1,
        rule=rule,
        message="m",
        symbol=symbol,
    )


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        findings = [make_finding(line=5), make_finding(line=9)]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(str(path))
        loaded = Baseline.load(str(path))
        assert loaded.entries == {findings[0].baseline_key: 2}

    def test_file_is_versioned_and_sorted(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [make_finding(symbol="b"), make_finding(symbol="a")]
        Baseline.from_findings(findings).save(str(path))
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION
        assert list(payload["entries"]) == sorted(payload["entries"])

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 999, "entries": {}}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))


class TestApply:
    def test_absorbs_up_to_count(self):
        baseline = Baseline.from_findings([make_finding(line=5)])
        fresh, absorbed, stale = baseline.apply(
            [make_finding(line=50), make_finding(line=60)]
        )
        assert absorbed == 1
        assert len(fresh) == 1
        assert stale == []

    def test_line_drift_still_matches(self):
        baseline = Baseline.from_findings([make_finding(line=5)])
        fresh, absorbed, stale = baseline.apply([make_finding(line=500)])
        assert (fresh, absorbed, stale) == ([], 1, [])

    def test_different_rule_is_fresh(self):
        baseline = Baseline.from_findings([make_finding(rule="determinism")])
        fresh, absorbed, stale = baseline.apply([make_finding(rule="crypto-hygiene")])
        assert absorbed == 0
        assert [f.rule for f in fresh] == ["crypto-hygiene"]
        assert len(stale) == 1

    def test_stale_keys_reported_when_fixed(self):
        baseline = Baseline.from_findings([make_finding()])
        fresh, absorbed, stale = baseline.apply([])
        assert (fresh, absorbed) == ([], 0)
        assert stale == [make_finding().baseline_key]
