"""Per-rule unit tests for repro-lint.

Every checker gets at least one *triggering* fixture (asserting the rule
id and the anchored line) and one *clean* fixture.  Fixtures steer the
checker scoping via the ``module`` argument of :func:`lint_source`.
"""

from repro.analysis import lint_source


def rules(findings):
    return [f.rule for f in findings]


def lines(findings):
    return [f.line for f in findings]


# -- timing-safe-compare ------------------------------------------------------

TIMING_BAD = """\
def verify_proof(proof, payload, root):
    return proof.compute_root(payload) == root
"""

TIMING_GOOD = """\
from repro.crypto.hashing import digests_equal


def verify_proof(proof, payload, root):
    return digests_equal(proof.compute_root(payload), root)
"""


class TestTimingSafeCompare:
    def test_flags_digest_equality(self):
        findings = lint_source(TIMING_BAD, module="crypto/merkle.py")
        assert rules(findings) == ["timing-safe-compare"]
        assert findings[0].line == 2
        assert findings[0].symbol == "verify_proof"

    def test_flags_not_equal_on_roots(self):
        src = "ok = stored_root != computed_root\n"
        findings = lint_source(src, module="ethereum/state.py")
        assert rules(findings) == ["timing-safe-compare"]

    def test_flags_digest_attribute_operand(self):
        src = "ok = entry.object_hash == expected\n"
        findings = lint_source(src, module="core/query/verify.py")
        assert rules(findings) == ["timing-safe-compare"]

    def test_clean_fixture(self):
        assert lint_source(TIMING_GOOD, module="crypto/merkle.py") == []

    def test_out_of_scope_module_is_ignored(self):
        assert lint_source(TIMING_BAD, module="bench/report.py") == []

    def test_non_digest_comparison_is_ignored(self):
        src = "def verify_count(a, b):\n    return a == b\n"
        assert lint_source(src, module="crypto/merkle.py") == []


# -- crypto-hygiene -----------------------------------------------------------

HYGIENE_BAD = """\
import random
import secrets
import time


def slot_of(position):
    return hash(position)
"""

HYGIENE_GOOD = """\
from repro.crypto.hashing import sha3
from repro.crypto.numbers import make_random


def slot_of(position):
    return sha3(position.to_bytes(8, "big"))
"""


class TestCryptoHygiene:
    def test_flags_banned_imports_and_builtin_hash(self):
        findings = lint_source(HYGIENE_BAD, module="crypto/cvc.py")
        assert rules(findings) == ["crypto-hygiene"] * 4
        assert lines(findings) == [1, 2, 3, 7]

    def test_entropy_home_may_import_secrets(self):
        assert lint_source("import secrets\n", module="crypto/numbers.py") == []

    def test_os_urandom_flagged_outside_entropy_home(self):
        src = "import os\n\nkey = os.urandom(32)\n"
        findings = lint_source(src, module="crypto/prf.py")
        assert rules(findings) == ["crypto-hygiene"]
        assert findings[0].line == 3

    def test_clean_fixture(self):
        assert lint_source(HYGIENE_GOOD, module="crypto/cvc.py") == []

    def test_out_of_scope_module_is_ignored(self):
        assert lint_source(HYGIENE_BAD, module="bench/report.py") == []


# -- determinism --------------------------------------------------------------

DETERMINISM_BAD = """\
def commit(items):
    out = []
    for key in items.keys():
        out.append(key)
    return b"|".join({b"a", b"b"})
"""

DETERMINISM_GOOD = """\
def commit(items):
    out = []
    for key in sorted(items.keys()):
        out.append(key)
    return b"|".join(sorted({b"a", b"b"}))
"""


class TestDeterminism:
    def test_flags_keys_iteration_and_set_join(self):
        findings = lint_source(DETERMINISM_BAD, module="core/objects.py")
        assert rules(findings) == ["determinism"] * 2
        assert lines(findings) == [3, 5]

    def test_flags_set_comprehension_source(self):
        src = "digests = [h for h in set(parts)]\n"
        findings = lint_source(src, module="crypto/hashing.py")
        assert rules(findings) == ["determinism"]

    def test_sorted_wrapping_is_clean(self):
        assert lint_source(DETERMINISM_GOOD, module="core/objects.py") == []


# -- determinism: shard maps --------------------------------------------------

SHARD_MAP_BAD = """\
def gather(self):
    parts = []
    for engine in self.engines.values():
        parts.append(engine.view())
    rows = [view for _, view in self.shard_views.items()]
    return parts + rows
"""

SHARD_MAP_GOOD = """\
def gather(self):
    parts = []
    for shard_id in sorted(self.engines):
        parts.append(self.engines[shard_id].view())
    rows = [view for _, view in sorted(self.shard_views.items())]
    return parts + rows
"""


class TestDeterminismShardMaps:
    def test_flags_values_and_items_on_shard_maps(self):
        findings = lint_source(SHARD_MAP_BAD, module="core/sp_frontend.py")
        assert rules(findings) == ["determinism"] * 2
        assert lines(findings) == [3, 5]

    def test_engine_module_is_in_scope(self):
        src = "order = [e for e in engines.values()]\n"
        findings = lint_source(src, module="sp/engine.py")
        assert rules(findings) == ["determinism"]

    def test_non_shard_receivers_are_not_flagged(self):
        src = "order = [v for v in counters.values()]\n"
        assert lint_source(src, module="core/sp_frontend.py") == []

    def test_sorted_shard_iteration_is_clean(self):
        assert lint_source(SHARD_MAP_GOOD, module="core/sp_frontend.py") == []

    def test_out_of_scope_module_is_ignored(self):
        assert lint_source(DETERMINISM_BAD, module="sp/provider.py") == []


# -- verification-discipline --------------------------------------------------

VERIFY_BARE_EXCEPT = """\
def verify_vo(vo):
    try:
        vo.recompute()
    except:
        raise ValueError("bad vo")
"""

VERIFY_EXCEPT_PASS = """\
def verify_vo(vo):
    try:
        vo.recompute()
    except ValueError:
        pass
"""

VERIFY_RETURN_TRUE = """\
def verify_entry(entry):
    return True
"""

VERIFY_GOOD = """\
def verify_entry(entry):
    check_digest(entry)
    return True
"""


class TestVerificationDiscipline:
    def test_flags_bare_except(self):
        findings = lint_source(VERIFY_BARE_EXCEPT, module="core/query/verify.py")
        assert rules(findings) == ["verification-discipline"]
        assert findings[0].line == 4

    def test_flags_except_pass(self):
        findings = lint_source(VERIFY_EXCEPT_PASS, module="core/query/verify.py")
        assert rules(findings) == ["verification-discipline"]
        assert findings[0].line == 4

    def test_flags_unconditional_return_true(self):
        findings = lint_source(VERIFY_RETURN_TRUE, module="core/query/verify.py")
        assert rules(findings) == ["verification-discipline"]
        assert findings[0].line == 2
        assert findings[0].symbol == "verify_entry"

    def test_return_true_after_a_check_is_clean(self):
        assert lint_source(VERIFY_GOOD, module="core/query/verify.py") == []

    def test_applies_to_every_module(self):
        findings = lint_source(VERIFY_RETURN_TRUE, module="bench/report.py")
        assert rules(findings) == ["verification-discipline"]

    def test_non_verifier_functions_are_ignored(self):
        src = "def summarise(x):\n    return True\n"
        assert lint_source(src, module="core/query/verify.py") == []


# -- gas-integrality ----------------------------------------------------------

GAS_BAD = """\
def charge(gas_used):
    refund = gas_used / 2
    fee = 1.5
    return float(gas_used) + refund
"""

GAS_GOOD = """\
ETH_PRICE_USD = 229.0

GAS_SSTORE = 20000


def charge(gas_used):
    return gas_used + GAS_SSTORE // 2


def gas_to_usd(gas):
    return gas * ETH_PRICE_USD / 1e9
"""


class TestGasIntegrality:
    def test_flags_division_float_literal_and_cast(self):
        findings = lint_source(GAS_BAD, module="ethereum/gas.py")
        assert rules(findings) == ["gas-integrality"] * 3
        assert lines(findings) == [2, 3, 4]

    def test_usd_reporting_helpers_are_exempt(self):
        assert lint_source(GAS_GOOD, module="ethereum/gas.py") == []

    def test_out_of_scope_module_is_ignored(self):
        assert lint_source(GAS_BAD, module="ethereum/chain.py") == []


# -- lock-discipline ----------------------------------------------------------

LOCK_BAD = """\
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self._entries = {}

    def seen(self, key):
        with self._lock:
            present = key in self._entries
        self.hits += 1
        return present
"""

LOCK_GOOD = """\
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self._entries = {}

    def seen(self, key):
        with self._lock:
            present = key in self._entries
            self.hits += 1
        return present
"""

MODULE_LOCK_BAD = """\
import threading

_tables = {}
_tables_lock = threading.Lock()


def put(key, value):
    with _tables_lock:
        _tables[key] = value


def drop(key):
    _tables.pop(key)
"""


class TestLockDiscipline:
    def test_flags_counter_mutation_outside_lock(self):
        findings = lint_source(LOCK_BAD, module="core/proofcache.py")
        assert rules(findings) == ["lock-discipline"]
        assert findings[0].line == 13
        assert findings[0].symbol == "Cache.seen"

    def test_mutation_under_lock_is_clean(self):
        assert lint_source(LOCK_GOOD, module="core/proofcache.py") == []

    def test_lockless_classes_are_ignored(self):
        src = (
            "class Tally:\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
        )
        assert lint_source(src, module="obs/metrics.py") == []

    def test_flags_guarded_module_global_outside_lock(self):
        findings = lint_source(MODULE_LOCK_BAD, module="crypto/numbers.py")
        assert rules(findings) == ["lock-discipline"]
        assert findings[0].line == 13


# -- wallclock ----------------------------------------------------------------

WALLCLOCK_BAD = """\
import time


def bench():
    started = time.time()
    run()
    return time.time() - started
"""

WALLCLOCK_GOOD = """\
import time


def bench():
    started = time.perf_counter()
    run()
    elapsed = time.perf_counter() - started
    record(timestamp=time.time(), elapsed=elapsed)
    return {"at": time.time(), "elapsed": elapsed}
"""


class TestWallClock:
    def test_flags_stopwatch_assignment_and_subtraction(self):
        findings = lint_source(WALLCLOCK_BAD, module="bench/runner.py")
        assert rules(findings) == ["wallclock", "wallclock"]
        assert lines(findings) == [5, 7]

    def test_epoch_timestamp_uses_are_clean(self):
        assert lint_source(WALLCLOCK_GOOD, module="bench/runner.py") == []

    def test_bare_time_import_is_flagged(self):
        src = (
            "from time import time\n"
            "def go():\n"
            "    t0 = time()\n"
        )
        findings = lint_source(src, module="bench/shard.py")
        assert rules(findings) == ["wallclock"]
        assert findings[0].symbol == "go"

    def test_non_stopwatch_name_is_clean(self):
        src = (
            "import time\n"
            "def stamp():\n"
            "    created_at = time.time()\n"
            "    return created_at\n"
        )
        assert lint_source(src, module="ethereum/chain.py") == []


# -- multiproof-batched-path --------------------------------------------------

MULTIPROOF_BAD = """\
from repro.core.mbtree import MerklePath, PathStep


def rebuild(entry, steps):
    parts = [PathStep(index=i, before=(), after=()) for i in steps]
    return MerklePath(steps=tuple(parts))
"""

MULTIPROOF_SUPPRESSED = """\
from repro.core.mbtree import MerklePath


def legacy_decode(steps):
    # reprolint: disable-next-line=multiproof-batched-path
    return MerklePath(steps=steps)
"""


class TestMultiproofBatchedPath:
    def test_flags_path_construction_in_query_pipeline(self):
        findings = lint_source(MULTIPROOF_BAD, module="core/query/codec.py")
        assert rules(findings) == [
            "multiproof-batched-path",
            "multiproof-batched-path",
        ]
        assert lines(findings) == [5, 6]
        assert findings[0].symbol == "rebuild"

    def test_flags_sp_frontend(self):
        src = "proof = MerklePath(steps=())\n"
        findings = lint_source(src, module="core/sp_frontend.py")
        assert rules(findings) == ["multiproof-batched-path"]

    def test_multiproof_module_is_out_of_scope(self):
        assert lint_source(MULTIPROOF_BAD, module="core/multiproof.py") == []

    def test_mbtree_itself_is_out_of_scope(self):
        assert lint_source(MULTIPROOF_BAD, module="core/mbtree.py") == []

    def test_suppression_comment_is_honoured(self):
        findings = lint_source(
            MULTIPROOF_SUPPRESSED, module="core/query/codec.py"
        )
        assert findings == []

    def test_unrelated_calls_are_clean(self):
        src = "vo = QueryVO(conjuncts=())\n"
        assert lint_source(src, module="core/query/vo.py") == []


# -- flatbuf-node-storage -----------------------------------------------------

FLATBUF_BAD = """\
class LeafNode:
    def __init__(self, entries):
        self.entries = entries


def _rehash(view, index):
    entries = [Entry(key=k, value_hash=h) for k, h in view.slots(index)]
    return LeafNode(entries)
"""

FLATBUF_GOOD = """\
def _rehash(view, index):
    view.set_digest(index, leaf_digest(_leaf_digests(view, index)))


def iter_entries(view, index):
    for slot in range(view.count(index)):
        yield Entry(
            key=view.leaf_key(index, slot),
            value_hash=view.leaf_value_hash(index, slot),
        )
"""


class TestFlatbufNodeStorage:
    def test_flags_node_class_and_hot_path_entries(self):
        findings = lint_source(FLATBUF_BAD, module="core/mbtree.py")
        assert rules(findings) == [
            "flatbuf-node-storage",
            "flatbuf-node-storage",
            "flatbuf-node-storage",
        ]
        assert lines(findings) == [1, 7, 8]

    def test_read_side_entry_materialisation_is_clean(self):
        assert lint_source(FLATBUF_GOOD, module="core/mbtree.py") == []

    def test_other_modules_are_out_of_scope(self):
        assert lint_source(FLATBUF_BAD, module="baselines/gem2.py") == []
