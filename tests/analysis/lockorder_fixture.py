"""Deliberate lock-order inversion, used as a detection fixture.

``first()`` acquires ``_lock_a`` then ``_lock_b``; ``second()`` acquires
them in the opposite order.  Two threads running one function each can
deadlock — the static ``lock-order`` rule must find the cycle in this
file, and the runtime sanitizer must flag the inversion when both
functions execute (see ``test_concurrency.py`` / ``test_sanitize.py``).

This module is a *fixture*: it is imported by tests, never by ``repro``.
"""

from __future__ import annotations

import threading

_lock_a = threading.Lock()
_lock_b = threading.Lock()

#: Written under both locks; gives the critical sections a body.
_events: list[str] = []


def first() -> None:
    """A-then-B: one half of the inversion."""
    with _lock_a:
        with _lock_b:
            _events.append("first")


def second() -> None:
    """B-then-A: the other half."""
    with _lock_b:
        with _lock_a:
            _events.append("second")


def use_locks(lock_a: threading.Lock, lock_b: threading.Lock) -> None:
    """Re-bind the module locks (lets tests swap in sanitized locks)."""
    global _lock_a, _lock_b
    _lock_a, _lock_b = lock_a, lock_b
