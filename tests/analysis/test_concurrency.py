"""Tests for the cross-module concurrency rules.

Each sub-rule of ``lock-order``, ``fork-safety`` and ``pipe-protocol``
gets a triggering fixture and a clean counterpart.  The fixtures mirror
the architectural shapes of the real tree (facade rwlock, per-worker
pipe locks, the affine pool's pending/drain protocol) so the rules keep
guarding the idioms they were written for.
"""

import os

from repro.analysis import lint_source, run_lint
from repro.analysis.framework import default_checkers

FIXTURE = os.path.join(os.path.dirname(__file__), "lockorder_fixture.py")


def rules(findings):
    return [f.rule for f in findings]


def order_checkers():
    return default_checkers(["lock-order"])


def fork_checkers():
    return default_checkers(["fork-safety"])


def pipe_checkers():
    return default_checkers(["pipe-protocol"])


# -- lock-order ---------------------------------------------------------------

INVERSION = """\
import threading

_lock_a = threading.Lock()
_lock_b = threading.Lock()


def first():
    with _lock_a:
        with _lock_b:
            pass


def second():
    with _lock_b:
        with _lock_a:
            pass
"""

SELF_DEADLOCK = """\
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            pass
"""

RLOCK_REENTRY = SELF_DEADLOCK.replace("threading.Lock()", "threading.RLock()")

UNORDERED_LOOP = """\
import threading


class Pool:
    def __init__(self):
        self._locks: dict[int, threading.Lock] = {}

    def grab(self, wanted):
        for shard in {s for s in wanted}:
            self._locks[shard].acquire()
"""

SORTED_LOOP = """\
import threading


class Pool:
    def __init__(self):
        self._locks: dict[int, threading.Lock] = {}

    def grab(self, wanted):
        for shard in sorted(wanted):
            self._locks[shard].acquire()
"""


class TestLockOrder:
    def test_inversion_cycle_across_functions(self):
        findings = lint_source(INVERSION, "fix_inv.py", order_checkers())
        assert rules(findings) == ["lock-order"]
        assert "lock-order cycle" in findings[0].message
        assert "_lock_a" in findings[0].message
        assert "_lock_b" in findings[0].message

    def test_consistent_order_is_clean(self):
        consistent = INVERSION.replace(
            "with _lock_b:\n        with _lock_a:",
            "with _lock_a:\n        with _lock_b:",
        )
        assert lint_source(consistent, "fix_ok.py", order_checkers()) == []

    def test_mutex_self_deadlock_through_call(self):
        findings = lint_source(SELF_DEADLOCK, "fix_self.py", order_checkers())
        assert rules(findings) == ["lock-order"]
        assert "already held" in findings[0].message
        assert findings[0].symbol == "Box.outer"

    def test_rlock_reentry_is_clean(self):
        assert lint_source(RLOCK_REENTRY, "fix_re.py", order_checkers()) == []

    def test_unordered_per_element_iteration(self):
        findings = lint_source(UNORDERED_LOOP, "fix_uno.py", order_checkers())
        assert rules(findings) == ["lock-order"]
        assert "unordered container" in findings[0].message

    def test_sorted_per_element_iteration_is_clean(self):
        assert lint_source(SORTED_LOOP, "fix_srt.py", order_checkers()) == []

    def test_fixture_module_detected_from_disk(self):
        result = run_lint([FIXTURE], order_checkers())
        assert rules(result.findings) == ["lock-order"]
        assert "lock-order cycle" in result.findings[0].message


# -- fork-safety --------------------------------------------------------------

HELD_AT_FORK = """\
import threading


class Spawner:
    def __init__(self):
        self._lock = threading.Lock()

    def go(self, ctx):
        with self._lock:
            process = ctx.Process(target=print)
            process.start()
"""

SEND_UNDER_LOCK = """\
import threading


class Endpoint:
    def __init__(self, conn):
        self.conn = conn


class Manager:
    def __init__(self, endpoint: Endpoint):
        self._lock = threading.Lock()
        self.endpoint = endpoint

    def push(self, data):
        with self._lock:
            self.endpoint.conn.send_bytes(data)
"""

TRANSITIVE_SEND = """\
import threading


class Endpoint:
    def __init__(self, conn):
        self.conn = conn

    def ship(self, data):
        self.conn.send_bytes(data)


class Manager:
    def __init__(self, endpoint: Endpoint):
        self._lock = threading.Lock()
        self.endpoint = endpoint

    def push(self, data):
        with self._lock:
            self.endpoint.ship(data)
"""

FORK_WINDOW = """\
import threading


class Boot:
    def start(self, ctx):
        parent_conn, child_conn = ctx.Pipe()
        other_lock = threading.Lock()
        other_lock.acquire()
        other_lock.release()
        process = ctx.Process(target=print)
        process.start()
"""

LOCK_IN_PAYLOAD = """\
import threading
from repro.sp.affine import guarded_dumps


class Holder:
    def __init__(self):
        self._lock = threading.Lock()

    def pack(self):
        return guarded_dumps((1, self._lock))
"""

PIPE_LOCK_EXEMPT = """\
import threading


class Endpoint:
    def __init__(self, conn):
        self.conn = conn
        self.lock = threading.Lock()

    def push(self, data):
        with self.lock:
            self.conn.send_bytes(data)
"""


class TestForkSafety:
    def test_fork_while_holding_lock(self):
        findings = lint_source(HELD_AT_FORK, "fix_fork.py", fork_checkers())
        assert rules(findings) == ["fork-safety"]
        assert "Process.start()" in findings[0].message

    def test_send_under_unrelated_lock(self):
        findings = lint_source(SEND_UNDER_LOCK, "fix_send.py", fork_checkers())
        assert rules(findings) == ["fork-safety"]
        assert "blocking Connection.send_bytes" in findings[0].message

    def test_transitive_send_through_callee(self):
        findings = lint_source(TRANSITIVE_SEND, "fix_ts.py", fork_checkers())
        assert rules(findings) == ["fork-safety"]
        assert "can block on a pipe" in findings[0].message
        assert findings[0].symbol == "Manager.push"

    def test_lock_acquired_in_fork_window(self):
        findings = lint_source(FORK_WINDOW, "fix_win.py", fork_checkers())
        assert rules(findings) == ["fork-safety"]
        assert "between pipe setup and" in findings[0].message

    def test_lock_in_guarded_dumps_payload(self):
        findings = lint_source(LOCK_IN_PAYLOAD, "fix_pay.py", fork_checkers())
        assert rules(findings) == ["fork-safety"]
        assert "guarded_dumps payload" in findings[0].message

    def test_conn_owning_lock_is_exempt(self):
        # The _Worker shape: a lock whose class owns the pipe endpoint
        # exists to serialise pipe access and may be held across sends.
        assert lint_source(PIPE_LOCK_EXEMPT, "fix_ok.py", fork_checkers()) == []


# -- pipe-protocol ------------------------------------------------------------

UNACCOUNTED_SEND = """\
class Pool:
    def blast(self, payload):
        for worker in self.workers:
            worker.conn.send_bytes(payload)
"""

SEND_WITHOUT_APPEND = """\
from collections import deque


class Pool:
    def blast(self, payload):
        pending = deque()
        for worker in self.workers:
            worker.conn.send_bytes(payload)
        while pending:
            pending.popleft()
"""

NO_DRAIN = """\
from collections import deque


class Pool:
    def blast(self, payload):
        pending = deque()
        for index, worker in enumerate(self.workers):
            worker.conn.send_bytes(payload)
            pending.append(index)
"""

DRAIN_IN_TRY = """\
from collections import deque


class Pool:
    def blast(self, payload):
        pending = deque()
        try:
            for index, worker in enumerate(self.workers):
                worker.conn.send_bytes(payload)
                pending.append(index)
            while pending:
                self.read_reply(pending)
        except ValueError:
            pass
"""

POP_MISMATCH = """\
class Pool:
    def read_two(self, pending, shard):
        raw = self.workers[shard].conn.recv_bytes()
        more = self.workers[shard].conn.recv_bytes()
        pending.popleft()
        return raw, more
"""

PROTOCOL_CLEAN = """\
from collections import deque


class Pool:
    def read_reply(self, pending, shard):
        raw = self.workers[shard].conn.recv_bytes()
        index = pending.popleft()
        return index, raw

    def blast(self, payload):
        pending = deque()
        try:
            for index, worker in enumerate(self.workers):
                worker.conn.send_bytes(payload)
                pending.append(index)
        except ValueError:
            pass
        while pending:
            self.read_reply(pending, 0)

    def handshake(self):
        self.conn.send_bytes(b"hello")
        if self.conn.poll(5.0):
            self.conn.recv_bytes()
"""


class TestPipeProtocol:
    def test_send_with_no_accounting(self):
        findings = lint_source(UNACCOUNTED_SEND, "sp/fix_a.py", pipe_checkers())
        assert rules(findings) == ["pipe-protocol"]
        assert "no reply accounting" in findings[0].message

    def test_send_not_followed_by_append(self):
        findings = lint_source(
            SEND_WITHOUT_APPEND, "sp/fix_b.py", pipe_checkers()
        )
        assert rules(findings) == ["pipe-protocol"]
        assert "not followed by a pending append" in findings[0].message

    def test_accounted_sends_without_drain(self):
        findings = lint_source(NO_DRAIN, "sp/fix_c.py", pipe_checkers())
        assert rules(findings) == ["pipe-protocol"]
        assert "drain loop" in findings[0].message

    def test_drain_inside_guarding_try(self):
        findings = lint_source(DRAIN_IN_TRY, "sp/fix_d.py", pipe_checkers())
        assert rules(findings) == ["pipe-protocol"]
        assert "inside the same try" in findings[0].message

    def test_recv_pop_mismatch(self):
        findings = lint_source(POP_MISMATCH, "sp/fix_e.py", pipe_checkers())
        assert rules(findings) == ["pipe-protocol"]
        assert "2 pipe recv(s) but 1 pending pop(s)" in findings[0].message

    def test_drain_after_try_is_clean(self):
        assert lint_source(PROTOCOL_CLEAN, "sp/fix_f.py", pipe_checkers()) == []

    def test_rule_is_scoped_to_sp(self):
        assert (
            lint_source(UNACCOUNTED_SEND, "core/fix_a.py", pipe_checkers())
            == []
        )


# -- the real tree ------------------------------------------------------------


class TestRealTree:
    def test_src_repro_is_clean(self):
        here = os.path.dirname(__file__)
        src = os.path.abspath(os.path.join(here, "..", "..", "src", "repro"))
        checkers = default_checkers(
            ["lock-order", "fork-safety", "pipe-protocol"]
        )
        result = run_lint([src], checkers)
        assert result.errors == []
        assert result.findings == []
