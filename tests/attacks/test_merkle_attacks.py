"""Adversarial tests for the Merkle family (Definitions 1-2, Theorem 2).

Each test plays a malicious SP: it takes an honestly produced answer,
mutates it the way an attacker would, and asserts that client-side
verification rejects it with a :class:`VerificationError`.
"""

import dataclasses

import pytest

from repro import DataObject, HybridStorageSystem, KeywordQuery
from repro.core.query.verify import verify_query
from repro.core.query.vo import ConjunctiveVO, QueryVO
from repro.crypto.hashing import sha3
from repro.errors import VerificationError


@pytest.fixture()
def system(small_docs):
    sys_ = HybridStorageSystem(scheme="smi", seed=5)
    sys_.add_objects(small_docs)
    return sys_


def honest_answer(system, text):
    query = KeywordQuery.parse(text)
    answer = system.process_query(query)
    ps = system.chain_proof_system(query.all_keywords())
    return query, answer, ps


def expect_rejection(query, answer, ps):
    with pytest.raises(VerificationError):
        verify_query(query, answer, ps)


class TestSoundnessAttacks:
    def test_extra_result_injected(self, system):
        query, answer, ps = honest_answer(system, "covid-19 AND symptom")
        answer.result_ids = sorted(set(answer.result_ids) | {5})
        answer.objects[5] = system.store.get(5)
        expect_rejection(query, answer, ps)

    def test_result_object_substituted(self, system):
        query, answer, ps = honest_answer(system, "covid-19 AND symptom")
        answer.objects[4] = DataObject(4, ("covid-19", "symptom"), b"FORGED")
        expect_rejection(query, answer, ps)

    def test_entry_hash_tampered(self, system):
        query, answer, ps = honest_answer(system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        rnd = base.rounds[0]
        assert rnd.lower is not None
        forged_round = dataclasses.replace(
            rnd,
            lower=dataclasses.replace(rnd.lower, object_hash=sha3(b"evil")),
        )
        forged_base = dataclasses.replace(
            base, rounds=(forged_round,) + base.rounds[1:]
        )
        forged_conj = dataclasses.replace(
            answer.vo.conjuncts[0], base=forged_base
        )
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        expect_rejection(query, answer, ps)


class TestCompletenessAttacks:
    def test_dropped_result_round(self, system):
        """Omitting the round that matched object 4 must be detected."""
        query, answer, ps = honest_answer(system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        match_index = next(
            i
            for i, rnd in enumerate(base.rounds)
            if rnd.lower is not None and rnd.lower.object_id == 4
        )
        pruned = base.rounds[:match_index] + base.rounds[match_index + 1 :]
        forged_base = dataclasses.replace(base, rounds=pruned)
        forged_conj = dataclasses.replace(
            answer.vo.conjuncts[0], base=forged_base
        )
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        answer.result_ids = []
        answer.objects = {}
        expect_rejection(query, answer, ps)

    def test_truncated_join_without_terminal(self, system):
        query, answer, ps = honest_answer(system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        forged_base = dataclasses.replace(base, rounds=base.rounds[:1])
        forged_conj = dataclasses.replace(
            answer.vo.conjuncts[0], base=forged_base
        )
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        expect_rejection(query, answer, ps)

    def test_false_empty_keyword_claim(self, system):
        query, answer, ps = honest_answer(system, "covid-19 AND symptom")
        forged_conj = ConjunctiveVO(
            keywords=answer.vo.conjuncts[0].keywords,
            empty_keyword="symptom",
        )
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        answer.result_ids = []
        answer.objects = {}
        expect_rejection(query, answer, ps)

    def test_full_scan_with_dropped_entry(self, system):
        query, answer, ps = honest_answer(system, "symptom")
        scan = answer.vo.conjuncts[0].base
        pruned = dataclasses.replace(
            scan, entries=scan.entries[:1] + scan.entries[2:]
        )
        forged_conj = dataclasses.replace(answer.vo.conjuncts[0], base=pruned)
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        answer.result_ids = [e.object_id for e in pruned.entries]
        answer.objects = {
            oid: system.store.get(oid) for oid in answer.result_ids
        }
        expect_rejection(query, answer, ps)

    def test_full_scan_truncated_tail(self, system):
        query, answer, ps = honest_answer(system, "symptom")
        scan = answer.vo.conjuncts[0].base
        pruned = dataclasses.replace(scan, entries=scan.entries[:-1])
        forged_conj = dataclasses.replace(answer.vo.conjuncts[0], base=pruned)
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        answer.result_ids = [e.object_id for e in pruned.entries]
        answer.objects = {
            oid: system.store.get(oid) for oid in answer.result_ids
        }
        expect_rejection(query, answer, ps)

    def test_semi_join_probe_omitted(self, small_docs):
        system = HybridStorageSystem(scheme="smi", seed=5, join_plan="semijoin")
        system.add_objects(small_docs)
        query, answer, ps = honest_answer(
            system, "covid-19 AND symptom AND vaccine"
        )
        conj = answer.vo.conjuncts[0]
        assert conj.stages, "expected a 3-way join with a semi-join stage"
        stage = conj.stages[0]
        pruned_stage = dataclasses.replace(stage, probes=stage.probes[:-1])
        forged_conj = dataclasses.replace(conj, stages=(pruned_stage,))
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        expect_rejection(query, answer, ps)

    def test_stale_index_answer_rejected(self, system):
        """A response computed before new insertions must not verify."""
        query = KeywordQuery.parse("covid-19 AND symptom")
        stale_answer = system.process_query(query)
        # New matching object arrives on-chain after the SP answered.
        system.add_object(
            DataObject(13, ("covid-19", "symptom"), b"new-arrival")
        )
        fresh_ps = system.chain_proof_system(query.all_keywords())
        with pytest.raises(VerificationError):
            verify_query(query, stale_answer, fresh_ps)


class TestWalkScheduleAttacks:
    """The cyclic walk's deterministic schedule is itself enforced."""

    def test_wrong_probe_tree_rejected(self, system):
        query, answer, ps = honest_answer(
            system, "covid-19 AND symptom AND vaccine"
        )
        base = answer.vo.conjuncts[0].base
        rnd = base.rounds[0]
        forged_round = dataclasses.replace(
            rnd, probe_tree=(rnd.probe_tree + 1) % len(base.trees)
        )
        forged_base = dataclasses.replace(
            base, rounds=(forged_round,) + base.rounds[1:]
        )
        forged_conj = dataclasses.replace(
            answer.vo.conjuncts[0], base=forged_base
        )
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        expect_rejection(query, answer, ps)

    def test_reordered_rounds_rejected(self, system):
        query, answer, ps = honest_answer(system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        if len(base.rounds) < 3:
            import pytest as _pytest

            _pytest.skip("walk too short to reorder")
        swapped = (
            (base.rounds[1], base.rounds[0]) + base.rounds[2:]
        )
        forged_base = dataclasses.replace(base, rounds=swapped)
        forged_conj = dataclasses.replace(
            answer.vo.conjuncts[0], base=forged_base
        )
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        expect_rejection(query, answer, ps)

    def test_duplicate_tree_list_rejected(self, system):
        query, answer, ps = honest_answer(system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        forged_base = dataclasses.replace(
            base, trees=(base.trees[0], base.trees[0])
        )
        forged_conj = dataclasses.replace(
            answer.vo.conjuncts[0],
            base=forged_base,
            keywords=(base.trees[0],),
        )
        answer.vo = QueryVO(conjuncts=(forged_conj,))
        other = KeywordQuery.parse(base.trees[0])
        with pytest.raises(VerificationError):
            verify_query(other, answer, ps)
