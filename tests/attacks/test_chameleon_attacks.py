"""Adversarial tests for the Chameleon family (Section VI, Theorem 2)."""

import dataclasses

import pytest

from repro import DataObject, HybridStorageSystem, KeywordQuery
from repro.core.chameleon import MembershipProof
from repro.core.query.verify import verify_query
from repro.core.query.vo import JoinRound, QueryVO
from repro.errors import VerificationError


@pytest.fixture(scope="module")
def ci_system():
    sys_ = HybridStorageSystem(scheme="ci", cvc_modulus_bits=512, seed=5)
    _fill(sys_)
    return sys_


@pytest.fixture(scope="module")
def cis_system():
    sys_ = HybridStorageSystem(
        scheme="ci*", cvc_modulus_bits=512, seed=5, bloom_capacity=4
    )
    _fill(sys_)
    return sys_


def _fill(system):
    table = {
        1: ("covid-19", "sars-cov-2"),
        2: ("covid-19",),
        4: ("covid-19", "symptom", "vaccine"),
        5: ("covid-19", "vaccine"),
        6: ("symptom",),
        7: ("covid-19",),
        8: ("covid-19", "vaccine"),
        9: ("symptom",),
        10: ("covid-19",),
        11: ("symptom",),
        12: ("covid-19",),
    }
    for oid, kws in table.items():
        system.add_object(DataObject(oid, kws, b"c%d" % oid))


def honest_answer(system, text):
    query = KeywordQuery.parse(text)
    answer = system.process_query(query)
    ps = system.chain_proof_system(query.all_keywords())
    return query, answer, ps


def replace_round(answer, index, new_round):
    base = answer.vo.conjuncts[0].base
    rounds = base.rounds[:index] + (new_round,) + base.rounds[index + 1 :]
    forged_base = dataclasses.replace(base, rounds=rounds)
    forged_conj = dataclasses.replace(answer.vo.conjuncts[0], base=forged_base)
    answer.vo = QueryVO(conjuncts=(forged_conj,))


class TestChameleonSoundness:
    def test_forged_entry_hash(self, ci_system):
        query, answer, ps = honest_answer(ci_system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        rnd = base.rounds[0]
        forged = dataclasses.replace(
            rnd,
            lower=dataclasses.replace(
                rnd.lower, object_hash=b"\x13" * 32
            ),
        )
        replace_round(answer, 0, forged)
        with pytest.raises(VerificationError):
            verify_query(query, answer, ps)

    def test_forged_position_claim(self, ci_system):
        query, answer, ps = honest_answer(ci_system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        rnd = base.rounds[0]
        proof = rnd.lower.proof
        assert isinstance(proof, MembershipProof)
        forged_proof = dataclasses.replace(proof, position=proof.position + 1)
        forged = dataclasses.replace(
            rnd,
            lower=dataclasses.replace(rnd.lower, proof=forged_proof),
        )
        replace_round(answer, 0, forged)
        with pytest.raises(VerificationError):
            verify_query(query, answer, ps)

    def test_commitment_substitution(self, ci_system):
        query, answer, ps = honest_answer(ci_system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        rnd = base.rounds[0]
        proof = rnd.lower.proof
        forged_proof = dataclasses.replace(
            proof, entry_commitment=proof.entry_commitment + 1
        )
        forged = dataclasses.replace(
            rnd, lower=dataclasses.replace(rnd.lower, proof=forged_proof)
        )
        replace_round(answer, 0, forged)
        with pytest.raises(VerificationError):
            verify_query(query, answer, ps)


class TestChameleonCompleteness:
    def test_stale_count_detected(self, ci_system):
        """An answer over an outdated cnt fails the termination check."""
        query = KeywordQuery.parse("covid-19 AND vaccine")
        stale = ci_system.process_query(query)
        ci_system.add_object(
            DataObject(20, ("covid-19", "vaccine"), b"late")
        )
        fresh_ps = ci_system.chain_proof_system(query.all_keywords())
        with pytest.raises(VerificationError):
            verify_query(query, stale, fresh_ps)

    def test_skipped_boundary_positions(self, ci_system):
        """Boundaries must be positionally adjacent (no hidden results)."""
        query, answer, ps = honest_answer(ci_system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        # Find a probe round with both boundaries, then widen the gap by
        # replacing the lower boundary with its predecessor's proof.
        sp_index = ci_system.sp_index
        for i, rnd in enumerate(base.rounds):
            if rnd.lower is None or rnd.upper is None:
                continue
            probed_kw = base.trees[rnd.probe_tree]
            tree = sp_index.trees[probed_kw]
            pos = rnd.lower.proof.position
            if pos < 2:
                continue
            entry = tree.entry_at(pos - 1)
            proof = tree.prove_membership(pos - 1)
            forged = dataclasses.replace(
                rnd,
                lower=dataclasses.replace(
                    rnd.lower,
                    object_id=entry.key,
                    object_hash=entry.value_hash,
                    proof=proof,
                ),
            )
            replace_round(answer, i, forged)
            with pytest.raises(VerificationError):
                verify_query(query, answer, ps)
            return
        pytest.skip("no widenable round in this corpus")


class TestBloomSkipAttacks:
    def test_false_absence_claim_rejected(self, cis_system):
        """A skip round for a PRESENT target must fail the Bloom check."""
        query, answer, ps = honest_answer(cis_system, "covid-19 AND symptom")
        base = answer.vo.conjuncts[0].base
        # Object 4 is in both trees; forge a skip round claiming it is
        # absent from the probed tree at the round where it is a target.
        target_kw = base.trees[0]
        sp_index = cis_system.sp_index
        tree = sp_index.trees[target_kw]
        first = answer.vo.conjuncts[0].base.first_target
        succ_pos = first.proof.position + 1
        if succ_pos <= tree.count:
            entry = tree.entry_at(succ_pos)
            nxt = dataclasses.replace(
                first,
                object_id=entry.key,
                object_hash=entry.value_hash,
                proof=tree.prove_membership(succ_pos),
            )
        else:
            nxt = None
        forged = JoinRound(kind="skip", next_target=nxt)
        replace_round(answer, 0, forged)
        with pytest.raises(VerificationError):
            verify_query(query, answer, ps)

    def test_queries_verify_with_blooms(self, cis_system):
        """Sanity: honest CI* answers with skip rounds pass end to end."""
        result = cis_system.query("covid-19 AND symptom")
        assert result.result_ids == [4]
        result = cis_system.query("sars-cov-2 AND vaccine")
        assert result.result_ids == []
