"""Unit tests for the synthetic corpus generators."""

import pytest

from repro.datasets.synthetic import (
    DBLP_SPEC,
    TWITTER_SPEC,
    DatasetSpec,
    SyntheticDataset,
    dblp_like,
    twitter_like,
)
from repro.errors import DatasetError


class TestSpecValidation:
    def test_vocabulary_must_cover_keywords(self):
        with pytest.raises(DatasetError):
            DatasetSpec(
                name="x", vocabulary_size=5, zipf_s=1.0,
                keywords_mean=3, keywords_std=1, keywords_min=2,
                keywords_max=10,
            )

    def test_keyword_range_validated(self):
        with pytest.raises(DatasetError):
            DatasetSpec(
                name="x", vocabulary_size=100, zipf_s=1.0,
                keywords_mean=3, keywords_std=1, keywords_min=5,
                keywords_max=2,
            )

    def test_heaps_vocabulary_grows_with_corpus(self):
        small = TWITTER_SPEC.effective_vocabulary(100)
        large = TWITTER_SPEC.effective_vocabulary(10_000)
        assert small < large
        assert large <= TWITTER_SPEC.vocabulary_size


class TestGeneration:
    def test_deterministic(self):
        a = twitter_like(50, seed=3).materialise()
        b = twitter_like(50, seed=3).materialise()
        assert [o.digest() for o in a] == [o.digest() for o in b]

    def test_seeds_differ(self):
        a = twitter_like(50, seed=3).materialise()
        b = twitter_like(50, seed=4).materialise()
        assert [o.digest() for o in a] != [o.digest() for o in b]

    def test_ids_monotonic_from_one(self):
        objs = dblp_like(30).materialise()
        assert [o.object_id for o in objs] == list(range(1, 31))

    def test_keyword_counts_in_spec_range(self):
        for spec, maker in ((DBLP_SPEC, dblp_like), (TWITTER_SPEC, twitter_like)):
            for obj in maker(80).objects():
                assert spec.keywords_min <= len(obj.keywords) <= spec.keywords_max

    def test_zipf_concentration(self):
        """Top keywords must dominate occurrences (rank/frequency law)."""
        dataset = twitter_like(300, seed=2)
        counts: dict[str, int] = {}
        for obj in dataset.objects():
            for kw in obj.keywords:
                counts[kw] = counts.get(kw, 0) + 1
        top = set(dataset.top_keywords(10))
        top_mass = sum(counts.get(k, 0) for k in top)
        total = sum(counts.values())
        assert top_mass / total > 0.2

    def test_rejects_negative_size(self):
        with pytest.raises(DatasetError):
            SyntheticDataset(TWITTER_SPEC, -1)

    def test_top_keywords_clamped(self):
        dataset = twitter_like(20)
        assert len(dataset.top_keywords(10**6)) == dataset.vocabulary

    def test_empty_corpus(self):
        assert twitter_like(0).materialise() == []
