"""Unit tests for the query workload generators."""

import pytest

from repro.datasets.synthetic import twitter_like
from repro.datasets.workloads import ConjunctiveWorkload, DisjunctiveWorkload
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def dataset():
    return twitter_like(100, seed=5)


class TestConjunctiveWorkload:
    def test_keyword_count_respected(self, dataset):
        workload = ConjunctiveWorkload(dataset=dataset, num_keywords=4)
        for query in workload.queries(10):
            assert len(query.conjunctions) == 1
            assert len(query.conjunctions[0]) == 4

    def test_keywords_from_top_pool(self, dataset):
        workload = ConjunctiveWorkload(
            dataset=dataset, num_keywords=3, pool_size=20
        )
        pool = set(dataset.top_keywords(20))
        for query in workload.queries(10):
            assert query.conjunctions[0] <= pool

    def test_deterministic(self, dataset):
        w1 = ConjunctiveWorkload(dataset=dataset, num_keywords=2, seed=9)
        w2 = ConjunctiveWorkload(dataset=dataset, num_keywords=2, seed=9)
        assert list(w1.queries(5)) == list(w2.queries(5))

    def test_rejects_zero_keywords(self, dataset):
        with pytest.raises(DatasetError):
            ConjunctiveWorkload(dataset=dataset, num_keywords=0)

    def test_rejects_pool_smaller_than_query(self, dataset):
        with pytest.raises(DatasetError):
            ConjunctiveWorkload(dataset=dataset, num_keywords=50, pool_size=10)


class TestDisjunctiveWorkload:
    def test_shape(self, dataset):
        workload = DisjunctiveWorkload(
            dataset=dataset, num_conjunctions=3, keywords_per_conjunction=2
        )
        for query in workload.queries(5):
            assert len(query.conjunctions) <= 3  # absorption may merge
            for conj in query.conjunctions:
                assert len(conj) == 2

    def test_rejects_zero_conjunctions(self, dataset):
        with pytest.raises(DatasetError):
            DisjunctiveWorkload(
                dataset=dataset,
                num_conjunctions=0,
                keywords_per_conjunction=2,
            )
