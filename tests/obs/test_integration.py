"""End-to-end observability: span trees and live gas counters per scheme."""

from __future__ import annotations

import pytest

from repro import DataObject, HybridStorageSystem, obs
from repro.sp.protocol import (
    ERR_QUERY,
    QueryRequest,
    QueryResponse,
    StorageProviderServer,
)

SCHEMES = ("mi", "smi", "ci", "ci*")

DOCS = [
    DataObject(1, ("covid-19", "sars-cov-2"), b"a"),
    DataObject(2, ("covid-19",), b"b"),
    DataObject(4, ("covid-19", "symptom", "vaccine"), b"c"),
    DataObject(5, ("covid-19", "vaccine"), b"d"),
    DataObject(6, ("symptom",), b"e"),
]


def _build(scheme: str) -> HybridStorageSystem:
    return HybridStorageSystem(scheme=scheme, cvc_modulus_bits=512, seed=8)


#: Maintenance span each scheme's contract must emit during inserts.
MAINTENANCE_SPANS = {
    "mi": "maintain.mi.insert",
    "smi": "maintain.smi.insert",
    "ci": "maintain.ci.insert",
    "ci*": "maintain.ci*.bloom",
}


@pytest.mark.parametrize("scheme", SCHEMES)
class TestPerScheme:
    def test_query_span_tree(self, scheme):
        system = _build(scheme)
        system.add_objects(DOCS)
        with obs.collect() as col:
            result = system.query("covid-19 AND vaccine")
        assert result.result_ids == [4, 5]
        by_name = {s.name: s for s in col.spans}
        root = by_name["query"]
        assert root.parent_id is None
        for phase in ("query.parse", "query.sp", "query.chain", "query.verify"):
            span = by_name[phase]
            assert span.parent_id == root.span_id, phase
            assert span.duration_s > 0, phase
        assert by_name["query.sp.join"].parent_id == by_name["query.sp"].span_id
        assert root.attributes["scheme"] == scheme
        assert root.attributes["results"] == 2
        assert root.attributes["vo_bytes"] == result.vo_total_bytes

    def test_live_gas_counters_match_receipts(self, scheme):
        with obs.collect() as col:
            system = _build(scheme)
            reports = system.add_objects(DOCS)
            snap = col.metrics.snapshot()
        meter = system.maintenance_meter()
        # Receipt-derived Table III accounting == live counters, exactly.
        # (A category with zero charges never creates its counter: the CI
        # scheme performs no storage reads at all.)
        write = snap.get("gas.write", 0)
        read = snap.get("gas.read", 0)
        others = snap.get("gas.others", 0)
        assert write == meter.write_gas
        assert read == meter.read_gas
        assert others == meter.other_gas
        assert (
            write + read + others
            == snap["gas.total"]
            == meter.total
            == sum(r.gas for r in reports)
        )
        # The per-op split is also rebuilt exactly from gas.op.* counters.
        for op, amount in meter.by_operation.items():
            assert snap[f"gas.op.{op}"] == amount

    def test_maintenance_spans_emitted(self, scheme):
        with obs.collect() as col:
            system = _build(scheme)
            system.add_objects(DOCS)
        names = {s.name for s in col.spans}
        assert MAINTENANCE_SPANS[scheme] in names
        assert "insert" in names
        assert "chain.tx" in names
        # Every chain.tx span nests under an insert span.
        by_id = {s.span_id: s for s in col.spans}
        for span in col.spans:
            if span.name == "chain.tx":
                assert by_id[span.parent_id].name == "insert"

    def test_insert_metrics(self, scheme):
        with obs.collect() as col:
            system = _build(scheme)
            system.add_objects(DOCS)
            snap = col.metrics.snapshot()
        assert snap["insert.count"] == len(DOCS)
        assert snap["insert.gas"]["count"] == len(DOCS)
        assert snap["insert.gas"]["sum"] == snap["gas.total"]
        assert snap["chain.tx.count"] == len(DOCS) * (
            2 if scheme == "smi" else 1
        )


class TestNullSinkPath:
    def test_system_runs_unobserved(self):
        assert obs.current() is None
        system = _build("ci*")
        system.add_objects(DOCS)
        result = system.query("covid-19 AND vaccine")
        assert result.result_ids == [4, 5]
        # Still null-sink afterwards; nothing was installed as a side effect.
        assert obs.current() is None
        assert obs.span("x") is obs.NULL_SPAN


class TestSPProtocolTelemetry:
    def test_request_counters_and_error_code(self):
        system = _build("smi")
        system.add_objects(DOCS)
        server = StorageProviderServer(system)
        with obs.collect() as col:
            ok = QueryResponse.decode(
                server.handle(QueryRequest("covid-19 AND vaccine").encode())
            )
            bad = QueryResponse.decode(
                server.handle(QueryRequest("covid-19 AND NOT x").encode())
            )
            snap = col.metrics.snapshot()
        assert ok.error is None
        assert bad.error is not None
        assert bad.error_code == ERR_QUERY
        assert snap["sp.requests"] == 2
        assert snap["sp.errors"] == 1
        assert snap["sp.request_bytes"] > 0
        assert snap["sp.response_bytes"] > 0
        spans = [s for s in col.spans if s.name == "sp.request"]
        assert len(spans) == 2
        assert any(s.attributes.get("error") == "query" for s in spans)
