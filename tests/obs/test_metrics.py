"""Unit tests for the metrics registry: buckets, snapshot, merge, reset."""

from __future__ import annotations

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("gas.total").inc(5)
        reg.counter("gas.total").inc(7)
        assert reg.snapshot()["gas.total"] == 12

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("index.size").set(10)
        reg.gauge("index.size").set(3)
        assert reg.snapshot()["index.size"] == 3

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestHistogramBuckets:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0):
            hist.observe(value)
        # counts per bucket: le 1.0 -> {0.5, 1.0}; le 2.0 -> {1.5, 2.0};
        # le 4.0 -> {4.0}; +inf -> {5.0}
        assert hist.counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.sum == pytest.approx(14.0)
        assert hist.min == 0.5 and hist.max == 5.0

    def test_snapshot_shape(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(3.0)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"] == [[1.0, 0], [2.0, 0], [None, 1]]
        assert snap["mean"] == pytest.approx(3.0)

    def test_unsorted_buckets_are_sorted(self):
        hist = Histogram("h", buckets=(4.0, 1.0, 2.0))
        assert hist.bounds == (1.0, 2.0, 4.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistryMergeReset:
    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("gas.write").inc(100)
        b.counter("gas.write").inc(50)
        b.counter("gas.read").inc(7)
        a.histogram("t", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("t", buckets=(1.0, 2.0)).observe(1.5)
        b.gauge("g").set(9)
        a.merge(b)
        snap = a.snapshot()
        assert snap["gas.write"] == 150
        assert snap["gas.read"] == 7
        assert snap["g"] == 9
        assert snap["t"]["count"] == 2
        assert snap["t"]["buckets"] == [[1.0, 1], [2.0, 1], [None, 0]]
        assert snap["t"]["min"] == 0.5 and snap["t"]["max"] == 1.5

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("t", buckets=(1.0,))
        b.histogram("t", buckets=(2.0,)).observe(1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        reg.reset()
        snap = reg.snapshot()
        assert snap["c"] == 0
        assert snap["g"] == 0.0
        assert snap["h"]["count"] == 0
        assert snap["h"]["min"] is None
        # Bucket layout survives the reset.
        assert reg.histogram("h").bounds == (1.0,)
