"""Observability tests share one safety net: never leak a collector."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_collector():
    """Guarantee the null sink before and after every obs test."""
    obs.uninstall()
    yield
    obs.uninstall()
