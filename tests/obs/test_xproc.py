"""Cross-process telemetry snapshots: capture, adoption, metric merges."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs import xproc


def _worker_collector(span_names=("task", "task.inner")):
    """A collector holding a small parent/child trace plus metrics."""
    collector = obs.Collector()
    with obs.collect(collector):
        with collector.span(span_names[0], worker="w"):
            with collector.span(span_names[1]):
                obs.inc("work.items", 3)
                obs.observe("work.seconds", 0.25)
    return collector


class TestCapture:
    def test_snapshot_is_plain_data(self):
        snap = xproc.capture(_worker_collector())
        assert snap["pid"] == os.getpid()
        assert len(snap["spans"]) == 2
        assert snap["metrics"]["counters"]["work.items"] == 3
        assert snap["perf_anchor"] > 0
        import json

        json.dumps(snap)  # picklable and JSON-clean: no live objects

    def test_capture_preserves_exit_order(self):
        snap = xproc.capture(_worker_collector())
        # Spans are recorded on exit: the child precedes its parent.
        assert snap["spans"][0]["name"] == "task.inner"
        assert snap["spans"][1]["name"] == "task"


class TestAdopt:
    def test_same_process_adoption_remaps_ids_and_parents(self):
        snap = xproc.capture(_worker_collector())
        parent = obs.Collector()
        with obs.collect(parent):
            with parent.span("dispatch") as root:
                xproc.adopt(parent, snap, parent_id=root.span_id)
        by_name = {s.name: s for s in parent.spans}
        assert by_name["task"].parent_id == by_name["dispatch"].span_id
        assert by_name["task.inner"].parent_id == by_name["task"].span_id
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_same_process_spans_carry_no_pid_attribute(self):
        snap = xproc.capture(_worker_collector())
        parent = obs.Collector()
        xproc.adopt(parent, snap)
        assert all("pid" not in s.attributes for s in parent.spans)

    def test_cross_process_spans_are_stamped_and_rebased(self):
        import copy

        collector = _worker_collector()
        snap = xproc.capture(collector)
        original = {
            s["name"]: s for s in copy.deepcopy(snap["spans"])
        }
        snap["pid"] = os.getpid() + 1  # pretend another process sent it
        # Fake a worker whose perf_counter epoch is 1000s behind ours.
        snap["perf_anchor"] -= 1000.0
        for state in snap["spans"]:
            state["start_s"] -= 1000.0
            state["end_s"] -= 1000.0
        parent = obs.Collector()
        adopted = xproc.adopt(parent, snap)
        by_name = {s.name: s for s in adopted}
        for name, span in by_name.items():
            assert span.attributes["pid"] == snap["pid"]
            assert span.duration_s == pytest.approx(
                original[name]["end_s"] - original[name]["start_s"]
            )
            # Rebased back onto our timeline, not 1000s in the past.
            assert abs(span.start_s - original[name]["start_s"]) < 5.0

    def test_extra_attributes_only_on_roots(self):
        snap = xproc.capture(_worker_collector())
        parent = obs.Collector()
        xproc.adopt(parent, snap, extra_attributes={"shard": 2})
        by_name = {s.name: s for s in parent.spans}
        assert by_name["task"].attributes["shard"] == 2
        assert "shard" not in by_name["task.inner"].attributes

    def test_metric_totals_exact_after_merging_n_snapshots(self):
        snaps = [xproc.capture(_worker_collector()) for _ in range(5)]
        parent = obs.Collector()
        for snap in snaps:
            xproc.adopt(parent, snap)
        snap = parent.metrics.snapshot()
        assert snap["work.items"] == 15
        assert snap["work.seconds"]["count"] == 5
        assert snap["work.seconds"]["sum"] == pytest.approx(1.25)
        assert snap["work.seconds"]["min"] == pytest.approx(0.25)
        assert snap["work.seconds"]["max"] == pytest.approx(0.25)

    def test_adoption_is_additive_across_calls(self):
        parent = obs.Collector()
        xproc.adopt(parent, xproc.capture(_worker_collector(("a", "a.in"))))
        xproc.adopt(parent, xproc.capture(_worker_collector(("b", "b.in"))))
        assert sorted(s.name for s in parent.spans) == [
            "a",
            "a.in",
            "b",
            "b.in",
        ]
