"""Sampling profiler: span attribution, lifecycle, reporting."""

from __future__ import annotations

import time

from repro import obs
from repro.obs.profiler import NO_SPAN, SamplingProfiler


def _spin(seconds: float) -> int:
    """Busy-loop so the sampler has frames to catch."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += 1
    return acc


class TestSampling:
    def test_samples_attribute_to_the_open_span(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with obs.collect():
            with profiler:
                with obs.span("hot.loop"):
                    _spin(0.15)
        assert profiler.total_samples > 0
        by_span = profiler.by_span()
        assert by_span.get("hot.loop", 0) > 0
        # The busy loop dominates this window.
        assert by_span["hot.loop"] >= max(by_span.values()) // 2

    def test_no_collector_buckets_as_no_span(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            _spin(0.1)
        assert profiler.total_samples > 0
        assert set(profiler.by_span()) == {NO_SPAN}

    def test_innermost_span_wins(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with obs.collect():
            with profiler, obs.span("outer"):
                with obs.span("inner"):
                    _spin(0.15)
        by_span = profiler.by_span()
        assert by_span.get("inner", 0) > by_span.get("outer", 0)


class TestLifecycle:
    def test_stop_is_idempotent_and_restart_accumulates(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        profiler.start()  # no-op while running
        _spin(0.05)
        profiler.stop()
        profiler.stop()  # no-op when stopped
        first = profiler.total_samples
        assert first > 0
        profiler.start()
        _spin(0.05)
        profiler.stop()
        assert profiler.total_samples > first

    def test_rejects_non_positive_interval(self):
        import pytest

        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)


class TestReporting:
    def _profiled(self) -> SamplingProfiler:
        profiler = SamplingProfiler(interval_s=0.001)
        with obs.collect():
            with profiler, obs.span("workload"):
                _spin(0.1)
        return profiler

    def test_to_dict_shape(self):
        report = self._profiled().to_dict(top=3)
        assert report["total_samples"] > 0
        assert report["interval_s"] == 0.001
        spans = report["spans"]
        assert spans and spans[0]["samples"] >= spans[-1]["samples"]
        for entry in spans:
            assert len(entry["functions"]) <= 3
            for item in entry["functions"]:
                assert item["samples"] > 0

    def test_render_lists_spans_and_functions(self):
        text = self._profiled().render()
        assert "profile:" in text
        assert "workload" in text
        assert "%" in text

    def test_render_without_samples(self):
        assert "no samples" in SamplingProfiler().render()
