"""Exporters on traces with concurrent children and merged metrics."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs import xproc


def _concurrent_trace() -> obs.Collector:
    """A parent span with two children recorded from racing threads."""
    collector = obs.Collector()
    with obs.collect(collector):
        with collector.span("scatter", shards=2) as parent:
            barrier = threading.Barrier(2)

            def task(index: int) -> None:
                span = collector.span("task", shard=index)
                span.forced_parent = parent.span_id
                with span:
                    barrier.wait(timeout=5)

            threads = [
                threading.Thread(target=task, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
    return collector


class TestJsonl:
    def test_round_trip_preserves_every_field(self, tmp_path):
        collector = _concurrent_trace()
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(collector.spans, str(path))
        loaded = obs.read_jsonl(str(path))
        assert len(loaded) == len(collector.spans)
        for state, span in zip(loaded, collector.spans):
            assert state["name"] == span.name
            assert state["span_id"] == span.span_id
            assert state["parent_id"] == span.parent_id
            assert state["start_s"] == span.start_s
            assert state["end_s"] == span.end_s
            assert state["duration_ms"] == pytest.approx(
                1e3 * span.duration_s
            )

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        record = json.dumps({"name": "x"})
        path.write_text(f"{record}\n\n{record}\n")
        assert len(obs.read_jsonl(str(path))) == 2

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl([], str(path))
        assert path.read_text() == ""
        assert obs.read_jsonl(str(path)) == []


class TestTree:
    def test_concurrent_children_nest_under_parent(self):
        collector = _concurrent_trace()
        tree = obs.render_tree(collector.spans)
        lines = tree.splitlines()
        assert lines[0].startswith("scatter")
        task_lines = [line for line in lines if "task" in line]
        assert len(task_lines) == 2
        assert all(line.startswith(("├─", "└─")) for line in task_lines)
        assert "shard=0" in tree and "shard=1" in tree


class TestSummaryAfterMerge:
    def test_counter_and_histogram_totals_exact(self):
        def worker_snapshot(n: int) -> dict:
            collector = obs.Collector()
            with obs.collect(collector):
                with collector.span("task"):
                    obs.inc("merged.count", n)
                    obs.observe("merged.cost", float(n))
            return xproc.capture(collector)

        snaps = [worker_snapshot(n) for n in (1, 2, 3, 4)]
        parent = obs.Collector()
        for snap in snaps:
            xproc.adopt(parent, snap)
        summary = obs.render_summary(parent.metrics)
        assert "merged.count" in summary
        snapshot = parent.metrics.snapshot()
        assert snapshot["merged.count"] == 10
        assert snapshot["merged.cost"]["count"] == 4
        assert snapshot["merged.cost"]["sum"] == pytest.approx(10.0)
        assert snapshot["merged.cost"]["min"] == pytest.approx(1.0)
        assert snapshot["merged.cost"]["max"] == pytest.approx(4.0)
