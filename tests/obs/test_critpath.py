"""Critical-path analysis: forests, self-time, efficiency, rendering."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.critpath import (
    analyze,
    build_forest,
    critical_path,
    fanout_stats,
    phase_stats,
)


def _span(name, span_id, parent_id, start, end, thread="MainThread", **attrs):
    """A span dict exactly as ``read_jsonl`` would yield it."""
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "thread": thread,
        "start_s": start,
        "end_s": end,
        "duration_ms": 1e3 * (end - start),
        "attributes": attrs,
    }


def _scatter_trace():
    """A root dispatching three overlapping workers on separate lanes.

    root [0, 10]
      prep   [0, 2]                          (same lane as root)
      worker [2, 8] / [2, 6] / [2, 9]       (three lanes, overlapping)
    """
    return [
        _span("root", 1, None, 0.0, 10.0),
        _span("prep", 2, 1, 0.0, 2.0),
        _span("worker", 3, 1, 2.0, 8.0, thread="w1", shard=0),
        _span("worker", 4, 1, 2.0, 6.0, thread="w2", shard=1),
        _span("worker", 5, 1, 2.0, 9.0, thread="w3", shard=2),
    ]


class TestForest:
    def test_children_attach_to_parents(self):
        roots = build_forest(_scatter_trace())
        assert len(roots) == 1
        assert sorted(c.name for c in roots[0].children) == [
            "prep",
            "worker",
            "worker",
            "worker",
        ]

    def test_orphans_are_promoted_to_roots(self):
        spans = [
            _span("a", 1, 99, 0.0, 1.0),  # parent never recorded
            _span("b", 2, None, 1.0, 2.0),
        ]
        roots = build_forest(spans)
        assert sorted(r.name for r in roots) == ["a", "b"]

    def test_live_span_objects_are_accepted(self):
        collector = obs.Collector()
        with obs.collect(collector):
            with collector.span("outer"):
                with collector.span("inner"):
                    pass
        roots = build_forest(collector.spans)
        assert roots[0].name == "outer"
        assert roots[0].children[0].name == "inner"


class TestCriticalPath:
    def test_descends_into_latest_ending_child(self):
        roots = build_forest(_scatter_trace())
        path = critical_path(roots[0])
        assert [n.name for n in path] == ["root", "worker"]
        assert path[-1].attributes["shard"] == 2  # the [2, 9] worker

    def test_single_span_path(self):
        roots = build_forest([_span("only", 1, None, 0.0, 1.0)])
        assert [n.name for n in critical_path(roots[0])] == ["only"]


class TestSelfTime:
    def test_self_excludes_union_of_child_intervals(self):
        roots = build_forest(_scatter_trace())
        root = roots[0]
        # Children cover [0, 2] + [2, 9] = 9s of the root's 10s.
        assert root.self_seconds() == pytest.approx(1.0)

    def test_overlapping_children_are_not_double_counted(self):
        spans = [
            _span("p", 1, None, 0.0, 10.0),
            _span("c1", 2, 1, 1.0, 5.0),
            _span("c2", 3, 1, 3.0, 7.0),  # overlaps c1 on [3, 5]
        ]
        root = build_forest(spans)[0]
        assert root.self_seconds() == pytest.approx(10.0 - 6.0)

    def test_phase_stats_aggregate_by_name(self):
        phases = {p.name: p for p in phase_stats(build_forest(_scatter_trace()))}
        assert phases["worker"].count == 3
        assert phases["worker"].total_s == pytest.approx(6.0 + 4.0 + 7.0)
        assert phases["worker"].self_s == pytest.approx(17.0)
        assert phases["root"].self_s == pytest.approx(1.0)


class TestEfficiency:
    def test_fanout_stats_report_overlapping_sections(self):
        fans = fanout_stats(build_forest(_scatter_trace()))
        assert len(fans) == 1
        fan = fans[0]
        assert fan.name == "root"
        assert fan.children == 4
        assert fan.lanes == 4  # main + three worker lanes
        assert fan.wall_s == pytest.approx(9.0)
        assert fan.busy_s == pytest.approx(2.0 + 6.0 + 4.0 + 7.0)

    def test_report_efficiency_uses_worker_override(self):
        report = analyze(_scatter_trace(), workers=4)
        assert report.wall_s == pytest.approx(10.0)
        assert report.busy_s == pytest.approx(1.0 + 2.0 + 6.0 + 4.0 + 7.0)
        assert report.workers == 4
        assert report.efficiency == pytest.approx(20.0 / (10.0 * 4))

    def test_perfectly_serial_trace_is_fully_efficient(self):
        spans = [
            _span("a", 1, None, 0.0, 4.0),
            _span("b", 2, 1, 1.0, 3.0),
        ]
        report = analyze(spans)
        assert report.lanes == 1
        assert report.efficiency == pytest.approx(1.0)


class TestAnalyzeAndRender:
    def test_root_filter_selects_named_root(self):
        spans = _scatter_trace() + [_span("other", 9, None, 0.0, 50.0)]
        report = analyze(spans, root="root")
        assert report.path[0].name == "root"

    def test_render_mentions_phases_and_efficiency(self):
        text = analyze(_scatter_trace(), workers=4).render()
        assert "critical path" in text
        assert "per-phase self-time" in text
        assert "efficiency" in text
        assert "worker" in text

    def test_to_dict_is_json_clean(self):
        import json

        payload = analyze(_scatter_trace()).to_dict()
        json.dumps(payload)
        assert payload["lanes"] == 4
        assert [p["name"] for p in payload["phases"]]

    def test_empty_trace_yields_empty_report(self):
        report = analyze([])
        assert report.path == []
        assert report.wall_s == 0.0
        assert "no spans" in report.render() or report.render()


class TestJsonlRoundTrip:
    def test_analyze_over_written_trace(self, tmp_path):
        collector = obs.Collector()
        with obs.collect(collector):
            with collector.span("outer"):
                with collector.span("inner"):
                    pass
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(collector.spans, str(path))
        report = analyze(obs.read_jsonl(str(path)))
        assert [n.name for n in report.path] == ["outer", "inner"]
