"""Unit tests for the tracing layer: nesting, timing, null sink, threads."""

from __future__ import annotations

import threading
import time

from repro import obs


class TestSpanNesting:
    def test_parent_child_linkage(self):
        with obs.collect() as col:
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    pass
        assert [s.name for s in col.spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        with obs.collect() as col:
            with obs.span("root") as root:
                with obs.span("a"):
                    pass
                with obs.span("b"):
                    pass
        by_name = {s.name: s for s in col.spans}
        assert by_name["a"].parent_id == root.span_id
        assert by_name["b"].parent_id == root.span_id
        assert by_name["a"].span_id != by_name["b"].span_id

    def test_durations_are_positive_and_nested(self):
        with obs.collect() as col:
            with obs.span("outer"):
                with obs.span("inner"):
                    time.sleep(0.002)
        by_name = {s.name: s for s in col.spans}
        assert by_name["inner"].duration_s >= 0.002
        assert by_name["outer"].duration_s >= by_name["inner"].duration_s

    def test_attributes_at_creation_and_set(self):
        with obs.collect() as col:
            with obs.span("work", scheme="ci*") as s:
                s.set(results=3)
        (span,) = col.spans
        assert span.attributes == {"scheme": "ci*", "results": 3}

    def test_exception_annotates_and_pops(self):
        with obs.collect() as col:
            try:
                with obs.span("fails"):
                    raise ValueError("boom")
            except ValueError:
                pass
            with obs.span("after"):
                pass
        by_name = {s.name: s for s in col.spans}
        assert by_name["fails"].attributes["error"] == "ValueError"
        # The failed span was popped: the next span is a root again.
        assert by_name["after"].parent_id is None


class TestNullSink:
    def test_span_without_collector_is_shared_noop(self):
        assert obs.current() is None
        first = obs.span("anything", attr=1)
        second = obs.span("other")
        assert first is obs.NULL_SPAN and second is obs.NULL_SPAN
        with first as entered:
            entered.set(ignored=True)  # must not raise

    def test_metric_helpers_without_collector_do_nothing(self):
        obs.inc("some.counter", 5)
        obs.observe("some.hist", 1.0)
        obs.set_gauge("some.gauge", 2.0)
        assert obs.metrics() is None
        # Nothing leaked into the next installed collector.
        with obs.collect() as col:
            assert col.metrics.snapshot() == {}

    def test_collect_restores_previous_collector(self):
        outer = obs.install()
        with obs.collect() as inner:
            assert obs.current() is inner
        assert obs.current() is outer
        obs.uninstall()
        assert obs.current() is None


class TestThreadLocalStacks:
    def test_concurrent_threads_trace_independently(self):
        start = threading.Barrier(2)

        def worker(label: str):
            start.wait()
            with obs.span(f"{label}.outer"):
                time.sleep(0.005)
                with obs.span(f"{label}.inner"):
                    time.sleep(0.002)

        with obs.collect() as col:
            threads = [
                threading.Thread(target=worker, args=(label,))
                for label in ("t1", "t2")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        by_name = {s.name: s for s in col.spans}
        assert len(col.spans) == 4
        # Each inner span's parent is its own thread's outer span, even
        # though both threads were interleaved in time.
        for label in ("t1", "t2"):
            inner = by_name[f"{label}.inner"]
            outer = by_name[f"{label}.outer"]
            assert inner.parent_id == outer.span_id
            assert inner.thread == outer.thread
        assert by_name["t1.inner"].thread != by_name["t2.inner"].thread


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        import json

        with obs.collect() as col:
            with obs.span("a", k=1):
                with obs.span("b"):
                    pass
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(col.spans, str(path))
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"a", "b"}
        a = next(r for r in records if r["name"] == "a")
        assert a["attributes"] == {"k": 1}
        assert a["duration_ms"] >= 0

    def test_render_tree_shows_hierarchy(self):
        with obs.collect() as col:
            with obs.span("query"):
                with obs.span("query.sp"):
                    pass
                with obs.span("query.verify"):
                    pass
        tree = obs.render_tree(col.spans)
        lines = tree.splitlines()
        assert lines[0].startswith("query ")
        assert any("├─ query.sp" in line for line in lines)
        assert any("└─ query.verify" in line for line in lines)

    def test_render_summary_lists_metrics(self):
        with obs.collect() as col:
            obs.inc("sp.errors", 2)
            obs.observe("vo.bytes", 100.0)
        summary = obs.render_summary(col.metrics)
        assert "sp.errors" in summary
        assert "vo.bytes" in summary
