"""Shared fixtures: cached CVC parameters and tiny corpora.

CVC key generation is the most expensive pure-Python operation in the
suite, so parameters are generated once per session at a reduced (but
structurally identical) 512-bit modulus.
"""

from __future__ import annotations

import pytest

from repro.crypto import vc
from repro.crypto.prf import generate_key


@pytest.fixture(scope="session")
def cvc_params():
    """(pp, td) for arity-3 CVCs (q = 2 Chameleon trees)."""
    return vc.shared_test_params(3)


@pytest.fixture(scope="session")
def cvc(cvc_params):
    pp, td = cvc_params
    return vc.ChameleonVectorCommitment(3, _pp=pp, _td=td)


@pytest.fixture(scope="session")
def prf_key():
    return generate_key(seed=99)


@pytest.fixture()
def small_docs():
    """The paper's Fig. 5 inverted-index example as DataObjects."""
    from repro.core.objects import DataObject

    table = {
        1: ("covid-19", "sars-cov-2"),
        2: ("covid-19",),
        3: ("sars-cov-2",),
        4: ("covid-19", "symptom", "vaccine"),
        5: ("covid-19", "vaccine"),
        6: ("symptom",),
        7: ("covid-19",),
        8: ("covid-19", "vaccine"),
        9: ("symptom",),
        10: ("covid-19",),
        11: ("symptom",),
        12: ("covid-19",),
    }
    return [
        DataObject(oid, kws, b"content-%d" % oid)
        for oid, kws in table.items()
    ]
