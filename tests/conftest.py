"""Shared fixtures: cached CVC parameters and tiny corpora.

CVC key generation is the most expensive pure-Python operation in the
suite, so parameters are generated once per session at a reduced (but
structurally identical) 512-bit modulus.
"""

from __future__ import annotations

import os

import pytest

from repro.crypto import vc
from repro.crypto.prf import generate_key


def pytest_sessionfinish(session, exitstatus):
    """Under ``REPRO_SANITIZE=1``, fail the run on sanitizer findings.

    The CI sanitizer job runs the concurrency-heavy suites with the
    runtime lock-order sanitizer installed (see
    :mod:`repro.analysis.sanitize`); any recorded violation — inversion,
    lock held at fork, blocking pipe op under a lock — turns an
    otherwise green session red.
    """
    if os.environ.get("REPRO_SANITIZE") != "1":
        return
    from repro.analysis import sanitize

    if not sanitize.installed():
        return
    snapshot = sanitize.report()
    if snapshot["violations"]:
        print()
        print(sanitize.render_report(snapshot))
        session.exitstatus = 1


@pytest.fixture(scope="session")
def cvc_params():
    """(pp, td) for arity-3 CVCs (q = 2 Chameleon trees)."""
    return vc.shared_test_params(3)


@pytest.fixture(scope="session")
def cvc(cvc_params):
    pp, td = cvc_params
    return vc.ChameleonVectorCommitment(3, _pp=pp, _td=td)


@pytest.fixture(scope="session")
def prf_key():
    return generate_key(seed=99)


@pytest.fixture()
def small_docs():
    """The paper's Fig. 5 inverted-index example as DataObjects."""
    from repro.core.objects import DataObject

    table = {
        1: ("covid-19", "sars-cov-2"),
        2: ("covid-19",),
        3: ("sars-cov-2",),
        4: ("covid-19", "symptom", "vaccine"),
        5: ("covid-19", "vaccine"),
        6: ("symptom",),
        7: ("covid-19",),
        8: ("covid-19", "vaccine"),
        9: ("symptom",),
        10: ("covid-19",),
        11: ("symptom",),
        12: ("covid-19",),
    }
    return [
        DataObject(oid, kws, b"content-%d" % oid)
        for oid, kws in table.items()
    ]
