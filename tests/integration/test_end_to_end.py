"""Integration tests: realistic workloads through the full stack.

Every scheme ingests a synthetic Twitter-like corpus and answers random
conjunctive and disjunctive queries; results are checked against a
brute-force evaluation of the query over the raw corpus, and every
answer must pass client-side verification.
"""

import pytest

from repro import HybridStorageSystem
from repro.datasets.synthetic import twitter_like
from repro.datasets.workloads import ConjunctiveWorkload, DisjunctiveWorkload

CORPUS_SIZE = 80


@pytest.fixture(scope="module")
def corpus():
    return twitter_like(CORPUS_SIZE, seed=17).materialise()


def brute_force(corpus, query):
    return sorted(
        obj.object_id for obj in corpus if query.matches(obj.keyword_set())
    )


@pytest.fixture(scope="module", params=["mi", "smi", "ci", "ci*"])
def loaded_system(request, corpus):
    system = HybridStorageSystem(
        scheme=request.param, cvc_modulus_bits=512, seed=9
    )
    for obj in corpus:
        system.add_object(obj)
    return system


class TestRandomConjunctiveQueries:
    def test_results_match_brute_force(self, loaded_system, corpus):
        dataset = twitter_like(CORPUS_SIZE, seed=17)
        for num_keywords in (1, 2, 3):
            workload = ConjunctiveWorkload(
                dataset=dataset,
                num_keywords=num_keywords,
                pool_size=30,
                seed=23 + num_keywords,
            )
            for query in workload.queries(4):
                result = loaded_system.query(query)
                assert result.verified
                assert result.result_ids == brute_force(corpus, query), str(
                    query
                )


class TestRandomDisjunctiveQueries:
    def test_results_match_brute_force(self, loaded_system, corpus):
        dataset = twitter_like(CORPUS_SIZE, seed=17)
        workload = DisjunctiveWorkload(
            dataset=dataset,
            num_conjunctions=2,
            keywords_per_conjunction=2,
            pool_size=25,
            seed=31,
        )
        for query in workload.queries(4):
            result = loaded_system.query(query)
            assert result.verified
            assert result.result_ids == brute_force(corpus, query), str(query)


class TestChainState:
    def test_ledger_integrity(self, loaded_system):
        assert loaded_system.chain.verify_chain()
        assert loaded_system.chain.height == CORPUS_SIZE

    def test_all_receipts_succeeded(self, loaded_system):
        for block in loaded_system.chain.blocks[1:]:
            for receipt in block.receipts:
                assert receipt.status, receipt.error

    def test_gas_accounting_consistent(self, loaded_system):
        total = loaded_system.chain.total_gas_used()
        assert total == loaded_system.maintenance_meter().total


class TestLightClientEndToEnd:
    def test_fully_light_verified_query(self, corpus):
        """A light client verifies VO_chain itself: keyword roots are
        read via storage proofs against block headers, then the query
        answer is verified against those proven digests."""
        from repro import HybridStorageSystem, KeywordQuery
        from repro.core.merkle_family import MerkleProofSystem
        from repro.core.query.verify import verify_query
        from repro.ethereum.state import LightClient

        system = HybridStorageSystem(scheme="smi", seed=9, track_state=True)
        light = LightClient(
            genesis_hash=system.chain.blocks[0].header.hash()
        )
        for obj in corpus[:40]:
            system.add_object(obj)
        for block in system.chain.blocks[1:]:
            light.accept_header(block.header)

        query = KeywordQuery.parse(
            f"{corpus[0].keywords[0]} AND {corpus[0].keywords[-1]}"
        )
        answer = system.process_query(query)
        roots = {}
        for keyword in query.all_keywords():
            proof = system.chain.prove_storage("ads", ("root", keyword))
            roots[keyword] = light.read_storage(proof)
        ps = MerkleProofSystem(roots=roots)
        verified = verify_query(query, answer, ps)
        expected = {
            obj.object_id
            for obj in corpus[:40]
            if query.matches(obj.keyword_set())
        }
        assert verified.ids == expected
