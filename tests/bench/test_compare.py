"""Bench baseline comparison: flattening, tolerance bands, CLI gating."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    append_trend,
    compare,
    compare_files,
    flatten,
    metric_direction,
)
from repro.cli import main as repro_main
from repro.errors import ReproError

DOC = {
    "experiment": "shard",
    "rows": {
        "cpu_count": 8,
        "ingest": [
            {
                "shards": 1,
                "executor": "process",
                "ingest_ms": 100.0,
                "objects_per_s": 6000.0,
            },
            {
                "shards": 4,
                "executor": "process",
                "ingest_ms": 40.0,
                "objects_per_s": 15000.0,
            },
        ],
        "identity": [
            {"scheme": "mi", "shards": 4, "vo_identical": True},
        ],
    },
}


def _variant(**overrides):
    doc = json.loads(json.dumps(DOC))
    for path, value in overrides.items():
        node = doc
        *parts, leaf = path.split("/")
        for part in parts:
            node = node[int(part)] if part.isdigit() else node[part]
        if value is ...:
            del node[leaf]
        else:
            node[leaf] = value
    return doc


class TestFlatten:
    def test_rows_are_addressed_by_identity_not_position(self):
        flat = flatten(DOC)
        key = "rows.ingest[executor=process shards=4].ingest_ms"
        assert flat[key] == 40.0
        reordered = _variant()
        reordered["rows"]["ingest"].reverse()
        assert flatten(reordered)[key] == 40.0

    def test_strings_become_identity_not_metrics(self):
        flat = flatten(DOC)
        assert not any(k.endswith(".scheme") for k in flat)
        assert "rows.identity[scheme=mi shards=4].vo_identical" in flat

    def test_duplicate_identities_get_positional_suffixes(self):
        flat = flatten({"runs": [{"ms": 1.0}, {"ms": 2.0}]})
        assert flat["runs[0].ms"] == 1.0
        assert flat["runs[1].ms"] == 2.0


class TestDirections:
    @pytest.mark.parametrize(
        ("metric", "expected"),
        [
            ("rows.ingest[shards=4].ingest_ms", "lower"),
            ("verify_seconds", "lower"),
            ("cache_misses", "lower"),
            ("objects_per_s", "higher"),
            ("speedup_cold", "higher"),
            ("cache_hits", "higher"),
            ("cpu_count", "info"),
            ("keywords", "info"),
            ("rows.shards", "info"),
        ],
    )
    def test_inference_from_leaf_name(self, metric, expected):
        assert metric_direction(metric) == expected


class TestCompare:
    def test_identical_documents_pass(self):
        report = compare(DOC, DOC)
        assert report.passed
        assert report.regressions == []

    def test_timing_regression_beyond_tolerance_fails(self):
        current = _variant(**{"rows/ingest/1/ingest_ms": 60.0})
        report = compare(DOC, current, tolerance=0.25)
        assert not report.passed
        assert [d.metric for d in report.regressions] == [
            "rows.ingest[executor=process shards=4].ingest_ms"
        ]

    def test_timing_within_tolerance_passes(self):
        current = _variant(**{"rows/ingest/1/ingest_ms": 48.0})
        assert compare(DOC, current, tolerance=0.25).passed

    def test_throughput_drop_beyond_tolerance_fails(self):
        current = _variant(**{"rows/ingest/0/objects_per_s": 3000.0})
        report = compare(DOC, current, tolerance=0.25)
        assert not report.passed

    def test_improvements_always_pass(self):
        current = _variant(
            **{
                "rows/ingest/1/ingest_ms": 5.0,
                "rows/ingest/1/objects_per_s": 90000.0,
            }
        )
        assert compare(DOC, current, tolerance=0.0).passed

    def test_invariant_flip_fails_regardless_of_tolerance(self):
        current = _variant(**{"rows/identity/0/vo_identical": False})
        report = compare(DOC, current, tolerance=100.0)
        assert not report.passed
        assert report.regressions[0].direction == "invariant"

    def test_missing_metric_fails(self):
        current = _variant(**{"rows/ingest/1/objects_per_s": ...})
        report = compare(DOC, current)
        assert not report.passed
        assert report.regressions[0].status == "missing"

    def test_informational_changes_never_fail(self):
        current = _variant(**{"rows/cpu_count": 1})
        assert compare(DOC, current, tolerance=0.0).passed

    def test_new_metrics_are_reported_not_failed(self):
        current = _variant()
        current["rows"]["ingest"][0]["warm_ms"] = 1.0
        report = compare(DOC, current)
        assert report.passed
        assert any(d.status == "new" for d in report.deltas)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ReproError):
            compare(DOC, DOC, tolerance=-0.1)

    def test_render_names_the_verdict(self):
        good = compare(DOC, DOC).render()
        assert "PASS" in good
        bad = compare(
            DOC, _variant(**{"rows/ingest/1/ingest_ms": 600.0})
        ).render()
        assert "FAIL" in bad and "REGRESSED" in bad


class TestTrend:
    def test_append_trend_accumulates_jsonl_records(self, tmp_path):
        path = tmp_path / "trend.jsonl"
        report = compare(DOC, DOC)
        append_trend(report, str(path))
        append_trend(report, str(path))
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) == 2
        assert records[0]["passed"] is True
        assert records[0]["regressions"] == []
        assert any(
            key.endswith("ingest_ms") for key in records[0]["metrics"]
        )


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_compare_exits_zero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", DOC)
        code = repro_main(
            ["bench", "compare", "--baseline", baseline, "--current", baseline]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", DOC)
        current = self._write(
            tmp_path,
            "cur.json",
            _variant(**{"rows/ingest/1/ingest_ms": 600.0}),
        )
        trend = tmp_path / "trend.jsonl"
        code = repro_main(
            [
                "bench",
                "compare",
                "--baseline",
                baseline,
                "--current",
                current,
                "--json",
                "--trend-out",
                str(trend),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is False
        assert payload["regressions"]
        assert json.loads(trend.read_text())["passed"] is False

    def test_unreadable_baseline_is_a_clean_error(self, tmp_path, capsys):
        code = repro_main(
            [
                "bench",
                "compare",
                "--baseline",
                str(tmp_path / "absent.json"),
                "--current",
                str(tmp_path / "absent.json"),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compare_files_reads_disk(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", DOC)
        report = compare_files(baseline, baseline)
        assert report.passed
