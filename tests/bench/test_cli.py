"""Tests for the repro-bench command-line interface."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.exp == "all"
        assert args.seed == 7

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--exp", "fig99"])

    def test_accepts_ablations(self):
        args = build_parser().parse_args(["--exp", "abl-fanout"])
        assert args.exp == "abl-fanout"


class TestMain:
    def test_runs_single_experiment(self, capsys):
        code = main(["--exp", "fig6", "--size", "40"])
        assert code == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_size_override_for_sweeps(self, capsys):
        code = main(["--exp", "tab2", "--size", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "n=60" in out
        assert "n=30" in out

    def test_queries_override(self, capsys):
        code = main(
            ["--exp", "fig13", "--size", "40", "--queries", "2"]
        )
        assert code == 0
        assert "Fig. 13" in capsys.readouterr().out
