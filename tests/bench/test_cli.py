"""Tests for the repro-bench command-line interface."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.exp == "all"
        assert args.seed == 7

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--exp", "fig99"])

    def test_accepts_ablations(self):
        args = build_parser().parse_args(["--exp", "abl-fanout"])
        assert args.exp == "abl-fanout"


class TestMain:
    def test_runs_single_experiment(self, capsys):
        code = main(["--exp", "fig6", "--size", "40"])
        assert code == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_size_override_for_sweeps(self, capsys):
        code = main(["--exp", "tab2", "--size", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "n=60" in out
        assert "n=30" in out

    def test_queries_override(self, capsys):
        code = main(
            ["--exp", "fig13", "--size", "40", "--queries", "2"]
        )
        assert code == 0
        assert "Fig. 13" in capsys.readouterr().out


class TestProfileAndTraceFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.profile is False
        assert args.profile_interval == 25.0
        assert args.profile_out is None
        assert args.trace_out is None

    def test_profile_prints_span_attributed_report(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main(
            [
                "--exp",
                "fig6",
                "--size",
                "40",
                "--profile",
                "--profile-interval",
                "1",
                "--profile-out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "profile:" in printed
        import json

        report = json.loads(out.read_text())
        assert report["interval_s"] == 0.001
        assert report["total_samples"] >= 0
        assert isinstance(report["spans"], list)

    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main(
            ["--exp", "fig6", "--size", "40", "--trace-out", str(path)]
        )
        assert code == 0
        assert "spans to" in capsys.readouterr().out
        assert path.exists()
