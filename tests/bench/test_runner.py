"""Smoke tests for the experiment runner (tiny scales).

These pin down the harness contract: every experiment runs end to end,
returns structured rows, and reproduces the paper's qualitative
orderings even at smoke-test sizes.
"""

import pytest

from repro.bench import runner
from repro.bench.ablations import ABLATIONS


class TestMaintenanceMeasurement:
    def test_steady_state_window(self):
        row = runner.measure_maintenance("smi", "twitter", 40)
        assert row.corpus_size == 40
        assert row.measured_objects == 20
        assert row.avg_gas > 0

    def test_cold_start_includes_everything(self):
        cold = runner.measure_maintenance(
            "smi", "twitter", 40, warmup_fraction=0.0
        )
        assert cold.measured_objects == 40

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            runner.measure_maintenance("smi", "imdb", 10)

    def test_breakdown_sums_to_total(self):
        row = runner.measure_maintenance("mi", "twitter", 30)
        split = row.breakdown_usd()
        assert split["total"] == pytest.approx(
            split["write"] + split["read"] + split["others"], rel=1e-6
        )

    def test_gem2_measurable(self):
        row = runner.measure_maintenance("gem2", "dblp", 30)
        assert row.scheme == "gem2"
        assert row.avg_gas > 0


class TestExperimentSmoke:
    def test_fig6_ordering(self, capsys):
        rows = runner.experiment_fig6(size=60)
        gas = {r.scheme: r.avg_gas for r in rows}
        assert gas["mi"] > gas["smi"]
        assert "Fig. 6" in capsys.readouterr().out

    def test_tab3_ordering(self, capsys):
        rows = runner.experiment_tab3(size=60)
        totals = {r.scheme: r.breakdown_usd()["total"] for r in rows}
        assert totals["ci"] < totals["mi"]
        assert "Table III" in capsys.readouterr().out

    def test_fig13_rows(self, capsys):
        rows = runner.experiment_fig13(
            size=50, capacities=(20, 40), num_queries=2
        )
        assert [r.scheme for r in rows] == ["b=20", "b=40"]
        capsys.readouterr()

    def test_query_measurement(self):
        dataset = runner._dataset("twitter", 50)
        system = runner.build_system("smi", dataset)
        row = runner.measure_queries(system, dataset, 2, 3)
        assert row.num_queries == 3
        assert row.vo_kb > 0

    def test_experiment_registry_complete(self):
        assert set(runner.EXPERIMENTS) == {
            "fig6",
            "fig10",
            "tab3",
            "fig11",
            "fig12",
            "fig13",
            "tab2",
            "disj",
            "fastpath",
            "witness",
            "shard",
            "query",
            "multiproof",
            "flatbuf",
        }
        assert set(ABLATIONS) == {
            "abl-fanout",
            "abl-arity",
            "abl-join-order",
            "abl-plan",
            "abl-batch",
        }


class TestAblationSmoke:
    def test_fanout_ablation(self, capsys):
        from repro.bench.ablations import ablation_fanout

        rows = ablation_fanout(size=40, fanouts=(3, 4))
        assert [r.value for r in rows] == [3, 4]
        assert all(r.metrics["avg_gas"] > 0 for r in rows)
        capsys.readouterr()

    def test_join_order_ablation(self, capsys):
        from repro.bench.ablations import ablation_join_order

        rows = ablation_join_order(size=40, num_queries=2, num_keywords=2)
        assert {r.value for r in rows} == {"size", "given"}
        capsys.readouterr()

    def test_batch_ablation(self, capsys):
        from repro.bench.ablations import ablation_batch_size

        rows = ablation_batch_size(size=24, batch_sizes=(1, 8))
        gas = {r.value: r.metrics["avg_gas"] for r in rows}
        assert gas[8] < gas[1]
        capsys.readouterr()
