"""Tests for block state commitments and light-client reads."""

import dataclasses

import pytest

from repro.errors import ChainError, VerificationError
from repro.ethereum.chain import Blockchain
from repro.ethereum.contract import SmartContract
from repro.ethereum.state import (
    LightClient,
    StateCommitment,
    encode_storage_key,
    storage_slot_id,
    verify_storage_proof,
)


class KV(SmartContract):
    """Minimal store contract for state tests."""

    def put(self, key: str, value: int) -> None:
        self.storage.store(("kv", key), value)

    def view_get(self, key: str) -> int:
        return self.storage.peek_int(("kv", key))


@pytest.fixture()
def chain():
    c = Blockchain(track_state=True)
    c.deploy("kv", KV())
    return c


class TestKeyEncoding:
    def test_distinct_keys_distinct_encodings(self):
        seen = set()
        keys = [
            ("a", ("x",)),
            ("a", ("x", 1)),
            ("a", (("x", 1),)),
            ("b", ("x",)),
            ("a", (1,)),
            ("a", (True,)),
            ("a", (b"x",)),
        ]
        for contract, key in keys:
            encoding = encode_storage_key(contract, key)
            assert encoding not in seen
            seen.add(encoding)

    def test_type_confusion_resistant(self):
        # str "1" vs int 1 vs bytes b"1" all differ.
        assert encode_storage_key("c", ("1",)) != encode_storage_key("c", (1,))
        assert encode_storage_key("c", (b"1",)) != encode_storage_key("c", ("1",))

    def test_rejects_unsupported_types(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            encode_storage_key("c", (3.14,))

    def test_slot_ids_deterministic(self):
        assert storage_slot_id("c", ("k",)) == storage_slot_id("c", ("k",))


class TestStateCommitment:
    def test_root_changes_with_state(self, chain):
        chain.send_transaction("a", "kv", "put", "x", 1)
        block1 = chain.mine_block()
        chain.send_transaction("a", "kv", "put", "y", 2)
        block2 = chain.mine_block()
        assert block1.header.state_root != block2.header.state_root

    def test_presence_proof(self, chain):
        chain.send_transaction("a", "kv", "put", "x", 7)
        block = chain.mine_block()
        proof = chain.prove_storage("kv", ("kv", "x"))
        word = verify_storage_proof(block.header.state_root, proof)
        assert int.from_bytes(word, "big") == 7

    def test_absence_proof(self, chain):
        chain.send_transaction("a", "kv", "put", "x", 7)
        block = chain.mine_block()
        proof = chain.prove_storage("kv", ("kv", "missing"))
        word = verify_storage_proof(block.header.state_root, proof)
        assert word == b"\x00" * 32

    def test_tampered_word_rejected(self, chain):
        chain.send_transaction("a", "kv", "put", "x", 7)
        block = chain.mine_block()
        proof = chain.prove_storage("kv", ("kv", "x"))
        forged = dataclasses.replace(proof, word=(99).to_bytes(32, "big"))
        with pytest.raises(VerificationError):
            verify_storage_proof(block.header.state_root, forged)

    def test_false_absence_rejected(self, chain):
        chain.send_transaction("a", "kv", "put", "x", 7)
        chain.send_transaction("a", "kv", "put", "y", 8)
        block = chain.mine_block()
        honest = chain.prove_storage("kv", ("kv", "x"))
        # Claim x is absent, reusing another slot's boundaries.
        absent = chain.prove_storage("kv", ("kv", "missing"))
        forged = dataclasses.replace(
            absent, contract="kv", key=("kv", "x"), word=None
        )
        with pytest.raises(VerificationError):
            verify_storage_proof(block.header.state_root, forged)
        # The honest presence proof still passes.
        verify_storage_proof(block.header.state_root, honest)

    def test_untracked_chain_refuses(self):
        chain = Blockchain(track_state=False)
        chain.deploy("kv", KV())
        chain.send_transaction("a", "kv", "put", "x", 1)
        chain.mine_block()
        with pytest.raises(ChainError):
            chain.prove_storage("kv", ("kv", "x"))

    def test_empty_state_absence(self):
        commitment = StateCommitment.build({})
        proof = commitment.prove("kv", ("kv", "x"))
        assert verify_storage_proof(commitment.root, proof) == b"\x00" * 32


class TestLightClient:
    def test_follows_headers_and_reads(self, chain):
        client = LightClient(genesis_hash=chain.blocks[0].header.hash())
        chain.send_transaction("a", "kv", "put", "x", 5)
        block1 = chain.mine_block()
        client.accept_header(block1.header)
        proof = chain.prove_storage("kv", ("kv", "x"))
        word = client.read_storage(proof)
        assert int.from_bytes(word, "big") == 5

    def test_rejects_forked_header(self, chain):
        client = LightClient(genesis_hash=chain.blocks[0].header.hash())
        chain.send_transaction("a", "kv", "put", "x", 5)
        block = chain.mine_block()
        forged = dataclasses.replace(block.header, timestamp=0.0)
        client.accept_header(block.header)
        with pytest.raises(VerificationError):
            client.accept_header(forged)

    def test_rejects_unknown_block(self, chain):
        client = LightClient(genesis_hash=chain.blocks[0].header.hash())
        chain.send_transaction("a", "kv", "put", "x", 5)
        chain.mine_block()
        proof = chain.prove_storage("kv", ("kv", "x"))
        with pytest.raises(VerificationError):
            client.read_storage(proof, block_number=4)
