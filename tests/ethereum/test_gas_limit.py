"""Block gasLimit feasibility (Section II-A / VII-A).

The paper deploys with the default 8,000,000 block gasLimit.  Every
per-object maintenance transaction of every scheme must fit — in
particular MI's multi-keyword tree surgery and SMI's logarithmic UpdVO
must stay bounded as the dataset grows.
"""

from repro import DataObject, HybridStorageSystem
from repro.ethereum.gas import BLOCK_GAS_LIMIT


def stream(n, keywords_per_object=6):
    for oid in range(1, n + 1):
        kws = tuple(f"kw{(oid + j) % 40:02d}" for j in range(keywords_per_object))
        yield DataObject(oid, kws, b"content-%d" % oid)


class TestGasLimitFeasibility:
    def test_all_schemes_fit_per_tx(self):
        for scheme in ("mi", "smi", "ci", "ci*"):
            system = HybridStorageSystem(
                scheme=scheme, cvc_modulus_bits=512, seed=3
            )
            worst = 0
            for obj in stream(150):
                report = system.add_object(obj)
                worst = max(worst, max(r.gas.total for r in report.receipts))
            assert worst < BLOCK_GAS_LIMIT, (scheme, worst)
            # Headroom: even the worst transaction uses < 25% of a block.
            assert worst < BLOCK_GAS_LIMIT // 4, (scheme, worst)

    def test_oversized_batch_hits_the_limit(self):
        """A single transaction cannot grow unboundedly: batches that
        exceed the block gas limit abort."""
        system = HybridStorageSystem(
            scheme="ci", cvc_modulus_bits=512, seed=3, gas_limit=120_000
        )
        import pytest

        from repro.errors import ChainError

        docs = list(stream(20))
        with pytest.raises(ChainError):
            system.add_objects_batched(docs)
