"""Unit tests for the Table I gas model."""

import pytest

from repro.errors import OutOfGasError
from repro.ethereum import gas


class TestTableIConstants:
    """The schedule must match Table I of the paper exactly."""

    def test_constants(self):
        assert gas.GAS_SLOAD == 200
        assert gas.GAS_SSTORE == 20_000
        assert gas.GAS_SUPDATE == 5_000
        assert gas.GAS_MEM == 3
        assert gas.GAS_HASH_BASE == 30
        assert gas.GAS_HASH_PER_WORD == 6
        assert gas.GAS_TX == 21_000
        assert gas.GAS_TXDATA_PER_BYTE == 68
        assert gas.BLOCK_GAS_LIMIT == 8_000_000

    def test_hash_gas_formula(self):
        assert gas.hash_gas(0) == 30
        assert gas.hash_gas(4) == 54

    def test_hash_gas_rejects_negative(self):
        with pytest.raises(ValueError):
            gas.hash_gas(-1)

    def test_usd_conversion_matches_paper(self):
        # Table I: C_sstore = 20,000 gas = 6.87e-2 US$.
        assert gas.gas_to_usd(gas.GAS_SSTORE) == pytest.approx(0.0687, rel=1e-3)
        # C_tx = 21,000 gas = 7.21e-2 US$.
        assert gas.gas_to_usd(gas.GAS_TX) == pytest.approx(0.0721, rel=1e-2)
        # C_sload = 200 gas = 6.87e-4 US$.
        assert gas.gas_to_usd(gas.GAS_SLOAD) == pytest.approx(6.87e-4, rel=1e-3)


class TestGasMeter:
    def test_operations_accumulate(self):
        meter = gas.GasMeter()
        meter.sload()
        meter.sstore()
        meter.supdate()
        meter.mem(2)
        meter.hash(3)
        meter.tx_base()
        meter.txdata(10)
        expected = 200 + 20_000 + 5_000 + 6 + 48 + 21_000 + 680
        assert meter.total == expected

    def test_category_buckets(self):
        meter = gas.GasMeter()
        meter.sstore()
        meter.supdate()
        meter.sload()
        meter.txdata(1)
        assert meter.write_gas == 25_000
        assert meter.read_gas == 200
        assert meter.other_gas == 68

    def test_usd_breakdown_keys(self):
        meter = gas.GasMeter()
        meter.sstore()
        split = meter.usd_breakdown()
        assert set(split) == {"write", "read", "others", "total"}
        assert split["total"] == pytest.approx(split["write"], rel=1e-9)

    def test_limit_enforced(self):
        meter = gas.GasMeter(limit=100)
        meter.charge(90, gas.GasCategory.OTHER, "x")
        with pytest.raises(OutOfGasError):
            meter.charge(20, gas.GasCategory.OTHER, "x")
        assert meter.total == 90  # failed charge not applied

    def test_rejects_negative_charge(self):
        with pytest.raises(ValueError):
            gas.GasMeter().charge(-1, gas.GasCategory.OTHER, "x")

    def test_merge_and_snapshot(self):
        a = gas.GasMeter()
        a.sstore()
        b = gas.GasMeter()
        b.sload(2)
        a.merge(b)
        assert a.total == 20_000 + 400
        snap = a.snapshot()
        a.sload()
        assert snap.total == 20_000 + 400
        assert snap.by_operation["sload"] == 400

    def test_by_operation_tracking(self):
        meter = gas.GasMeter()
        meter.sload()
        meter.sload()
        assert meter.by_operation["sload"] == 400
