"""Unit tests for the metered execution context."""

import hashlib

from repro.ethereum.gas import GasMeter
from repro.ethereum.vm import ExecutionContext, estimate_calldata_bytes, int_to_word


def make_env(limit=None):
    return ExecutionContext(meter=GasMeter(limit=limit))


class TestKeccak:
    def test_correct_digest(self):
        env = make_env()
        assert env.keccak(b"abc") == hashlib.sha3_256(b"abc").digest()

    def test_charges_per_word(self):
        env = make_env()
        env.keccak(b"x" * 64)  # 2 words
        assert env.meter.by_operation["hash"] == 30 + 6 * 2

    def test_concat_single_charge(self):
        env = make_env()
        digest = env.keccak_concat(b"a" * 32, b"b" * 32)
        assert digest == hashlib.sha3_256(b"a" * 32 + b"b" * 32).digest()
        assert env.meter.by_operation["hash"] == 30 + 6 * 2


class TestMemory:
    def test_touch_memory(self):
        env = make_env()
        env.touch_memory(5)
        assert env.meter.by_operation["mem"] == 15

    def test_read_calldata_charges_words(self):
        env = make_env()
        data = b"z" * 70  # 3 words
        assert env.read_calldata(data) == data
        assert env.meter.by_operation["mem"] == 9


class TestEvents:
    def test_emit_records(self):
        env = make_env()
        env.emit("Stored", key=1, value="x")
        assert len(env.events) == 1
        assert env.events[0].name == "Stored"
        assert env.events[0].fields == {"key": 1, "value": "x"}
        assert "Stored" in str(env.events[0])


class TestHelpers:
    def test_estimate_calldata_bytes(self):
        assert estimate_calldata_bytes(b"ab", b"c") == 3

    def test_int_to_word(self):
        assert len(int_to_word(7)) == 32
        assert int_to_word(7)[-1] == 7
