"""Unit tests for the blockchain simulator."""

import pytest

from repro.errors import ChainError, IntegrityError
from repro.ethereum.chain import Blockchain
from repro.ethereum.contract import SmartContract
from repro.ethereum.gas import GAS_TX, GAS_TXDATA_PER_BYTE


class Counter(SmartContract):
    """Minimal test contract: a stored counter plus a failing method."""

    def bump(self, by: int = 1) -> int:
        current = self.storage.load_int(("count",))
        self.storage.store(("count",), current + by)
        self.emit("Bumped", by=by)
        return current + by

    def explode(self) -> None:
        raise IntegrityError("boom")

    def view_count(self) -> int:
        return self.storage.peek_int(("count",))


@pytest.fixture()
def chain():
    c = Blockchain()
    c.deploy("counter", Counter())
    return c


class TestDeployment:
    def test_duplicate_name_rejected(self, chain):
        with pytest.raises(ChainError):
            chain.deploy("counter", Counter())

    def test_unknown_contract(self, chain):
        with pytest.raises(ChainError):
            chain.contract("nope")


class TestTransactions:
    def test_successful_execution(self, chain):
        receipt = chain.send_transaction("alice", "counter", "bump", 2)
        assert receipt.status
        assert receipt.result == 2
        assert receipt.events[0].name == "Bumped"
        assert chain.call_view("counter", "view_count") == 2

    def test_base_and_payload_gas(self, chain):
        receipt = chain.send_transaction(
            "alice", "counter", "bump", payload=b"x" * 10
        )
        assert receipt.gas.by_operation["tx"] == GAS_TX
        assert receipt.gas.by_operation["txdata"] == 10 * GAS_TXDATA_PER_BYTE

    def test_nonces_increment(self, chain):
        r1 = chain.send_transaction("alice", "counter", "bump")
        r2 = chain.send_transaction("alice", "counter", "bump")
        r3 = chain.send_transaction("bob", "counter", "bump")
        assert r1.tx.nonce == 0
        assert r2.tx.nonce == 1
        assert r3.tx.nonce == 0

    def test_integrity_failure_yields_failed_receipt(self, chain):
        receipt = chain.send_transaction("alice", "counter", "explode")
        assert not receipt.status
        assert "boom" in receipt.error

    def test_unknown_method(self, chain):
        with pytest.raises(ChainError):
            chain.send_transaction("alice", "counter", "no_such")

    def test_private_method_blocked(self, chain):
        with pytest.raises(ChainError):
            chain.send_transaction("alice", "counter", "_env")

    def test_gas_limit_aborts(self):
        chain = Blockchain(gas_limit=21_500)
        chain.deploy("counter", Counter())
        receipt = chain.send_transaction("a", "counter", "bump")
        assert not receipt.status
        assert "OutOfGasError" in receipt.error

    def test_view_guard(self, chain):
        with pytest.raises(ChainError):
            chain.call_view("counter", "bump")

    def test_contract_storage_sealed_outside_tx(self, chain):
        contract = chain.contract("counter")
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            contract.storage.load(("count",))
        with pytest.raises(StorageError):
            contract.env  # no active execution context


class TestBlocks:
    def test_mining_seals_pending(self, chain):
        chain.send_transaction("alice", "counter", "bump")
        chain.send_transaction("alice", "counter", "bump")
        block = chain.mine_block()
        assert len(block.receipts) == 2
        assert chain.pending == []
        assert chain.height == 1

    def test_chain_linkage_verifies(self, chain):
        for _ in range(3):
            chain.send_transaction("alice", "counter", "bump")
            chain.mine_block()
        assert chain.verify_chain()

    def test_tampering_breaks_linkage(self, chain):
        chain.send_transaction("alice", "counter", "bump")
        chain.mine_block()
        chain.send_transaction("alice", "counter", "bump")
        chain.mine_block()
        chain.blocks[1].header.timestamp += 1.0
        assert not chain.verify_chain()

    def test_proof_of_work_sealing(self):
        chain = Blockchain(seal_proof_of_work=True)
        chain.deploy("counter", Counter())
        chain.send_transaction("alice", "counter", "bump")
        block = chain.mine_block()
        digest = block.header.hash()
        assert int.from_bytes(digest[:4], "big") >> 24 == 0

    def test_total_gas_tracks_everything(self, chain):
        chain.send_transaction("alice", "counter", "bump")
        sealed_gas = chain.total_gas_used()
        chain.mine_block()
        assert chain.total_gas_used() == sealed_gas

    def test_receipt_lookup_by_digest(self, chain):
        receipt = chain.send_transaction("alice", "counter", "bump")
        assert chain.receipts_by_tx[receipt.tx.digest()] is receipt
