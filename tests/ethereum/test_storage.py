"""Unit tests for the metered contract storage."""

import pytest

from repro.errors import StorageError
from repro.ethereum.gas import GasMeter
from repro.ethereum.storage import ContractStorage, to_word, word_to_int


@pytest.fixture()
def storage():
    s = ContractStorage()
    s.bind_meter(GasMeter())
    return s


class TestWordEncoding:
    def test_int_roundtrip(self):
        assert word_to_int(to_word(123456)) == 123456

    def test_bytes_padded(self):
        assert to_word(b"\x01") == b"\x00" * 31 + b"\x01"

    def test_rejects_oversized(self):
        with pytest.raises(StorageError):
            to_word(b"x" * 33)
        with pytest.raises(StorageError):
            to_word(1 << 256)

    def test_rejects_negative(self):
        with pytest.raises(StorageError):
            to_word(-1)

    def test_rejects_other_types(self):
        with pytest.raises(StorageError):
            to_word("string")  # type: ignore[arg-type]


class TestMeteredAccess:
    def test_fresh_write_charges_sstore(self, storage):
        storage.store(("k",), 1)
        assert storage._meter.write_gas == 20_000

    def test_overwrite_charges_supdate(self, storage):
        storage.store(("k",), 1)
        storage.store(("k",), 2)
        assert storage._meter.by_operation["sstore"] == 20_000
        assert storage._meter.by_operation["supdate"] == 5_000

    def test_load_charges_sload(self, storage):
        storage.store(("k",), 7)
        assert storage.load_int(("k",)) == 7
        assert storage._meter.read_gas == 200

    def test_absent_key_reads_zero(self, storage):
        assert storage.load_int(("missing",)) == 0

    def test_write_zero_clears_slot(self, storage):
        storage.store(("k",), 5)
        storage.store(("k",), 0)
        assert storage.occupied_slots() == 0
        # Writing zero again into an empty slot is an sstore by the
        # zero->nonzero rule only when the value is nonzero; zero->zero
        # still charges (the EVM charges for the attempt).
        storage.store(("k",), 0)
        assert storage.peek_int(("k",)) == 0

    def test_no_meter_raises(self):
        s = ContractStorage()
        with pytest.raises(StorageError):
            s.load(("k",))
        with pytest.raises(StorageError):
            s.store(("k",), 1)


class TestMultiWordRecords:
    def test_store_load_bytes_roundtrip(self, storage):
        data = b"hello world, this spans multiple storage words!" * 2
        words = storage.store_bytes(("blob",), data)
        assert words == 1 + (len(data) + 31) // 32
        assert storage.load_bytes(("blob",)) == data

    def test_empty_record(self, storage):
        storage.store_bytes(("blob",), b"")
        assert storage.load_bytes(("blob",)) == b""


class TestUnmeteredAccess:
    def test_peek_poke_do_not_charge(self, storage):
        before = storage._meter.total
        storage.poke(("k",), 9)
        assert storage.peek_int(("k",)) == 9
        assert storage._meter.total == before

    def test_poke_zero_clears(self, storage):
        storage.poke(("k",), 9)
        storage.poke(("k",), 0)
        assert storage.occupied_slots() == 0

    def test_keys_iteration(self, storage):
        storage.poke(("a",), 1)
        storage.poke(("b",), 2)
        assert sorted(storage.keys()) == [("a",), ("b",)]
