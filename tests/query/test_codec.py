"""Round-trip tests for the VO wire codec, both proof families."""

import pytest

from repro import DataObject, HybridStorageSystem, KeywordQuery
from repro.core.query.codec import VOCodec
from repro.core.query.verify import verify_query
from repro.errors import ReproError


def loaded(scheme, docs, **kwargs):
    system = HybridStorageSystem(
        scheme=scheme, cvc_modulus_bits=512, seed=5, **kwargs
    )
    system.add_objects(docs)
    return system


QUERIES = [
    "covid-19 AND symptom",
    "symptom",
    "covid-19 AND symptom AND vaccine",
    "covid-19 AND ghost",
    "(covid-19 AND vaccine) OR (sars-cov-2 AND vaccine)",
]


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", ["smi", "ci", "ci*"])
    @pytest.mark.parametrize("text", QUERIES)
    def test_encode_decode_identity(self, scheme, text, small_docs):
        system = loaded(scheme, small_docs)
        codec = VOCodec(value_bytes=system.value_bytes)
        answer = system.process_query(KeywordQuery.parse(text))
        payload = codec.encode(answer.vo)
        assert codec.decode(payload) == answer.vo

    def test_decoded_vo_still_verifies(self, small_docs):
        system = loaded("ci", small_docs)
        codec = VOCodec(value_bytes=system.value_bytes)
        query = KeywordQuery.parse("covid-19 AND symptom")
        answer = system.process_query(query)
        answer.vo = codec.decode(codec.encode(answer.vo))
        ps = system.chain_proof_system(query.all_keywords())
        verified = verify_query(query, answer, ps)
        assert verified.ids == {4}

    def test_semijoin_plan_roundtrip(self, small_docs):
        system = loaded("smi", small_docs, join_plan="semijoin")
        codec = VOCodec(value_bytes=system.value_bytes)
        answer = system.process_query(
            KeywordQuery.parse("covid-19 AND symptom AND vaccine")
        )
        assert codec.decode(codec.encode(answer.vo)) == answer.vo


class TestByteSizeExactness:
    """``byte_size()`` is the wire truth: it must equal ``len(encode())``."""

    @pytest.mark.parametrize("scheme", ["smi", "ci", "ci*"])
    @pytest.mark.parametrize("text", QUERIES)
    def test_vo_byte_size_matches_wire(self, scheme, text, small_docs):
        system = loaded(scheme, small_docs)
        codec = VOCodec(value_bytes=system.value_bytes)
        vo = system.process_query(KeywordQuery.parse(text)).vo
        assert vo.byte_size(system.value_bytes) == len(codec.encode(vo))

    @pytest.mark.parametrize("text", QUERIES)
    def test_v2_frame_byte_size_matches_wire(self, text, small_docs):
        system = loaded("smi", small_docs, vo_version=2)
        codec = VOCodec(value_bytes=system.value_bytes)
        vo = system.process_query(KeywordQuery.parse(text)).vo
        assert vo.byte_size(system.value_bytes) == len(codec.encode(vo))

    def test_merkle_path_byte_size_matches_wire_delta(self, small_docs):
        """Swapping one MerklePath for ``None`` shrinks the frame by
        exactly the path's claimed ``byte_size`` — pins the path size
        formula to the codec, not just the aggregate."""
        import dataclasses

        from repro.core.query.vo import FullScanVO

        system = loaded("smi", small_docs, vo_version=2)
        codec = VOCodec(value_bytes=system.value_bytes)
        vo = system.process_query(KeywordQuery.parse("symptom")).vo
        base = vo.conjuncts[0].base
        assert isinstance(base, FullScanVO) and base.entries
        path = base.entries[0].proof
        stripped_entry = dataclasses.replace(base.entries[0], proof=None)
        stripped = dataclasses.replace(
            vo,
            conjuncts=(
                dataclasses.replace(
                    vo.conjuncts[0],
                    base=dataclasses.replace(
                        base, entries=(stripped_entry,) + base.entries[1:]
                    ),
                ),
            ),
        )
        delta = len(codec.encode(vo)) - len(codec.encode(stripped))
        assert delta == path.byte_size()


class TestMalformedPayloads:
    def test_truncated(self, small_docs):
        system = loaded("smi", small_docs)
        codec = VOCodec(value_bytes=32)
        payload = codec.encode(
            system.process_query(KeywordQuery.parse("symptom")).vo
        )
        with pytest.raises(ReproError):
            codec.decode(payload[:-3])

    def test_trailing_garbage(self, small_docs):
        system = loaded("smi", small_docs)
        codec = VOCodec(value_bytes=32)
        payload = codec.encode(
            system.process_query(KeywordQuery.parse("symptom")).vo
        )
        with pytest.raises(ReproError):
            codec.decode(payload + b"\x00")

    def test_bad_value_bytes(self):
        with pytest.raises(ReproError):
            VOCodec(value_bytes=0)

    def test_unknown_proof_tag(self):
        codec = VOCodec(value_bytes=32)
        # conjuncts=1, keywords=1 "a", no empty kw, base=fullscan,
        # keyword "a", one entry present with a bogus proof tag.
        payload = (
            b"\x01"  # one conjunct
            b"\x01" + b"\x01a"  # one keyword "a"
            b"\x00"  # no empty keyword
            b"\x02"  # base = full scan
            b"\x01a"  # scan keyword
            b"\x00\x01"  # one entry
            b"\x01"  # entry present
            + (0).to_bytes(8, "big")
            + b"\x00" * 32
            + b"\x09"  # invalid proof tag
        )
        with pytest.raises(ReproError):
            codec.decode(payload)

    def test_wire_size_used_by_system(self, small_docs):
        system = loaded("smi", small_docs)
        result = system.query("covid-19 AND symptom")
        codec = VOCodec(value_bytes=system.value_bytes)
        answer = system.process_query(KeywordQuery.parse("covid-19 AND symptom"))
        assert result.vo_sp_bytes == len(codec.encode(answer.vo))


class TestCodecFuzz:
    def test_random_bytes_never_crash_unexpectedly(self):
        """Decoding arbitrary bytes must fail cleanly (ReproError), never
        with an unhandled exception type."""
        import random

        from repro.errors import ReproError

        rng = random.Random(2024)
        codec = VOCodec(value_bytes=64)
        for _ in range(300):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 80)))
            try:
                codec.decode(blob)
            except ReproError:
                pass
            except UnicodeDecodeError:
                pass  # keyword bytes may be invalid UTF-8: also a clean reject

    def test_bitflip_fuzz_on_valid_payload(self, small_docs):
        """Single-bit corruptions either fail to decode or decode to a VO
        that no longer verifies — never silently pass verification with
        altered content."""
        import random

        from repro.core.query.verify import verify_query
        from repro.errors import ReproError, VerificationError

        system = loaded("smi", small_docs)
        codec = VOCodec(value_bytes=system.value_bytes)
        query = KeywordQuery.parse("covid-19 AND symptom")
        answer = system.process_query(query)
        payload = bytearray(codec.encode(answer.vo))
        ps = system.chain_proof_system(query.all_keywords())
        rng = random.Random(7)
        flips = 0
        for _ in range(60):
            position = rng.randrange(len(payload))
            bit = 1 << rng.randrange(8)
            payload[position] ^= bit
            try:
                mutated = codec.decode(bytes(payload))
                answer.vo = mutated
                verified = verify_query(query, answer, ps)
                # A surviving decode+verify must mean the flip landed in
                # a part that decodes identically (e.g. it was flipped
                # back) — results must be unchanged.
                assert verified.ids == {4}
            except (ReproError, VerificationError, UnicodeDecodeError,
                    OverflowError, AssertionError):
                flips += 1
            finally:
                payload[position] ^= bit  # restore
        assert flips > 0
