"""Golden v2 VO fixtures: committed wire frames must stay decodable.

The legacy (v2) frame is a compatibility surface: clients running older
verifiers send and receive it, so its byte layout is frozen.  These
tests decode byte-exact fixtures committed under ``tests/fixtures/``,
verify them against a deterministically rebuilt system, and re-encode
them byte-identically — any codec change that silently reshapes the v2
wire fails here first.

Regenerate (only after an intentional, versioned format change)::

    PYTHONPATH=src python tests/query/test_golden_fixtures.py --regen
"""

import pathlib

import pytest

from repro import DataObject, HybridStorageSystem, KeywordQuery
from repro.core.query.codec import VOCodec
from repro.core.query.verify import verify_query
from repro.errors import ReproError

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent.parent / "fixtures"

#: The deterministic corpus behind every fixture (seed 8, v2 frames).
FIXTURE_DOCS = (
    DataObject(1, ("covid-19", "sars-cov-2"), b"a"),
    DataObject(2, ("covid-19",), b"b"),
    DataObject(4, ("covid-19", "symptom", "vaccine"), b"c"),
    DataObject(5, ("covid-19", "vaccine"), b"d"),
    DataObject(6, ("symptom",), b"e"),
    DataObject(7, ("sars-cov-2", "vaccine"), b"f"),
)

#: name -> (scheme, query text, expected verified ids)
CASES = {
    "vo_v2_smi_join": ("smi", "covid-19 AND vaccine", {4, 5}),
    "vo_v2_smi_scan": ("smi", "symptom", {4, 6}),
    "vo_v2_smi_dnf": (
        "smi",
        "(covid-19 AND symptom) OR sars-cov-2",
        {1, 4, 7},
    ),
    "vo_v2_ci_join": ("ci", "covid-19 AND vaccine", {4, 5}),
}


def fixture_system(scheme):
    system = HybridStorageSystem(
        scheme=scheme, cvc_modulus_bits=512, seed=8, vo_version=2
    )
    system.add_objects(FIXTURE_DOCS)
    return system


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_v2_fixture_decodes_verifies_and_reencodes(name):
    scheme, text, expected = CASES[name]
    payload = (FIXTURE_DIR / f"{name}.bin").read_bytes()
    system = fixture_system(scheme)
    codec = VOCodec(value_bytes=system.value_bytes)

    vo = codec.decode(payload)
    query = KeywordQuery.parse(text)
    answer = system.process_query(query)
    answer.vo = vo  # the fixture VO, not the freshly produced one
    ps = system.chain_proof_system(query.all_keywords())
    assert verify_query(query, answer, ps).ids == expected
    assert codec.encode(vo) == payload


def test_fixtures_are_plain_v2_frames():
    """No fixture may carry a version marker: they pin the legacy path."""
    for name in CASES:
        payload = (FIXTURE_DIR / f"{name}.bin").read_bytes()
        assert payload[0] < 0xF0


def test_unknown_version_marker_on_fixture_rejected():
    """A future-versioned frame is a clean reject, not a crash."""
    payload = (FIXTURE_DIR / "vo_v2_smi_scan.bin").read_bytes()
    codec = VOCodec(value_bytes=32)
    with pytest.raises(ReproError, match="unsupported VO frame"):
        codec.decode(bytes([0xF5]) + payload[1:])


def _regenerate():
    for name, (scheme, text, _) in CASES.items():
        system = fixture_system(scheme)
        codec = VOCodec(value_bytes=system.value_bytes)
        answer = system.process_query(KeywordQuery.parse(text))
        payload = codec.encode(answer.vo)
        (FIXTURE_DIR / f"{name}.bin").write_bytes(payload)
        print(f"wrote {name}.bin ({len(payload)} bytes)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
