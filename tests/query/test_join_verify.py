"""Join + verification correctness against a brute-force model.

Uses the Merkle family for speed (pure hashing); the Chameleon family's
join shares the identical engine and is exercised in the integration and
attack suites.
"""

import random

import pytest

from repro.core.merkle_family import MerkleInvertedSP, MerkleProofSystem
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.query.join import conjunctive_join, join_two, semi_join
from repro.core.query.parser import KeywordQuery
from repro.core.query.verify import verify_conjunct, verify_query
from repro.core.query.vo import QueryAnswer, QueryVO
from repro.errors import QueryError, VerificationError


def build_sp(doc_keywords: dict[int, tuple[str, ...]]) -> MerkleInvertedSP:
    sp = MerkleInvertedSP()
    for oid in sorted(doc_keywords):
        sp.insert(ObjectMetadata.of(DataObject(oid, doc_keywords[oid], b"c")))
    return sp


def proof_system_for(sp: MerkleInvertedSP, keywords) -> MerkleProofSystem:
    return MerkleProofSystem(roots={kw: sp.root_hash(kw) for kw in keywords})


def brute_force(doc_keywords, conj):
    return {
        oid
        for oid, kws in doc_keywords.items()
        if conj <= set(kws)
    }


@pytest.fixture()
def corpus():
    """The paper's Fig. 5 inverted index."""
    return {
        1: ("covid-19", "sars-cov-2"),
        2: ("covid-19",),
        3: ("sars-cov-2",),
        4: ("covid-19", "symptom", "vaccine"),
        5: ("covid-19", "vaccine"),
        6: ("symptom",),
        7: ("covid-19",),
        8: ("covid-19", "vaccine"),
        9: ("symptom",),
        10: ("covid-19",),
        11: ("symptom",),
        12: ("covid-19",),
    }


class TestJoinTwo:
    def test_paper_example(self, corpus):
        sp = build_sp(corpus)
        matches, vo = join_two(sp.view("symptom"), sp.view("covid-19"))
        assert matches == [4]
        assert vo.rounds[-1].upper is None  # terminal round

    def test_empty_tree_rejected(self, corpus):
        sp = build_sp(corpus)
        with pytest.raises(QueryError):
            join_two(sp.view("symptom"), sp.view("missing"))

    def test_identical_trees_full_overlap(self, corpus):
        sp = build_sp(corpus)
        matches, _ = join_two(sp.view("vaccine"), sp.view("vaccine"))
        assert matches == [4, 5, 8]


class TestSemiJoin:
    def test_filters_candidates(self, corpus):
        sp = build_sp(corpus)
        survivors, stage = semi_join([4, 5, 8], sp.view("symptom"))
        assert survivors == [4]
        assert len(stage.probes) == 3

    def test_empty_candidates(self, corpus):
        sp = build_sp(corpus)
        survivors, stage = semi_join([], sp.view("symptom"))
        assert survivors == []
        assert stage.probes == ()


class TestConjunctiveJoin:
    def test_single_keyword_full_scan(self, corpus):
        sp = build_sp(corpus)
        ids, vo = conjunctive_join([sp.view("symptom")])
        assert ids == [4, 6, 9, 11]
        assert vo.base is not None

    def test_empty_keyword_short_circuits(self, corpus):
        sp = build_sp(corpus)
        ids, vo = conjunctive_join([sp.view("covid-19"), sp.view("none")])
        assert ids == []
        assert vo.empty_keyword == "none"

    def test_three_way_cyclic(self, corpus):
        sp = build_sp(corpus)
        views = [sp.view(k) for k in ("covid-19", "symptom", "vaccine")]
        ids, vo = conjunctive_join(views)
        assert ids == [4]
        assert vo.stages == ()
        assert len(vo.base.trees) == 3

    def test_three_way_semijoin(self, corpus):
        sp = build_sp(corpus)
        views = [sp.view(k) for k in ("covid-19", "symptom", "vaccine")]
        ids, vo = conjunctive_join(views, plan="semijoin")
        assert ids == [4]
        assert len(vo.stages) == 1
        assert len(vo.base.trees) == 2


class TestVerification:
    def _query(self, sp, corpus, text):
        query = KeywordQuery.parse(text)
        conjunct_vos = []
        all_ids = set()
        for conj in query.conjunctions:
            views = [sp.view(kw) for kw in sorted(conj)]
            ids, vo = conjunctive_join(views)
            conjunct_vos.append(vo)
            all_ids |= set(ids)
        objects = {
            oid: DataObject(oid, corpus[oid], b"c") for oid in all_ids
        }
        answer = QueryAnswer(
            result_ids=sorted(all_ids),
            objects=objects,
            vo=QueryVO(conjuncts=tuple(conjunct_vos)),
        )
        ps = proof_system_for(sp, query.all_keywords())
        return query, answer, ps

    @pytest.mark.parametrize(
        "text",
        [
            "covid-19 AND symptom",
            "covid-19 AND vaccine",
            "symptom",
            "covid-19 AND symptom AND vaccine",
            "(covid-19 AND vaccine) OR (sars-cov-2 AND vaccine)",
            "covid-19 AND ghost-keyword",
            "sars-cov-2 OR symptom",
        ],
    )
    def test_valid_answers_verify(self, corpus, text):
        sp = build_sp(corpus)
        query, answer, ps = self._query(sp, corpus, text)
        verified = verify_query(query, answer, ps)
        expected = {
            oid
            for oid, kws in corpus.items()
            if query.matches(frozenset(kws))
        }
        assert verified.ids == expected

    def test_conjunct_keyword_mismatch_rejected(self, corpus):
        sp = build_sp(corpus)
        _, answer, ps = self._query(sp, corpus, "covid-19 AND symptom")
        other = KeywordQuery.parse("covid-19 AND vaccine")
        with pytest.raises(VerificationError):
            verify_query(other, answer, ps)

    def test_claimed_results_must_match(self, corpus):
        sp = build_sp(corpus)
        query, answer, ps = self._query(sp, corpus, "covid-19 AND symptom")
        answer.result_ids.append(5)  # inflate the claimed results
        with pytest.raises(VerificationError):
            verify_query(query, answer, ps)

    def test_missing_result_object_rejected(self, corpus):
        sp = build_sp(corpus)
        query, answer, ps = self._query(sp, corpus, "covid-19 AND symptom")
        answer.objects.clear()
        with pytest.raises(VerificationError):
            verify_query(query, answer, ps)

    def test_tampered_object_content_rejected(self, corpus):
        sp = build_sp(corpus)
        query, answer, ps = self._query(sp, corpus, "covid-19 AND symptom")
        answer.objects[4] = DataObject(4, corpus[4], b"TAMPERED")
        with pytest.raises(VerificationError):
            verify_query(query, answer, ps)


class TestRandomisedAgainstModel:
    def test_many_random_corpora(self):
        rng = random.Random(1234)
        vocabulary = [f"w{i}" for i in range(12)]
        for trial in range(25):
            corpus = {}
            for oid in range(1, rng.randint(5, 60)):
                count = rng.randint(1, 5)
                corpus[oid] = tuple(rng.sample(vocabulary, count))
            sp = build_sp(corpus)
            for _ in range(8):
                conj = frozenset(rng.sample(vocabulary, rng.randint(1, 4)))
                views = [sp.view(kw) for kw in sorted(conj)]
                ids, vo = conjunctive_join(views)
                assert set(ids) == brute_force(corpus, set(conj)), (
                    trial, sorted(conj)
                )
                ps = proof_system_for(sp, conj)
                verified = verify_conjunct(conj, vo, ps)
                assert verified.ids == set(ids)
