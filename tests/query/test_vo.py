"""Unit tests for VO structures and size accounting."""

import pytest

from repro.core.merkle_family import MerkleInvertedSP
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.query.join import conjunctive_join
from repro.core.query.vo import (
    ConjunctiveVO,
    JoinRound,
    ProvenEntry,
    QueryVO,
    SemiJoinProbe,
)
from repro.crypto.hashing import sha3


def build_sp(n, keywords=("a", "b")):
    sp = MerkleInvertedSP()
    for oid in range(1, n + 1):
        kws = tuple(k for i, k in enumerate(keywords) if oid % (i + 2) != 0) or keywords[:1]
        sp.insert(ObjectMetadata.of(DataObject(oid, kws, b"c")))
    return sp


class TestProvenEntry:
    def test_byte_size_includes_proof(self):
        sp = build_sp(20)
        entry = sp.view("a").first_proven()
        assert entry.byte_size() > 40  # id + hash + path

    def test_rejects_proof_without_byte_size(self):
        entry = ProvenEntry(object_id=1, object_hash=sha3(b"x"), proof=object())
        with pytest.raises(TypeError):
            entry.byte_size()

    def test_none_proof_costs_only_framing(self):
        entry = ProvenEntry(object_id=1, object_hash=sha3(b"x"), proof=None)
        # presence + id + hash + proof tag
        assert entry.byte_size() == 1 + 8 + 32 + 1


class TestJoinRoundSizes:
    def test_probe_round(self):
        sp = build_sp(20)
        lower, upper = sp.view("a").boundaries_proven(5)
        rnd = JoinRound(kind="probe", lower=lower, upper=upper)
        # kind + probe index + both boundaries + absent next_target slot
        assert rnd.byte_size() == 3 + lower.byte_size() + upper.byte_size()

    def test_skip_round_smaller_than_probe(self):
        sp = build_sp(20)
        lower, upper = sp.view("a").boundaries_proven(5)
        probe = JoinRound(kind="probe", lower=lower, upper=upper)
        skip = JoinRound(kind="skip", next_target=upper)
        assert skip.byte_size() < probe.byte_size()


class TestAggregateSizes:
    def test_vo_size_grows_with_results(self):
        small_sp = build_sp(10)
        large_sp = build_sp(200)
        _, small_vo = conjunctive_join([small_sp.view("a"), small_sp.view("b")])
        _, large_vo = conjunctive_join([large_sp.view("a"), large_sp.view("b")])
        small = QueryVO(conjuncts=(small_vo,)).byte_size()
        large = QueryVO(conjuncts=(large_vo,)).byte_size()
        assert large > small

    def test_empty_keyword_vo_is_tiny(self):
        vo = ConjunctiveVO(keywords=("a", "ghost"), empty_keyword="ghost")
        assert vo.byte_size() < 50

    def test_semi_join_probe_flags(self):
        absent = SemiJoinProbe(candidate_id=5, bloom_absent=True)
        assert not absent.matched
        # id + flag + two absent boundary slots
        assert absent.byte_size() == 11
