"""Unit tests for the DNF query parser."""

import pytest

from repro.core.query.parser import KeywordQuery
from repro.errors import QueryError


def conj_sets(query):
    return {frozenset(c) for c in query.conjunctions}


class TestParsing:
    def test_single_keyword(self):
        q = KeywordQuery.parse("covid-19")
        assert conj_sets(q) == {frozenset({"covid-19"})}

    def test_conjunction(self):
        q = KeywordQuery.parse("a AND b AND c")
        assert conj_sets(q) == {frozenset({"a", "b", "c"})}

    def test_disjunction(self):
        q = KeywordQuery.parse("a OR b")
        assert conj_sets(q) == {frozenset({"a"}), frozenset({"b"})}

    def test_paper_example(self):
        q = KeywordQuery.parse(
            '("COVID-19" AND "Vaccine") OR ("SARS-CoV-2" AND "Vaccine")'
        )
        assert conj_sets(q) == {
            frozenset({"covid-19", "vaccine"}),
            frozenset({"sars-cov-2", "vaccine"}),
        }

    def test_distribution_over_or(self):
        q = KeywordQuery.parse("a AND (b OR c)")
        assert conj_sets(q) == {frozenset({"a", "b"}), frozenset({"a", "c"})}

    def test_nested_parentheses(self):
        q = KeywordQuery.parse("((a OR b) AND (c OR d))")
        assert conj_sets(q) == {
            frozenset({"a", "c"}),
            frozenset({"a", "d"}),
            frozenset({"b", "c"}),
            frozenset({"b", "d"}),
        }

    def test_symbolic_operators(self):
        q = KeywordQuery.parse("a && b || c & d")
        assert conj_sets(q) == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_implicit_and(self):
        q = KeywordQuery.parse("a b")
        assert conj_sets(q) == {frozenset({"a", "b"})}

    def test_quoted_keywords_preserve_spaces(self):
        q = KeywordQuery.parse('"machine learning" AND blockchain')
        assert conj_sets(q) == {frozenset({"machine learning", "blockchain"})}

    def test_case_insensitive_operators_and_keywords(self):
        q = KeywordQuery.parse("Alpha AND beta")
        assert conj_sets(q) == {frozenset({"alpha", "beta"})}


class TestAbsorption:
    def test_duplicate_conjunctions_removed(self):
        q = KeywordQuery.parse("(a AND b) OR (b AND a)")
        assert len(q.conjunctions) == 1

    def test_superset_absorbed(self):
        q = KeywordQuery.parse("a OR (a AND b)")
        assert conj_sets(q) == {frozenset({"a"})}


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("")

    def test_negation_rejected(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("a AND NOT b")

    def test_unbalanced_parens(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("(a AND b")

    def test_stray_close_paren(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("a)")

    def test_dangling_operator(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("a AND")

    def test_unterminated_quote(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse('"abc')

    def test_conjunctive_requires_keywords(self):
        with pytest.raises(QueryError):
            KeywordQuery.conjunctive([])


class TestEvaluation:
    def test_matches(self):
        q = KeywordQuery.parse("(a AND b) OR c")
        assert q.matches(frozenset({"a", "b", "x"}))
        assert q.matches(frozenset({"c"}))
        assert not q.matches(frozenset({"a", "x"}))

    def test_all_keywords(self):
        q = KeywordQuery.parse("(a AND b) OR c")
        assert q.all_keywords() == frozenset({"a", "b", "c"})

    def test_str_rendering(self):
        q = KeywordQuery.parse("(a AND b) OR c")
        assert "AND" in str(q) and "OR" in str(q)

    def test_conjunctive_constructor(self):
        q = KeywordQuery.conjunctive(["X", "y"])
        assert conj_sets(q) == {frozenset({"x", "y"})}
