"""End-to-end tests for multiproof VO compression (v3 frames).

The SP ships one deduplicated :class:`TreeMultiproof` per
``(tree, commitment)`` and rewrites each covered entry's proof into a
:class:`LeafRef`; the client folds every multiproof once inside
``verify_query``.  These tests pin the compression win, the round trip,
and — most importantly — that every tamper vector fails closed.
"""

import dataclasses

import pytest

from repro import DataObject, HybridStorageSystem, KeywordQuery
from repro.core.multiproof import LeafRef
from repro.core.query.codec import VOCodec
from repro.core.query.verify import verify_query
from repro.core.query.vo import iter_proven_entries
from repro.errors import ReproError, VerificationError

#: High-selectivity DNF: "hot" matches every object, "warm" every 2nd,
#: "cool" every 3rd — three trees, three multiproofs, heavy path overlap.
DNF = "(hot AND warm) OR (hot AND cool)"
#: Sparse join: "rare" matches 4 of 40 objects, so the probed "hot"
#: tree's multiproof covers a thin slice and needs helper digests —
#: the interesting shape for helper-tampering tests.
SPARSE = "hot AND rare"


def corpus(n=40):
    docs = []
    for i in range(n):
        kws = ["hot"]
        if i % 2 == 0:
            kws.append("warm")
        if i % 3 == 0:
            kws.append("cool")
        if i % 13 == 0:
            kws.append("rare")
        docs.append(DataObject(i, tuple(kws), f"payload-{i}".encode()))
    return docs


def build(scheme="smi", **kwargs):
    system = HybridStorageSystem(
        scheme=scheme, cvc_modulus_bits=512, seed=5, **kwargs
    )
    system.add_objects(corpus())
    return system


@pytest.fixture(scope="module")
def v3_system():
    return build()


@pytest.fixture(scope="module")
def v2_system():
    return build(vo_version=2)


def answer_for(system, text=DNF):
    return system.process_query(KeywordQuery.parse(text))


def reverify(system, answer, text=DNF):
    query = KeywordQuery.parse(text)
    ps = system.chain_proof_system(query.all_keywords())
    return verify_query(query, answer, ps)


class TestCompression:
    def test_one_multiproof_per_tree(self, v3_system):
        answer = answer_for(v3_system)
        assert len(answer.vo.multiproofs) == 3  # hot, warm, cool

    def test_identical_results_and_shrink_vs_v2(self, v3_system, v2_system):
        a3 = answer_for(v3_system)
        a2 = answer_for(v2_system)
        assert a3.result_ids == a2.result_ids
        assert not a2.vo.multiproofs
        codec = VOCodec(value_bytes=v3_system.value_bytes)
        wire3 = len(codec.encode(a3.vo))
        wire2 = len(codec.encode(a2.vo))
        assert wire3 * 2 <= wire2
        vb = v3_system.value_bytes
        assert a3.vo.proof_byte_size(vb) * 2 <= a2.vo.proof_byte_size(vb)

    def test_both_versions_verify(self, v3_system, v2_system):
        for system in (v3_system, v2_system):
            answer = answer_for(system)
            assert reverify(system, answer).ids == {
                i for i in range(40) if i % 2 == 0 or i % 3 == 0
            }

    def test_low_yield_groups_keep_paths(self, v3_system):
        """The size gate: a group whose multiproof would not pay for
        itself ships the original MerklePaths (empty-keyword conjunct
        VOs carry no proofs at all)."""
        answer = answer_for(v3_system, "hot AND ghost")
        assert not answer.vo.multiproofs
        assert reverify(v3_system, answer, "hot AND ghost").ids == set()


class TestRoundTrip:
    def test_v3_decode_encode_identity(self, v3_system):
        codec = VOCodec(value_bytes=v3_system.value_bytes)
        vo = answer_for(v3_system).vo
        assert codec.decode(codec.encode(vo)) == vo

    def test_decoded_v3_vo_still_verifies(self, v3_system):
        codec = VOCodec(value_bytes=v3_system.value_bytes)
        answer = answer_for(v3_system)
        answer.vo = codec.decode(codec.encode(answer.vo))
        assert reverify(v3_system, answer).ids


class TestFailClosed:
    """Every tamper vector must raise, never mis-verify.

    Built on the SPARSE join so the probed tree's multiproof actually
    carries helper digests (a full-cover proof has none and is immune
    to helper tampering by construction).
    """

    @staticmethod
    def helpered(vo, minimum=1):
        """Index of the first multiproof with ``minimum``+ helpers."""
        for index, mp in enumerate(vo.multiproofs):
            if len(mp.helpers) >= minimum:
                return index
        pytest.skip("no multiproof with enough helpers")

    def mutate_mp(self, vo, index, **changes):
        mp = dataclasses.replace(vo.multiproofs[index], **changes)
        table = (
            vo.multiproofs[:index] + (mp,) + vo.multiproofs[index + 1 :]
        )
        return dataclasses.replace(vo, multiproofs=table)

    def test_dropped_helper(self, v3_system):
        answer = answer_for(v3_system, SPARSE)
        index = self.helpered(answer.vo)
        answer.vo = self.mutate_mp(
            answer.vo, index, helpers=answer.vo.multiproofs[index].helpers[:-1]
        )
        with pytest.raises(VerificationError):
            reverify(v3_system, answer, SPARSE)

    def test_duplicated_helper(self, v3_system):
        answer = answer_for(v3_system, SPARSE)
        index = self.helpered(answer.vo)
        helpers = answer.vo.multiproofs[index].helpers
        answer.vo = self.mutate_mp(
            answer.vo, index, helpers=helpers + helpers[:1]
        )
        with pytest.raises(VerificationError):
            reverify(v3_system, answer, SPARSE)

    def test_reordered_helpers(self, v3_system):
        answer = answer_for(v3_system, SPARSE)
        index = self.helpered(answer.vo, minimum=2)
        helpers = answer.vo.multiproofs[index].helpers
        if helpers[0] == helpers[1]:
            pytest.skip("helper digests coincide")
        swapped = (helpers[1], helpers[0]) + helpers[2:]
        answer.vo = self.mutate_mp(answer.vo, index, helpers=swapped)
        with pytest.raises(VerificationError):
            reverify(v3_system, answer, SPARSE)

    def test_cross_tree_helper_splicing(self, v3_system):
        """Grafting another tree's digests into a multiproof must not
        fold to the victim tree's root."""
        answer = answer_for(v3_system, SPARSE)
        index = self.helpered(answer.vo)
        victim = answer.vo.multiproofs[index].helpers
        donor_mp = answer.vo.multiproofs[
            (index + 1) % len(answer.vo.multiproofs)
        ]
        donor = donor_mp.helpers or tuple(h for _, h in donor_mp.leaves)
        assert donor
        spliced = (donor[0],) + victim[1:]
        if spliced == victim:
            pytest.skip("digests coincide")
        answer.vo = self.mutate_mp(answer.vo, index, helpers=spliced)
        with pytest.raises(VerificationError):
            reverify(v3_system, answer, SPARSE)

    def test_gindex_substitution_between_trees(self, v3_system):
        """Re-pointing a LeafRef at a different tree's multiproof must
        fail: one fold has one root, and it is not this keyword's."""
        answer = answer_for(v3_system, SPARSE)
        vo = answer.vo
        entries = [
            e
            for e in iter_proven_entries(vo)
            if isinstance(e.proof, LeafRef)
        ]
        assert entries
        victim = entries[0]
        other = (victim.proof.proof_index + 1) % len(vo.multiproofs)
        swapped = dataclasses.replace(
            victim.proof, proof_index=other, ordinal=0
        )

        def rewrite(entry):
            if entry is victim:
                return dataclasses.replace(entry, proof=swapped)
            return entry

        answer.vo = _map_entries(vo, rewrite)
        with pytest.raises(VerificationError):
            reverify(v3_system, answer, SPARSE)

    def test_leafref_out_of_range(self, v3_system):
        answer = answer_for(v3_system, SPARSE)
        vo = answer.vo
        victim = next(
            e
            for e in iter_proven_entries(vo)
            if isinstance(e.proof, LeafRef)
        )
        bad = dataclasses.replace(victim.proof, proof_index=99)
        answer.vo = _map_entries(
            vo,
            lambda e: dataclasses.replace(e, proof=bad)
            if e is victim
            else e,
        )
        with pytest.raises(VerificationError):
            reverify(v3_system, answer, SPARSE)

    def test_tampered_leaf_binding(self, v3_system):
        """Corrupting a leaf-table hash breaks the fold against the
        on-chain root."""
        answer = answer_for(v3_system, SPARSE)
        mp = answer.vo.multiproofs[0]
        key, _ = mp.leaves[0]
        answer.vo = self.mutate_mp(
            answer.vo, 0, leaves=((key, bytes(32)),) + mp.leaves[1:]
        )
        with pytest.raises(VerificationError):
            reverify(v3_system, answer, SPARSE)

    def test_multiproofs_rejected_without_capable_proof_system(
        self, v3_system
    ):
        """A proof system lacking ``attach_multiproofs`` (the Chameleon
        family) must reject a VO that carries a table."""

        class NoMultiproofPS:
            def chain_digest_bytes(self):
                return 0

        answer = answer_for(v3_system, SPARSE)
        query = KeywordQuery.parse(DNF)
        with pytest.raises(VerificationError):
            verify_query(query, answer, NoMultiproofPS())


class TestFrameRobustness:
    def test_truncated_v3_frame(self, v3_system):
        codec = VOCodec(value_bytes=v3_system.value_bytes)
        payload = codec.encode(answer_for(v3_system).vo)
        for cut in (1, 7, len(payload) // 2, len(payload) - 1):
            with pytest.raises(ReproError):
                codec.decode(payload[:cut])

    def test_unknown_frame_version_rejected(self, v3_system):
        codec = VOCodec(value_bytes=v3_system.value_bytes)
        payload = codec.encode(answer_for(v3_system).vo)
        assert payload[0] == 0xF3
        with pytest.raises(ReproError, match="unsupported VO frame"):
            codec.decode(bytes([0xF4]) + payload[1:])

    def test_v2_pin_refuses_compressed_vo(self, v3_system):
        codec = VOCodec(value_bytes=v3_system.value_bytes, version=2)
        with pytest.raises(ReproError):
            codec.encode(answer_for(v3_system).vo)


def _map_entries(vo, fn):
    """Rebuild a QueryVO with ``fn`` applied to every ProvenEntry."""
    from repro.core.query.vo import FullScanVO, MultiWayJoinVO

    def entry(e):
        return None if e is None else fn(e)

    conjuncts = []
    for conj in vo.conjuncts:
        base = conj.base
        if isinstance(base, MultiWayJoinVO):
            rounds = tuple(
                dataclasses.replace(
                    r,
                    lower=entry(r.lower),
                    upper=entry(r.upper),
                    next_target=entry(r.next_target),
                )
                for r in base.rounds
            )
            base = dataclasses.replace(
                base, first_target=fn(base.first_target), rounds=rounds
            )
        elif isinstance(base, FullScanVO):
            base = dataclasses.replace(
                base, entries=tuple(fn(e) for e in base.entries)
            )
        stages = tuple(
            dataclasses.replace(
                stage,
                probes=tuple(
                    dataclasses.replace(
                        p, lower=entry(p.lower), upper=entry(p.upper)
                    )
                    for p in stage.probes
                ),
            )
            for stage in conj.stages
        )
        conjuncts.append(
            dataclasses.replace(conj, base=base, stages=stages)
        )
    return dataclasses.replace(vo, conjuncts=tuple(conjuncts))
