"""Dedicated tests for the k-way cyclic join walk.

The cyclic walk is verified against a brute-force model across random
corpora and keyword counts, for both plans, and its structural
properties (schedule determinism, growth with k) are pinned down.
"""

import random

import pytest

from repro.core.merkle_family import MerkleInvertedSP, MerkleProofSystem
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.query.join import conjunctive_join, multiway_join
from repro.core.query.verify import verify_conjunct
from repro.errors import QueryError


def build_sp(doc_keywords):
    sp = MerkleInvertedSP()
    for oid in sorted(doc_keywords):
        sp.insert(ObjectMetadata.of(DataObject(oid, doc_keywords[oid], b"c")))
    return sp


def proof_system_for(sp, keywords):
    return MerkleProofSystem(roots={kw: sp.root_hash(kw) for kw in keywords})


def brute_force(doc_keywords, conj):
    return {oid for oid, kws in doc_keywords.items() if conj <= set(kws)}


def random_corpus(rng, vocabulary, max_objects=60):
    corpus = {}
    for oid in range(1, rng.randint(8, max_objects)):
        corpus[oid] = tuple(
            rng.sample(vocabulary, rng.randint(1, min(6, len(vocabulary))))
        )
    return corpus


class TestCyclicWalk:
    def test_requires_two_nonempty_trees(self):
        sp = build_sp({1: ("a",)})
        with pytest.raises(QueryError):
            multiway_join([sp.view("a")])
        with pytest.raises(QueryError):
            multiway_join([sp.view("a"), sp.view("empty")])

    def test_three_way_schedule(self):
        corpus = {
            1: ("a", "b", "c"),
            2: ("a",),
            3: ("a", "b", "c"),
            4: ("b", "c"),
            5: ("a", "b", "c"),
        }
        sp = build_sp(corpus)
        views = [sp.view(k) for k in ("a", "b", "c")]
        matches, vo = multiway_join(views)
        assert matches == [1, 3, 5]
        # Every round's probe index differs from the implied home tree
        # and the walk terminates with an open-ended probe.
        assert vo.rounds[-1].upper is None or vo.rounds[-1].next_target is None
        ps = proof_system_for(sp, {"a", "b", "c"})
        verified = verify_conjunct(frozenset({"a", "b", "c"}), _wrap(vo), ps)
        assert verified.ids == {1, 3, 5}

    def test_rounds_grow_with_keyword_count(self):
        """The walk's VO grows with k (the paper's Fig. 11/12 shape)."""
        rng = random.Random(7)
        vocabulary = [f"w{i}" for i in range(8)]
        corpus = {
            oid: tuple(rng.sample(vocabulary, 5)) for oid in range(1, 120)
        }
        sp = build_sp(corpus)
        round_counts = {}
        for k in (2, 4, 6):
            views = [sp.view(f"w{i}") for i in range(k)]
            _, vo = multiway_join(views)
            round_counts[k] = len(vo.rounds)
        assert round_counts[2] < round_counts[4] < round_counts[6]


def _wrap(vo):
    from repro.core.query.vo import ConjunctiveVO

    return ConjunctiveVO(keywords=vo.trees, base=vo)


class TestPlansAgainstModel:
    @pytest.mark.parametrize("plan", ["cyclic", "semijoin"])
    def test_random_corpora(self, plan):
        rng = random.Random(99)
        vocabulary = [f"w{i}" for i in range(10)]
        for _ in range(20):
            corpus = random_corpus(rng, vocabulary)
            sp = build_sp(corpus)
            for _ in range(6):
                conj = frozenset(rng.sample(vocabulary, rng.randint(2, 5)))
                views = [sp.view(kw) for kw in sorted(conj)]
                ids, vo = conjunctive_join(views, plan=plan)
                assert set(ids) == brute_force(corpus, set(conj))
                ps = proof_system_for(sp, conj)
                verified = verify_conjunct(conj, vo, ps)
                assert verified.ids == set(ids)

    def test_plans_agree(self):
        rng = random.Random(3)
        vocabulary = [f"w{i}" for i in range(9)]
        corpus = random_corpus(rng, vocabulary, max_objects=80)
        sp = build_sp(corpus)
        for _ in range(10):
            conj = sorted(rng.sample(vocabulary, rng.randint(3, 6)))
            views = [sp.view(kw) for kw in conj]
            cyclic_ids, _ = conjunctive_join(views, plan="cyclic")
            semijoin_ids, _ = conjunctive_join(views, plan="semijoin")
            assert cyclic_ids == semijoin_ids
