"""Timeline audit: authenticated range queries plus offline checkpoints.

Two extensions built on the paper's machinery (DESIGN.md section 5b):

1. a *suppressed primary index* answers "give me every object notarised
   in the ID window [lo, hi]" with completeness proofs — the Section IX
   remark about extending the Suppressed Merkle^inv to other indexes;
2. *signed checkpoints* let an auditor verify those answers offline,
   holding only the data owner's public key.

Run with::

    python examples/notarised_timeline_audit.py
"""

from repro.core.checkpoints import CheckpointIssuer, CheckpointVerifier
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.range_queries import (
    PRIMARY_INDEX_KEY,
    AuthenticatedRangeIndex,
    verify_range,
)
from repro.crypto.signatures import generate_keypair
from repro.errors import VerificationError


def main() -> None:
    index = AuthenticatedRangeIndex(fanout=4)
    issuer = CheckpointIssuer(generate_keypair(seed=99))

    print("Notarising a stream of records (IDs are event timestamps):")
    for object_id in range(100, 160, 3):  # 100, 103, ..., 157
        metadata = ObjectMetadata.of(
            DataObject(object_id, ("audit",), b"record-%d" % object_id)
        )
        receipts = index.insert(metadata)
        assert all(r.status for r in receipts)
    print(f"  {len(index.tree)} records notarised on-chain (root only)")

    # On-chain verification path.
    lo, hi = 120, 140
    entries, vo = index.query(lo, hi)
    verified = index.verify(vo)
    print(f"\nRange [{lo}, {hi}] -> {[e.key for e in verified]}")
    print(f"  VO size: {vo.byte_size():,} bytes; verified against the chain")

    # Offline verification path: the DO signs a checkpoint of the root.
    root = index.chain.call_view("range-index", "view_root", PRIMARY_INDEX_KEY)
    checkpoint = issuer.issue(index.chain.height, {PRIMARY_INDEX_KEY: root})
    auditor = CheckpointVerifier(issuer.public_key)
    auditor.accept(checkpoint)
    offline_root = auditor.digest_for(PRIMARY_INDEX_KEY)
    offline_entries = verify_range(offline_root, vo)
    print(
        f"  offline auditor (checkpoint at height {checkpoint.height}) "
        f"re-verified {len(offline_entries)} entries without chain access"
    )

    # A malicious SP drops a record from the middle of the range.
    import dataclasses

    forged = dataclasses.replace(vo, results=vo.results[:3] + vo.results[4:])
    try:
        verify_range(offline_root, forged)
        print("  !!! dropped record went undetected")
    except VerificationError as exc:
        print(f"  dropped-record attack rejected: {exc}")


if __name__ == "__main__":
    main()
