"""Supply-chain provenance: choosing an ADS scheme by gas budget.

A consortium notarises shipment events (producer, product, port,
certification keywords) and auditors later run keyword searches with
integrity guarantees.  The choice of ADS determines the on-chain bill:
this example runs the *same* event stream through all four schemes and
prints the maintenance/query trade-off, reproducing the paper's headline
comparison on a concrete application.

Run with::

    python examples/supply_chain_provenance.py
"""

import itertools
import random

from repro import DataObject, HybridStorageSystem
from repro.ethereum.gas import gas_to_usd

PRODUCERS = ("acme-farms", "blue-ocean", "nordwind", "sunrise-co")
PRODUCTS = ("coffee", "salmon", "timber", "lithium", "cotton")
PORTS = ("rotterdam", "singapore", "santos", "oakland")
CERTS = ("organic", "fairtrade", "coldchain", "hazmat")


def shipment_events(count: int, seed: int = 7) -> list[DataObject]:
    rng = random.Random(seed)
    events = []
    for event_id in range(1, count + 1):
        keywords = (
            rng.choice(PRODUCERS),
            rng.choice(PRODUCTS),
            rng.choice(PORTS),
            rng.choice(CERTS),
        )
        manifest = f"shipment {event_id}: {'/'.join(keywords)}".encode()
        events.append(DataObject(event_id, keywords, manifest))
    return events


def main() -> None:
    events = shipment_events(60)
    audit_queries = [
        "coffee AND organic",
        "salmon AND coldchain AND rotterdam",
        "(timber AND hazmat) OR (lithium AND hazmat)",
        "acme-farms AND cotton",
    ]

    print(f"{len(events)} shipment events, {len(audit_queries)} audit queries\n")
    header = (
        f"{'scheme':<8}{'maint. gas/event':>18}{'US$/event':>12}"
        f"{'avg VO (KB)':>13}{'avg verify (ms)':>17}"
    )
    print(header)
    print("-" * len(header))

    for scheme in ("mi", "smi", "ci", "ci*"):
        system = HybridStorageSystem(scheme=scheme, seed=7)
        for event in events:
            system.add_object(event)
        vo_sizes = []
        verify_times = []
        reference_results = None
        for text in audit_queries:
            result = system.query(text)
            vo_sizes.append(result.vo_total_bytes)
            verify_times.append(result.verify_seconds)
            if reference_results is None:
                reference_results = result.result_ids
        avg_gas = system.average_gas_per_object()
        print(
            f"{scheme:<8}{avg_gas:>18,.0f}{gas_to_usd(avg_gas):>12.4f}"
            f"{sum(vo_sizes) / len(vo_sizes) / 1024:>13.2f}"
            f"{1e3 * sum(verify_times) / len(verify_times):>17.2f}"
        )

    print(
        "\nReading the table: every scheme returns identical, verified "
        "results; the proposed CI/CI* cut the recurring on-chain cost "
        "while the Merkle family verifies fastest at the client."
    )

    # Show one verified audit end to end.
    system = HybridStorageSystem(scheme="ci*", seed=7)
    for event in events:
        system.add_object(event)
    result = system.query("(timber AND hazmat) OR (lithium AND hazmat)")
    print(f"\nHazmat audit -> events {result.result_ids} (verified)")
    for oid in itertools.islice(result.result_ids, 5):
        print(f"  {result.objects[oid].content.decode()}")


if __name__ == "__main__":
    main()
