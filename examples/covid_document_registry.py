"""E-notarisation scenario: a COVID-19 research document registry.

Models the paper's motivating application (Section I): an institution
notarises research documents on a hybrid-storage blockchain so that
third parties can later retrieve them by keyword with integrity
guarantees, even though the documents themselves live with an untrusted
storage provider.

The scenario demonstrates:

* streaming ingestion with per-document gas receipts;
* conjunctive, disjunctive, and non-existing-keyword queries;
* detection of a *tampering* storage provider: we corrupt the SP's
  copy of a document and show that verification fails.

Run with::

    python examples/covid_document_registry.py
"""

from repro import DataObject, HybridStorageSystem, VerificationError
from repro.core.query.verify import verify_query
from repro.ethereum.gas import gas_to_usd

CORPUS = [
    (("covid-19", "epidemiology", "wuhan"), b"Early outbreak dynamics"),
    (("covid-19", "symptom", "fever"), b"Clinical features of 99 cases"),
    (("sars-cov-2", "genome", "phylogenetics"), b"Genomic characterisation"),
    (("covid-19", "vaccine", "mrna"), b"mRNA-1273 phase 1 results"),
    (("covid-19", "vaccine", "adenovirus"), b"ChAdOx1 interim analysis"),
    (("sars-cov-2", "spike", "structure"), b"Cryo-EM spike structure"),
    (("covid-19", "symptom", "anosmia"), b"Smell loss prevalence study"),
    (("covid-19", "transmission", "aerosol"), b"Airborne transmission review"),
    (("sars-cov-2", "vaccine", "neutralisation"), b"Antibody response panel"),
    (("covid-19", "longcovid", "symptom"), b"Post-acute sequelae cohort"),
]


def main() -> None:
    registry = HybridStorageSystem(scheme="ci*", seed=2021)

    print("Notarising research documents:")
    total_gas = 0
    for object_id, (keywords, content) in enumerate(CORPUS, start=1):
        report = registry.add_object(DataObject(object_id, keywords, content))
        total_gas += report.gas
    print(
        f"  {len(CORPUS)} documents notarised, "
        f"{total_gas:,} gas (US${gas_to_usd(total_gas):.4f}) total"
    )

    queries = [
        "covid-19 AND vaccine",
        "covid-19 AND symptom",
        '("sars-cov-2" AND vaccine) OR ("covid-19" AND vaccine)',
        "covid-19 AND remdesivir",  # keyword never notarised
    ]
    print("\nAuthenticated keyword search:")
    for text in queries:
        result = registry.query(text)
        titles = [
            result.objects[oid].content.decode() for oid in result.result_ids
        ]
        print(f"  {text}")
        print(f"    -> {result.result_ids} {titles}")

    # --- A malicious SP serves a tampered document -------------------------
    print("\nTamper detection:")
    query = registry.query("covid-19 AND vaccine").query
    answer = registry.process_query(query)
    genuine = answer.objects[4]
    answer.objects[4] = DataObject(
        genuine.object_id, genuine.keywords, b"FABRICATED RESULTS"
    )
    proof_system = registry.chain_proof_system(query.all_keywords())
    try:
        verify_query(query, answer, proof_system)
        print("  !!! tampered answer accepted (this must never happen)")
    except VerificationError as exc:
        print(f"  tampered answer rejected: {exc}")


if __name__ == "__main__":
    main()
