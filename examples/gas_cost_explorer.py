"""Gas-cost explorer: how maintenance cost scales with dataset size.

A miniature, self-contained version of the paper's Fig. 10: stream a
synthetic Twitter-like corpus through each ADS scheme at several sizes
and watch the baseline grow while the Chameleon schemes stay flat.

Run with::

    python examples/gas_cost_explorer.py [max_size]
"""

import sys

from repro.bench.runner import SCHEME_LABELS, measure_maintenance
from repro.ethereum.gas import gas_to_usd


def main() -> None:
    max_size = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    sizes = [max(20, max_size // f) for f in (4, 2, 1)]
    schemes = ("mi", "smi", "ci", "ci*")

    print(f"Steady-state maintenance gas per object (Twitter-like corpus)\n")
    header = f"{'n':>8}" + "".join(f"{SCHEME_LABELS[s]:>14}" for s in schemes)
    print(header)
    rows = {}
    for size in sizes:
        cells = []
        for scheme in schemes:
            row = measure_maintenance(scheme, "twitter", size)
            rows[(scheme, size)] = row
            cells.append(f"{row.avg_gas:>14,.0f}")
        print(f"{size:>8}" + "".join(cells))

    print("\nIn US$ per object (15 Gwei, US$229/ETH, as in the paper):")
    print(header)
    for size in sizes:
        cells = [
            f"{gas_to_usd(rows[(scheme, size)].avg_gas):>14.4f}"
            for scheme in schemes
        ]
        print(f"{size:>8}" + "".join(cells))

    largest = sizes[-1]
    mi = rows[("mi", largest)].avg_gas
    for scheme in ("smi", "ci", "ci*"):
        saving = 100 * (1 - rows[(scheme, largest)].avg_gas / mi)
        print(
            f"\n{SCHEME_LABELS[scheme]} saves {saving:.0f}% of the baseline's "
            f"maintenance gas at n={largest}"
        )


if __name__ == "__main__":
    main()
