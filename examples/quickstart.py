"""Quickstart: store documents, search them, verify the results.

Runs the full hybrid-storage pipeline with the Chameleon^inv* index (the
paper's best scheme): the data owner streams objects, the blockchain
meters every maintenance transaction under the Ethereum gas model, the
storage provider answers a keyword query with a verification object,
and the client checks soundness and completeness against the on-chain
digests.

Run with::

    python examples/quickstart.py
"""

from repro import DataObject, HybridStorageSystem
from repro.ethereum.gas import gas_to_usd


def main() -> None:
    # A hybrid-storage blockchain using the Chameleon^inv* ADS.
    system = HybridStorageSystem(scheme="ci*", seed=42)

    documents = [
        DataObject(1, ("covid-19", "sars-cov-2"), b"Genome comparison study"),
        DataObject(2, ("covid-19",), b"Case report, Hong Kong"),
        DataObject(3, ("sars-cov-2",), b"Spike protein analysis"),
        DataObject(4, ("covid-19", "symptom", "vaccine"), b"Phase-3 trial"),
        DataObject(5, ("covid-19", "vaccine"), b"mRNA stability data"),
        DataObject(6, ("symptom",), b"Anosmia survey"),
        DataObject(7, ("covid-19",), b"Transmission model"),
        DataObject(8, ("covid-19", "vaccine"), b"Cold-chain logistics"),
    ]

    print("Ingesting documents (DO -> SP raw data, DO -> chain meta-data):")
    for doc in documents:
        report = system.add_object(doc)
        print(
            f"  object {doc.object_id}: {report.gas:>7,} gas "
            f"(US${gas_to_usd(report.gas):.4f}) across "
            f"{len(report.receipts)} tx"
        )

    query_text = '("covid-19" AND vaccine) OR ("sars-cov-2" AND vaccine)'
    print(f"\nQuery: {query_text}")
    result = system.query(query_text)

    print(f"  verified: {result.verified}")
    print(f"  results:  {result.result_ids}")
    for oid in result.result_ids:
        print(f"    #{oid}: {result.objects[oid].content.decode()}")
    print(f"  VO size:  {result.vo_total_bytes:,} bytes "
          f"(SP {result.vo_sp_bytes:,} + chain {result.vo_chain_bytes:,})")
    print(f"  SP time:  {1e3 * result.sp_seconds:.2f} ms, "
          f"client verify: {1e3 * result.verify_seconds:.2f} ms")

    meter = system.maintenance_meter()
    print(
        f"\nTotal maintenance gas: {meter.total:,} "
        f"(US${gas_to_usd(meter.total):.4f}); chain height "
        f"{system.chain.height}, linkage ok: {system.chain.verify_chain()}"
    )


if __name__ == "__main__":
    main()
