"""The hybrid-storage blockchain system facade (Fig. 1).

Wires the four parties together for any of the ADS schemes:

* the **data owner** streams objects: raw data to the SP, meta-data and
  ADS updates to the blockchain;
* the **blockchain** runs the scheme's smart contract under the gas
  model of Table I;
* the **SP** stores raw objects, mirrors the complete ADS, and answers
  keyword queries with verification objects;
* the **client** queries the SP and verifies results against the
  authenticated digests read from the chain.

Typical use::

    from repro import HybridStorageSystem, DataObject

    system = HybridStorageSystem(scheme="ci*")
    system.add_object(DataObject(1, ("covid-19", "vaccine"), b"..."))
    result = system.query('"covid-19" AND vaccine')
    assert result.verified and result.result_ids == [1]
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

from repro import obs
from repro.core import merkle_inv, suppressed
from repro.core.chameleon_index import (
    ChameleonContract,
    ChameleonDataOwner,
    ChameleonProofSystem,
    ChameleonSP,
)
from repro.core.chameleon_star import ChameleonStarContract
from repro.core.mbtree import DEFAULT_FANOUT
from repro.core.merkle_family import MerkleInvertedSP, MerkleProofSystem
from repro.core.objects import DataObject, ObjectMetadata, ObjectStore
from repro.core.proofcache import DEFAULT_CACHE_SIZE, VerificationCache
from repro.core.query.codec import VOCodec
from repro.core.query.join import conjunctive_join
from repro.core.query.parser import KeywordQuery
from repro.core.query.verify import verify_query
from repro.core.query.vo import ConjunctiveVO, QueryAnswer, QueryVO
from repro.crypto import vc
from repro.crypto.bloom import DEFAULT_CAPACITY, DEFAULT_FILTER_BITS, BloomFilterChain
from repro.crypto.prf import generate_key
from repro.errors import ChainError, DatasetError, ReproError
from repro.ethereum.chain import Blockchain, Receipt
from repro.ethereum.gas import BLOCK_GAS_LIMIT, GasMeter
from repro.parallel import Executor, make_executor

#: Contract registration name on the simulated chain.
ADS_CONTRACT = "ads"


def _evaluate_conjunct(args):
    """Executor task: one conjunct's join (module-level, picklable)."""
    views, order, plan = args
    return conjunctive_join(views, order=order, plan=plan)


class Scheme(Enum):
    """The four ADS schemes evaluated in the paper."""

    MERKLE_INV = "mi"
    SUPPRESSED = "smi"
    CHAMELEON = "ci"
    CHAMELEON_STAR = "ci*"

    @classmethod
    def parse(cls, value: "Scheme | str") -> "Scheme":
        """Parse from the external representation."""
        if isinstance(value, Scheme):
            return value
        try:
            return cls(value.lower())
        except ValueError as exc:
            names = ", ".join(s.value for s in cls)
            raise ReproError(
                f"unknown scheme {value!r}; expected one of: {names}"
            ) from exc


@dataclass
class InsertReport:
    """Outcome of one object insertion: the transactions it cost."""

    object_id: int
    receipts: list[Receipt]

    @property
    def gas(self) -> int:
        """Total gas across this insertion's transactions."""
        return sum(r.gas.total for r in self.receipts)

    def gas_meter(self) -> GasMeter:
        """All of this insertion's charges merged into one meter."""
        merged = GasMeter()
        for receipt in self.receipts:
            merged.merge(receipt.gas)
        return merged


@dataclass
class QueryResult:
    """Outcome of one verified query."""

    query: KeywordQuery
    result_ids: list[int]
    objects: dict[int, DataObject]
    verified: bool
    vo_sp_bytes: int
    vo_chain_bytes: int
    sp_seconds: float
    verify_seconds: float

    @property
    def vo_total_bytes(self) -> int:
        """Total VO size: ``VO_sp`` plus ``VO_chain`` bytes."""
        return self.vo_sp_bytes + self.vo_chain_bytes


class HybridStorageSystem:
    """End-to-end hybrid-storage blockchain with a pluggable ADS scheme.

    Parameters mirror the paper's experimental knobs: MB-tree ``fanout``
    (default 4), Chameleon tree ``arity`` (q, default 2), Bloom filter
    capacity ``bloom_capacity`` (b, default 30) and the CVC modulus size.
    ``seed`` makes all key material deterministic for reproducible runs.

    Fast-path knobs: ``executor`` picks the execution policy for
    per-conjunct SP evaluation and client-side verification (``serial``
    default; ``thread``/``process`` opt in, see :mod:`repro.parallel`);
    ``verify_cache_size`` bounds the shared LRU of successfully verified
    proof tuples reused across conjuncts and queries (0 disables it).

    Batch-witness knobs: ``witness_batching`` routes batched ingestion
    through the DO's staged insert + per-commitment divide-and-conquer
    openings (byte-identical witnesses, fewer multiplications);
    ``witness_warmer`` attaches a :class:`~repro.sp.warmer.CacheWarmer`
    that pre-verifies hot keywords' proofs into the verification cache
    on insert and on a trailing access signal (``warm_hot_threshold``
    accesses; 0 warms every dirty keyword).  Call :meth:`warm_pending`
    inline or ``system.warmer.start()`` for the background thread.
    """

    def __init__(
        self,
        scheme: Scheme | str = Scheme.SUPPRESSED,
        fanout: int = DEFAULT_FANOUT,
        arity: int = 2,
        bloom_capacity: int = DEFAULT_CAPACITY,
        filter_bits: int = DEFAULT_FILTER_BITS,
        cvc_modulus_bits: int = 1024,
        seed: int | None = 7,
        gas_limit: int = BLOCK_GAS_LIMIT,
        mine_every: int = 1,
        join_order: str = "size",
        join_plan: str = "cyclic",
        track_state: bool = False,
        executor: "str | Executor" = "serial",
        executor_workers: int | None = None,
        verify_cache_size: int = DEFAULT_CACHE_SIZE,
        witness_batching: bool = True,
        witness_warmer: bool = False,
        warm_hot_threshold: int = 0,
    ) -> None:
        self.scheme = Scheme.parse(scheme)
        self.fanout = fanout
        self.join_order = join_order
        self.join_plan = join_plan
        self.arity = arity
        self.bloom_capacity = bloom_capacity
        self.filter_bits = filter_bits
        self.chain = Blockchain(gas_limit=gas_limit, track_state=track_state)
        self.store = ObjectStore()
        self.mine_every = max(1, mine_every)
        self._inserts_since_mine = 0
        self._maintenance = GasMeter()
        self._object_count = 0
        self.executor = make_executor(executor, workers=executor_workers)
        if verify_cache_size > 0:
            prefix = (
                "vc.verify"
                if Scheme.parse(scheme)
                in (Scheme.CHAMELEON, Scheme.CHAMELEON_STAR)
                else "merkle.verify"
            )
            self.verify_cache: VerificationCache | None = VerificationCache(
                maxsize=verify_cache_size, metric_prefix=prefix
            )
        else:
            self.verify_cache = None

        if self.scheme in (Scheme.CHAMELEON, Scheme.CHAMELEON_STAR):
            pp, td = vc.keygen(
                arity + 1, modulus_bits=cvc_modulus_bits, seed=seed
            )
            self._cvc = vc.ChameleonVectorCommitment(arity + 1, _pp=pp, _td=td)
            self.value_bytes = (pp.modulus.bit_length() + 7) // 8
            self._do = ChameleonDataOwner(
                self._cvc, generate_key(seed=seed), arity=arity
            )
            self.sp_index = ChameleonSP(pp=pp, arity=arity)
            self._sp_blooms: dict[str, BloomFilterChain] = {}
            if self.scheme is Scheme.CHAMELEON_STAR:
                contract = ChameleonStarContract(
                    value_bytes=self.value_bytes,
                    bloom_capacity=bloom_capacity,
                    filter_bits=filter_bits,
                )
            else:
                contract = ChameleonContract(value_bytes=self.value_bytes)
        else:
            self.value_bytes = 32
            self.sp_index = MerkleInvertedSP(fanout=fanout)
            if self.scheme is Scheme.MERKLE_INV:
                contract = merkle_inv.MerkleInvContract(fanout=fanout)
            else:
                contract = suppressed.SuppressedMerkleContract(fanout=fanout)
        self.contract = contract
        self.chain.deploy(ADS_CONTRACT, contract)
        self._codec = VOCodec(value_bytes=self.value_bytes)
        self.witness_batching = witness_batching
        self.warmer = None
        if witness_warmer:
            # Imported lazily: repro.sp pulls in this module's consumers.
            from repro.sp.warmer import CacheWarmer

            self.warmer = CacheWarmer(
                prove=lambda kw: self._sp_view(kw).all_proven(),
                proof_system=self.chain_proof_system,
                hot_threshold=warm_hot_threshold,
            )

    # -- ingestion ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._object_count

    def add_object(self, obj: DataObject) -> InsertReport:
        """Run the full DO pipeline for one new object.

        The raw object reaches the SP's store only once every receipt
        confirmed, so a failed transaction leaves the store, the DO
        state and the SP index exactly as they were.
        """
        t0 = time.perf_counter()
        with obs.span(
            "insert", scheme=self.scheme.value, object_id=obj.object_id
        ) as ins_span:
            if obj.object_id in self.store:
                raise DatasetError(
                    f"object {obj.object_id} already stored; "
                    "objects are immutable"
                )
            metadata = ObjectMetadata.of(obj)
            receipts = self._insert_for_scheme(metadata)
            for receipt in receipts:
                if not receipt.status:
                    raise ChainError(
                        f"insertion transaction failed: {receipt.error}"
                    )
            self.store.put(obj)
            for receipt in receipts:
                self._maintenance.merge(receipt.gas)
            self._object_count += 1
            self._inserts_since_mine += 1
            if self._inserts_since_mine >= self.mine_every:
                self.chain.mine_block()
                self._inserts_since_mine = 0
            gas = sum(r.gas.total for r in receipts)
            ins_span.set(gas=gas, keywords=len(metadata.keywords))
            if self.warmer is not None:
                self.warmer.note_insert(metadata.keywords)
        obs.inc("insert.count")
        obs.observe("insert.seconds", time.perf_counter() - t0,
                    buckets=obs.TIME_BUCKETS_S)
        obs.observe("insert.gas", gas, buckets=obs.GAS_BUCKETS)
        return InsertReport(object_id=obj.object_id, receipts=receipts)

    def add_objects(self, objects) -> list[InsertReport]:
        """Insert many objects, one transaction pipeline each."""
        return [self.add_object(obj) for obj in objects]

    def add_objects_batched(self, objects) -> InsertReport:
        """Insert many objects with a single DO transaction.

        Amortises the 21,000-gas ``C_tx`` base cost across the batch.
        Supported by the Chameleon family (whose per-object on-chain
        work is a handful of word writes); the Merkle family falls back
        to per-object transactions and returns a merged report.
        """
        objects = list(objects)
        if not objects:
            raise ReproError("empty batch")
        with obs.span(
            "insert.batch", scheme=self.scheme.value, count=len(objects)
        ):
            return self._add_objects_batched(objects)

    def _add_objects_batched(self, objects: list[DataObject]) -> InsertReport:
        if self.scheme not in (Scheme.CHAMELEON, Scheme.CHAMELEON_STAR):
            reports = self.add_objects(objects)
            merged = InsertReport(
                object_id=objects[-1].object_id,
                receipts=[r for report in reports for r in report.receipts],
            )
            return merged
        # Stage every mutation: the store is untouched and the DO's
        # chameleon state snapshotted until the batched transaction's
        # receipt confirms, so a failed receipt leaves the system able
        # to answer queries (and retry the batch) consistently.
        metadatas = [ObjectMetadata.of(obj) for obj in objects]
        for metadata in metadatas:
            if metadata.object_id in self.store:
                raise DatasetError(
                    f"object {metadata.object_id} already stored; "
                    "objects are immutable"
                )
        touched = {kw for m in metadatas for kw in m.keywords}
        do_snapshot = self._do.snapshot(touched)
        batch = []
        payload = b""
        sp_work = []
        try:
            if self.witness_batching:
                do_results = self._do.insert_many(metadatas)
            else:
                do_results = [self._do.insert(m) for m in metadatas]
            for metadata, (proofs, counts, new_keywords) in zip(
                metadatas, do_results
            ):
                new_kw_list = sorted(new_keywords.items())
                batch.append(
                    (
                        metadata.object_id,
                        metadata.object_hash,
                        counts,
                        new_kw_list,
                    )
                )
                payload += metadata.payload_bytes()
                payload += b"".join(
                    kw.encode() + c.to_bytes(self.value_bytes, "big")
                    for kw, c in new_kw_list
                )
                payload += b"".join(
                    u.keyword.encode() + u.count.to_bytes(8, "big")
                    for u in counts
                )
                sp_work.append((metadata, proofs, new_kw_list))
            receipt = self.chain.send_transaction(
                "do", ADS_CONTRACT, "insert_objects", batch, payload=payload
            )
        except BaseException:
            self._do.restore(do_snapshot)
            raise
        if not receipt.status:
            self._do.restore(do_snapshot)
            raise ChainError(f"batched insertion failed: {receipt.error}")
        for obj in objects:
            self.store.put(obj)
        for metadata, proofs, new_kw_list in sp_work:
            for keyword, commitment in new_kw_list:
                self.sp_index.register_keyword(keyword, commitment)
            for keyword, proof in proofs.items():
                self.sp_index.apply_insertion(keyword, proof)
            if self.scheme is Scheme.CHAMELEON_STAR:
                for keyword in metadata.keywords:
                    chain = self._sp_blooms.setdefault(
                        keyword,
                        BloomFilterChain(
                            filter_bits=self.filter_bits,
                            capacity=self.bloom_capacity,
                        ),
                    )
                    chain.add(metadata.object_id)
        self._maintenance.merge(receipt.gas)
        self._object_count += len(objects)
        self.chain.mine_block()
        if self.warmer is not None:
            self.warmer.note_insert(touched)
        return InsertReport(
            object_id=objects[-1].object_id, receipts=[receipt]
        )

    def _insert_for_scheme(self, metadata: ObjectMetadata) -> list[Receipt]:
        if self.scheme is Scheme.MERKLE_INV:
            receipt = self.chain.send_transaction(
                "do",
                ADS_CONTRACT,
                "register_and_insert",
                metadata.object_id,
                metadata.object_hash,
                metadata.keywords,
                payload=metadata.payload_bytes(),
            )
            if receipt.status:
                self.sp_index.insert(metadata)
            return [receipt]

        if self.scheme is Scheme.SUPPRESSED:
            register = self.chain.send_transaction(
                "do",
                ADS_CONTRACT,
                "register_object",
                metadata.object_id,
                metadata.object_hash,
                metadata.keywords,
                payload=metadata.payload_bytes(),
            )
            updates = suppressed.build_updates(
                self.sp_index.trees, metadata.object_id, metadata.keywords
            )
            update_tx = self.chain.send_transaction(
                "sp",
                ADS_CONTRACT,
                "insert",
                metadata.object_id,
                metadata.object_hash,
                updates,
                payload=suppressed.updates_payload(updates),
            )
            if update_tx.status:
                self.sp_index.insert(metadata)
            return [register, update_tx]

        # Chameleon family.  The DO's off-chain state mutates while
        # building the transaction, so snapshot it and roll back when
        # the receipt fails — otherwise the DO and the chain diverge.
        do_snapshot = self._do.snapshot(metadata.keywords)
        try:
            proofs, counts, new_keywords = self._do.insert(metadata)
            new_kw_list = sorted(new_keywords.items())
            payload = metadata.payload_bytes()
            payload += b"".join(
                kw.encode() + c.to_bytes(self.value_bytes, "big")
                for kw, c in new_kw_list
            )
            payload += b"".join(
                u.keyword.encode() + u.count.to_bytes(8, "big") for u in counts
            )
            receipt = self.chain.send_transaction(
                "do",
                ADS_CONTRACT,
                "insert_object",
                metadata.object_id,
                metadata.object_hash,
                counts,
                new_kw_list,
                payload=payload,
            )
        except BaseException:
            self._do.restore(do_snapshot)
            raise
        if not receipt.status:
            self._do.restore(do_snapshot)
        else:
            for keyword, commitment in new_kw_list:
                self.sp_index.register_keyword(keyword, commitment)
            for keyword, proof in proofs.items():
                self.sp_index.apply_insertion(keyword, proof)
            if self.scheme is Scheme.CHAMELEON_STAR:
                for keyword in metadata.keywords:
                    chain = self._sp_blooms.setdefault(
                        keyword,
                        BloomFilterChain(
                            filter_bits=self.filter_bits,
                            capacity=self.bloom_capacity,
                        ),
                    )
                    chain.add(metadata.object_id)
        return [receipt]

    # -- query processing --------------------------------------------------------

    def _sp_view(self, keyword: str):
        view = self.sp_index.view(keyword)
        if self.scheme is Scheme.CHAMELEON_STAR:
            view.bloom = self._sp_blooms.get(keyword)
        return view

    def process_query(self, query: KeywordQuery) -> QueryAnswer:
        """SP side: evaluate the query and build ``VO_sp``.

        Conjuncts are independent joins; with a parallel executor they
        are evaluated concurrently (the index views are read-only).
        """
        with obs.span(
            "query.sp",
            scheme=self.scheme.value,
            conjunctions=len(query.conjunctions),
        ) as sp_span:
            conjunct_vos: list[ConjunctiveVO] = []
            result_ids: set[int] = set()
            if (
                self.executor.kind != "serial"
                and len(query.conjunctions) > 1
            ):
                tasks = [
                    (
                        [self._sp_view(kw) for kw in sorted(conj)],
                        self.join_order,
                        self.join_plan,
                    )
                    for conj in query.conjunctions
                ]
                with obs.span(
                    "query.sp.join_parallel",
                    conjunctions=len(tasks),
                    executor=self.executor.kind,
                ):
                    outcomes = self.executor.map(_evaluate_conjunct, tasks)
                for ids, vo in outcomes:
                    conjunct_vos.append(vo)
                    result_ids |= set(ids)
            else:
                for conj in query.conjunctions:
                    views = [self._sp_view(kw) for kw in sorted(conj)]
                    with obs.span("query.sp.join", keywords=len(conj)):
                        ids, vo = conjunctive_join(
                            views, order=self.join_order, plan=self.join_plan
                        )
                    conjunct_vos.append(vo)
                    result_ids |= set(ids)
            objects = {oid: self.store.get(oid) for oid in result_ids}
            sp_span.set(results=len(result_ids))
        return QueryAnswer(
            result_ids=sorted(result_ids),
            objects=objects,
            vo=QueryVO(conjuncts=tuple(conjunct_vos)),
        )

    def chain_proof_system(self, keywords: frozenset[str]):
        """Client side: read ``VO_chain`` and build the proof system."""
        if self.scheme in (Scheme.MERKLE_INV, Scheme.SUPPRESSED):
            roots = {
                kw: self.chain.call_view(ADS_CONTRACT, "view_root", kw)
                for kw in keywords
            }
            return MerkleProofSystem(roots=roots, cache=self.verify_cache)
        digests = {
            kw: self.chain.call_view(ADS_CONTRACT, "view_digest", kw)
            for kw in keywords
        }
        blooms = None
        if self.scheme is Scheme.CHAMELEON_STAR:
            blooms = {}
            for kw in keywords:
                snapshot = self.chain.call_view(
                    ADS_CONTRACT, "view_bloom_snapshot", kw
                )
                blooms[kw] = BloomFilterChain.from_snapshot(
                    snapshot,
                    filter_bits=self.filter_bits,
                    capacity=self.bloom_capacity,
                )
        return ChameleonProofSystem(
            pp=self._cvc.pp,
            digests=digests,
            arity=self.arity,
            blooms=blooms,
            value_bytes=self.value_bytes,
            cache=self.verify_cache,
        )

    def query(self, query: KeywordQuery | str) -> QueryResult:
        """Full round trip: SP processing plus client verification."""
        with obs.span("query", scheme=self.scheme.value) as root_span:
            if isinstance(query, str):
                tp = time.perf_counter()
                with obs.span("query.parse"):
                    query = KeywordQuery.parse(query)
                obs.observe("query.parse_seconds", time.perf_counter() - tp,
                            buckets=obs.TIME_BUCKETS_S)
            if self.warmer is not None:
                self.warmer.note_access(query.all_keywords())
            t0 = time.perf_counter()
            answer = self.process_query(query)
            sp_seconds = time.perf_counter() - t0
            tc = time.perf_counter()
            with obs.span(
                "query.chain", keywords=len(query.all_keywords())
            ):
                proof_system = self.chain_proof_system(query.all_keywords())
            obs.observe("query.chain_seconds", time.perf_counter() - tc,
                        buckets=obs.TIME_BUCKETS_S)
            t1 = time.perf_counter()
            with obs.span("query.verify", executor=self.executor.kind):
                verified = verify_query(
                    query, answer, proof_system, executor=self.executor
                )
            verify_seconds = time.perf_counter() - t1
            with obs.span("query.vo_encode"):
                vo_sp_bytes = len(self._codec.encode(answer.vo))
            vo_chain_bytes = proof_system.chain_digest_bytes()
            root_span.set(
                keywords=len(query.all_keywords()),
                results=len(verified.ids),
                vo_bytes=vo_sp_bytes + vo_chain_bytes,
            )
        obs.inc("query.count")
        obs.observe("query.sp_seconds", sp_seconds,
                    buckets=obs.TIME_BUCKETS_S)
        obs.observe("query.verify_seconds", verify_seconds,
                    buckets=obs.TIME_BUCKETS_S)
        obs.observe("vo.bytes", vo_sp_bytes + vo_chain_bytes,
                    buckets=obs.SIZE_BUCKETS_BYTES)
        # The flag reflects the actual verification outcome — the claimed
        # result set must coincide with the independently verified one —
        # rather than being hard-coded (any failed check above raises
        # VerificationError out of this method before reaching here).
        return QueryResult(
            query=query,
            result_ids=sorted(verified.ids),
            objects=answer.objects,
            verified=set(answer.result_ids) == verified.ids,
            vo_sp_bytes=vo_sp_bytes,
            vo_chain_bytes=vo_chain_bytes,
            sp_seconds=sp_seconds,
            verify_seconds=verify_seconds,
        )

    def warm_pending(self, limit: int | None = None) -> int:
        """Inline warming pass: absorb the access signal, warm hot keywords.

        Requires ``witness_warmer=True``; returns the number of entries
        verified into the cache.
        """
        if self.warmer is None:
            raise ReproError(
                "warming requires HybridStorageSystem(witness_warmer=True)"
            )
        self.warmer.sync_from_metrics()
        return self.warmer.run_pending(limit=limit)

    @property
    def uses_cvc(self) -> bool:
        """Whether the scheme authenticates with chameleon commitments.

        Merkle-only schemes (MI/SMI) hash — they own no fixed-base
        tables and no CVC openings, so batch/warm-up machinery keyed on
        this flag skips them entirely.
        """
        return self.scheme in (Scheme.CHAMELEON, Scheme.CHAMELEON_STAR)

    def prewarm_crypto(self) -> int:
        """Scheme-aware table setup: build the CVC fixed-base tables early.

        The Chameleon schemes exponentiate the same public bases on
        every commit/verify, so building their windowed tables ahead of
        the first query moves that one-off cost out of the cold path.
        Merkle-only schemes hash — they have no tables to build and
        skip the setup entirely.  Returns the number of tables touched.
        """
        if self.uses_cvc:
            return vc.prewarm_tables(self._cvc.pp, pairs=True)
        return 0

    def close(self) -> None:
        """Release the executor's worker pool (no-op for ``serial``)."""
        if self.warmer is not None:
            self.warmer.stop()
        self.executor.close()

    # -- reporting ------------------------------------------------------------------

    def maintenance_meter(self) -> GasMeter:
        """Aggregate gas across every maintenance transaction so far."""
        return self._maintenance.snapshot()

    def average_gas_per_object(self) -> float:
        """Mean maintenance gas per inserted object."""
        if self._object_count == 0:
            return 0.0
        return self._maintenance.total / self._object_count
