"""The hybrid-storage blockchain system facade (Fig. 1).

Wires the four parties together for any of the ADS schemes:

* the **data owner** (:class:`~repro.core.owner.DataOwnerPipeline`)
  streams objects: raw data to the SP, meta-data and ADS updates to the
  blockchain;
* the **blockchain** runs the scheme's smart contract under the gas
  model of Table I;
* the **SP** (:class:`~repro.core.sp_frontend.ShardedStorageProvider`)
  homes raw objects and the complete ADS across ``shards`` keyword
  partitions, and answers keyword queries with verification objects;
* the **client** queries the SP and verifies results against the
  authenticated digests read from the chain.

The facade owns only the wiring: gas accounting, the mining cadence,
the readers-writer lock serialising ingestion against query serving,
and the verification cache / warmer plumbing.  Sharding is configured
here (``shards=N``, ``engine="memory"|"disk"``) and is invisible to the
client and the contract — per-keyword state is byte-identical for any
shard count.

Typical use::

    from repro import HybridStorageSystem, DataObject

    system = HybridStorageSystem(scheme="ci*")
    system.add_object(DataObject(1, ("covid-19", "vaccine"), b"..."))
    result = system.query('"covid-19" AND vaccine')
    assert result.verified and result.result_ids == [1]
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.core import merkle_inv, suppressed
from repro.core.chameleon_index import (
    ChameleonContract,
    ChameleonDataOwner,
    ChameleonProofSystem,
    ChameleonSP,
)
from repro.core.chameleon_star import ChameleonStarContract
from repro.core.mbtree import DEFAULT_FANOUT
from repro.core.merkle_family import MerkleInvertedSP, MerkleProofSystem
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.owner import ADS_CONTRACT, DataOwnerPipeline
from repro.core.proofcache import DEFAULT_CACHE_SIZE, VerificationCache
from repro.core.query.codec import VOCodec
from repro.core.query.parser import KeywordQuery
from repro.core.query.verify import verify_query
from repro.core.query.vo import QueryAnswer
from repro.core.scheme import Scheme
from repro.core.sp_frontend import ShardedStorageProvider
from repro.crypto import vc
from repro.crypto.bloom import DEFAULT_CAPACITY, DEFAULT_FILTER_BITS, BloomFilterChain
from repro.crypto.prf import generate_key
from repro.errors import ChainError, DatasetError, ReproError
from repro.ethereum.chain import Blockchain, Receipt
from repro.ethereum.gas import BLOCK_GAS_LIMIT, GasMeter
from repro.parallel import Executor, ReadWriteLock, make_executor

__all__ = [
    "ADS_CONTRACT",
    "HybridStorageSystem",
    "InsertReport",
    "QueryResult",
    "Scheme",
]


@dataclass
class InsertReport:
    """Outcome of one object insertion: the transactions it cost."""

    object_id: int
    receipts: list[Receipt]

    @property
    def gas(self) -> int:
        """Total gas across this insertion's transactions."""
        return sum(r.gas.total for r in self.receipts)

    def gas_meter(self) -> GasMeter:
        """All of this insertion's charges merged into one meter."""
        merged = GasMeter()
        for receipt in self.receipts:
            merged.merge(receipt.gas)
        return merged


@dataclass
class QueryResult:
    """Outcome of one verified query."""

    query: KeywordQuery
    result_ids: list[int]
    objects: dict[int, DataObject]
    verified: bool
    vo_sp_bytes: int
    vo_chain_bytes: int
    sp_seconds: float
    verify_seconds: float
    #: Proof-only share of ``vo_sp_bytes`` (per-entry proofs plus the
    #: deduplicated multiproof table) — attributes compression wins.
    vo_proof_bytes: int = 0

    @property
    def vo_total_bytes(self) -> int:
        """Total VO size: ``VO_sp`` plus ``VO_chain`` bytes."""
        return self.vo_sp_bytes + self.vo_chain_bytes


class HybridStorageSystem:
    """End-to-end hybrid-storage blockchain with a pluggable ADS scheme.

    Parameters mirror the paper's experimental knobs: MB-tree ``fanout``
    (default 4), Chameleon tree ``arity`` (q, default 2), Bloom filter
    capacity ``bloom_capacity`` (b, default 30) and the CVC modulus size.
    ``seed`` makes all key material deterministic for reproducible runs.

    Sharding knobs: ``shards`` splits the SP into that many keyword
    partitions behind deterministic seeded routing; ``engine`` picks the
    per-shard storage engine (``memory`` default, or ``disk`` for an
    append-only JSONL segment log under ``engine_dir``); ``pool`` picks
    the dispatch mode (``stateless`` default funnels scatter tasks
    through the shared executor; ``affine`` keeps each shard's engine
    resident in a long-lived worker process and ships only posting
    deltas per batch).  Shard layout and pool mode never change
    answers, VO bytes or gas — only capacity and throughput.

    Fast-path knobs: ``executor`` picks the execution policy for
    per-conjunct SP evaluation, bulk shard mirroring and client-side
    verification (``serial`` default; ``thread``/``process`` opt in, see
    :mod:`repro.parallel`); ``verify_cache_size`` bounds the shared LRU
    of successfully verified proof tuples reused across conjuncts and
    queries (0 disables it).

    VO format knob: ``vo_version`` (default 3) selects the wire frame —
    3 deduplicates the Merkle-family per-entry paths into one multiproof
    per tree (the compressed frame), 2 preserves the legacy per-path VO
    byte-for-byte (the Chameleon family is identical under both).

    Batch-witness knobs: ``witness_batching`` routes batched ingestion
    through the DO's staged insert + per-commitment divide-and-conquer
    openings (byte-identical witnesses, fewer multiplications);
    ``witness_warmer`` attaches per-shard
    :class:`~repro.sp.warmer.CacheWarmer` instances that pre-verify hot
    keywords' proofs into the verification cache on insert and on a
    trailing access signal (``warm_hot_threshold`` accesses; 0 warms
    every dirty keyword).  Call :meth:`warm_pending` inline or
    ``system.warmer.start()`` for the background thread.
    """

    def __init__(
        self,
        scheme: Scheme | str = Scheme.SUPPRESSED,
        fanout: int = DEFAULT_FANOUT,
        arity: int = 2,
        bloom_capacity: int = DEFAULT_CAPACITY,
        filter_bits: int = DEFAULT_FILTER_BITS,
        cvc_modulus_bits: int = 1024,
        seed: int | None = 7,
        gas_limit: int = BLOCK_GAS_LIMIT,
        mine_every: int = 1,
        join_order: str = "size",
        join_plan: str = "cyclic",
        track_state: bool = False,
        executor: str | Executor = "serial",
        executor_workers: int | None = None,
        verify_cache_size: int = DEFAULT_CACHE_SIZE,
        witness_batching: bool = True,
        witness_warmer: bool = False,
        warm_hot_threshold: int = 0,
        shards: int = 1,
        engine: str = "memory",
        engine_dir: str | Path | None = None,
        pool: str = "stateless",
        vo_version: int = 3,
    ) -> None:
        self.scheme = Scheme.parse(scheme)
        self.fanout = fanout
        self.join_order = join_order
        self.join_plan = join_plan
        self.arity = arity
        self.bloom_capacity = bloom_capacity
        self.filter_bits = filter_bits
        self.cvc_modulus_bits = cvc_modulus_bits
        self.gas_limit = gas_limit
        self.track_state = track_state
        self.verify_cache_size = verify_cache_size
        self.witness_batching = witness_batching
        self.witness_warmer = witness_warmer
        self.warm_hot_threshold = warm_hot_threshold
        self.shards = shards
        self.engine = engine
        self.pool = pool
        self.vo_version = vo_version
        self.chain = Blockchain(gas_limit=gas_limit, track_state=track_state)
        self.mine_every = max(1, mine_every)
        self._inserts_since_mine = 0
        self._maintenance = GasMeter()
        self._object_count = 0
        self._rwlock = ReadWriteLock()
        self.executor = make_executor(executor, workers=executor_workers)
        if verify_cache_size > 0:
            prefix = (
                "vc.verify"
                if self.scheme in (Scheme.CHAMELEON, Scheme.CHAMELEON_STAR)
                else "merkle.verify"
            )
            self.verify_cache: VerificationCache | None = VerificationCache(
                maxsize=verify_cache_size, metric_prefix=prefix
            )
        else:
            self.verify_cache = None

        do: ChameleonDataOwner | None = None
        if self.scheme in (Scheme.CHAMELEON, Scheme.CHAMELEON_STAR):
            pp, td = vc.keygen(
                arity + 1, modulus_bits=cvc_modulus_bits, seed=seed
            )
            self._cvc = vc.ChameleonVectorCommitment(arity + 1, _pp=pp, _td=td)
            self.value_bytes = (pp.modulus.bit_length() + 7) // 8
            do = ChameleonDataOwner(
                self._cvc, generate_key(seed=seed), arity=arity
            )

            def index_factory() -> ChameleonSP:
                return ChameleonSP(pp=pp, arity=arity)

            # Plain-data twin of the factory closure for affine workers.
            index_spec = ("chameleon", {"pp": pp, "arity": arity})

            if self.scheme is Scheme.CHAMELEON_STAR:
                contract = ChameleonStarContract(
                    value_bytes=self.value_bytes,
                    bloom_capacity=bloom_capacity,
                    filter_bits=filter_bits,
                )
            else:
                contract = ChameleonContract(value_bytes=self.value_bytes)
        else:
            self.value_bytes = 32

            def index_factory() -> MerkleInvertedSP:
                return MerkleInvertedSP(fanout=fanout)

            index_spec = ("merkle", {"fanout": fanout})

            if self.scheme is Scheme.MERKLE_INV:
                contract = merkle_inv.MerkleInvContract(fanout=fanout)
            else:
                contract = suppressed.SuppressedMerkleContract(fanout=fanout)
        self.contract = contract
        self.chain.deploy(ADS_CONTRACT, contract)
        self._codec = VOCodec(value_bytes=self.value_bytes)
        self._sp = ShardedStorageProvider(
            index_factory=index_factory,
            executor=self.executor,
            scheme_value=self.scheme.value,
            join_order=join_order,
            join_plan=join_plan,
            shards=shards,
            engine=engine,
            engine_dir=engine_dir,
            seed=seed,
            fanout=fanout,
            star=self.scheme is Scheme.CHAMELEON_STAR,
            filter_bits=filter_bits,
            bloom_capacity=bloom_capacity,
            pool=pool,
            index_spec=index_spec,
            vo_version=vo_version,
        )
        self._owner = DataOwnerPipeline(
            scheme=self.scheme,
            chain=self.chain,
            sp=self._sp,
            value_bytes=self.value_bytes,
            do=do,
            witness_batching=witness_batching,
        )
        self._object_count = self._sp.object_count()  # disk-engine replay
        self.warmer = None
        if witness_warmer:
            # Imported lazily: repro.sp pulls in this module's consumers.
            from repro.sp.warmer import CacheWarmer, ShardedCacheWarmer

            for shard_engine in self._sp.engines:
                shard_engine.warmer = CacheWarmer(
                    prove=self._locked_prove,
                    proof_system=self._locked_proof_system,
                    hot_threshold=warm_hot_threshold,
                )
            if shards == 1:
                self.warmer = self._sp.engines[0].warmer
            else:
                self.warmer = ShardedCacheWarmer(
                    [eng.warmer for eng in self._sp.engines],
                    self._sp.router,
                )

    # -- compatibility surface over the layered internals --------------------------

    @property
    def _do(self) -> ChameleonDataOwner | None:
        return self._owner.do

    @property
    def store(self):
        """The first shard's object store (the whole store at shards=1)."""
        return self._sp.engines[0].store

    @store.setter
    def store(self, value) -> None:
        self._sp.engines[0].store = value

    @property
    def sp_index(self):
        """The first shard's index mirror (the whole index at shards=1)."""
        return self._sp.engines[0].index

    @sp_index.setter
    def sp_index(self, value) -> None:
        self._sp.engines[0].index = value

    @property
    def _sp_blooms(self):
        return self._sp.engines[0].blooms

    @_sp_blooms.setter
    def _sp_blooms(self, value) -> None:
        self._sp.engines[0].blooms = value

    def _locked_prove(self, keyword: str):
        """Warmer hook: a keyword's proven entries, under the read lock."""
        with self._rwlock.read():
            return self._sp_view(keyword).all_proven()

    def _locked_proof_system(self, keywords: frozenset[str]):
        """Warmer hook: the proof system, built under the read lock."""
        with self._rwlock.read():
            return self.chain_proof_system(keywords)

    # -- ingestion ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._object_count

    def all_object_ids(self) -> list[int]:
        """Every stored object ID across shards, ascending."""
        return self._sp.all_object_ids()

    def get_object(self, object_id: int) -> DataObject:
        """Fetch one stored object from its owning shard."""
        return self._sp.get_object(object_id)

    def add_object(self, obj: DataObject) -> InsertReport:
        """Run the full DO pipeline for one new object.

        The raw object reaches the SP's store only once every receipt
        confirmed, so a failed transaction leaves the store, the DO
        state and the SP index exactly as they were.
        """
        t0 = time.perf_counter()
        with self._rwlock.write(), obs.span(
            "insert", scheme=self.scheme.value, object_id=obj.object_id
        ) as ins_span:
            # The SP's location map is authoritative across all shards
            # (and the only option in affine mode, where the stores live
            # in the resident workers).
            if self._sp.has_object(obj.object_id):
                raise DatasetError(
                    f"object {obj.object_id} already stored; "
                    "objects are immutable"
                )
            metadata = ObjectMetadata.of(obj)
            receipts = self._owner.insert(metadata)
            for receipt in receipts:
                if not receipt.status:
                    raise ChainError(
                        f"insertion transaction failed: {receipt.error}"
                    )
            self._sp.put_object(obj)
            self._sp.flush_mutations()
            for receipt in receipts:
                self._maintenance.merge(receipt.gas)
            self._object_count += 1
            self._inserts_since_mine += 1
            if self._inserts_since_mine >= self.mine_every:
                self.chain.mine_block()
                self._inserts_since_mine = 0
            gas = sum(r.gas.total for r in receipts)
            ins_span.set(gas=gas, keywords=len(metadata.keywords))
            if self.warmer is not None:
                self.warmer.note_insert(metadata.keywords)
        obs.inc("insert.count")
        obs.observe("insert.seconds", time.perf_counter() - t0,
                    buckets=obs.TIME_BUCKETS_S)
        obs.observe("insert.gas", gas, buckets=obs.GAS_BUCKETS)
        return InsertReport(object_id=obj.object_id, receipts=receipts)

    def add_objects(self, objects) -> list[InsertReport]:
        """Insert many objects, one transaction pipeline each."""
        return [self.add_object(obj) for obj in objects]

    def add_objects_batched(self, objects) -> InsertReport:
        """Insert many objects with a single DO transaction.

        Amortises the 21,000-gas ``C_tx`` base cost across the batch.
        Supported by the Chameleon family (whose per-object on-chain
        work is a handful of word writes).  MI pays per-object
        transactions but mirrors the SP trees in one bulk scatter pass
        (multi-core with a process executor); SMI falls back to
        per-object pipelines (its update spines must interleave with the
        insertions) and returns a merged report.
        """
        objects = list(objects)
        if not objects:
            raise ReproError("empty batch")
        with obs.span(
            "insert.batch", scheme=self.scheme.value, count=len(objects)
        ):
            return self._add_objects_batched(objects)

    def _add_objects_batched(self, objects: list[DataObject]) -> InsertReport:
        if self.scheme is Scheme.SUPPRESSED:
            reports = self.add_objects(objects)
            return InsertReport(
                object_id=objects[-1].object_id,
                receipts=[r for report in reports for r in report.receipts],
            )
        metadatas = [ObjectMetadata.of(obj) for obj in objects]
        with self._rwlock.write():
            for metadata in metadatas:
                if self._sp.has_object(metadata.object_id):
                    raise DatasetError(
                        f"object {metadata.object_id} already stored; "
                        "objects are immutable"
                    )
            if self.scheme is Scheme.MERKLE_INV:
                return self._add_merkle_batched(objects, metadatas)
            # Chameleon family: stage every mutation — the store is
            # untouched and the DO's state snapshotted until the batched
            # transaction's receipt confirms, so a failed receipt leaves
            # the system able to answer queries (and retry the batch)
            # consistently.
            receipt, touched = self._owner.insert_chameleon_batched(metadatas)
            for obj in objects:
                self._sp.put_object(obj)
            self._sp.flush_mutations()
            self._maintenance.merge(receipt.gas)
            self._object_count += len(objects)
            self.chain.mine_block()
            if self.warmer is not None:
                self.warmer.note_insert(touched)
            return InsertReport(
                object_id=objects[-1].object_id, receipts=[receipt]
            )

    def _add_merkle_batched(
        self, objects: list[DataObject], metadatas: list[ObjectMetadata]
    ) -> InsertReport:
        """MI bulk path: per-object transactions, one scatter mirror pass."""
        receipts: list[Receipt] = []
        failure: Receipt | None = None
        for metadata in metadatas:
            receipt = self._owner.insert_merkle_tx(metadata)
            if not receipt.status:
                failure = receipt
                break
            receipts.append(receipt)
        confirmed = len(receipts)
        if confirmed:
            self._sp.mirror_bulk(metadatas[:confirmed])
            for obj in objects[:confirmed]:
                self._sp.put_object(obj)
            self._sp.flush_mutations()
            for receipt in receipts:
                self._maintenance.merge(receipt.gas)
            self._object_count += confirmed
            self.chain.mine_block()
            if self.warmer is not None:
                self.warmer.note_insert(
                    {kw for m in metadatas[:confirmed] for kw in m.keywords}
                )
        if failure is not None:
            raise ChainError(
                f"insertion transaction failed: {failure.error}"
            )
        return InsertReport(
            object_id=objects[-1].object_id, receipts=receipts
        )

    # -- query processing --------------------------------------------------------

    def _sp_view(self, keyword: str):
        return self._sp.view(keyword)

    def process_query(self, query: KeywordQuery) -> QueryAnswer:
        """SP side: evaluate the query and build ``VO_sp``.

        Conjuncts are independent joins; with a parallel executor they
        are evaluated concurrently (the index views are read-only).
        """
        with self._rwlock.read():
            return self._sp.process_query(query)

    def chain_proof_system(self, keywords: frozenset[str]):
        """Client side: read ``VO_chain`` and build the proof system."""
        if self.scheme in (Scheme.MERKLE_INV, Scheme.SUPPRESSED):
            roots = {
                kw: self.chain.call_view(ADS_CONTRACT, "view_root", kw)
                for kw in keywords
            }
            return MerkleProofSystem(roots=roots, cache=self.verify_cache)
        digests = {
            kw: self.chain.call_view(ADS_CONTRACT, "view_digest", kw)
            for kw in keywords
        }
        blooms = None
        if self.scheme is Scheme.CHAMELEON_STAR:
            blooms = {}
            for kw in keywords:
                snapshot = self.chain.call_view(
                    ADS_CONTRACT, "view_bloom_snapshot", kw
                )
                blooms[kw] = BloomFilterChain.from_snapshot(
                    snapshot,
                    filter_bits=self.filter_bits,
                    capacity=self.bloom_capacity,
                )
        return ChameleonProofSystem(
            pp=self._cvc.pp,
            digests=digests,
            arity=self.arity,
            blooms=blooms,
            value_bytes=self.value_bytes,
            cache=self.verify_cache,
        )

    def query(self, query: KeywordQuery | str) -> QueryResult:
        """Full round trip: SP processing plus client verification."""
        with obs.span("query", scheme=self.scheme.value) as root_span:
            if isinstance(query, str):
                tp = time.perf_counter()
                with obs.span("query.parse"):
                    query = KeywordQuery.parse(query)
                obs.observe("query.parse_seconds", time.perf_counter() - tp,
                            buckets=obs.TIME_BUCKETS_S)
            # Only SP evaluation and chain reads need the facade read
            # lock; verification and VO encoding operate on the returned
            # snapshot and must not extend the lock scope.
            with self._rwlock.read():
                if self.warmer is not None:
                    self.warmer.note_access(query.all_keywords())
                t0 = time.perf_counter()
                answer = self._sp.process_query(query)
                sp_seconds = time.perf_counter() - t0
                tc = time.perf_counter()
                with obs.span(
                    "query.chain", keywords=len(query.all_keywords())
                ):
                    proof_system = self.chain_proof_system(
                        query.all_keywords()
                    )
                obs.observe("query.chain_seconds", time.perf_counter() - tc,
                            buckets=obs.TIME_BUCKETS_S)
            t1 = time.perf_counter()
            with obs.span("query.verify", executor=self.executor.kind):
                verified = verify_query(
                    query, answer, proof_system, executor=self.executor
                )
            verify_seconds = time.perf_counter() - t1
            with obs.span("query.vo_encode"):
                vo_sp_bytes = len(self._codec.encode(answer.vo))
            vo_proof_bytes = answer.vo.proof_byte_size(self.value_bytes)
            vo_chain_bytes = proof_system.chain_digest_bytes()
            root_span.set(
                keywords=len(query.all_keywords()),
                results=len(verified.ids),
                vo_bytes=vo_sp_bytes + vo_chain_bytes,
            )
        obs.inc("query.count")
        obs.observe("query.sp_seconds", sp_seconds,
                    buckets=obs.TIME_BUCKETS_S)
        obs.observe("query.verify_seconds", verify_seconds,
                    buckets=obs.TIME_BUCKETS_S)
        obs.observe("vo.bytes", vo_sp_bytes + vo_chain_bytes,
                    buckets=obs.SIZE_BUCKETS_BYTES)
        # The flag reflects the actual verification outcome — the claimed
        # result set must coincide with the independently verified one —
        # rather than being hard-coded (any failed check above raises
        # VerificationError out of this method before reaching here).
        return QueryResult(
            query=query,
            result_ids=sorted(verified.ids),
            objects=answer.objects,
            verified=set(answer.result_ids) == verified.ids,
            vo_sp_bytes=vo_sp_bytes,
            vo_chain_bytes=vo_chain_bytes,
            sp_seconds=sp_seconds,
            verify_seconds=verify_seconds,
            vo_proof_bytes=vo_proof_bytes,
        )

    def warm_pending(self, limit: int | None = None) -> int:
        """Inline warming pass: absorb the access signal, warm hot keywords.

        Requires ``witness_warmer=True``; returns the number of entries
        verified into the cache.
        """
        if self.warmer is None:
            raise ReproError(
                "warming requires HybridStorageSystem(witness_warmer=True)"
            )
        self.warmer.sync_from_metrics()
        return self.warmer.run_pending(limit=limit)

    @property
    def uses_cvc(self) -> bool:
        """Whether the scheme authenticates with chameleon commitments.

        Merkle-only schemes (MI/SMI) hash — they own no fixed-base
        tables and no CVC openings, so batch/warm-up machinery keyed on
        this flag skips them entirely.
        """
        return self.scheme in (Scheme.CHAMELEON, Scheme.CHAMELEON_STAR)

    def prewarm_crypto(self) -> int:
        """Scheme-aware table setup: build the CVC fixed-base tables early.

        The Chameleon schemes exponentiate the same public bases on
        every commit/verify, so building their windowed tables ahead of
        the first query moves that one-off cost out of the cold path.
        Merkle-only schemes hash — they have no tables to build and
        skip the setup entirely.  Returns the number of tables touched.
        """
        if self.uses_cvc:
            return vc.prewarm_tables(self._cvc.pp, pairs=True)
        return 0

    def compact(self) -> dict:
        """Checkpoint + truncate every durable shard journal.

        Takes the write lock: compaction swaps journal files underneath
        the engines, which must not race an ingest batch.  Returns the
        aggregate stats from
        :meth:`~repro.core.sp_frontend.ShardedStorageProvider.compact`.
        """
        with self._rwlock.write():
            return self._sp.compact()

    def close(self) -> None:
        """Release the executor pool, warmers and shard engines."""
        if self.warmer is not None:
            self.warmer.stop()
        self.executor.close()
        self._sp.close()

    # -- reporting ------------------------------------------------------------------

    def maintenance_meter(self) -> GasMeter:
        """Aggregate gas across every maintenance transaction so far."""
        return self._maintenance.snapshot()

    def average_gas_per_object(self) -> float:
        """Mean maintenance gas per inserted object."""
        if self._object_count == 0:
            return 0.0
        return self._maintenance.total / self._object_count
