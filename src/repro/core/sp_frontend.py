"""SP front-end: scatter-gather query serving over keyword shards.

The :class:`ShardedStorageProvider` is the storage provider the rest of
the system talks to.  It owns ``N`` :class:`~repro.sp.engine.IndexShardEngine`
instances — each holding the ADS mirrors and object payloads of one
keyword partition — and routes every operation through a deterministic
seeded :class:`~repro.sp.engine.ShardRouter`:

* **ingestion** — confirmed index mutations go to the owning shard of
  their keyword; raw objects are homed on the shard of their first
  keyword and located through an ID -> shard map;
* **query serving** — each conjunct's views are *scattered* to their
  owning shards, joined (serially or through the configured
  :mod:`repro.parallel` executor), and the per-conjunct VOs *gathered*
  in conjunct order.

Sharding is invisible above this layer: a keyword's tree receives
exactly the insert sequence it would receive in a single-shard system,
so views — and therefore per-conjunct VOs, verified answers and the
on-chain digests — are byte-identical for any shard count.  The merge
order is the query's conjunct order (executors preserve input order),
never a shard-map iteration order, which repro-lint's determinism rule
now enforces for this module.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterator

from repro import obs
from repro.core.mbtree import MBTree
from repro.core.multiproof import compress_query_vo
from repro.core.objects import DataObject, ObjectMetadata
from repro.core.query.join import conjunctive_join
from repro.core.query.parser import KeywordQuery
from repro.core.query.vo import ConjunctiveVO, QueryAnswer, QueryVO
from repro.crypto.bloom import DEFAULT_CAPACITY, DEFAULT_FILTER_BITS
from repro.errors import DatasetError, ParameterError
from repro.parallel import Executor
from repro.sp.affine import (
    POOL_KINDS,
    AffineEngineProxy,
    AffineWorkerPool,
    EngineSpec,
)
from repro.sp.engine import ShardRouter, make_engine

#: Max postings per affine ingest request: bounds any single pipe write
#: so a huge batch streams as several chunked dispatches per shard.
INGEST_CHUNK_ENTRIES = 4096


def _chunk_groups(
    groups: list[tuple[str, list]], limit: int
) -> Iterator[list[tuple[str, list]]]:
    """Split ``(keyword, entries)`` groups into ≤ ``limit``-posting chunks.

    A single keyword's entries may span chunks: the pipe is FIFO and the
    worker applies requests sequentially, so per-keyword insert order —
    the shard-transparency invariant — is preserved.
    """
    chunk: list[tuple[str, list]] = []
    count = 0
    for keyword, entries in groups:
        start = 0
        while start < len(entries):
            take = min(len(entries) - start, limit - count)
            chunk.append((keyword, entries[start : start + take]))
            count += take
            start += take
            if count >= limit:
                yield chunk
                chunk, count = [], 0
    if chunk:
        yield chunk


def _evaluate_conjunct(args):
    """Executor task: one conjunct's join (module-level, picklable)."""
    views, order, plan = args
    with obs.span("query.sp.join", keywords=len(views)):
        return conjunctive_join(views, order=order, plan=plan)


def _build_shard_trees(args):
    """Executor task: extend one shard's MB-trees with a batch of postings.

    ``groups`` is ``[(keyword, tree_or_none, [(id, hash), ...]), ...]``
    in sorted keyword order; trees are plain dataclasses, so they travel
    to process-pool workers and back with their state intact.  Inserts
    are applied in stream order per keyword — the same sequence a
    single-shard system applies — so the returned trees are identical
    to serially built ones.
    """
    fanout, groups = args
    built = []
    with obs.span(
        "sp.shard.build",
        keywords=len(groups),
        entries=sum(len(entries) for _, _, entries in groups),
    ):
        for keyword, tree, entries in groups:
            if tree is None:
                tree = MBTree(fanout=fanout)
            for object_id, object_hash in entries:
                tree.insert(object_id, object_hash)
            built.append((keyword, tree))
    return built


class RoutedTrees:
    """Read-only keyword -> tree mapping spanning every shard.

    The SMI update path builds pre-insertion spines from the SP's
    current trees via ``trees.get(keyword)``; this adapter routes each
    lookup to the owning shard so that code stays shard-agnostic.
    """

    def __init__(self, frontend: "ShardedStorageProvider") -> None:
        self._frontend = frontend

    def get(self, keyword: str):
        """The keyword's tree, or ``None`` if never inserted."""
        return self._frontend.tree(keyword)

    def __contains__(self, keyword: str) -> bool:
        return self.get(keyword) is not None

    def __getitem__(self, keyword: str):
        tree = self.get(keyword)
        if tree is None:
            raise KeyError(keyword)
        return tree


class ShardedStorageProvider:
    """The SP: N shard engines behind deterministic keyword routing.

    ``index_factory`` builds one empty per-shard index mirror of the
    active scheme; ``executor`` is shared with the system facade (the
    scatter-gather paths funnel through it, so a process pool
    parallelises real per-shard work).  ``shards=1`` degenerates to the
    pre-sharding monolith: one engine owns everything and every code
    path reduces to the unsharded one.
    """

    def __init__(
        self,
        *,
        index_factory: Callable[[], object],
        executor: Executor,
        scheme_value: str,
        join_order: str,
        join_plan: str,
        shards: int = 1,
        engine: str = "memory",
        engine_dir: str | Path | None = None,
        seed: int | None = None,
        fanout: int | None = None,
        star: bool = False,
        filter_bits: int = DEFAULT_FILTER_BITS,
        bloom_capacity: int = DEFAULT_CAPACITY,
        pool: str = "stateless",
        index_spec: tuple | None = None,
        vo_version: int = 3,
    ) -> None:
        self.router = ShardRouter(shards, seed=seed)
        self.engine_kind = engine
        self.executor = executor
        self.scheme_value = scheme_value
        self.join_order = join_order
        self.join_plan = join_plan
        self.fanout = fanout
        if vo_version not in (2, 3):
            raise ParameterError(
                f"unsupported vo_version {vo_version}; expected 2 or 3"
            )
        self.vo_version = vo_version
        if pool not in POOL_KINDS:
            raise ParameterError(
                f"unknown pool {pool!r}; expected one of: "
                + ", ".join(POOL_KINDS)
            )
        self.pool_kind = pool
        self.pool: AffineWorkerPool | None = None
        self._locations: dict[int, int] = {}
        if pool == "affine":
            if index_spec is None:
                raise ParameterError(
                    "pool='affine' requires a picklable index_spec"
                )
            self.pool = AffineWorkerPool(
                [
                    EngineSpec(
                        shard_id=shard_id,
                        engine=engine,
                        index_spec=index_spec,
                        directory=(
                            None if engine_dir is None else str(engine_dir)
                        ),
                        star=star,
                        filter_bits=filter_bits,
                        bloom_capacity=bloom_capacity,
                    )
                    for shard_id in range(shards)
                ]
            )
            self.engines = [
                AffineEngineProxy(self.pool, shard_id)
                for shard_id in range(shards)
            ]
            # The workers replayed any disk journals before their
            # handshake; their reported IDs rebuild the location map.
            for shard_id, info in enumerate(self.pool.ready_info):
                for object_id in info["object_ids"]:
                    self._locations[object_id] = shard_id
            return
        self.engines = [
            make_engine(
                engine,
                shard_id,
                index_factory,
                directory=engine_dir,
                star=star,
                filter_bits=filter_bits,
                bloom_capacity=bloom_capacity,
            )
            for shard_id in range(shards)
        ]
        # Rebuild the object location map after a disk-engine replay.
        for shard_id, eng in enumerate(self.engines):
            for object_id in eng.all_object_ids():
                self._locations[object_id] = shard_id

    @property
    def shards(self) -> int:
        """Number of shard engines."""
        return len(self.engines)

    def engine_for(self, keyword: str):
        """The engine owning one keyword's partition."""
        return self.engines[self.router.route(keyword)]

    # -- ingestion (called only after on-chain receipts confirm) ----------------

    def home_shard(self, keywords: tuple[str, ...]) -> int:
        """The shard an object's payload is homed on."""
        return self.router.route(keywords[0]) if keywords else 0

    def put_object(self, obj: DataObject) -> None:
        """Home one confirmed raw object on its shard."""
        shard = self.home_shard(obj.keywords)
        self.engines[shard].put_object(obj)
        self._locations[obj.object_id] = shard

    def has_object(self, object_id: int) -> bool:
        """Whether the object is stored on any shard."""
        return object_id in self._locations

    def get_object(self, object_id: int) -> DataObject:
        """Fetch one raw object from its home shard."""
        shard = self._locations.get(object_id)
        if shard is None:
            raise DatasetError(f"no object with ID {object_id}")
        return self.engines[shard].get_object(object_id)

    def get_objects(self, object_ids) -> dict[int, DataObject]:
        """Fetch many raw objects, batched per home shard.

        With an affine pool this is one request per involved shard
        instead of one per object; in-process engines just loop.
        """
        by_shard: dict[int, list[int]] = {}
        for object_id in object_ids:
            shard = self._locations.get(object_id)
            if shard is None:
                raise DatasetError(f"no object with ID {object_id}")
            by_shard.setdefault(shard, []).append(object_id)
        if self.pool is not None:
            self.flush_mutations()
            calls = [
                (shard, "get_objects", ids)
                for shard, ids in sorted(by_shard.items())
            ]
            fetched = self.pool.dispatch(calls)
            return {
                obj.object_id: obj
                for objects in fetched
                for obj in objects
            }
        return {
            object_id: self.engines[shard].get_object(object_id)
            for shard, ids in sorted(by_shard.items())
            for object_id in ids
        }

    def flush_mutations(self) -> int:
        """Ship any buffered affine delta records; returns the count.

        A no-op in stateless mode (in-process engines apply mutations
        immediately).  The facade calls this at the end of every ingest
        section, so queries issued outside the write lock never race a
        buffered delta.
        """
        if self.pool is None:
            return 0
        return sum(engine.flush() for engine in self.engines)

    def object_count(self) -> int:
        """Total objects across every shard."""
        return len(self._locations)

    def all_object_ids(self) -> list[int]:
        """Every stored object ID across shards, ascending."""
        return sorted(self._locations)

    def insert_entries(self, metadata: ObjectMetadata) -> None:
        """Mirror one confirmed object into its keywords' trees."""
        with obs.span("sp.index.insert", keywords=len(metadata.keywords)):
            for keyword in metadata.keywords:
                self.engine_for(keyword).insert_entry(
                    keyword, metadata.object_id, metadata.object_hash
                )

    def mirror_bulk(self, metadatas: list[ObjectMetadata]) -> None:
        """Mirror a confirmed batch, building each shard's trees in one task.

        The Merkle-family bulk path: postings are partitioned by owning
        shard and each shard's trees are extended in a single executor
        task — with a process pool this is genuine multi-core ingestion.
        Per keyword the insert sequence equals the per-object path's, so
        the resulting trees (and every later VO) are byte-identical.
        """
        pending: dict[int, dict[str, list]] = {}
        for metadata in metadatas:
            for keyword in metadata.keywords:
                shard = self.router.route(keyword)
                pending.setdefault(shard, {}).setdefault(keyword, []).append(
                    (metadata.object_id, metadata.object_hash)
                )
        shard_ids = sorted(pending)
        if self.pool is not None:
            # Affine path: the trees stay resident in the shard workers;
            # only the posting deltas travel, chunked so one huge batch
            # becomes several bounded pipe writes per shard.
            self.flush_mutations()
            calls = []
            for shard in shard_ids:
                groups = sorted(pending[shard].items())
                for chunk in _chunk_groups(groups, INGEST_CHUNK_ENTRIES):
                    calls.append((shard, "bulk", chunk))
            with obs.span(
                "sp.shard.scatter", shards=len(shard_ids), executor="affine"
            ):
                self.pool.dispatch(calls, ingest=True)
            return
        tasks = []
        for shard in shard_ids:
            groups = [
                (keyword, self.engines[shard].tree(keyword), entries)
                for keyword, entries in sorted(pending[shard].items())
            ]
            tasks.append((self.fanout, groups))
        with obs.span(
            "sp.shard.scatter",
            shards=len(tasks),
            executor=self.executor.kind,
        ):
            built = self.executor.map(
                _build_shard_trees,
                tasks,
                chunksize=1,
                labels=[{"shard": shard} for shard in shard_ids],
            )
        with obs.span("sp.shard.gather", shards=len(tasks)):
            for shard, shard_trees in zip(shard_ids, built):
                engine = self.engines[shard]
                for keyword, tree in shard_trees:
                    engine.adopt_tree(keyword, tree, pending[shard][keyword])

    def register_keyword(self, keyword: str, commitment: int) -> None:
        """Register a first-seen keyword on its owning shard."""
        self.engine_for(keyword).register_keyword(keyword, commitment)

    def apply_insertion(self, keyword: str, proof) -> None:
        """Apply one DO insertion proof on the owning shard."""
        self.engine_for(keyword).apply_insertion(keyword, proof)

    def bloom_add(self, keyword: str, object_id: int) -> None:
        """Mirror one ID into the owning shard's Bloom chain (CI*)."""
        self.engine_for(keyword).bloom_add(keyword, object_id)

    # -- query serving -----------------------------------------------------------

    def view(self, keyword: str):
        """The join engine's IndexView, routed to the owning shard."""
        return self.engine_for(keyword).view(keyword)

    def tree(self, keyword: str):
        """The keyword's raw tree from its owning shard (or ``None``)."""
        return self.engine_for(keyword).tree(keyword)

    @property
    def trees(self):
        """Routed keyword -> tree mapping (SMI spine construction)."""
        return RoutedTrees(self)

    def _scatter(self, query: KeywordQuery) -> list[list]:
        """Collect each conjunct's views from their owning shards."""
        if self.shards > 1:
            with obs.span(
                "sp.shard.scatter",
                shards=self.shards,
                keywords=len(query.all_keywords()),
            ):
                return [
                    [self.view(kw) for kw in sorted(conj)]
                    for conj in query.conjunctions
                ]
        return [
            [self.view(kw) for kw in sorted(conj)]
            for conj in query.conjunctions
        ]

    def _affine_conjuncts(
        self, query: KeywordQuery
    ) -> list[tuple[list[int], ConjunctiveVO]]:
        """Evaluate every conjunct through the resident workers.

        A conjunct whose keywords all route to one shard is joined
        *inside* that worker (only IDs and the VO come back); conjuncts
        spanning shards fall back to exporting the needed views — one
        batched request per shard — and joining here.  Outcomes are
        assembled in conjunct order, so the VO encoding is independent
        of shard layout and dispatch interleaving.
        """
        self.flush_mutations()
        conjuncts = [sorted(conj) for conj in query.conjunctions]
        local: dict[int, list[int]] = {}  # shard -> conjunct indices
        cross: list[int] = []
        for index, keywords in enumerate(conjuncts):
            owners = {self.router.route(keyword) for keyword in keywords}
            if len(owners) == 1:
                local.setdefault(owners.pop(), []).append(index)
            else:
                cross.append(index)
        calls: list[tuple[int, str, object]] = []
        call_meta: list[tuple[str, object]] = []
        for shard in sorted(local):
            indices = local[shard]
            calls.append(
                (
                    shard,
                    "join",
                    (
                        [conjuncts[i] for i in indices],
                        self.join_order,
                        self.join_plan,
                    ),
                )
            )
            call_meta.append(("join", indices))
        needed: dict[int, set[str]] = {}  # shard -> keywords to export
        for index in cross:
            for keyword in conjuncts[index]:
                needed.setdefault(self.router.route(keyword), set()).add(
                    keyword
                )
        for shard in sorted(needed):
            calls.append((shard, "views", sorted(needed[shard])))
            call_meta.append(("views", shard))
        with obs.span(
            "sp.shard.scatter",
            shards=len({shard for shard, _, _ in calls}),
            keywords=len(query.all_keywords()),
            executor="affine",
        ):
            replies = self.pool.dispatch(calls)
        outcomes: list = [None] * len(conjuncts)
        exported: dict[str, object] = {}
        with obs.span("sp.shard.gather", conjunctions=len(conjuncts)):
            for (kind, meta), reply in zip(call_meta, replies):
                if kind == "join":
                    for index, outcome in zip(meta, reply):
                        outcomes[index] = outcome
                else:
                    exported.update(reply)
            for index in cross:
                views = [exported[keyword] for keyword in conjuncts[index]]
                with obs.span("query.sp.join", keywords=len(views)):
                    outcomes[index] = conjunctive_join(
                        views, order=self.join_order, plan=self.join_plan
                    )
        return outcomes

    def process_query(self, query: KeywordQuery) -> QueryAnswer:
        """Evaluate the query and build ``VO_sp``.

        Conjuncts are independent joins; with a parallel executor they
        are evaluated concurrently (the index views are read-only), and
        with an affine pool each conjunct is joined inside the worker
        already holding its shard's views.  Per-conjunct VOs are
        gathered in conjunct order, so the encoded VO never depends on
        shard layout or executor scheduling.
        """
        with obs.span(
            "query.sp",
            scheme=self.scheme_value,
            conjunctions=len(query.conjunctions),
        ) as sp_span:
            conjunct_vos: list[ConjunctiveVO] = []
            result_ids: set[int] = set()
            if self.pool is not None:
                for ids, vo in self._affine_conjuncts(query):
                    conjunct_vos.append(vo)
                    result_ids |= set(ids)
                objects = self.get_objects(sorted(result_ids))
                sp_span.set(results=len(result_ids))
                return QueryAnswer(
                    result_ids=sorted(result_ids),
                    objects=objects,
                    vo=self._finish_vo(conjunct_vos),
                )
            per_conjunct_views = self._scatter(query)
            if (
                self.executor.kind != "serial"
                and len(query.conjunctions) > 1
            ):
                tasks = [
                    (views, self.join_order, self.join_plan)
                    for views in per_conjunct_views
                ]
                with obs.span(
                    "query.sp.join_parallel",
                    conjunctions=len(tasks),
                    executor=self.executor.kind,
                ):
                    outcomes = self.executor.map(
                        _evaluate_conjunct,
                        tasks,
                        labels=[
                            {"conjunct": i} for i in range(len(tasks))
                        ],
                    )
                if self.shards > 1:
                    with obs.span(
                        "sp.shard.gather", conjunctions=len(outcomes)
                    ):
                        for ids, vo in outcomes:
                            conjunct_vos.append(vo)
                            result_ids |= set(ids)
                else:
                    for ids, vo in outcomes:
                        conjunct_vos.append(vo)
                        result_ids |= set(ids)
            else:
                for conj, views in zip(query.conjunctions, per_conjunct_views):
                    with obs.span("query.sp.join", keywords=len(conj)):
                        ids, vo = conjunctive_join(
                            views, order=self.join_order, plan=self.join_plan
                        )
                    conjunct_vos.append(vo)
                    result_ids |= set(ids)
            objects = {oid: self.get_object(oid) for oid in result_ids}
            sp_span.set(results=len(result_ids))
        return QueryAnswer(
            result_ids=sorted(result_ids),
            objects=objects,
            vo=self._finish_vo(conjunct_vos),
        )

    def _finish_vo(self, conjunct_vos: list[ConjunctiveVO]) -> QueryVO:
        """Assemble ``VO_sp``, compressing per-entry paths when enabled.

        The common tail of every query path (stateless, parallel and
        affine): compression runs *after* call-order gathering, over the
        fully assembled VO, so its output — one deduplicated multiproof
        per ``(tree, commitment)`` — is byte-identical for any shard
        count, pool mode or executor.  ``vo_version=2`` preserves the
        legacy per-entry-path VO exactly; Chameleon-family VOs carry no
        Merkle paths and pass through unchanged either way.
        """
        vo = QueryVO(conjuncts=tuple(conjunct_vos))
        if self.vo_version >= 3:
            vo = compress_query_vo(vo)
        return vo

    def compact(self) -> dict:
        """Checkpoint + truncate every durable shard journal.

        Each disk engine snapshots its state (flat-buffer tree blobs,
        one write) and swaps in a fresh journal; memory engines are
        skipped.  Works in both pool modes — affine engines forward the
        request to their resident worker, which compacts the journal it
        owns.  Totals are returned and mirrored to the ``sp.compact.*``
        observability counters.
        """
        totals = {
            "shards_compacted": 0,
            "reclaimed": 0,
            "journal_bytes_before": 0,
            "journal_bytes_after": 0,
            "checkpoint_bytes": 0,
        }
        with obs.span("sp.compact", shards=len(self.engines)):
            self.flush_mutations()
            for engine in self.engines:
                stats = engine.compact()
                if stats is None:
                    continue
                totals["shards_compacted"] += 1
                for key in (
                    "reclaimed",
                    "journal_bytes_before",
                    "journal_bytes_after",
                    "checkpoint_bytes",
                ):
                    totals[key] += stats[key]
        obs.inc("sp.compact.runs")
        obs.inc("sp.compact.shards", totals["shards_compacted"])
        obs.inc("sp.compact.reclaimed.bytes", totals["reclaimed"])
        obs.inc("sp.compact.checkpoint.bytes", totals["checkpoint_bytes"])
        return totals

    def close(self) -> None:
        """Release engines, workers and warmers (idempotent).

        Warmers stop *first* — their background threads read through
        this provider, so they must be joined before the engines (or the
        affine workers) go away; a wedged warmer thread is bounded by
        the join timeout and never leaks into the next test case.
        """
        for engine in self.engines:
            warmer = getattr(engine, "warmer", None)
            if warmer is not None:
                warmer.stop()
        if self.pool is not None:
            self.flush_mutations()
            self.pool.close()
            return
        for engine in self.engines:
            engine.close()
