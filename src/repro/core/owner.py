"""Data-owner pipeline: scheme-specific maintenance transactions.

The DO side of Fig. 1, extracted from the old ``core/system.py``
monolith: for each new object it builds the scheme's on-chain
transaction(s), snapshots and rolls back its own off-chain state when a
receipt fails, and — only after confirmation — streams the resulting
mirror updates (tree postings, root commitments, insertion proofs,
Bloom additions) into the storage provider it was wired to.

The pipeline never touches the raw object payloads: homing those on the
SP (and the surrounding gas accounting, mining cadence and telemetry)
stays with the :class:`~repro.core.system.HybridStorageSystem` facade.

For the Chameleon family, a single persistent
:class:`~repro.sp.scheduler.WitnessScheduler` lives here rather than in
the shard engines: CVC openings need the trapdoor-side aux state, which
never leaves the data owner, so shards always receive finished proofs.
"""

from __future__ import annotations

from repro.core import suppressed
from repro.core.chameleon_index import ChameleonDataOwner
from repro.core.objects import ObjectMetadata
from repro.core.scheme import Scheme
from repro.errors import ChainError
from repro.ethereum.chain import Blockchain, Receipt

#: Contract registration name on the simulated chain.
ADS_CONTRACT = "ads"


class DataOwnerPipeline:
    """Builds and confirms maintenance transactions for one scheme.

    ``sp`` is the storage provider the confirmed mirror updates go to
    (a :class:`~repro.core.sp_frontend.ShardedStorageProvider`); ``do``
    is the Chameleon data-owner state, ``None`` for the Merkle family.
    """

    def __init__(
        self,
        *,
        scheme: Scheme,
        chain: Blockchain,
        sp,
        value_bytes: int,
        do: ChameleonDataOwner | None = None,
        witness_batching: bool = True,
    ) -> None:
        self.scheme = scheme
        self.chain = chain
        self.sp = sp
        self.value_bytes = value_bytes
        self.do = do
        self.witness_batching = witness_batching
        self._scheduler = None

    def _witness_scheduler(self):
        """The persistent cross-batch witness scheduler (Chameleon)."""
        if self._scheduler is None:
            # Imported lazily: repro.sp imports core modules at load time.
            from repro.sp.scheduler import WitnessScheduler, tree_aux_source

            self._scheduler = WitnessScheduler(
                tree_aux_source(self.do), self.do.cvc.pp
            )
        return self._scheduler

    # -- single-object pipeline --------------------------------------------------

    def insert(self, metadata: ObjectMetadata) -> list[Receipt]:
        """Run the scheme's transaction pipeline for one object.

        Confirmed insertions are mirrored into the SP before returning;
        a failed receipt leaves the DO and the SP untouched (the caller
        inspects receipt statuses and raises).
        """
        if self.scheme is Scheme.MERKLE_INV:
            receipt = self.insert_merkle_tx(metadata)
            if receipt.status:
                self.sp.insert_entries(metadata)
            return [receipt]

        if self.scheme is Scheme.SUPPRESSED:
            register = self.chain.send_transaction(
                "do",
                ADS_CONTRACT,
                "register_object",
                metadata.object_id,
                metadata.object_hash,
                metadata.keywords,
                payload=metadata.payload_bytes(),
            )
            updates = suppressed.build_updates(
                self.sp.trees, metadata.object_id, metadata.keywords
            )
            update_tx = self.chain.send_transaction(
                "sp",
                ADS_CONTRACT,
                "insert",
                metadata.object_id,
                metadata.object_hash,
                updates,
                payload=suppressed.updates_payload(updates),
            )
            if update_tx.status:
                self.sp.insert_entries(metadata)
            return [register, update_tx]

        # Chameleon family.  The DO's off-chain state mutates while
        # building the transaction, so snapshot it and roll back when
        # the receipt fails — otherwise the DO and the chain diverge.
        do_snapshot = self.do.snapshot(metadata.keywords)
        try:
            proofs, counts, new_keywords = self.do.insert(metadata)
            new_kw_list = sorted(new_keywords.items())
            payload = metadata.payload_bytes()
            payload += b"".join(
                kw.encode() + c.to_bytes(self.value_bytes, "big")
                for kw, c in new_kw_list
            )
            payload += b"".join(
                u.keyword.encode() + u.count.to_bytes(8, "big") for u in counts
            )
            receipt = self.chain.send_transaction(
                "do",
                ADS_CONTRACT,
                "insert_object",
                metadata.object_id,
                metadata.object_hash,
                counts,
                new_kw_list,
                payload=payload,
            )
        except BaseException:
            self.do.restore(do_snapshot)
            raise
        if not receipt.status:
            self.do.restore(do_snapshot)
        else:
            self._mirror_chameleon(metadata, proofs, new_kw_list)
        return [receipt]

    def insert_merkle_tx(self, metadata: ObjectMetadata) -> Receipt:
        """Send the MI register-and-insert transaction, nothing else.

        The bulk-ingest path confirms a whole batch of these before
        mirroring the SP trees in one scatter pass.
        """
        return self.chain.send_transaction(
            "do",
            ADS_CONTRACT,
            "register_and_insert",
            metadata.object_id,
            metadata.object_hash,
            metadata.keywords,
            payload=metadata.payload_bytes(),
        )

    # -- batched pipeline --------------------------------------------------------

    def insert_chameleon_batched(
        self, metadatas: list[ObjectMetadata]
    ) -> tuple[Receipt, set[str]]:
        """One batched DO transaction for the whole object list.

        Stages every off-chain mutation, sends a single ``insert_objects``
        transaction, and rolls the DO back completely when it fails.
        Returns the receipt and the set of touched keywords.
        """
        touched = {kw for m in metadatas for kw in m.keywords}
        do_snapshot = self.do.snapshot(touched)
        batch = []
        payload = b""
        sp_work = []
        try:
            if self.witness_batching:
                do_results = self.do.insert_many(
                    metadatas, scheduler=self._witness_scheduler()
                )
            else:
                do_results = [self.do.insert(m) for m in metadatas]
            for metadata, (proofs, counts, new_keywords) in zip(
                metadatas, do_results
            ):
                new_kw_list = sorted(new_keywords.items())
                batch.append(
                    (
                        metadata.object_id,
                        metadata.object_hash,
                        counts,
                        new_kw_list,
                    )
                )
                payload += metadata.payload_bytes()
                payload += b"".join(
                    kw.encode() + c.to_bytes(self.value_bytes, "big")
                    for kw, c in new_kw_list
                )
                payload += b"".join(
                    u.keyword.encode() + u.count.to_bytes(8, "big")
                    for u in counts
                )
                sp_work.append((metadata, proofs, new_kw_list))
            receipt = self.chain.send_transaction(
                "do", ADS_CONTRACT, "insert_objects", batch, payload=payload
            )
        except BaseException:
            self.do.restore(do_snapshot)
            # A mid-staging failure can strand unflushed opening
            # requests whose positions the rollback just removed;
            # start the next batch with a clean scheduler.
            self._scheduler = None
            raise
        if not receipt.status:
            self.do.restore(do_snapshot)
            self._scheduler = None
            raise ChainError(f"batched insertion failed: {receipt.error}")
        for metadata, proofs, new_kw_list in sp_work:
            self._mirror_chameleon(metadata, proofs, new_kw_list)
        # Affine SPs buffer mirror deltas; ship the whole batch before
        # the receipt is reported confirmed upstream.
        flush = getattr(self.sp, "flush_mutations", None)
        if flush is not None:
            flush()
        return receipt, touched

    def _mirror_chameleon(
        self, metadata: ObjectMetadata, proofs: dict, new_kw_list: list
    ) -> None:
        """Stream one confirmed object's updates into the SP."""
        for keyword, commitment in new_kw_list:
            self.sp.register_keyword(keyword, commitment)
        for keyword, proof in proofs.items():
            self.sp.apply_insertion(keyword, proof)
        if self.scheme is Scheme.CHAMELEON_STAR:
            for keyword in metadata.keywords:
                self.sp.bloom_add(keyword, metadata.object_id)
