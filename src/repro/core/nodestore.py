"""Flat-buffer node storage: every tree node of one ADS in one buffer.

The MB-tree and chameleon tree were pointer-chasing Python object
graphs; at million-object corpora, per-node allocation and GC dominate
build and ingest, and the disk engine had to re-serialise node-by-node.
This module rebuilds node storage the way Chia's ``merkle_blob`` does:
all nodes of one tree live as fixed-width records inside a single
``bytearray``, child references are record *indices*, digests are stored
inline, and deleted/rebuilt records go on an intrusive free list.  A
whole tree then snapshots as one buffer write and loads as one buffer
read (mmap-friendly), and crossing a process boundary is a single
``bytes`` copy instead of a pickled graph.

Layout (nodestore format v1, all integers big-endian)
-----------------------------------------------------

64-byte header::

    0   magic        4s   b"RNS1"
    4   version      u16  1
    6   kind         u8   1 = MB-tree, 2 = chameleon
    7   flags        u8   reserved, 0
    8   record_size  u32
    12  param        u32  fan-out (MB-tree) / arity (chameleon)
    16  param2       u32  slot capacity (MB-tree) / value_bytes (chameleon)
    20  extra_len    u32  bytes of tree-level extra data after the header
    24  allocated    u32  record slots present in the buffer
    28  free_head    u32  first free record index, NIL if none
    32  root         u32  root record index (MB-tree), NIL if empty
    36  seq          u32  next logical-node sequence number (MB-tree)
    40  count        u64  entry count
    48  max_key      u64  largest key (MB-tree; valid iff count > 0)
    56  (reserved)   8 bytes, zero

then ``extra_len`` bytes of tree-level extra data (the chameleon root
commitment), then ``allocated`` fixed-width records.  A free record has
type byte 0 and carries the next free index as a u32 at offset 4; freed
records are zeroed so a store's bytes are a pure function of the
operations applied to it (golden fixtures pin this).

MB-tree record (``record_size = 48 + 72 * (fanout + 1)``)::

    0   type       u8   0 free, 1 leaf, 2 internal
    1   count      u8   live entries / children
    4   seq        u32  logical-node id, stable across record moves
    8   min_key    u64  smallest key under this node
    16  digest     32s
    48  slots:     leaf slot i (72 bytes each):
                       u64 key | 32s value_hash | 32s entry_digest
                   internal slot i (4 bytes each): u32 child index

Records hold up to ``fanout + 1`` leaf slots because an insert lands
*before* the overflow split, exactly like the object-graph tree did —
keeping the structural event order (and hence metered gas) identical.
``seq`` exists because a split rebuilds a node into fresh records (the
old one is freed — this is what exercises the free list): observers that
deduplicate per *logical* node across a batch key on ``seq``, which
survives the move, where ``id(node)`` survived mutation before.

Chameleon record (``record_size = 41 + 3 * value_bytes``)::

    0   object_id    u64
    8   child_index  u8   1-based index under the (arithmetic) parent
    9   object_hash  32s
    41  commitment   value_bytes
    ..  slot1_proof  value_bytes
    ..  parent_link  value_bytes

Chameleon positions are BFS-contiguous, so record ``pos - 1`` is node
``pos`` and parent references are pure index arithmetic
(:func:`repro.core.chameleon.parent_position`) — no stored links at all.
"""

from __future__ import annotations

import struct
from array import array

from repro.errors import IntegrityError, ReproError

MAGIC = b"RNS1"

#: Format version recorded in every blob header and in manifest v3.
NODESTORE_VERSION = 1

#: Null record index (free-list terminator / empty root).
NIL = 0xFFFF_FFFF

KIND_MBTREE = 1
KIND_CHAMELEON = 2

HEADER_SIZE = 64
_HEADER = struct.Struct(">4sHBB8I2Q8x")
assert _HEADER.size == HEADER_SIZE

_OFF_ALLOCATED = 24
_OFF_FREE_HEAD = 28
_OFF_ROOT = 32
_OFF_SEQ = 36
_OFF_COUNT = 40
_OFF_MAX_KEY = 48

_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


class NodeStore:
    """A growable buffer of fixed-width records with a free list.

    The store knows nothing about tree semantics: it hands out record
    indices (:meth:`alloc` / :meth:`free`), converts indices to buffer
    offsets, and keeps the header fields coherent so ``bytes(blob)`` is
    always a complete, loadable snapshot.  The typed field layout lives
    in the :class:`TreeView` subclasses.
    """

    __slots__ = (
        "blob",
        "kind",
        "record_size",
        "param",
        "param2",
        "extra_len",
        "allocated",
        "free_head",
    )

    def __init__(
        self,
        kind: int,
        record_size: int,
        param: int,
        param2: int = 0,
        extra_len: int = 0,
    ) -> None:
        if record_size < 8:
            raise ReproError("node records must hold at least 8 bytes")
        self.blob = bytearray(HEADER_SIZE + extra_len)
        self.kind = kind
        self.record_size = record_size
        self.param = param
        self.param2 = param2
        self.extra_len = extra_len
        self.allocated = 0
        self.free_head = NIL
        _HEADER.pack_into(
            self.blob,
            0,
            MAGIC,
            NODESTORE_VERSION,
            kind,
            0,
            record_size,
            param,
            param2,
            extra_len,
            0,
            NIL,
            NIL,
            0,
            0,
            0,
        )

    @classmethod
    def from_blob(cls, blob: bytes | bytearray | memoryview) -> "NodeStore":
        """Adopt a serialised store, validating the v1 header."""
        if len(blob) < HEADER_SIZE:
            raise IntegrityError("node-store blob shorter than its header")
        (
            magic,
            version,
            kind,
            _flags,
            record_size,
            param,
            param2,
            extra_len,
            allocated,
            free_head,
            _root,
            _seq,
            _count,
            _max_key,
        ) = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise IntegrityError("bad node-store magic")
        if version != NODESTORE_VERSION:
            raise IntegrityError(
                f"unsupported node-store version {version}"
            )
        expected = HEADER_SIZE + extra_len + allocated * record_size
        if len(blob) != expected:
            raise IntegrityError(
                f"node-store blob is {len(blob)} bytes, header implies "
                f"{expected}"
            )
        store = cls.__new__(cls)
        store.blob = bytearray(blob)
        store.kind = kind
        store.record_size = record_size
        store.param = param
        store.param2 = param2
        store.extra_len = extra_len
        store.allocated = allocated
        store.free_head = free_head
        return store

    # -- header fields ----------------------------------------------------------

    def _get_u32(self, off: int) -> int:
        return _U32.unpack_from(self.blob, off)[0]

    def _set_u32(self, off: int, value: int) -> None:
        _U32.pack_into(self.blob, off, value)

    @property
    def root(self) -> int:
        """Root record index (NIL when the tree is empty)."""
        return self._get_u32(_OFF_ROOT)

    @root.setter
    def root(self, index: int) -> None:
        self._set_u32(_OFF_ROOT, index)

    @property
    def seq(self) -> int:
        """Next logical-node sequence number."""
        return self._get_u32(_OFF_SEQ)

    @seq.setter
    def seq(self, value: int) -> None:
        self._set_u32(_OFF_SEQ, value)

    @property
    def count(self) -> int:
        """Entry count recorded in the header."""
        return _U64.unpack_from(self.blob, _OFF_COUNT)[0]

    @count.setter
    def count(self, value: int) -> None:
        _U64.pack_into(self.blob, _OFF_COUNT, value)

    @property
    def max_key(self) -> int:
        """Largest key recorded in the header (valid iff count > 0)."""
        return _U64.unpack_from(self.blob, _OFF_MAX_KEY)[0]

    @max_key.setter
    def max_key(self, value: int) -> None:
        _U64.pack_into(self.blob, _OFF_MAX_KEY, value)

    # -- records ----------------------------------------------------------------

    def offset(self, index: int) -> int:
        """Buffer offset of record ``index`` (pure index arithmetic)."""
        return HEADER_SIZE + self.extra_len + index * self.record_size

    def alloc(self) -> int:
        """Hand out a zeroed record: pop the free list, else grow."""
        head = self.free_head
        if head != NIL:
            off = self.offset(head)
            nxt = _U32.unpack_from(self.blob, off + 4)[0]
            self.free_head = nxt
            self._set_u32(_OFF_FREE_HEAD, nxt)
            self.blob[off + 4 : off + 8] = b"\x00\x00\x00\x00"
            return head
        index = self.allocated
        self.allocated = index + 1
        self._set_u32(_OFF_ALLOCATED, self.allocated)
        self.blob.extend(bytes(self.record_size))
        return index

    def free(self, index: int) -> None:
        """Zero a record and push it on the free list."""
        off = self.offset(index)
        self.blob[off : off + self.record_size] = bytes(self.record_size)
        _U32.pack_into(self.blob, off + 4, self.free_head)
        self.free_head = index
        self._set_u32(_OFF_FREE_HEAD, index)

    def free_count(self) -> int:
        """Length of the free list (diagnostics/tests; walks the list)."""
        count = 0
        index = self.free_head
        while index != NIL:
            if count > self.allocated:
                raise IntegrityError("node-store free list is cyclic")
            count += 1
            index = _U32.unpack_from(self.blob, self.offset(index) + 4)[0]
        return count

    @property
    def byte_size(self) -> int:
        """Total buffer size in bytes."""
        return len(self.blob)

    def to_bytes(self) -> bytes:
        """The complete snapshot: header + extra + records, one buffer."""
        return bytes(self.blob)


class TreeView:
    """Typed view over a :class:`NodeStore`: layout without semantics.

    Subclasses define one record layout each and expose field-level
    reads/writes as index arithmetic over the shared buffer.  Hashing,
    proof assembly and ordering rules stay with the tree classes that
    own the view (:class:`repro.core.mbtree.MBTree`,
    :class:`repro.core.chameleon.ChameleonTreeSP`).
    """

    kind = 0

    __slots__ = ("store",)

    def __init__(self, store: NodeStore) -> None:
        if store.kind != self.kind:
            raise IntegrityError(
                f"blob holds kind {store.kind}, view expects {self.kind}"
            )
        self.store = store

    @property
    def byte_size(self) -> int:
        """Total buffer size in bytes."""
        return self.store.byte_size

    def to_blob(self) -> bytes:
        """Snapshot the whole tree as one buffer."""
        return self.store.to_bytes()


# ---------------------------------------------------------------------------
# MB-tree layout
# ---------------------------------------------------------------------------

_MB_T = 0
_MB_CNT = 1
_MB_SEQ = 4
_MB_MIN = 8
_MB_DIG = 16
_MB_SLOTS = 48
_MB_LEAF_SLOT = 40  # u64 key + 32s value_hash
_MB_CHILD_SLOT = 4

MB_FREE = 0
MB_LEAF = 1
MB_INTERNAL = 2

_LEAF_ENTRY = struct.Struct(">Q32s")


def mb_record_size(fanout: int) -> int:
    """v1 MB-tree record size for a given fan-out."""
    return _MB_SLOTS + _MB_LEAF_SLOT * (fanout + 1)


class MBTreeStore(TreeView):
    """The MB-tree's record layout over a :class:`NodeStore`.

    All structural mutation (allocation, entry shifting, splitting,
    child splicing) happens here as buffer arithmetic; digests are
    written by the owning tree through :meth:`set_digest` so this module
    stays hash-agnostic.  ``seq_map[seq]`` tracks the current record
    index of each logical node, letting gas observers hold stable
    handles across the free-then-reallocate moves a split performs.
    """

    kind = KIND_MBTREE

    __slots__ = ("seq_map",)

    def __init__(self, store: NodeStore) -> None:
        super().__init__(store)
        self.seq_map: array = array("I", bytes(4 * store.seq))
        if store.seq:
            self._rebuild_seq_map()

    @classmethod
    def create(cls, fanout: int) -> "MBTreeStore":
        """A fresh, empty MB-tree store."""
        store = NodeStore(
            KIND_MBTREE,
            mb_record_size(fanout),
            param=fanout,
            param2=fanout + 1,
        )
        return cls(store)

    @classmethod
    def from_blob(cls, blob: bytes | bytearray | memoryview) -> "MBTreeStore":
        """Load a serialised MB-tree store, validating the layout."""
        store = NodeStore.from_blob(blob)
        if store.kind != KIND_MBTREE:
            raise IntegrityError("blob does not hold an MB-tree store")
        if store.record_size != mb_record_size(store.param):
            raise IntegrityError(
                "MB-tree record size disagrees with the stored fan-out"
            )
        return cls(store)

    def _rebuild_seq_map(self) -> None:
        blob = self.store.blob
        for index in range(self.store.allocated):
            off = self.store.offset(index)
            if blob[off + _MB_T] != MB_FREE:
                seq = _U32.unpack_from(blob, off + _MB_SEQ)[0]
                if seq >= len(self.seq_map):
                    raise IntegrityError(
                        f"record {index} carries out-of-range seq {seq}"
                    )
                self.seq_map[seq] = index

    @property
    def fanout(self) -> int:
        """Tree fan-out recorded in the header."""
        return self.store.param

    # -- per-record fields ------------------------------------------------------

    def node_type(self, index: int) -> int:
        """Record type byte: free / leaf / internal."""
        return self.store.blob[self.store.offset(index) + _MB_T]

    def is_leaf(self, index: int) -> bool:
        """Whether the record is a leaf node."""
        return self.node_type(index) == MB_LEAF

    def count(self, index: int) -> int:
        """Live entries (leaf) or children (internal) in the record."""
        return self.store.blob[self.store.offset(index) + _MB_CNT]

    def _set_count(self, index: int, value: int) -> None:
        self.store.blob[self.store.offset(index) + _MB_CNT] = value

    def seq(self, index: int) -> int:
        """The record's stable logical-node sequence number."""
        return _U32.unpack_from(
            self.store.blob, self.store.offset(index) + _MB_SEQ
        )[0]

    def index_of_seq(self, seq: int) -> int:
        """Current record index of a logical node."""
        return self.seq_map[seq]

    def min_key(self, index: int) -> int:
        """Smallest key stored under this node (cached in the record)."""
        return _U64.unpack_from(
            self.store.blob, self.store.offset(index) + _MB_MIN
        )[0]

    def set_min_key(self, index: int, key: int) -> None:
        """Refresh the record's cached minimum key."""
        _U64.pack_into(self.store.blob, self.store.offset(index) + _MB_MIN, key)

    def digest(self, index: int) -> bytes:
        """The node's inline digest."""
        off = self.store.offset(index) + _MB_DIG
        return bytes(self.store.blob[off : off + 32])

    def set_digest(self, index: int, digest: bytes) -> None:
        """Store the node's digest inline."""
        off = self.store.offset(index) + _MB_DIG
        self.store.blob[off : off + 32] = digest

    # -- allocation -------------------------------------------------------------

    def _new_node(self, node_type: int) -> int:
        index = self.store.alloc()
        seq = self.store.seq
        self.store.seq = seq + 1
        blob = self.store.blob
        off = self.store.offset(index)
        blob[off + _MB_T] = node_type
        _U32.pack_into(blob, off + _MB_SEQ, seq)
        self.seq_map.append(index)
        return index

    def new_leaf(self) -> int:
        """Allocate an empty leaf with a fresh sequence number."""
        return self._new_node(MB_LEAF)

    def new_internal(self) -> int:
        """Allocate an empty internal node with a fresh sequence number."""
        return self._new_node(MB_INTERNAL)

    # -- leaf slots -------------------------------------------------------------

    def leaf_key(self, index: int, slot: int) -> int:
        """Key of one leaf entry."""
        off = self.store.offset(index) + _MB_SLOTS + _MB_LEAF_SLOT * slot
        return _U64.unpack_from(self.store.blob, off)[0]

    def leaf_value_hash(self, index: int, slot: int) -> bytes:
        """Value hash of one leaf entry."""
        off = self.store.offset(index) + _MB_SLOTS + _MB_LEAF_SLOT * slot + 8
        return bytes(self.store.blob[off : off + 32])

    def leaf_insert(
        self, index: int, position: int, key: int, value_hash: bytes
    ) -> None:
        """Insert one entry into a leaf record, shifting later slots.

        Only the ``<key, value_hash>`` pair is stored; entry digests are
        recomputed by the owning tree on demand (this layout stays
        hash-agnostic, and caching them inline would grow every record
        by ``32 * (fanout + 1)`` bytes).
        """
        blob = self.store.blob
        base = self.store.offset(index) + _MB_SLOTS
        count = self.count(index)
        start = base + _MB_LEAF_SLOT * position
        if position < count:
            end = base + _MB_LEAF_SLOT * count
            blob[start + _MB_LEAF_SLOT : end + _MB_LEAF_SLOT] = blob[start:end]
        _LEAF_ENTRY.pack_into(blob, start, key, value_hash)
        self._set_count(index, count + 1)
        if position == 0:
            self.set_min_key(index, key)

    def leaf_find(self, index: int, key: int) -> tuple[int, bool]:
        """Binary-search a leaf: (insertion position, exact match?)."""
        lo, hi = 0, self.count(index)
        while lo < hi:
            mid = (lo + hi) // 2
            mid_key = self.leaf_key(index, mid)
            if mid_key == key:
                return mid, True
            if mid_key < key:
                lo = mid + 1
            else:
                hi = mid
        return lo, False

    # -- internal slots ---------------------------------------------------------

    def child(self, index: int, slot: int) -> int:
        """Child record index in one internal slot."""
        off = self.store.offset(index) + _MB_SLOTS + _MB_CHILD_SLOT * slot
        return _U32.unpack_from(self.store.blob, off)[0]

    def children(self, index: int) -> list[int]:
        """All child record indices, slot order."""
        blob = self.store.blob
        base = self.store.offset(index) + _MB_SLOTS
        return [
            _U32.unpack_from(blob, base + _MB_CHILD_SLOT * s)[0]
            for s in range(self.count(index))
        ]

    def child_digests(self, index: int) -> list[bytes]:
        """Digests of all children of an internal node."""
        return [self.digest(c) for c in self.children(index)]

    def set_children(self, index: int, child_indices: list[int]) -> None:
        """Overwrite an internal node's child list (new root / rebuild)."""
        blob = self.store.blob
        base = self.store.offset(index) + _MB_SLOTS
        for slot, child in enumerate(child_indices):
            _U32.pack_into(blob, base + _MB_CHILD_SLOT * slot, child)
        self._set_count(index, len(child_indices))
        self.set_min_key(index, self.min_key(child_indices[0]))

    def replace_child(self, index: int, old_child: int, pair: tuple[int, int]) -> None:
        """Splice a split child: ``old_child``'s slot becomes ``pair``."""
        blob = self.store.blob
        base = self.store.offset(index) + _MB_SLOTS
        count = self.count(index)
        for slot in range(count):
            off = base + _MB_CHILD_SLOT * slot
            if _U32.unpack_from(blob, off)[0] == old_child:
                end = base + _MB_CHILD_SLOT * count
                blob[off + 2 * _MB_CHILD_SLOT : end + _MB_CHILD_SLOT] = blob[
                    off + _MB_CHILD_SLOT : end
                ]
                _U32.pack_into(blob, off, pair[0])
                _U32.pack_into(blob, off + _MB_CHILD_SLOT, pair[1])
                self._set_count(index, count + 1)
                if slot == 0:
                    self.set_min_key(index, self.min_key(pair[0]))
                return
        raise ReproError("split child not found under its parent record")

    # -- splitting --------------------------------------------------------------

    def split(self, index: int, half: int) -> tuple[int, int]:
        """Split an overflowing node into two fresh records.

        The first ``half`` slots move to a record that inherits the
        original's ``seq`` (it *is* the same logical node, like the
        mutated-in-place object used to be); the rest move to a new
        sibling with a fresh ``seq``.  The original record is freed —
        the next allocation reuses it, which is the free list's steady
        diet during builds.  Digests are the caller's job.
        """
        node_type = self.node_type(index)
        count = self.count(index)
        seq = self.seq(index)
        slot = _MB_LEAF_SLOT if node_type == MB_LEAF else _MB_CHILD_SLOT
        base = self.store.offset(index) + _MB_SLOTS
        head = bytes(self.store.blob[base : base + slot * half])
        tail = bytes(
            self.store.blob[base + slot * half : base + slot * count]
        )
        left_min = self.min_key(index)
        self.store.free(index)

        left = self.store.alloc()
        blob = self.store.blob
        off = self.store.offset(left)
        blob[off + _MB_T] = node_type
        _U32.pack_into(blob, off + _MB_SEQ, seq)
        blob[off + _MB_CNT] = half
        blob[off + _MB_SLOTS : off + _MB_SLOTS + len(head)] = head
        self.seq_map[seq] = left
        self.set_min_key(left, left_min)

        right = self._new_node(node_type)
        blob = self.store.blob
        off = self.store.offset(right)
        blob[off + _MB_CNT] = count - half
        blob[off + _MB_SLOTS : off + _MB_SLOTS + len(tail)] = tail
        if node_type == MB_LEAF:
            self.set_min_key(right, self.leaf_key(right, 0))
        else:
            self.set_min_key(right, self.min_key(self.child(right, 0)))
        return left, right


# ---------------------------------------------------------------------------
# Chameleon layout
# ---------------------------------------------------------------------------

_CH_ID = 0
_CH_CHILD = 8
_CH_HASH = 9
_CH_FIXED = 41


def chameleon_record_size(value_bytes: int) -> int:
    """v1 chameleon record size for a given group-element width."""
    return _CH_FIXED + 3 * value_bytes


class ChameleonStore(TreeView):
    """The chameleon tree's record layout over a :class:`NodeStore`.

    Positions are BFS-contiguous and 1-based, so node ``pos`` is record
    ``pos - 1`` and the store needs neither links nor a free list:
    parents are index arithmetic.  Group elements (commitment and the
    two openings) are fixed-width big-endian integers of ``value_bytes``
    bytes — the on-chain word width — and the invariant root commitment
    ``c_0`` lives in the header's extra region.
    """

    kind = KIND_CHAMELEON

    __slots__ = ()

    @classmethod
    def create(cls, arity: int, value_bytes: int) -> "ChameleonStore":
        """A fresh, empty chameleon store."""
        store = NodeStore(
            KIND_CHAMELEON,
            chameleon_record_size(value_bytes),
            param=arity,
            param2=value_bytes,
            extra_len=value_bytes,
        )
        return cls(store)

    @classmethod
    def from_blob(
        cls, blob: bytes | bytearray | memoryview
    ) -> "ChameleonStore":
        """Load a serialised chameleon store, validating the layout."""
        store = NodeStore.from_blob(blob)
        if store.kind != KIND_CHAMELEON:
            raise IntegrityError("blob does not hold a chameleon store")
        if store.record_size != chameleon_record_size(store.param2):
            raise IntegrityError(
                "chameleon record size disagrees with the stored width"
            )
        if store.extra_len != store.param2:
            raise IntegrityError("chameleon extra region width mismatch")
        return cls(store)

    @property
    def arity(self) -> int:
        """Tree arity recorded in the header."""
        return self.store.param

    @property
    def value_bytes(self) -> int:
        """Group-element width in bytes."""
        return self.store.param2

    @property
    def count(self) -> int:
        """Number of nodes (== the on-chain ``cnt``)."""
        return self.store.allocated

    def _pack_int(self, value: int) -> bytes:
        try:
            return value.to_bytes(self.value_bytes, "big")
        except OverflowError as exc:
            raise ReproError(
                f"group element does not fit in {self.value_bytes} bytes"
            ) from exc

    @property
    def root_commitment(self) -> int:
        """The invariant root commitment ``c_0`` (header extra region)."""
        raw = self.store.blob[HEADER_SIZE : HEADER_SIZE + self.value_bytes]
        return int.from_bytes(raw, "big")

    @root_commitment.setter
    def root_commitment(self, value: int) -> None:
        self.store.blob[HEADER_SIZE : HEADER_SIZE + self.value_bytes] = (
            self._pack_int(value)
        )

    def append(
        self,
        object_id: int,
        object_hash: bytes,
        commitment: int,
        slot1_proof: int,
        parent_link_proof: int,
        child_index: int,
    ) -> int:
        """Append the next node; returns its 1-based position."""
        index = self.store.alloc()
        blob = self.store.blob
        off = self.store.offset(index)
        _U64.pack_into(blob, off + _CH_ID, object_id)
        blob[off + _CH_CHILD] = child_index
        blob[off + _CH_HASH : off + _CH_HASH + 32] = object_hash
        vb = self.value_bytes
        base = off + _CH_FIXED
        blob[base : base + vb] = self._pack_int(commitment)
        blob[base + vb : base + 2 * vb] = self._pack_int(slot1_proof)
        blob[base + 2 * vb : base + 3 * vb] = self._pack_int(parent_link_proof)
        self.store.count = self.store.allocated
        return index + 1

    def object_id(self, pos: int) -> int:
        """Object ID at a 1-based position."""
        return _U64.unpack_from(self.store.blob, self.store.offset(pos - 1))[0]

    def object_hash(self, pos: int) -> bytes:
        """Object hash at a 1-based position."""
        off = self.store.offset(pos - 1) + _CH_HASH
        return bytes(self.store.blob[off : off + 32])

    def child_index(self, pos: int) -> int:
        """1-based child index under the arithmetic parent."""
        return self.store.blob[self.store.offset(pos - 1) + _CH_CHILD]

    def _element(self, pos: int, which: int) -> int:
        vb = self.value_bytes
        off = self.store.offset(pos - 1) + _CH_FIXED + which * vb
        return int.from_bytes(self.store.blob[off : off + vb], "big")

    def commitment(self, pos: int) -> int:
        """Node commitment ``c_pos``."""
        return self._element(pos, 0)

    def slot1_proof(self, pos: int) -> int:
        """Slot-1 opening ``pi_pos``."""
        return self._element(pos, 1)

    def parent_link_proof(self, pos: int) -> int:
        """Parent-link opening ``rho_{par,j}``."""
        return self._element(pos, 2)

    def rank_of(self, target: int) -> int:
        """Number of stored IDs ``<= target`` (IDs are position-sorted)."""
        lo, hi = 1, self.count + 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.object_id(mid) <= target:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1
