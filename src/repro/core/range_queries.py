"""Authenticated range queries over a suppressed Merkle B-tree.

Section IX of the paper notes that the Suppressed Merkle^inv machinery
"can be easily extended to other indexes such as B-tree and R-tree to
support various queries".  This module realises that extension for
one-dimensional range queries over object IDs: a single MB-tree indexes
the whole object stream, the smart contract maintains only its root
hash via ``UpdVO`` update proofs (Algorithms 1–2 unchanged), and the SP
answers ``[lo, hi]`` range queries with a verification object proving
both soundness and completeness:

* every returned entry carries a Merkle path to the on-chain root;
* consecutive returned entries are proven *adjacent*, so nothing inside
  the range was dropped;
* the boundary entries just outside the range (or first/last-entry
  evidence at the tree edges) prove the range's ends are tight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mbtree import (
    DEFAULT_FANOUT,
    Entry,
    MBTree,
    MerklePath,
    paths_adjacent,
)
from repro.core.objects import ObjectMetadata
from repro.core.suppressed import SuppressedMerkleContract
from repro.crypto.hashing import EMPTY_DIGEST, digests_equal
from repro.errors import QueryError, VerificationError
from repro.ethereum.chain import Blockchain, Receipt

#: Keyword under which the primary ID index is registered on-chain.
PRIMARY_INDEX_KEY = "__primary__"


@dataclass(frozen=True)
class RangeEntry:
    """One proven entry of a range result."""

    entry: Entry
    path: MerklePath

    def byte_size(self) -> int:
        """Serialised size in bytes."""
        return 40 + self.path.byte_size()


@dataclass(frozen=True)
class RangeVO:
    """Verification object for an authenticated range query."""

    lo: int
    hi: int
    results: tuple[RangeEntry, ...]
    left_boundary: RangeEntry | None  # largest entry < lo (None at edge)
    right_boundary: RangeEntry | None  # smallest entry > hi (None at edge)

    def byte_size(self) -> int:
        """Serialised size in bytes."""
        total = 16
        total += sum(r.byte_size() for r in self.results)
        for boundary in (self.left_boundary, self.right_boundary):
            if boundary is not None:
                total += boundary.byte_size()
        return total


def range_query(tree: MBTree, lo: int, hi: int) -> tuple[list[Entry], RangeVO]:
    """SP side: entries with ``lo <= key <= hi`` plus the range VO."""
    if lo > hi:
        raise QueryError("empty range: lo must not exceed hi")
    results: list[RangeEntry] = []
    for entry in tree.iter_entries():
        if lo <= entry.key <= hi:
            _, path = tree.prove(entry.key)
            results.append(RangeEntry(entry=entry, path=path))
        elif entry.key > hi:
            break
    # Largest entry strictly below lo; smallest strictly above hi.
    left = tree.boundaries(lo - 1)
    right = tree.boundaries(hi)
    left_boundary = None
    if left.lower is not None:
        left_boundary = RangeEntry(entry=left.lower, path=left.lower_path)
    right_boundary = None
    if right.upper is not None:
        right_boundary = RangeEntry(entry=right.upper, path=right.upper_path)
    vo = RangeVO(
        lo=lo,
        hi=hi,
        results=tuple(results),
        left_boundary=left_boundary,
        right_boundary=right_boundary,
    )
    return [r.entry for r in results], vo


def verify_range(root_hash: bytes, vo: RangeVO) -> list[Entry]:
    """Client side: verify a range VO against the on-chain root.

    Returns the verified entries; raises :class:`VerificationError`
    naming the violated criterion otherwise.
    """
    if vo.lo > vo.hi:
        raise VerificationError("malformed VO: inverted range")
    if digests_equal(root_hash, EMPTY_DIGEST):
        # Empty tree: the only valid answer is the empty one with no
        # boundary evidence.
        if vo.results or vo.left_boundary or vo.right_boundary:
            raise VerificationError("non-empty VO against an empty index")
        return []

    def check_entry(item: RangeEntry, label: str) -> None:
        """Verify one proven entry against the root."""
        if not digests_equal(item.path.compute_root(item.entry), root_hash):
            raise VerificationError(f"{label} fails Merkle verification")

    for item in vo.results:
        check_entry(item, f"result {item.entry.key}")
        if not vo.lo <= item.entry.key <= vo.hi:
            raise VerificationError("result outside the queried range")
    for prev, nxt in zip(vo.results, vo.results[1:]):
        if prev.entry.key >= nxt.entry.key:
            raise VerificationError("results not strictly increasing")
        if not paths_adjacent(prev.path, nxt.path):
            raise VerificationError(
                "gap between consecutive results (missing entries)"
            )

    # Left edge: either a boundary entry < lo adjacent to the first
    # result, or the first result is the tree's first entry; with no
    # results, the boundaries themselves must be adjacent.
    first = vo.results[0] if vo.results else None
    last = vo.results[-1] if vo.results else None
    if vo.left_boundary is not None:
        check_entry(vo.left_boundary, "left boundary")
        if vo.left_boundary.entry.key >= vo.lo:
            raise VerificationError("left boundary not below the range")
        left_anchor = vo.left_boundary
    else:
        left_anchor = None
        if first is not None and not first.path.is_leftmost():
            raise VerificationError(
                "missing left boundary without first-entry evidence"
            )
    if vo.right_boundary is not None:
        check_entry(vo.right_boundary, "right boundary")
        if vo.right_boundary.entry.key <= vo.hi:
            raise VerificationError("right boundary not above the range")
        right_anchor = vo.right_boundary
    else:
        right_anchor = None
        if last is not None and not last.path.is_rightmost():
            raise VerificationError(
                "missing right boundary without last-entry evidence"
            )

    if first is not None:
        if left_anchor is not None and not paths_adjacent(
            left_anchor.path, first.path
        ):
            raise VerificationError("left boundary not adjacent to results")
        if right_anchor is not None and not paths_adjacent(
            last.path, right_anchor.path
        ):
            raise VerificationError("right boundary not adjacent to results")
    else:
        # Empty result: prove the range really is empty.
        if left_anchor is not None and right_anchor is not None:
            if not paths_adjacent(left_anchor.path, right_anchor.path):
                raise VerificationError(
                    "empty range claim with non-adjacent boundaries"
                )
        elif left_anchor is not None:
            if not left_anchor.path.is_rightmost():
                raise VerificationError(
                    "empty range claim without last-entry evidence"
                )
        elif right_anchor is not None:
            if not right_anchor.path.is_leftmost():
                raise VerificationError(
                    "empty range claim without first-entry evidence"
                )
        else:
            raise VerificationError(
                "empty range claim over a non-empty index needs boundaries"
            )
    return [r.entry for r in vo.results]


class AuthenticatedRangeIndex:
    """A complete DO/chain/SP trio for suppressed range queries.

    With ``ordered=True`` (the default) object IDs must arrive in
    increasing order and the contract is the paper's
    :class:`SuppressedMerkleContract` (right-most-spine ``UpdVO``);
    with ``ordered=False`` the stream may be arbitrary and the
    generalised update proofs of
    :mod:`repro.core.suppressed_general` enforce key-correct placement
    on-chain — the Section IX future-work extension.
    """

    def __init__(
        self,
        fanout: int = DEFAULT_FANOUT,
        chain: Blockchain | None = None,
        ordered: bool = True,
    ) -> None:
        self.fanout = fanout
        self.ordered = ordered
        self.chain = chain or Blockchain()
        if ordered:
            self.contract = SuppressedMerkleContract(fanout=fanout)
        else:
            from repro.core.suppressed_general import GeneralSuppressedContract

            self.contract = GeneralSuppressedContract(fanout=fanout)
        self.chain.deploy("range-index", self.contract)
        self.tree = MBTree(fanout=fanout)  # the SP's complete index

    def insert(self, metadata: ObjectMetadata) -> list[Receipt]:
        """DO+SP pipeline for one new object."""
        if self.ordered:
            register = self.chain.send_transaction(
                "do",
                "range-index",
                "register_object",
                metadata.object_id,
                metadata.object_hash,
                metadata.keywords,
                payload=metadata.payload_bytes(),
            )
            from repro.core.suppressed import build_updates, updates_payload

            updates = build_updates(
                {PRIMARY_INDEX_KEY: self.tree},
                metadata.object_id,
                (PRIMARY_INDEX_KEY,),
            )
            update_tx = self.chain.send_transaction(
                "sp",
                "range-index",
                "insert",
                metadata.object_id,
                metadata.object_hash,
                updates,
                payload=updates_payload(updates),
            )
        else:
            from repro.core.suppressed_general import generate_general_update

            register = self.chain.send_transaction(
                "do",
                "range-index",
                "register_object",
                metadata.object_id,
                metadata.object_hash,
                payload=metadata.payload_bytes(),
            )
            proof = generate_general_update(self.tree, metadata.object_id)
            update_tx = self.chain.send_transaction(
                "sp",
                "range-index",
                "insert",
                PRIMARY_INDEX_KEY,
                metadata.object_id,
                metadata.object_id,
                metadata.object_hash,
                proof,
                payload=b"\x00" * proof.byte_size(),
            )
        if update_tx.status:
            self.tree.insert(metadata.object_id, metadata.object_hash)
        self.chain.mine_block()
        return [register, update_tx]

    def query(self, lo: int, hi: int) -> tuple[list[Entry], RangeVO]:
        """SP side: answer ``[lo, hi]`` with a verification object."""
        return range_query(self.tree, lo, hi)

    def verify(self, vo: RangeVO) -> list[Entry]:
        """Client side: check a VO against the on-chain root."""
        root = self.chain.call_view("range-index", "view_root", PRIMARY_INDEX_KEY)
        return verify_range(root, vo)
