"""Durable system state via event-sourced snapshots.

A :class:`HybridStorageSystem` is a deterministic function of its
configuration, its seed and the ordered object stream: key material is
derived from the seed, tree shapes from the stream, gas from the
replayed transactions.  Persistence therefore stores exactly that —
a JSON manifest (configuration + seed) plus an append-friendly JSONL
object log — and restores by replay.  This is the same recovery model
the deployment itself implies (the chain and the DO's stream are the
durable ground truth; SP state is always reconstructible), and it can
never deserialise inconsistent cryptographic state.

Manifest v2 captures the *complete* constructor configuration.  The v1
schema recorded only a subset (omitting ``cvc_modulus_bits`` from the
config map plus ``gas_limit``, ``track_state``, ``verify_cache_size``
and the witness knobs entirely), so a system saved with non-default
values silently restored with defaults — a non-default modulus even
changes key derivation, making every restored digest mismatch.  v1
manifests remain readable; their missing fields load as the defaults
they were (incorrectly but unavoidably) restored with before.

Layout::

    <dir>/manifest.json    configuration and seed
    <dir>/objects.jsonl    one object per line, insertion order
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

from repro.core.nodestore import NODESTORE_VERSION
from repro.core.objects import DataObject
from repro.core.system import HybridStorageSystem
from repro.errors import ReproError

#: Manifest schema version.  v3 adds the node-store format version (the
#: flat-buffer record layout trees persist/snapshot in); v1 and v2
#: manifests are still readable.
MANIFEST_VERSION = 3

#: System constructor arguments captured in a v2 manifest — the full
#: configuration surface (everything except ``seed``, stored top-level,
#: and runtime-only knobs like ``executor`` or ``engine_dir``).
_CONFIG_FIELDS = (
    "fanout",
    "arity",
    "bloom_capacity",
    "filter_bits",
    "cvc_modulus_bits",
    "gas_limit",
    "mine_every",
    "join_order",
    "join_plan",
    "track_state",
    "verify_cache_size",
    "witness_batching",
    "witness_warmer",
    "warm_hot_threshold",
    "shards",
    "engine",
    "pool",
)

#: The v1 subset (plus a top-level ``cvc_modulus_bits``); kept for the
#: backward-compatible reader.
_V1_CONFIG_FIELDS = (
    "fanout",
    "arity",
    "bloom_capacity",
    "filter_bits",
    "join_order",
    "join_plan",
    "mine_every",
)


def _object_to_record(obj: DataObject) -> dict:
    return {
        "id": obj.object_id,
        "keywords": list(obj.keywords),
        "content": base64.b64encode(obj.content).decode("ascii"),
    }


def _record_to_object(record: dict) -> DataObject:
    return DataObject(
        object_id=record["id"],
        keywords=tuple(record["keywords"]),
        content=base64.b64decode(record["content"]),
    )


def save_system(
    system: HybridStorageSystem, directory: str | Path, seed: int
) -> Path:
    """Persist ``system`` (built with ``seed``) under ``directory``.

    The seed must be the one the system was constructed with — replay
    regenerates identical key material from it.  Unseeded systems
    (``seed=None``) are not persistable by replay and are rejected.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest = {
        "version": MANIFEST_VERSION,
        "scheme": system.scheme.value,
        "seed": seed,
        "node_store": NODESTORE_VERSION,
        "config": {
            field: getattr(system, field) for field in _CONFIG_FIELDS
        },
        "object_count": len(system),
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2))
    with (path / "objects.jsonl").open("w") as log:
        for object_id in system.all_object_ids():
            record = _object_to_record(system.get_object(object_id))
            log.write(json.dumps(record) + "\n")
    return path


def _kwargs_from_manifest(manifest: dict) -> dict:
    """Constructor kwargs for either manifest schema version."""
    version = manifest.get("version")
    if version == 1:
        kwargs = {
            field: manifest["config"][field]
            for field in _V1_CONFIG_FIELDS
            if field in manifest.get("config", {})
        }
        if manifest.get("cvc_modulus_bits"):
            # v1 stored the modulus' bit_length, which may be one short
            # of the nominal size; round up to the byte the keygen was
            # called with.
            bits = manifest["cvc_modulus_bits"]
            kwargs["cvc_modulus_bits"] = (bits + 7) // 8 * 8
        return kwargs
    if version == 2:
        # v2 is v3 without the node-store field (object-graph era trees
        # rebuild from the object stream regardless of layout).
        return dict(manifest["config"])
    if version == MANIFEST_VERSION:
        node_store = manifest.get("node_store", NODESTORE_VERSION)
        if node_store > NODESTORE_VERSION:
            raise ReproError(
                f"manifest requires node-store format {node_store}; this "
                f"build supports up to {NODESTORE_VERSION}"
            )
        return dict(manifest["config"])
    raise ReproError(f"unsupported manifest version {version!r}")


def load_system(
    directory: str | Path, engine_dir: str | Path | None = None
) -> HybridStorageSystem:
    """Rebuild a persisted system by replaying its object stream.

    The object log is the durable ground truth; a system saved with
    ``engine="disk"`` restores with in-memory engines unless a fresh
    ``engine_dir`` is supplied for the rebuilt shard journals (pointing
    it at journals from another run would double-apply their records
    during replay).
    """
    path = Path(directory)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise ReproError(f"no manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    kwargs = _kwargs_from_manifest(manifest)
    declared_engine = kwargs.get("engine")
    if declared_engine == "disk":
        if engine_dir is None:
            kwargs["engine"] = "memory"
        else:
            kwargs["engine_dir"] = engine_dir
    system = HybridStorageSystem(
        scheme=manifest["scheme"], seed=manifest["seed"], **kwargs
    )
    if declared_engine is not None and system.engine != declared_engine:
        # The in-memory downgrade is a runtime substitution only; keep
        # the declared engine on the system so a re-save does not
        # rewrite the manifest's configuration.
        system.engine = declared_engine
    objects_path = path / "objects.jsonl"
    count = 0
    if objects_path.exists():
        with objects_path.open() as log:
            for line in log:
                line = line.strip()
                if not line:
                    continue
                system.add_object(_record_to_object(json.loads(line)))
                count += 1
    expected = manifest.get("object_count", count)
    if count != expected:
        raise ReproError(
            f"object log holds {count} records; manifest says {expected}"
        )
    return system
