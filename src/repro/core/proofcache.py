"""Bounded LRU cache for successful proof verifications.

CVC verification costs two multi-hundred-bit modular exponentiations
(one on the fast path) per link — orders of magnitude more than a hash —
and a DNF query re-proves the same ``(digest, entry, proof)`` tuples
across conjuncts, while hot keywords repeat them across queries.  A
:class:`VerificationCache` lets a proof system skip re-verifying a tuple
it has already accepted.

Soundness: only *successful* verifications are cached, and the key must
include **every** input that determines the verdict (the on-chain digest,
the claimed entry, and the full proof object).  A tampered tuple differs
in at least one key component, misses the cache, and is re-verified from
scratch — a cache hit can therefore never mask a failing proof.

Deduplicated multiproofs (v3 VOs) follow the same rule with a structural
token instead of the raw object: their key is ``(root,
TreeMultiproof.cache_token())``, where the token hashes the complete
proof content — heights, per-node slot codes (the gindex partition),
helper digests and the leaf table.  Any tamper changes the token, so a
warmed fold can only ever be replayed for the byte-identical proof
against the same root.

Hits and misses are exported through :mod:`repro.obs` under
``<prefix>.cache_hit`` / ``<prefix>.cache_miss`` (e.g.
``vc.verify.cache_hit``) and mirrored on the instance for callers
without a collector installed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from repro import obs

#: Default number of proven tuples a cache retains.
DEFAULT_CACHE_SIZE = 4096


class CacheKey:
    """A verification-cache key with its hash computed exactly once.

    Cache keys deliberately embed the *full* proof object (soundness —
    see the module docstring), which makes Python's tuple hash walk the
    whole proof.  A bare tuple gets re-hashed by every dict operation
    (`in`, ``move_to_end``, insert, eviction) — for cheap schemes like
    the Merkle index that bookkeeping rivals the verification itself and
    erased the cold-path win.  Wrapping the tuple pins the hash at
    construction so each ``seen``/``add`` round trip hashes the proof
    once instead of four-plus times.

    Unpickling recomputes the hash: ``str`` hashes are salted per
    process, so a carried-over value would corrupt the receiving dict.
    """

    __slots__ = ("parts", "_hash")

    def __init__(self, parts: tuple) -> None:
        self.parts = parts
        self._hash = hash(parts)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CacheKey):
            return self.parts == other.parts
        return NotImplemented

    def __reduce__(self) -> tuple:
        return (CacheKey, (self.parts,))


class VerificationCache:
    """A bounded, thread-safe LRU set of successfully verified tuples.

    ``maxsize <= 0`` disables the cache entirely (every lookup misses
    and nothing is stored), which keeps call sites branch-free.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_CACHE_SIZE,
        metric_prefix: str = "vc.verify",
    ) -> None:
        self.maxsize = maxsize
        self.metric_prefix = metric_prefix
        self._hit_metric = f"{metric_prefix}.cache_hit"
        self._miss_metric = f"{metric_prefix}.cache_miss"
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, None] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, *parts: Hashable) -> CacheKey:
        """Build a hash-consed key; pass the same key to seen and add."""
        return CacheKey(parts)

    def seen(self, key: Hashable) -> bool:
        """Whether ``key`` was verified before; records the hit/miss."""
        if self.maxsize <= 0:
            with self._lock:
                self.misses += 1
            obs.inc(self._miss_metric)
            return False
        with self._lock:
            present = key in self._entries
            if present:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        obs.inc(self._hit_metric if present else self._miss_metric)
        return present

    def add(self, key: Hashable) -> None:
        """Record a tuple that verified successfully."""
        if self.maxsize <= 0:
            return
        with self._lock:
            self._entries[key] = None
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached tuple and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __getstate__(self) -> dict:
        # Locks cannot cross process boundaries; the worker gets a copy
        # of the entries and a fresh lock.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
