"""The Chameleon^inv index (Section V): constant on-chain maintenance.

Per keyword the smart contract holds only the invariant root commitment
``c_0`` (written once at keyword setup) and the object count ``cnt``
(one ``C_supdate`` per insertion) — the ``O(L * C_1)`` constant cost of
Table II.  The data owner performs all the cryptographic work off-chain
(Algorithm 4) and streams insertion proofs to the SP; the DO's single
transaction per object updates the counts of all its keywords.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.chameleon import (
    DEFAULT_ARITY,
    ChameleonTreeDO,
    ChameleonTreeSP,
    MembershipProof,
    verify_membership,
)
from repro.core.objects import ObjectMetadata
from repro.core.proofcache import VerificationCache
from repro.core.query.vo import ProvenEntry
from repro.crypto import vc
from repro.crypto.bloom import BloomFilterChain
from repro.crypto.hashing import DIGEST_SIZE
from repro.errors import ReproError, VerificationError
from repro.ethereum.contract import SmartContract


def commitment_to_words(value: int, value_bytes: int) -> list[bytes]:
    """Split a group element into 32-byte storage words."""
    raw = value.to_bytes(value_bytes, "big")
    return [raw[i : i + DIGEST_SIZE] for i in range(0, len(raw), DIGEST_SIZE)]


def words_to_commitment(words: list[bytes]) -> int:
    """Reassemble a group element from storage words."""
    return int.from_bytes(b"".join(words), "big")


@dataclass(frozen=True)
class CountUpdate:
    """One keyword's new count inside the DO's update transaction."""

    keyword: str
    count: int


class ChameleonContract(SmartContract):
    """On-chain side of the Chameleon^inv index."""

    def __init__(self, value_bytes: int = 128) -> None:
        super().__init__()
        self.value_bytes = value_bytes

    def setup_keyword(self, keyword: str, commitment: int) -> None:
        """Store a new keyword's invariant root commitment ``c_0``.

        Paid once per keyword; the commitment spans several words.
        """
        words = commitment_to_words(commitment, self.value_bytes)
        self.env.read_calldata(b"".join(words))
        for i, word in enumerate(words):
            self.storage.store(("c0", keyword, i), word)
        self.storage.store(("c0words", keyword), len(words))
        self.emit("KeywordSetup", keyword=keyword)

    def insert_object(
        self,
        object_id: int,
        object_hash: bytes,
        updates: list[CountUpdate],
        new_keywords: list[tuple[str, int]] = (),
    ) -> None:
        """DO entry point: register meta-data and bump every count.

        First-seen keywords piggyback their one-time ``c_0`` setup on the
        same transaction via ``new_keywords``.
        """
        with obs.span("maintain.ci.insert", keywords=len(updates)):
            self.env.read_calldata(object_hash)
            self.storage.store(("objhash", object_id), object_hash)
            for keyword, commitment in new_keywords:
                self.setup_keyword(keyword, commitment)
            for update in updates:
                self.storage.store(("cnt", update.keyword), update.count)
            self.emit(
                "ObjectInserted", object_id=object_id, keywords=len(updates)
            )

    def insert_objects(self, batch: list[tuple]) -> None:
        """Batched DO entry point: many objects in one transaction.

        Each batch item is ``(object_id, object_hash, updates,
        new_keywords)``.  Per-object work is identical to
        :meth:`insert_object`; the 21,000-gas transaction base cost is
        paid once for the whole batch — the amortisation studied by the
        batch-size ablation.
        """
        for object_id, object_hash, updates, new_keywords in batch:
            self.insert_object(object_id, object_hash, updates, new_keywords)
        self.emit("BatchInserted", count=len(batch))

    # -- free views --------------------------------------------------------------

    def view_digest(self, keyword: str) -> tuple[int | None, int]:
        """``<c_0, cnt>`` for one keyword (``None`` if never set up)."""
        n_words = self.storage.peek_int(("c0words", keyword))
        if n_words == 0:
            return None, 0
        words = [
            self.storage.peek(("c0", keyword, i)) for i in range(n_words)
        ]
        count = self.storage.peek_int(("cnt", keyword))
        return words_to_commitment(words), count

    def view_object_hash(self, object_id: int) -> bytes:
        """Free view: the registered hash of one object."""
        return self.storage.peek(("objhash", object_id))


class ChameleonDataOwner:
    """DO-side state for the whole Chameleon^inv index.

    Owns the CVC trapdoor and PRF key; lazily creates one
    :class:`ChameleonTreeDO` per keyword and emits the insertion proofs
    the SP needs plus the count updates the chain needs.
    """

    def __init__(
        self,
        cvc: vc.ChameleonVectorCommitment,
        prf_key: bytes,
        arity: int = DEFAULT_ARITY,
    ) -> None:
        if not cvc.has_trapdoor:
            raise ReproError("the data owner requires the CVC trapdoor")
        self.cvc = cvc
        self.prf_key = prf_key
        self.arity = arity
        self.trees: dict[str, ChameleonTreeDO] = {}

    def tree_for(self, keyword: str) -> tuple[ChameleonTreeDO, bool]:
        """The keyword's DO tree; second element marks first use."""
        created = keyword not in self.trees
        if created:
            self.trees[keyword] = ChameleonTreeDO(
                self.cvc, self.prf_key, keyword, arity=self.arity
            )
        return self.trees[keyword], created

    def insert(self, metadata: ObjectMetadata):
        """Run Algorithm 4 for every keyword of a new object.

        Returns ``(insertion_proofs, count_updates, new_keywords)`` where
        ``new_keywords`` maps first-seen keywords to their ``c_0``.
        """
        proofs = {}
        counts = []
        new_keywords = {}
        for keyword in metadata.keywords:
            tree, created = self.tree_for(keyword)
            if created:
                new_keywords[keyword] = tree.root_commitment
            proofs[keyword] = tree.insert(
                metadata.object_id, metadata.object_hash
            )
            counts.append(CountUpdate(keyword=keyword, count=tree.count))
        return proofs, counts, new_keywords

    def insert_many(self, metadatas: list[ObjectMetadata], scheduler=None):
        """Batched Algorithm 4: stage all collisions, batch the openings.

        Per metadata, returns the same ``(proofs, counts, new_keywords)``
        triple as :meth:`insert` — with byte-identical witnesses, since
        chameleon openings do not depend on the aux state they are
        computed from.  The win is in *how* they are computed: all
        collisions are applied first, then every opening request is
        routed through a :class:`~repro.sp.scheduler.WitnessScheduler`
        (one is created if not supplied), which groups the requests per
        commitment — a node inserted in this batch that also gained
        children needs several slots of one commitment — and computes
        each group with a single divide-and-conquer pass.
        """
        if scheduler is None:
            # Imported lazily: repro.sp imports this module at load time.
            from repro.sp.scheduler import WitnessScheduler, tree_aux_source

            scheduler = WitnessScheduler(tree_aux_source(self), self.cvc.pp)
        staged_batch = []
        with obs.span("do.insert_many", objects=len(metadatas)):
            for metadata in metadatas:
                staged = {}
                counts = []
                new_keywords = {}
                for keyword in metadata.keywords:
                    tree, created = self.tree_for(keyword)
                    if created:
                        new_keywords[keyword] = tree.root_commitment
                    record = tree.stage_insert(
                        metadata.object_id, metadata.object_hash
                    )
                    pi_future = scheduler.request(keyword, record.position, 1)
                    rho_future = scheduler.request(
                        keyword, record.parent_position, record.child_index + 1
                    )
                    staged[keyword] = (record, pi_future, rho_future)
                    counts.append(
                        CountUpdate(keyword=keyword, count=tree.count)
                    )
                staged_batch.append((staged, counts, new_keywords))
            scheduler.flush()
            results = []
            for staged, counts, new_keywords in staged_batch:
                proofs = {
                    keyword: record.to_proof(
                        pi_future.result(), rho_future.result()
                    )
                    for keyword, (record, pi_future, rho_future) in staged.items()
                }
                results.append((proofs, counts, new_keywords))
        return results

    def snapshot(self, keywords) -> dict:
        """Capture the state of every tree touched by ``keywords``.

        ``None`` marks a keyword whose tree does not exist yet, so
        :meth:`restore` can delete trees created after the snapshot.
        """
        snap: dict[str, tuple | None] = {}
        for keyword in keywords:
            tree = self.trees.get(keyword)
            snap[keyword] = None if tree is None else tree.snapshot()
        return snap

    def restore(self, snap: dict) -> None:
        """Roll the owner back to a :meth:`snapshot` (failed receipt)."""
        for keyword, state in snap.items():
            if state is None:
                self.trees.pop(keyword, None)
            elif keyword in self.trees:
                self.trees[keyword].restore(state)


@dataclass
class ChameleonView:
    """IndexView adapter over one keyword's SP-side Chameleon tree.

    ``bloom`` is populated only by the starred variant; when set, the
    join engine can skip probes for IDs the on-chain filters prove
    absent.
    """

    keyword: str
    tree: ChameleonTreeSP
    bloom: BloomFilterChain | None = None

    def __len__(self) -> int:
        return self.tree.count

    def first_proven(self) -> ProvenEntry | None:
        """The smallest entry with proof, or None when empty."""
        pair = self.tree.first()
        if pair is None:
            return None
        entry, proof = pair
        return ProvenEntry(
            object_id=entry.key, object_hash=entry.value_hash, proof=proof
        )

    def boundaries_proven(
        self, target: int
    ) -> tuple[ProvenEntry | None, ProvenEntry | None]:
        """Boundary entries with proofs around a target."""
        search = self.tree.boundaries(target)
        lower = None
        upper = None
        if search.lower is not None:
            lower = ProvenEntry(
                object_id=search.lower.key,
                object_hash=search.lower.value_hash,
                proof=search.lower_proof,
            )
        if search.upper is not None:
            upper = ProvenEntry(
                object_id=search.upper.key,
                object_hash=search.upper.value_hash,
                proof=search.upper_proof,
            )
        return lower, upper

    def all_proven(self) -> list[ProvenEntry]:
        """Every entry with proof, in key order."""
        return [
            ProvenEntry(
                object_id=entry.key, object_hash=entry.value_hash, proof=proof
            )
            for entry, proof in self.tree.all_entries()
        ]

    def definitely_absent(self, object_id: int) -> bool:
        """Whether on-chain filters prove the ID absent."""
        if self.bloom is None:
            return False
        return self.bloom.definitely_absent(object_id)


@dataclass
class ChameleonSP:
    """The SP's complete Chameleon^inv index."""

    pp: vc.CVCPublicParams
    arity: int = DEFAULT_ARITY
    trees: dict[str, ChameleonTreeSP] = field(default_factory=dict)

    @property
    def _value_bytes(self) -> int:
        """Group-element width for this modulus."""
        return (self.pp.modulus.bit_length() + 7) // 8

    def register_keyword(self, keyword: str, root_commitment: int) -> None:
        """Register a keyword's root commitment."""
        if keyword not in self.trees:
            self.trees[keyword] = ChameleonTreeSP(
                root_commitment,
                arity=self.arity,
                value_bytes=self._value_bytes,
            )

    def apply_insertion(self, keyword: str, proof) -> None:
        """Ingest one DO insertion proof."""
        if keyword not in self.trees:
            raise ReproError(f"keyword {keyword!r} was never set up")
        with obs.span("sp.index.apply"):
            self.trees[keyword].apply_insertion(proof)

    def view(self, keyword: str) -> ChameleonView:
        """The join engine's IndexView for one keyword."""
        tree = self.trees.get(keyword)
        if tree is None:
            # Unknown keyword: an empty placeholder (len == 0 routes the
            # join engine to the emptiness short-circuit).
            tree = ChameleonTreeSP(
                root_commitment=0,
                arity=self.arity,
                value_bytes=self._value_bytes,
            )
        return ChameleonView(keyword=keyword, tree=tree)


@dataclass
class ChameleonProofSystem:
    """Client verifier for CVC membership VOs (Algorithm 6 checks).

    ``digests`` binds each queried keyword to its on-chain ``<c_0, cnt>``;
    ``blooms`` (starred variant only) carries the on-chain Bloom filter
    snapshots used to validate skip rounds.

    ``cache``, when set, memoises *successful* entry verifications keyed
    on the complete proven tuple — the on-chain digest, the claimed
    entry, and the full proof — so repeated entries across conjuncts and
    queries pay the CVC exponentiations once.  Any tampered component
    changes the key, misses, and re-verifies (and fails) from scratch.
    """

    pp: vc.CVCPublicParams
    digests: dict[str, tuple[int | None, int]]
    arity: int = DEFAULT_ARITY
    blooms: dict[str, BloomFilterChain] | None = None
    value_bytes: int = 128
    cache: VerificationCache | None = None

    def _digest(self, keyword: str) -> tuple[int | None, int]:
        return self.digests.get(keyword, (None, 0))

    def verify_entry(self, keyword: str, entry: ProvenEntry) -> None:
        """Authenticate one proven entry; raises on failure."""
        proof = entry.proof
        if not isinstance(proof, MembershipProof):
            raise VerificationError("expected a CVC membership proof")
        commitment, count = self._digest(keyword)
        if commitment is None:
            raise VerificationError(
                f"keyword {keyword!r} has no on-chain commitment"
            )
        key = None
        if self.cache is not None:
            key = self.cache.key(
                self.pp.modulus,
                commitment,
                count,
                self.arity,
                entry.object_id,
                entry.object_hash,
                proof,
            )
            if self.cache.seen(key):
                return
        verify_membership(
            self.pp,
            commitment,
            count,
            self.arity,
            entry.object_id,
            entry.object_hash,
            proof,
        )
        if self.cache is not None:
            self.cache.add(key)

    def is_first(self, keyword: str, entry: ProvenEntry) -> bool:
        """Whether the entry is provably the tree's first."""
        proof = entry.proof
        return isinstance(proof, MembershipProof) and proof.position == 1

    def is_last(self, keyword: str, entry: ProvenEntry) -> bool:
        """Whether the entry is provably the tree's last."""
        proof = entry.proof
        _, count = self._digest(keyword)
        return isinstance(proof, MembershipProof) and proof.position == count

    def adjacent(
        self, keyword: str, lower: ProvenEntry, upper: ProvenEntry
    ) -> bool:
        """Whether two verified entries are consecutive."""
        lp, up = lower.proof, upper.proof
        if not isinstance(lp, MembershipProof) or not isinstance(
            up, MembershipProof
        ):
            return False
        return up.position == lp.position + 1

    def keyword_empty(self, keyword: str) -> bool:
        """Whether VO_chain shows the keyword's tree empty."""
        commitment, count = self._digest(keyword)
        return commitment is None or count == 0

    def definitely_absent(self, keyword: str, object_id: int) -> bool:
        """Whether on-chain filters prove the ID absent."""
        if self.blooms is None or keyword not in self.blooms:
            return False
        return self.blooms[keyword].definitely_absent(object_id)

    def chain_digest_bytes(self) -> int:
        """``VO_chain`` size: ``c_0`` + ``cnt`` per keyword, plus filters."""
        total = len(self.digests) * (self.value_bytes + 8)
        if self.blooms is not None:
            for chain in self.blooms.values():
                total += len(chain) * (32 + 8)
        return total
