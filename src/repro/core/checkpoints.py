"""Signed digest checkpoints for offline clients.

In the base system model the client reads ``VO_chain`` from the
blockchain.  Light or offline clients may instead rely on *checkpoints*:
the data owner periodically signs a snapshot of the authenticated
digests (per-keyword root hashes or ``<c_0, cnt>`` pairs) bound to a
block height with an RSA-FDH signature.  Anyone holding the DO's public
key can then verify query answers against a checkpoint without chain
access — at the cost of freshness being bounded by the checkpoint
interval (a stale checkpoint verifies answers as of *its* height).

This mirrors the classical "DO signs the ADS root" deployment of
authenticated query processing [7, 8] layered onto the paper's system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha3
from repro.crypto.signatures import PublicKey, SigningKey
from repro.errors import VerificationError


def _canonical_digest_blob(height: int, digests: dict[str, bytes]) -> bytes:
    """Deterministic byte encoding of a digest snapshot."""
    parts = [b"checkpoint", height.to_bytes(8, "big")]
    for keyword in sorted(digests):
        encoded = keyword.encode("utf-8")
        parts.append(len(encoded).to_bytes(2, "big"))
        parts.append(encoded)
        value = digests[keyword]
        parts.append(len(value).to_bytes(2, "big"))
        parts.append(value)
    return sha3(b"".join(parts))


@dataclass(frozen=True)
class Checkpoint:
    """A signed snapshot of authenticated digests at one block height."""

    height: int
    digests: dict[str, bytes]
    signature: int

    def digest_for(self, keyword: str) -> bytes | None:
        """The digest recorded for one keyword."""
        return self.digests.get(keyword)

    def byte_size(self) -> int:
        """Serialised size in bytes."""
        payload = sum(
            len(k.encode()) + len(v) + 4 for k, v in self.digests.items()
        )
        return 8 + payload + 128


class CheckpointIssuer:
    """DO side: signs digest snapshots."""

    def __init__(self, signing_key: SigningKey) -> None:
        self._key = signing_key

    @property
    def public_key(self) -> PublicKey:
        """The matching verification key."""
        return self._key.public_key

    def issue(self, height: int, digests: dict[str, bytes]) -> Checkpoint:
        """Sign a snapshot of digests taken at ``height``."""
        blob = _canonical_digest_blob(height, digests)
        return Checkpoint(
            height=height,
            digests=dict(digests),
            signature=self._key.sign(blob),
        )


class CheckpointVerifier:
    """Client side: validates checkpoints against the DO's public key."""

    def __init__(self, public_key: PublicKey) -> None:
        self._key = public_key
        self._latest: Checkpoint | None = None

    @property
    def latest(self) -> Checkpoint | None:
        """The most recently accepted checkpoint, or None."""
        return self._latest

    def accept(self, checkpoint: Checkpoint) -> None:
        """Verify a checkpoint's signature and monotonic height."""
        blob = _canonical_digest_blob(checkpoint.height, checkpoint.digests)
        if not self._key.verify(blob, checkpoint.signature):
            raise VerificationError("checkpoint signature invalid")
        if self._latest is not None and checkpoint.height < self._latest.height:
            raise VerificationError(
                "checkpoint height regression (possible rollback attack)"
            )
        self._latest = checkpoint

    def digest_for(self, keyword: str) -> bytes:
        """The latest accepted digest for ``keyword``."""
        if self._latest is None:
            raise VerificationError("no checkpoint accepted yet")
        value = self._latest.digests.get(keyword)
        if value is None:
            raise VerificationError(
                f"checkpoint carries no digest for keyword {keyword!r}"
            )
        return value
