"""Suppressed MB-tree maintenance for NON-monotonic keys.

Section IX lists, as future work, extending the suppressed-index idea
to "objects [whose keys] are not monotonically increment".  For the
*Chameleon* tree this is genuinely hard — a key-ordered linked list
threaded through CVC slots is insecure because trapdoor commitments
admit *stale openings*: after the DO re-points a predecessor's
successor slot, the old opening still verifies, so a malicious SP could
present the pre-update pointer and hide results (see DESIGN.md §5b).

For the *Suppressed Merkle* index, however, the extension is sound and
is implemented here.  The SP's update proof generalises from the
right-most spine to the full insertion path, and the smart contract
enforces — entirely with cheap memory/hash operations — that:

1. the path folds to the stored root (integrity of the proof);
2. the insertion lands at the *key-correct* position: within the leaf,
   neighbours bracket the key; at leaf edges, the proof carries the
   global predecessor/successor entry with a Merkle path, and the
   contract checks positional *adjacency* so the SP cannot route the
   insertion into a wrong leaf and later hide results behind a
   misordered tree;
3. the recomputed root (with ``ceil((F+1)/2)`` splits cascading up the
   path) replaces the stored root with a single ``C_supdate``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mbtree import (
    DEFAULT_FANOUT,
    Entry,
    HashFn,
    MBTree,
    MerklePath,
    PathStep,
    entry_payload,
    leaf_payload,
    node_payload,
    paths_adjacent,
)
from repro.crypto.hashing import EMPTY_DIGEST, digests_equal, sha3, word_count
from repro.errors import IntegrityError, ReproError
from repro.ethereum.contract import SmartContract


@dataclass(frozen=True)
class NeighbourProof:
    """A global predecessor/successor entry with its Merkle path."""

    entry: Entry
    path: MerklePath

    def byte_size(self) -> int:
        """Serialised size in bytes."""
        return 40 + self.path.byte_size()


@dataclass(frozen=True)
class GeneralUpdateProof:
    """The generalised ``UpdVO``: the full insertion path.

    ``levels`` lists, top-down, each internal node on the path as
    ``(followed_child_index, all_child_digests)``; ``leaf_entries``
    holds the target leaf's complete entries (keys included, so the
    contract can check ordering); ``insert_index`` is where the new key
    goes.  ``predecessor``/``successor`` are required exactly when the
    insertion touches the leaf's edge and the tree extends beyond it.
    """

    levels: tuple[tuple[int, tuple[bytes, ...]], ...]
    leaf_entries: tuple[Entry, ...]
    insert_index: int
    predecessor: NeighbourProof | None = None
    successor: NeighbourProof | None = None

    def byte_size(self) -> int:
        """Serialised size in bytes."""
        total = 4
        for _, digests in self.levels:
            total += 1 + 32 * len(digests)
        total += 40 * len(self.leaf_entries)
        for neighbour in (self.predecessor, self.successor):
            if neighbour is not None:
                total += neighbour.byte_size()
        return total

    def leaf_entry_path(self, entry_index: int) -> MerklePath:
        """The Merkle path of ``leaf_entries[entry_index]`` (pre-insert)."""
        entry_digests = [e.digest() for e in self.leaf_entries]
        steps = [
            PathStep(
                index=entry_index,
                before=tuple(entry_digests[:entry_index]),
                after=tuple(entry_digests[entry_index + 1 :]),
            )
        ]
        for followed, digests in reversed(self.levels):
            steps.append(
                PathStep(
                    index=followed,
                    before=tuple(digests[:followed]),
                    after=tuple(digests[followed + 1 :]),
                )
            )
        return MerklePath(steps=tuple(steps))

    def path_is_leftmost(self) -> bool:
        """True when the path hugs the left tree edge."""
        return all(followed == 0 for followed, _ in self.levels)

    def path_is_rightmost(self) -> bool:
        """True when the path hugs the right tree edge."""
        return all(
            followed == len(digests) - 1 for followed, digests in self.levels
        )


def generate_general_update(tree: MBTree, key: int) -> GeneralUpdateProof:
    """SP side: build the generalised ``UpdVO`` for inserting ``key``.

    Must be called before applying the insertion to the mirror tree.
    """
    if digests_equal(tree.root_hash, EMPTY_DIGEST):
        return GeneralUpdateProof(levels=(), leaf_entries=(), insert_index=0)
    view = tree.store
    node = view.store.root
    levels: list[tuple[int, tuple[bytes, ...]]] = []
    while not view.is_leaf(node):
        width = view.count(node)
        child_index = width - 1
        for i in range(1, width):
            if key < view.min_key(view.child(node, i)):
                child_index = i - 1
                break
        levels.append((child_index, tuple(view.child_digests(node))))
        node = view.child(node, child_index)
    entries = tuple(
        Entry(key=view.leaf_key(node, s), value_hash=view.leaf_value_hash(node, s))
        for s in range(view.count(node))
    )
    insert_index = 0
    for i, entry in enumerate(entries):
        if entry.key == key:
            raise ReproError(f"duplicate key {key}")
        if entry.key < key:
            insert_index = i + 1
    predecessor = None
    successor = None
    if insert_index == 0:
        search = tree.boundaries(key)
        if search.lower is not None:
            predecessor = NeighbourProof(
                entry=search.lower, path=search.lower_path
            )
    if insert_index == len(entries):
        search = tree.boundaries(key)
        if search.upper is not None:
            successor = NeighbourProof(
                entry=search.upper, path=search.upper_path
            )
    return GeneralUpdateProof(
        levels=tuple(levels),
        leaf_entries=entries,
        insert_index=insert_index,
        predecessor=predecessor,
        successor=successor,
    )


def verify_and_update_root(
    proof: GeneralUpdateProof,
    key: int,
    value_hash: bytes,
    stored_root: bytes,
    fanout: int,
    hash_fn: HashFn = sha3,
) -> bytes:
    """Contract side: validate the proof and return the new root.

    Raises :class:`IntegrityError` on any inconsistency; pure function
    over an injectable hash so the contract can meter every digest.
    """
    # -- empty tree bootstrap ---------------------------------------------------
    if not proof.leaf_entries and not proof.levels:
        if not digests_equal(stored_root, EMPTY_DIGEST):
            raise IntegrityError("empty-tree proof against a non-empty root")
        new_entry = hash_fn(entry_payload(key, value_hash))
        return hash_fn(leaf_payload((new_entry,)))

    # -- 1. the path must fold to the stored root -------------------------------
    entry_digests = [
        hash_fn(entry_payload(e.key, e.value_hash)) for e in proof.leaf_entries
    ]
    current = hash_fn(leaf_payload(entry_digests))
    for followed, digests in reversed(proof.levels):
        if not 0 <= followed < len(digests):
            raise IntegrityError("path index out of range")
        if not digests_equal(digests[followed], current):
            raise IntegrityError("path digest mismatch along the UpdVO")
        current = hash_fn(node_payload(digests))
    if not digests_equal(current, stored_root):
        raise IntegrityError("UpdVO does not match the stored root hash")

    # -- 2. ordering: the insertion must be key-correct -------------------------
    i = proof.insert_index
    entries = proof.leaf_entries
    if not 0 <= i <= len(entries):
        raise IntegrityError("insertion index out of range")
    for prev, nxt in zip(entries, entries[1:]):
        if prev.key >= nxt.key:
            raise IntegrityError("leaf entries are not strictly sorted")
    if i > 0 and entries[i - 1].key >= key:
        raise IntegrityError("new key does not follow its leaf predecessor")
    if i < len(entries) and entries[i].key <= key:
        raise IntegrityError("new key does not precede its leaf successor")
    if i == 0:
        if proof.predecessor is not None:
            pred = proof.predecessor
            if pred.entry.key >= key:
                raise IntegrityError("global predecessor does not precede key")
            if not digests_equal(pred.path.compute_root(pred.entry), stored_root):
                raise IntegrityError("predecessor path fails verification")
            first_path = proof.leaf_entry_path(0)
            if not paths_adjacent(pred.path, first_path):
                raise IntegrityError(
                    "predecessor is not adjacent to the target leaf "
                    "(insertion routed to the wrong leaf)"
                )
        elif not proof.path_is_leftmost():
            raise IntegrityError(
                "edge insertion without a predecessor requires the "
                "globally leftmost path"
            )
    if i == len(entries):
        if proof.successor is not None:
            succ = proof.successor
            if succ.entry.key <= key:
                raise IntegrityError("global successor does not follow key")
            if not digests_equal(succ.path.compute_root(succ.entry), stored_root):
                raise IntegrityError("successor path fails verification")
            last_path = proof.leaf_entry_path(len(entries) - 1)
            if not paths_adjacent(last_path, succ.path):
                raise IntegrityError(
                    "successor is not adjacent to the target leaf "
                    "(insertion routed to the wrong leaf)"
                )
        elif not proof.path_is_rightmost():
            raise IntegrityError(
                "edge insertion without a successor requires the "
                "globally rightmost path"
            )

    # -- 3. recompute the new root with cascading splits ------------------------
    half = (fanout + 2) // 2
    new_entry = hash_fn(entry_payload(key, value_hash))
    new_digests = entry_digests[:i] + [new_entry] + entry_digests[i:]
    if len(new_digests) > fanout:
        carry = [
            hash_fn(leaf_payload(new_digests[:half])),
            hash_fn(leaf_payload(new_digests[half:])),
        ]
    else:
        carry = [hash_fn(leaf_payload(new_digests))]
    for followed, digests in reversed(proof.levels):
        children = list(digests[:followed]) + carry + list(digests[followed + 1 :])
        if len(children) > fanout:
            carry = [
                hash_fn(node_payload(children[:half])),
                hash_fn(node_payload(children[half:])),
            ]
        else:
            carry = [hash_fn(node_payload(children))]
    if len(carry) == 2:
        return hash_fn(node_payload(carry))
    return carry[0]


class GeneralSuppressedContract(SmartContract):
    """On-chain side: suppressed roots with arbitrary-key insertions."""

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        super().__init__()
        self.fanout = fanout

    def register_object(self, object_id: int, object_hash: bytes) -> None:
        """DO entry point: record the object's hash."""
        self.env.read_calldata(object_hash)
        self.storage.store(("objhash", object_id), object_hash)
        self.emit("ObjectRegistered", object_id=object_id)

    def insert(
        self,
        index_name: str,
        key: int,
        object_id: int,
        object_hash: bytes,
        proof: GeneralUpdateProof,
    ) -> None:
        """Validate a generalised ``UpdVO`` and update the root."""
        registered = self.storage.load(("objhash", object_id))
        if not digests_equal(registered, object_hash):
            self.emit("InvalidUpdVO", object_id=object_id, reason="hash")
            raise IntegrityError(
                "object hash does not match the DO's registration"
            )
        stored_root = self.storage.load(("root", index_name))
        new_root = verify_and_update_root(
            proof, key, object_hash, stored_root, self.fanout,
            hash_fn=self._hash,
        )
        self.storage.store(("root", index_name), new_root)
        self.emit("SuccessfulUpdate", object_id=object_id, key=key)

    def _hash(self, payload: bytes) -> bytes:
        self.env.touch_memory(word_count(payload))
        return self.env.keccak(payload)

    def view_root(self, index_name: str) -> bytes:
        """Free view: the keyword tree's on-chain root hash."""
        return self.storage.peek(("root", index_name))
