"""Merkle multiproofs: one deduplicated proof per tree per query.

A DNF answer that references ``k`` entries of one MB-tree ships ``k``
independent :class:`~repro.core.mbtree.MerklePath` objects whose sibling
digests overlap almost entirely — the dominant VO cost in the paper's
high-selectivity regime (Figs. 11/12).  This module replaces them with a
single :class:`TreeMultiproof` per ``(tree, commitment)``: the shared
siblings are deduplicated, every proven entry is recovered from one
upward fold, and the entry *positions* (the generalized indices the
boundary-adjacency checks need) come out of the same walk for free.

Generalized indices
-------------------
The ethereum/consensus-specs multiproof format addresses binary-tree
nodes by ``gindex = 2**depth + index``.  MB-trees are multi-way with
per-node child counts, so the binary gindex generalizes to a mixed-radix
fold over the root-to-leaf *gpath* (the child index chosen at each
level) and the per-level node *widths*::

    g = 1
    for index, width in zip(gpath, widths):
        g = g * width + index

which reduces to ``2**depth + index`` exactly when every width is 2.
The widths are authenticated: a node's digest hashes the concatenation
of *all* its children, so the verifier's fold fails unless the claimed
slot count matches the committed one.

Wire shape
----------
A :class:`TreeMultiproof` lists the proof's *cover nodes* in DFS
pre-order; each node is a tuple of per-slot codes (``SLOT_HELPER`` — a
supplied sibling digest, ``SLOT_DESCEND`` — the next DFS node,
``SLOT_LEAF`` — a proven ``<id, h(o)>`` entry), with the helper digests
and the leaf entries carried in DFS order.  Verification is a
stack-machine fold (:meth:`TreeMultiproof.fold_root`): structurally
malformed proofs — codes out of place, leftover or missing helpers,
descend below the leaf level — raise
:class:`~repro.errors.VerificationError` before any root comparison.

Construction (:func:`build_multiproofs` / :func:`compress_query_vo`)
runs on the SP after the per-conjunct VOs are gathered in call order, so
the compressed VO is deterministic for any shard count or pool mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mbtree import MerklePath, entry_digest, leaf_digest, node_digest
from repro.core.query.vo import (
    ConjunctiveVO,
    FullScanVO,
    JoinRound,
    MultiWayJoinVO,
    ProvenEntry,
    QueryVO,
    SemiJoinProbe,
    SemiJoinStage,
)
from repro.crypto.hashing import tagged_hash
from repro.errors import ReproError, VerificationError

#: Slot codes of one cover node, in child order.
SLOT_HELPER = 0  #: sibling digest supplied in the helper list
SLOT_DESCEND = 1  #: child is the next cover node in DFS order
SLOT_LEAF = 2  #: proven entry supplied in the leaf list (leaf level only)

_TOKEN_TAG = "repro/merkle-multiproof-token"


def leaf_gindex(gpath: tuple[int, ...], widths: tuple[int, ...]) -> int:
    """Mixed-radix generalized index of a leaf (root-to-leaf addressing).

    Equals the consensus-specs ``2**depth + index`` when every node
    width is 2; distinct ``(gpath, widths)`` pairs of one tree map to
    distinct integers because each level's digit is bounded by its
    width.
    """
    if len(gpath) != len(widths):
        raise ReproError("gpath and widths must have equal length")
    g = 1
    for index, width in zip(gpath, widths):
        if not 0 <= index < width:
            raise ReproError(f"gpath digit {index} out of range for width {width}")
        g = g * width + index
    return g


def compute_multiproof_indices(
    leaf_gpaths: list[tuple[int, ...]],
    leaf_widths: list[tuple[int, ...]],
) -> dict[tuple[int, ...], int]:
    """Partition the cover nodes' slots into helper/descend/leaf codes.

    Given the proven leaves' gpaths and per-level widths, returns a map
    from each cover-node *slot* (addressed by its gpath prefix, the
    root's slots being length-1 prefixes) to its slot code.  The cover
    is minimal: a slot is ``SLOT_DESCEND`` when some proven leaf passes
    through it above the leaf level, ``SLOT_LEAF`` when it *is* a proven
    leaf, and ``SLOT_HELPER`` otherwise.
    """
    if len(leaf_gpaths) != len(leaf_widths):
        raise ReproError("one widths tuple is required per leaf gpath")
    if not leaf_gpaths:
        raise ReproError("a multiproof needs at least one proven leaf")
    height = len(leaf_gpaths[0])
    on_path: set[tuple[int, ...]] = set()
    node_width: dict[tuple[int, ...], int] = {}
    for gpath, widths in zip(leaf_gpaths, leaf_widths):
        if len(gpath) != height or len(widths) != height:
            raise ReproError("all leaves of one tree must share the path depth")
        for level in range(height):
            node = gpath[:level]
            width = widths[level]
            known = node_width.setdefault(node, width)
            if known != width:
                raise ReproError(
                    f"conflicting widths {known} vs {width} for node {node}"
                )
            on_path.add(gpath[: level + 1])
    codes: dict[tuple[int, ...], int] = {}
    for node, width in node_width.items():
        for slot in range(width):
            child = node + (slot,)
            if child not in on_path:
                codes[child] = SLOT_HELPER
            elif len(child) == height:
                codes[child] = SLOT_LEAF
            else:
                codes[child] = SLOT_DESCEND
    return codes


@dataclass(frozen=True, eq=True)
class LeafRef:
    """A proof slot pointing into the VO's multiproof table.

    ``proof_index`` selects the :class:`TreeMultiproof` in
    :attr:`QueryVO.multiproofs`; ``ordinal`` is the leaf's rank in that
    proof's DFS (= ascending key) leaf order.
    """

    proof_index: int
    ordinal: int

    def byte_size(self) -> int:
        """Serialised size in bytes: the two varints.

        The presence and proof-tag bytes belong to the entry framing
        (:meth:`~repro.core.query.vo.ProvenEntry.byte_size` counts
        them), matching the convention of the other proof types.
        """
        return _varint_size(self.proof_index) + _varint_size(self.ordinal)


def _varint_size(value: int) -> int:
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


class _Frame:
    """One in-flight cover node of the stack-machine fold."""

    __slots__ = ("codes", "depth", "pos", "digests", "gpath")

    def __init__(self, codes, depth, gpath):
        self.codes = codes
        self.depth = depth
        self.pos = 0
        self.digests: list[bytes] = []
        self.gpath = gpath


@dataclass(frozen=True, eq=True)
class TreeMultiproof:
    """One deduplicated membership proof for a set of entries of one tree.

    ``height`` is the number of levels below the root digest (the depth
    every :class:`~repro.core.mbtree.MerklePath` of the tree shares);
    ``nodes`` lists each cover node's slot codes in DFS pre-order (the
    root first); ``helpers`` and ``leaves`` carry the sibling digests
    and the proven ``(object_id, object_hash)`` entries in the order the
    DFS consumes them.
    """

    height: int
    nodes: tuple[tuple[int, ...], ...]
    helpers: tuple[bytes, ...]
    leaves: tuple[tuple[int, bytes], ...]

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            # Dict-key hashing only; content identity uses cache_token().
            cached = hash(  # reprolint: disable=crypto-hygiene
                (self.height, self.nodes, self.helpers, self.leaves)
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    def cache_token(self) -> bytes:
        """Collision-resistant digest over the proof's full content.

        The verification-cache key for a multiproof is ``(root, token)``
        — the gindex-set digest the warmer and the client both derive —
        so a warmed proof hits at query time iff it is byte-identical.
        The encoding is injective: every list is length-prefixed and
        digests are fixed 32-byte words.
        """
        token = self.__dict__.get("_token")
        if token is None:
            buf = bytearray()
            buf += self.height.to_bytes(4, "big")
            buf += len(self.nodes).to_bytes(4, "big")
            for codes in self.nodes:
                buf += len(codes).to_bytes(4, "big")
                buf += bytes(codes)
            buf += len(self.helpers).to_bytes(4, "big")
            for digest in self.helpers:
                buf += digest
            buf += len(self.leaves).to_bytes(4, "big")
            for object_id, object_hash in self.leaves:
                buf += object_id.to_bytes(8, "big")
                buf += object_hash
            token = tagged_hash(_TOKEN_TAG, bytes(buf))
            object.__setattr__(self, "_token", token)
        return token

    def byte_size(self) -> int:
        """Serialised size in bytes (matches the v3 codec encoding)."""
        total = 1 + _varint_size(len(self.nodes))
        for codes in self.nodes:
            total += _varint_size(len(codes)) + (len(codes) + 3) // 4
        total += _varint_size(len(self.helpers)) + 32 * len(self.helpers)
        total += _varint_size(len(self.leaves)) + 40 * len(self.leaves)
        return total

    # -- verification ----------------------------------------------------------

    def _walk(self) -> tuple[bytes, tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]]:
        """Stack-machine fold: the recomputed root plus the leaf table.

        Returns ``(root_digest, leaf_table)`` where ``leaf_table[i]`` is
        the ``(gpath, widths)`` pair of the ``i``-th proven leaf.  Every
        structural violation — wrong code values, descend at the leaf
        level, leaves above it, unconsumed or missing helpers/leaves/
        nodes, an empty node — fails closed with
        :class:`~repro.errors.VerificationError`.
        """
        cached = self.__dict__.get("_walked")
        if cached is not None:
            return cached

        def fail(reason: str) -> VerificationError:
            return VerificationError(f"malformed multiproof: {reason}")

        if self.height < 1:
            raise fail("height must be at least 1")
        nodes = iter(self.nodes)
        helper_pos = 0
        leaf_pos = 0
        leaf_table: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        try:
            root_codes = next(nodes)
        except StopIteration:
            raise fail("no cover nodes") from None
        stack = [_Frame(root_codes, 0, ())]
        root: bytes | None = None
        while stack:
            frame = stack[-1]
            if not frame.codes:
                raise fail("empty cover node")
            if frame.pos == len(frame.codes):
                digest = (
                    leaf_digest(frame.digests)
                    if frame.depth == self.height - 1
                    else node_digest(frame.digests)
                )
                stack.pop()
                if stack:
                    stack[-1].digests.append(digest)
                    stack[-1].pos += 1
                else:
                    root = digest
                continue
            code = frame.codes[frame.pos]
            if code == SLOT_HELPER:
                if helper_pos >= len(self.helpers):
                    raise fail("helper digests exhausted mid-walk")
                frame.digests.append(self.helpers[helper_pos])
                helper_pos += 1
                frame.pos += 1
            elif code == SLOT_LEAF:
                if frame.depth != self.height - 1:
                    raise fail("proven leaf above the leaf level")
                if leaf_pos >= len(self.leaves):
                    raise fail("leaf entries exhausted mid-walk")
                object_id, object_hash = self.leaves[leaf_pos]
                if len(object_hash) != 32:
                    raise fail("leaf hash is not a 32-byte digest")
                frame.digests.append(entry_digest(object_id, object_hash))
                leaf_table.append(
                    (
                        frame.gpath + (frame.pos,),
                        tuple(len(f.codes) for f in stack),
                    )
                )
                leaf_pos += 1
                frame.pos += 1
            elif code == SLOT_DESCEND:
                if frame.depth >= self.height - 1:
                    raise fail("descend at the leaf level")
                try:
                    child = next(nodes)
                except StopIteration:
                    raise fail("cover nodes exhausted mid-walk") from None
                stack.append(
                    _Frame(child, frame.depth + 1, frame.gpath + (frame.pos,))
                )
            else:
                raise fail(f"unknown slot code {code}")
        if next(nodes, None) is not None:
            raise fail("unconsumed cover nodes")
        if helper_pos != len(self.helpers):
            raise fail("unconsumed helper digests")
        if leaf_pos != len(self.leaves):
            raise fail("unconsumed leaf entries")
        if not leaf_table:
            raise fail("no proven leaves")
        assert root is not None
        walked = (root, tuple(leaf_table))
        object.__setattr__(self, "_walked", walked)
        return walked

    def fold_root(self) -> bytes:
        """Recompute the tree's root digest from the proof content."""
        return self._walk()[0]

    def leaf_position(self, ordinal: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The ``(gpath, widths)`` of one proven leaf by DFS ordinal."""
        table = self._walk()[1]
        if not 0 <= ordinal < len(table):
            raise VerificationError(
                f"multiproof leaf ordinal {ordinal} out of range"
            )
        return table[ordinal]

    def leaf_entry(self, ordinal: int) -> tuple[int, bytes]:
        """The ``(object_id, object_hash)`` of one proven leaf."""
        if not 0 <= ordinal < len(self.leaves):
            raise VerificationError(
                f"multiproof leaf ordinal {ordinal} out of range"
            )
        return self.leaves[ordinal]

    # -- position predicates (gindex re-expressions of the path checks) --------

    def is_leftmost(self, ordinal: int) -> bool:
        """Whether the leaf is provably the tree's first entry."""
        gpath, _ = self.leaf_position(ordinal)
        return all(index == 0 for index in gpath)

    def is_rightmost(self, ordinal: int) -> bool:
        """Whether the leaf is provably the tree's last entry."""
        gpath, widths = self.leaf_position(ordinal)
        return all(index == width - 1 for index, width in zip(gpath, widths))

    def adjacent(self, left_ordinal: int, right_ordinal: int) -> bool:
        """Whether two proven leaves are consecutive in the tree.

        The gindex re-expression of
        :func:`~repro.core.mbtree.paths_adjacent`: the gpaths agree
        until one divergence level where the right leaf's digit is the
        left's plus one; below it the left leaf hugs its subtree's right
        edge and the right leaf its subtree's left edge.
        """
        gpath_l, widths_l = self.leaf_position(left_ordinal)
        gpath_r, widths_r = self.leaf_position(right_ordinal)
        diverged = False
        for level in range(self.height):
            if not diverged:
                if gpath_l[level] == gpath_r[level]:
                    continue
                if gpath_r[level] != gpath_l[level] + 1:
                    return False
                if widths_l[level] != widths_r[level]:
                    return False
                diverged = True
            else:
                if gpath_l[level] != widths_l[level] - 1:
                    return False
                if gpath_r[level] != 0:
                    return False
        return diverged


# ---------------------------------------------------------------------------
# Construction (SP side)
# ---------------------------------------------------------------------------


def _path_levels(
    entry: ProvenEntry, path: MerklePath
) -> tuple[tuple[int, ...], tuple[int, ...], list[tuple[bytes, ...]]]:
    """Root-to-leaf ``(gpath, widths, per-level sibling digest rows)``."""
    gpath: list[int] = []
    widths: list[int] = []
    rows: list[tuple[bytes, ...]] = []
    for step in reversed(path.steps):
        gpath.append(step.index)
        widths.append(len(step.before) + 1 + len(step.after))
        rows.append(step.before + (b"",) + step.after)
    return tuple(gpath), tuple(widths), rows


def build_multiproof(
    proven: list[tuple[ProvenEntry, MerklePath]],
) -> tuple[TreeMultiproof, dict[tuple[int, ...], int]]:
    """Merge one tree's ``(entry, path)`` pairs into a multiproof.

    Returns the proof plus the gpath -> DFS-ordinal map the caller uses
    to rewrite each entry's proof into a :class:`LeafRef`.  Raises
    :class:`~repro.errors.ReproError` when the paths are mutually
    inconsistent (different depths, conflicting widths or sibling
    digests, one gpath claiming two different entries) — an honest SP
    never constructs such inputs.
    """
    if not proven:
        raise ReproError("a multiproof needs at least one proven entry")
    height = len(proven[0][1].steps)
    if height < 1:
        raise ReproError("cannot build a multiproof from an empty path")
    gpaths: list[tuple[int, ...]] = []
    widths_list: list[tuple[int, ...]] = []
    slot_digest: dict[tuple[int, ...], bytes] = {}
    entry_at: dict[tuple[int, ...], tuple[int, bytes]] = {}
    for entry, path in proven:
        if len(path.steps) != height:
            raise ReproError("paths of one tree must share the depth")
        gpath, widths, rows = _path_levels(entry, path)
        leaf = (entry.object_id, entry.object_hash)
        known = entry_at.setdefault(gpath, leaf)
        if known != leaf:
            raise ReproError(f"two entries claim the tree position {gpath}")
        gpaths.append(gpath)
        widths_list.append(widths)
        for level, row in enumerate(rows):
            node = gpath[:level]
            for slot, digest in enumerate(row):
                if slot == gpath[level]:
                    continue
                key = node + (slot,)
                seen = slot_digest.setdefault(key, digest)
                if seen != digest:
                    raise ReproError(
                        f"conflicting sibling digests at slot {key}"
                    )
    codes = compute_multiproof_indices(gpaths, widths_list)
    nodes: list[tuple[int, ...]] = []
    helpers: list[bytes] = []
    leaves: list[tuple[int, bytes]] = []
    ordinals: dict[tuple[int, ...], int] = {}
    node_width: dict[tuple[int, ...], int] = {}
    for gpath, widths in zip(gpaths, widths_list):
        for level in range(height):
            node_width[gpath[:level]] = widths[level]

    # Emit in the exact order the fold consumes: slots in order, a
    # descend slot recursing into its whole subtree *before* any later
    # slot of the same node (helpers and leaves interleave with child
    # subtrees; a node-at-a-time emission would misorder them whenever
    # a helper slot follows a descend slot).  Recursion depth is the
    # tree height — logarithmic in the corpus.
    def emit(node: tuple[int, ...]) -> None:
        width = node_width[node]
        node_codes = tuple(codes[node + (slot,)] for slot in range(width))
        nodes.append(node_codes)
        for slot in range(width):
            child = node + (slot,)
            code = node_codes[slot]
            if code == SLOT_HELPER:
                helpers.append(slot_digest[child])
            elif code == SLOT_LEAF:
                ordinals[child] = len(leaves)
                leaves.append(entry_at[child])
            else:
                emit(child)

    emit(())
    return (
        TreeMultiproof(
            height=height,
            nodes=tuple(nodes),
            helpers=tuple(helpers),
            leaves=tuple(leaves),
        ),
        ordinals,
    )


def _map_entry(entry, fn):
    if entry is None:
        return None
    return fn(entry)


def _map_vo_entries(vo: QueryVO, fn) -> QueryVO:
    """Rebuild a VO with every :class:`ProvenEntry` passed through ``fn``.

    The traversal order is the codec's write order, which makes the
    first-seen grouping (and therefore the whole compressed encoding)
    deterministic.
    """
    conjuncts = []
    for conj in vo.conjuncts:
        base = conj.base
        if isinstance(base, MultiWayJoinVO):
            rounds = tuple(
                JoinRound(
                    kind=rnd.kind,
                    probe_tree=rnd.probe_tree,
                    lower=_map_entry(rnd.lower, fn),
                    upper=_map_entry(rnd.upper, fn),
                    next_target=_map_entry(rnd.next_target, fn),
                )
                for rnd in base.rounds
            )
            base = MultiWayJoinVO(
                trees=base.trees,
                first_target=fn(base.first_target),
                rounds=rounds,
            )
        elif isinstance(base, FullScanVO):
            base = FullScanVO(
                keyword=base.keyword,
                entries=tuple(fn(entry) for entry in base.entries),
            )
        stages = tuple(
            SemiJoinStage(
                keyword=stage.keyword,
                probes=tuple(
                    SemiJoinProbe(
                        candidate_id=probe.candidate_id,
                        bloom_absent=probe.bloom_absent,
                        lower=_map_entry(probe.lower, fn),
                        upper=_map_entry(probe.upper, fn),
                    )
                    for probe in stage.probes
                ),
            )
            for stage in conj.stages
        )
        conjuncts.append(
            ConjunctiveVO(
                keywords=conj.keywords,
                base=base,
                stages=stages,
                empty_keyword=conj.empty_keyword,
            )
        )
    return QueryVO(conjuncts=tuple(conjuncts), multiproofs=vo.multiproofs)


def compress_query_vo(vo: QueryVO) -> QueryVO:
    """Deduplicate a VO's Merkle paths into one multiproof per tree.

    Entries are grouped by the root digest their path folds to (one
    group per ``(tree, commitment)``), each group becomes one
    :class:`TreeMultiproof`, and every grouped entry's proof is replaced
    by a :class:`LeafRef`.  Proof-less and CVC entries pass through
    untouched, so the Chameleon family's VOs are returned unchanged.
    Runs after call-order gathering, so the output is identical for any
    shard count, pool mode or executor.

    Compression is size-gated per group: a tree whose multiproof table
    would cost more wire bytes than the per-entry paths it replaces
    (singleton boundary proofs of near-empty keywords, typically) keeps
    its paths, so the v3 frame is never materially larger than v2 at
    low selectivity.  The gate depends only on the group itself, so
    determinism across executors is preserved.
    """
    groups: dict[bytes, list[tuple[ProvenEntry, MerklePath]]] = {}
    order: list[bytes] = []

    def collect(entry: ProvenEntry) -> ProvenEntry:
        proof = entry.proof
        if isinstance(proof, MerklePath):
            from repro.core.mbtree import Entry

            root = proof.compute_root(
                Entry(key=entry.object_id, value_hash=entry.object_hash)
            )
            if root not in groups:
                groups[root] = []
                order.append(root)
            groups[root].append((entry, proof))
        return entry

    _map_vo_entries(vo, collect)
    if not groups:
        return vo
    multiproofs: list[TreeMultiproof] = list(vo.multiproofs)
    refs: dict[ProvenEntry, LeafRef] = {}
    for root in order:
        proof_index = len(multiproofs)
        multiproof, ordinals = build_multiproof(groups[root])
        group_refs: dict[ProvenEntry, LeafRef] = {}
        # Wire delta per occurrence: a LeafRef entry drops the 40-byte
        # id+hash (reconstructed from the leaf table) and swaps the
        # path body for two varints; the multiproof table is the cost.
        saved = -multiproof.byte_size()
        for entry, path in groups[root]:
            gpath = tuple(step.index for step in reversed(path.steps))
            ref = LeafRef(proof_index=proof_index, ordinal=ordinals[gpath])
            group_refs[entry] = ref
            saved += 40 + path.byte_size() - ref.byte_size()
        if saved <= 0:
            continue
        multiproofs.append(multiproof)
        refs.update(group_refs)
    if not refs:
        return vo

    def rewrite(entry: ProvenEntry) -> ProvenEntry:
        ref = refs.get(entry)
        if ref is None:
            return entry
        return ProvenEntry(
            object_id=entry.object_id,
            object_hash=entry.object_hash,
            proof=ref,
        )

    rewritten = _map_vo_entries(vo, rewrite)
    return QueryVO(
        conjuncts=rewritten.conjuncts, multiproofs=tuple(multiproofs)
    )
