"""Binary wire codec for verification objects.

``VO_sp`` travels from the SP to the client; the paper's VO-size metric
(Figs. 11–13) is the serialised byte count.  This codec provides the
canonical wire format — a compact tagged binary encoding — and is used
by the system facade to report *exact* VO sizes rather than estimates.

Format notes: integers are big-endian; group elements (CVC commitments
and proofs) occupy the scheme's fixed ``value_bytes`` width; variable
counts use 2-byte lengths (a 65,535-element bound per list is ample for
any VO this system emits).

Frame versions
--------------
A *v2* frame (the legacy format) starts directly with the one-byte
conjunct count.  A *v3* frame starts with the marker byte ``0xF3``
followed by the deduplicated multiproof table, then the conjuncts with
:class:`~repro.core.multiproof.LeafRef` proofs referencing the table
(their ``id``/``hash`` fields are omitted on the wire and reconstructed
from the table's leaf entries).  The reader sniffs the first byte — any
value ``>= 0xF0`` announces a versioned frame (DNF queries never carry
240+ conjuncts, so the ranges cannot collide) — and therefore decodes
both formats; unknown version markers raise
:class:`~repro.errors.ReproError`, which the SP protocol maps to
``ERR_BAD_REQUEST``.
"""

from __future__ import annotations

import io

from repro.core.chameleon import ChameleonLink, MembershipProof
from repro.core.mbtree import MerklePath, PathStep
from repro.core.multiproof import LeafRef, TreeMultiproof
from repro.core.query.vo import (
    ConjunctiveVO,
    FullScanVO,
    JoinRound,
    MultiWayJoinVO,
    ProvenEntry,
    QueryVO,
    SemiJoinProbe,
    SemiJoinStage,
    iter_proven_entries,
)
from repro.errors import ReproError

_PROOF_NONE = 0
_PROOF_MERKLE = 1
_PROOF_CVC = 2
_PROOF_LEAFREF = 3

_BASE_NONE = 0
_BASE_MULTIWAY = 1
_BASE_FULLSCAN = 2

#: First byte of a versioned frame; ``0xF0 | version``.  v3 is the only
#: versioned frame so far (v2 is the unmarked legacy layout).
_VERSION_BASE = 0xF0
_V3_MARKER = 0xF3


class VOCodec:
    """Encoder/decoder bound to one scheme's group-element width.

    ``version`` selects the frame the *encoder* emits: ``None`` (the
    default) auto-selects — the byte-identical legacy v2 layout when the
    VO carries no multiproofs, v3 otherwise; ``2`` forces legacy output
    (and refuses VOs with multiproofs); ``3`` always emits a v3 frame.
    The decoder is version-agnostic and reads both.
    """

    def __init__(
        self, value_bytes: int = 128, version: int | None = None
    ) -> None:
        if value_bytes <= 0:
            raise ReproError("value_bytes must be positive")
        if version not in (None, 2, 3):
            raise ReproError(f"unsupported VO codec version {version}")
        self.value_bytes = value_bytes
        self.version = version

    # -- primitives --------------------------------------------------------------

    @staticmethod
    def _write_uint(out: io.BytesIO, value: int, width: int) -> None:
        out.write(value.to_bytes(width, "big"))

    @staticmethod
    def _read_uint(data: io.BytesIO, width: int) -> int:
        raw = data.read(width)
        if len(raw) != width:
            raise ReproError("truncated VO payload")
        return int.from_bytes(raw, "big")

    def _write_element(self, out: io.BytesIO, value: int) -> None:
        self._write_uint(out, value, self.value_bytes)

    def _read_element(self, data: io.BytesIO) -> int:
        return self._read_uint(data, self.value_bytes)

    @staticmethod
    def _write_string(out: io.BytesIO, text: str) -> None:
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFF:
            raise ReproError("keyword too long for wire format")
        out.write(len(encoded).to_bytes(1, "big"))
        out.write(encoded)

    @staticmethod
    def _read_string(data: io.BytesIO) -> str:
        length = VOCodec._read_uint(data, 1)
        raw = data.read(length)
        if len(raw) != length:
            raise ReproError("truncated VO payload")
        return raw.decode("utf-8")

    @staticmethod
    def _read_bytes(data: io.BytesIO, length: int) -> bytes:
        raw = data.read(length)
        if len(raw) != length:
            raise ReproError("truncated VO payload")
        return raw

    @staticmethod
    def _write_varint(out: io.BytesIO, value: int) -> None:
        if value < 0:
            raise ReproError("varint values must be non-negative")
        while value >= 0x80:
            out.write(bytes([(value & 0x7F) | 0x80]))
            value >>= 7
        out.write(bytes([value]))

    @staticmethod
    def _read_varint(data: io.BytesIO) -> int:
        value = 0
        shift = 0
        while True:
            raw = data.read(1)
            if not raw:
                raise ReproError("truncated VO payload")
            byte = raw[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise ReproError("oversized varint in VO payload")

    # -- multiproofs --------------------------------------------------------------

    def _write_multiproof(self, out: io.BytesIO, mp: TreeMultiproof) -> None:
        self._write_uint(out, mp.height, 1)
        self._write_varint(out, len(mp.nodes))
        for codes in mp.nodes:
            self._write_varint(out, len(codes))
            packed = bytearray((len(codes) + 3) // 4)
            for slot, code in enumerate(codes):
                if not 0 <= code <= 3:
                    raise ReproError(f"cannot encode slot code {code}")
                packed[slot // 4] |= code << ((slot % 4) * 2)
            out.write(bytes(packed))
        self._write_varint(out, len(mp.helpers))
        for digest in mp.helpers:
            if len(digest) != 32:
                raise ReproError("multiproof helper is not a 32-byte digest")
            out.write(digest)
        self._write_varint(out, len(mp.leaves))
        for object_id, object_hash in mp.leaves:
            self._write_uint(out, object_id, 8)
            if len(object_hash) != 32:
                raise ReproError("multiproof leaf hash is not 32 bytes")
            out.write(object_hash)

    def _read_multiproof(self, data: io.BytesIO) -> TreeMultiproof:
        height = self._read_uint(data, 1)
        nodes = []
        for _ in range(self._read_varint(data)):
            width = self._read_varint(data)
            if width > 0xFFFF:
                raise ReproError("oversized multiproof node width")
            packed = self._read_bytes(data, (width + 3) // 4)
            codes = tuple(
                (packed[slot // 4] >> ((slot % 4) * 2)) & 0x3
                for slot in range(width)
            )
            if any(code > 2 for code in codes):
                raise ReproError("invalid multiproof slot code")
            nodes.append(codes)
        helpers = tuple(
            self._read_bytes(data, 32) for _ in range(self._read_varint(data))
        )
        leaves = tuple(
            (self._read_uint(data, 8), self._read_bytes(data, 32))
            for _ in range(self._read_varint(data))
        )
        return TreeMultiproof(
            height=height,
            nodes=tuple(nodes),
            helpers=helpers,
            leaves=leaves,
        )

    # -- proofs ------------------------------------------------------------------

    def _write_merkle_path(self, out: io.BytesIO, path: MerklePath) -> None:
        self._write_uint(out, len(path.steps), 1)
        for step in path.steps:
            self._write_uint(out, step.index, 2)
            self._write_uint(out, len(step.before), 1)
            for digest in step.before:
                out.write(digest)
            self._write_uint(out, len(step.after), 1)
            for digest in step.after:
                out.write(digest)

    def _read_merkle_path(self, data: io.BytesIO) -> MerklePath:
        # Decoding a legacy frame rebuilds the per-entry paths the wire
        # carried; only *construction* on the batched query path is
        # forbidden by the lint rule.
        depth = self._read_uint(data, 1)
        steps = []
        for _ in range(depth):
            index = self._read_uint(data, 2)
            before = tuple(
                self._read_bytes(data, 32)
                for _ in range(self._read_uint(data, 1))
            )
            after = tuple(
                self._read_bytes(data, 32)
                for _ in range(self._read_uint(data, 1))
            )
            # reprolint: disable-next-line=multiproof-batched-path
            steps.append(PathStep(index=index, before=before, after=after))
        # reprolint: disable-next-line=multiproof-batched-path
        return MerklePath(steps=tuple(steps))

    def _write_membership(self, out: io.BytesIO, proof: MembershipProof) -> None:
        self._write_uint(out, proof.position, 8)
        self._write_element(out, proof.entry_commitment)
        self._write_element(out, proof.slot1_proof)
        self._write_uint(out, len(proof.links), 1)
        for link in proof.links:
            self._write_uint(out, link.child_index, 1)
            self._write_element(out, link.child_commitment)
            self._write_element(out, link.proof)

    def _read_membership(self, data: io.BytesIO) -> MembershipProof:
        position = self._read_uint(data, 8)
        entry_commitment = self._read_element(data)
        slot1_proof = self._read_element(data)
        links = []
        for _ in range(self._read_uint(data, 1)):
            links.append(
                ChameleonLink(
                    child_index=self._read_uint(data, 1),
                    child_commitment=self._read_element(data),
                    proof=self._read_element(data),
                )
            )
        return MembershipProof(
            position=position,
            entry_commitment=entry_commitment,
            slot1_proof=slot1_proof,
            links=tuple(links),
        )

    def _write_entry(
        self,
        out: io.BytesIO,
        entry: ProvenEntry | None,
        mps: tuple | None = None,
    ) -> None:
        if entry is None:
            self._write_uint(out, 0, 1)
            return
        self._write_uint(out, 1, 1)
        proof = entry.proof
        if isinstance(proof, LeafRef):
            # v3 only: the id/hash live in the multiproof leaf table, so
            # the entry shrinks to a tag plus two varints.
            if mps is None:
                raise ReproError(
                    "LeafRef proofs require the v3 frame "
                    "(VOCodec(version=2) cannot encode compressed VOs)"
                )
            self._write_uint(out, _PROOF_LEAFREF, 1)
            self._write_varint(out, proof.proof_index)
            self._write_varint(out, proof.ordinal)
            return
        if mps is not None:
            # v3 frames tag before the id/hash so LeafRef entries can
            # omit them; mirror that layout for the other proof kinds.
            tag_first = True
        else:
            tag_first = False
        if not tag_first:
            self._write_uint(out, entry.object_id, 8)
            out.write(entry.object_hash)
        if proof is None:
            self._write_uint(out, _PROOF_NONE, 1)
        elif isinstance(proof, MerklePath):
            self._write_uint(out, _PROOF_MERKLE, 1)
        elif isinstance(proof, MembershipProof):
            self._write_uint(out, _PROOF_CVC, 1)
        else:
            raise ReproError(f"cannot encode proof type {type(proof)!r}")
        if tag_first:
            self._write_uint(out, entry.object_id, 8)
            out.write(entry.object_hash)
        if isinstance(proof, MerklePath):
            self._write_merkle_path(out, proof)
        elif isinstance(proof, MembershipProof):
            self._write_membership(out, proof)

    def _read_entry(
        self, data: io.BytesIO, mps: tuple | None = None
    ) -> ProvenEntry | None:
        if self._read_uint(data, 1) == 0:
            return None
        if mps is not None:
            tag = self._read_uint(data, 1)
            if tag == _PROOF_LEAFREF:
                proof_index = self._read_varint(data)
                ordinal = self._read_varint(data)
                if proof_index >= len(mps):
                    raise ReproError(
                        f"LeafRef proof index {proof_index} out of range"
                    )
                leaves = mps[proof_index].leaves
                if ordinal >= len(leaves):
                    raise ReproError(
                        f"LeafRef ordinal {ordinal} out of range"
                    )
                object_id, object_hash = leaves[ordinal]
                return ProvenEntry(
                    object_id=object_id,
                    object_hash=object_hash,
                    proof=LeafRef(proof_index=proof_index, ordinal=ordinal),
                )
        else:
            tag = None
        object_id = self._read_uint(data, 8)
        object_hash = self._read_bytes(data, 32)
        if tag is None:
            tag = self._read_uint(data, 1)
        if tag == _PROOF_NONE:
            proof = None
        elif tag == _PROOF_MERKLE:
            proof = self._read_merkle_path(data)
        elif tag == _PROOF_CVC:
            proof = self._read_membership(data)
        else:
            raise ReproError(f"unknown proof tag {tag}")
        return ProvenEntry(
            object_id=object_id, object_hash=object_hash, proof=proof
        )

    # -- VO structures ------------------------------------------------------------

    def _write_round(
        self, out: io.BytesIO, rnd: JoinRound, mps: tuple | None = None
    ) -> None:
        self._write_uint(out, 0 if rnd.kind == "probe" else 1, 1)
        self._write_uint(out, rnd.probe_tree, 1)
        self._write_entry(out, rnd.lower, mps)
        self._write_entry(out, rnd.upper, mps)
        self._write_entry(out, rnd.next_target, mps)

    def _read_round(
        self, data: io.BytesIO, mps: tuple | None = None
    ) -> JoinRound:
        kind = "probe" if self._read_uint(data, 1) == 0 else "skip"
        probe_tree = self._read_uint(data, 1)
        lower = self._read_entry(data, mps)
        upper = self._read_entry(data, mps)
        next_target = self._read_entry(data, mps)
        return JoinRound(
            kind=kind,
            probe_tree=probe_tree,
            lower=lower,
            upper=upper,
            next_target=next_target,
        )

    def _write_conjunct(
        self, out: io.BytesIO, vo: ConjunctiveVO, mps: tuple | None = None
    ) -> None:
        self._write_uint(out, len(vo.keywords), 1)
        for keyword in vo.keywords:
            self._write_string(out, keyword)
        if vo.empty_keyword is not None:
            self._write_uint(out, 1, 1)
            self._write_string(out, vo.empty_keyword)
        else:
            self._write_uint(out, 0, 1)
        if vo.base is None:
            self._write_uint(out, _BASE_NONE, 1)
        elif isinstance(vo.base, MultiWayJoinVO):
            self._write_uint(out, _BASE_MULTIWAY, 1)
            self._write_uint(out, len(vo.base.trees), 1)
            for tree in vo.base.trees:
                self._write_string(out, tree)
            self._write_entry(out, vo.base.first_target, mps)
            self._write_uint(out, len(vo.base.rounds), 2)
            for rnd in vo.base.rounds:
                self._write_round(out, rnd, mps)
        else:
            assert isinstance(vo.base, FullScanVO)
            self._write_uint(out, _BASE_FULLSCAN, 1)
            self._write_string(out, vo.base.keyword)
            self._write_uint(out, len(vo.base.entries), 2)
            for entry in vo.base.entries:
                self._write_entry(out, entry, mps)
        self._write_uint(out, len(vo.stages), 1)
        for stage in vo.stages:
            self._write_string(out, stage.keyword)
            self._write_uint(out, len(stage.probes), 2)
            for probe in stage.probes:
                self._write_uint(out, probe.candidate_id, 8)
                self._write_uint(out, 1 if probe.bloom_absent else 0, 1)
                self._write_entry(out, probe.lower, mps)
                self._write_entry(out, probe.upper, mps)

    def _read_conjunct(
        self, data: io.BytesIO, mps: tuple | None = None
    ) -> ConjunctiveVO:
        keywords = tuple(
            self._read_string(data) for _ in range(self._read_uint(data, 1))
        )
        empty_keyword = None
        if self._read_uint(data, 1) == 1:
            empty_keyword = self._read_string(data)
        base_tag = self._read_uint(data, 1)
        base: MultiWayJoinVO | FullScanVO | None
        if base_tag == _BASE_NONE:
            base = None
        elif base_tag == _BASE_MULTIWAY:
            trees = tuple(
                self._read_string(data)
                for _ in range(self._read_uint(data, 1))
            )
            first_target = self._read_entry(data, mps)
            assert first_target is not None
            rounds = tuple(
                self._read_round(data, mps)
                for _ in range(self._read_uint(data, 2))
            )
            base = MultiWayJoinVO(
                trees=trees, first_target=first_target, rounds=rounds
            )
        elif base_tag == _BASE_FULLSCAN:
            keyword = self._read_string(data)
            entries = []
            for _ in range(self._read_uint(data, 2)):
                entry = self._read_entry(data, mps)
                assert entry is not None
                entries.append(entry)
            base = FullScanVO(keyword=keyword, entries=tuple(entries))
        else:
            raise ReproError(f"unknown base tag {base_tag}")
        stages = []
        for _ in range(self._read_uint(data, 1)):
            keyword = self._read_string(data)
            probes = []
            for _ in range(self._read_uint(data, 2)):
                candidate_id = self._read_uint(data, 8)
                bloom_absent = self._read_uint(data, 1) == 1
                lower = self._read_entry(data, mps)
                upper = self._read_entry(data, mps)
                probes.append(
                    SemiJoinProbe(
                        candidate_id=candidate_id,
                        bloom_absent=bloom_absent,
                        lower=lower,
                        upper=upper,
                    )
                )
            stages.append(SemiJoinStage(keyword=keyword, probes=tuple(probes)))
        return ConjunctiveVO(
            keywords=keywords,
            base=base,
            stages=tuple(stages),
            empty_keyword=empty_keyword,
        )

    # -- public API ----------------------------------------------------------------

    def encode(self, vo: QueryVO) -> bytes:
        """Serialise a full ``VO_sp`` to its wire form.

        Emits the byte-identical legacy v2 layout unless the VO carries
        multiproofs or compressed :class:`LeafRef` proofs (or the codec
        was pinned to ``version=3``).  A LeafRef without its multiproof
        — e.g. a per-conjunct slice of a compressed VO — still gets the
        v3 frame; such a frame round-trips deterministically but only
        verifies once rejoined with its multiproofs.
        """
        use_v3 = self.version == 3 or (
            self.version is None
            and (
                bool(vo.multiproofs)
                or any(
                    isinstance(entry.proof, LeafRef)
                    for entry in iter_proven_entries(vo)
                )
            )
        )
        out = io.BytesIO()
        if not use_v3:
            if vo.multiproofs:
                raise ReproError(
                    "VOCodec(version=2) cannot encode a VO with multiproofs"
                )
            self._write_uint(out, len(vo.conjuncts), 1)
            for conjunct in vo.conjuncts:
                self._write_conjunct(out, conjunct)
            return out.getvalue()
        out.write(bytes([_V3_MARKER]))
        mps = tuple(vo.multiproofs)
        self._write_varint(out, len(mps))
        for mp in mps:
            self._write_multiproof(out, mp)
        self._write_uint(out, len(vo.conjuncts), 1)
        for conjunct in vo.conjuncts:
            self._write_conjunct(out, conjunct, mps)
        return out.getvalue()

    def decode(self, payload: bytes) -> QueryVO:
        """Parse a wire-form ``VO_sp``; raises on malformed input.

        Reads both frame versions regardless of the codec's ``version``
        pin (the pin only selects the encoder's output).
        """
        data = io.BytesIO(payload)
        if not payload:
            raise ReproError("truncated VO payload")
        first = payload[0]
        mps: tuple | None = None
        if first >= _VERSION_BASE:
            if first != _V3_MARKER:
                raise ReproError(
                    f"unsupported VO frame version {first - _VERSION_BASE}"
                )
            data.read(1)
            mps = tuple(
                self._read_multiproof(data)
                for _ in range(self._read_varint(data))
            )
        conjuncts = tuple(
            self._read_conjunct(data, mps)
            for _ in range(self._read_uint(data, 1))
        )
        if data.read(1):
            raise ReproError("trailing bytes in VO payload")
        return QueryVO(
            conjuncts=conjuncts, multiproofs=mps if mps is not None else ()
        )
