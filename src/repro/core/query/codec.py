"""Binary wire codec for verification objects.

``VO_sp`` travels from the SP to the client; the paper's VO-size metric
(Figs. 11–13) is the serialised byte count.  This codec provides the
canonical wire format — a compact tagged binary encoding — and is used
by the system facade to report *exact* VO sizes rather than estimates.

Format notes: integers are big-endian; group elements (CVC commitments
and proofs) occupy the scheme's fixed ``value_bytes`` width; variable
counts use 2-byte lengths (a 65,535-element bound per list is ample for
any VO this system emits).
"""

from __future__ import annotations

import io

from repro.core.chameleon import ChameleonLink, MembershipProof
from repro.core.mbtree import MerklePath, PathStep
from repro.core.query.vo import (
    ConjunctiveVO,
    FullScanVO,
    JoinRound,
    MultiWayJoinVO,
    ProvenEntry,
    QueryVO,
    SemiJoinProbe,
    SemiJoinStage,
)
from repro.errors import ReproError

_PROOF_NONE = 0
_PROOF_MERKLE = 1
_PROOF_CVC = 2

_BASE_NONE = 0
_BASE_MULTIWAY = 1
_BASE_FULLSCAN = 2


class VOCodec:
    """Encoder/decoder bound to one scheme's group-element width."""

    def __init__(self, value_bytes: int = 128) -> None:
        if value_bytes <= 0:
            raise ReproError("value_bytes must be positive")
        self.value_bytes = value_bytes

    # -- primitives --------------------------------------------------------------

    @staticmethod
    def _write_uint(out: io.BytesIO, value: int, width: int) -> None:
        out.write(value.to_bytes(width, "big"))

    @staticmethod
    def _read_uint(data: io.BytesIO, width: int) -> int:
        raw = data.read(width)
        if len(raw) != width:
            raise ReproError("truncated VO payload")
        return int.from_bytes(raw, "big")

    def _write_element(self, out: io.BytesIO, value: int) -> None:
        self._write_uint(out, value, self.value_bytes)

    def _read_element(self, data: io.BytesIO) -> int:
        return self._read_uint(data, self.value_bytes)

    @staticmethod
    def _write_string(out: io.BytesIO, text: str) -> None:
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFF:
            raise ReproError("keyword too long for wire format")
        out.write(len(encoded).to_bytes(1, "big"))
        out.write(encoded)

    @staticmethod
    def _read_string(data: io.BytesIO) -> str:
        length = VOCodec._read_uint(data, 1)
        raw = data.read(length)
        if len(raw) != length:
            raise ReproError("truncated VO payload")
        return raw.decode("utf-8")

    @staticmethod
    def _read_bytes(data: io.BytesIO, length: int) -> bytes:
        raw = data.read(length)
        if len(raw) != length:
            raise ReproError("truncated VO payload")
        return raw

    # -- proofs ------------------------------------------------------------------

    def _write_merkle_path(self, out: io.BytesIO, path: MerklePath) -> None:
        self._write_uint(out, len(path.steps), 1)
        for step in path.steps:
            self._write_uint(out, step.index, 2)
            self._write_uint(out, len(step.before), 1)
            for digest in step.before:
                out.write(digest)
            self._write_uint(out, len(step.after), 1)
            for digest in step.after:
                out.write(digest)

    def _read_merkle_path(self, data: io.BytesIO) -> MerklePath:
        depth = self._read_uint(data, 1)
        steps = []
        for _ in range(depth):
            index = self._read_uint(data, 2)
            before = tuple(
                self._read_bytes(data, 32)
                for _ in range(self._read_uint(data, 1))
            )
            after = tuple(
                self._read_bytes(data, 32)
                for _ in range(self._read_uint(data, 1))
            )
            steps.append(PathStep(index=index, before=before, after=after))
        return MerklePath(steps=tuple(steps))

    def _write_membership(self, out: io.BytesIO, proof: MembershipProof) -> None:
        self._write_uint(out, proof.position, 8)
        self._write_element(out, proof.entry_commitment)
        self._write_element(out, proof.slot1_proof)
        self._write_uint(out, len(proof.links), 1)
        for link in proof.links:
            self._write_uint(out, link.child_index, 1)
            self._write_element(out, link.child_commitment)
            self._write_element(out, link.proof)

    def _read_membership(self, data: io.BytesIO) -> MembershipProof:
        position = self._read_uint(data, 8)
        entry_commitment = self._read_element(data)
        slot1_proof = self._read_element(data)
        links = []
        for _ in range(self._read_uint(data, 1)):
            links.append(
                ChameleonLink(
                    child_index=self._read_uint(data, 1),
                    child_commitment=self._read_element(data),
                    proof=self._read_element(data),
                )
            )
        return MembershipProof(
            position=position,
            entry_commitment=entry_commitment,
            slot1_proof=slot1_proof,
            links=tuple(links),
        )

    def _write_entry(self, out: io.BytesIO, entry: ProvenEntry | None) -> None:
        if entry is None:
            self._write_uint(out, 0, 1)
            return
        self._write_uint(out, 1, 1)
        self._write_uint(out, entry.object_id, 8)
        out.write(entry.object_hash)
        proof = entry.proof
        if proof is None:
            self._write_uint(out, _PROOF_NONE, 1)
        elif isinstance(proof, MerklePath):
            self._write_uint(out, _PROOF_MERKLE, 1)
            self._write_merkle_path(out, proof)
        elif isinstance(proof, MembershipProof):
            self._write_uint(out, _PROOF_CVC, 1)
            self._write_membership(out, proof)
        else:
            raise ReproError(f"cannot encode proof type {type(proof)!r}")

    def _read_entry(self, data: io.BytesIO) -> ProvenEntry | None:
        if self._read_uint(data, 1) == 0:
            return None
        object_id = self._read_uint(data, 8)
        object_hash = self._read_bytes(data, 32)
        tag = self._read_uint(data, 1)
        if tag == _PROOF_NONE:
            proof = None
        elif tag == _PROOF_MERKLE:
            proof = self._read_merkle_path(data)
        elif tag == _PROOF_CVC:
            proof = self._read_membership(data)
        else:
            raise ReproError(f"unknown proof tag {tag}")
        return ProvenEntry(
            object_id=object_id, object_hash=object_hash, proof=proof
        )

    # -- VO structures ------------------------------------------------------------

    def _write_round(self, out: io.BytesIO, rnd: JoinRound) -> None:
        self._write_uint(out, 0 if rnd.kind == "probe" else 1, 1)
        self._write_uint(out, rnd.probe_tree, 1)
        self._write_entry(out, rnd.lower)
        self._write_entry(out, rnd.upper)
        self._write_entry(out, rnd.next_target)

    def _read_round(self, data: io.BytesIO) -> JoinRound:
        kind = "probe" if self._read_uint(data, 1) == 0 else "skip"
        probe_tree = self._read_uint(data, 1)
        lower = self._read_entry(data)
        upper = self._read_entry(data)
        next_target = self._read_entry(data)
        return JoinRound(
            kind=kind,
            probe_tree=probe_tree,
            lower=lower,
            upper=upper,
            next_target=next_target,
        )

    def _write_conjunct(self, out: io.BytesIO, vo: ConjunctiveVO) -> None:
        self._write_uint(out, len(vo.keywords), 1)
        for keyword in vo.keywords:
            self._write_string(out, keyword)
        if vo.empty_keyword is not None:
            self._write_uint(out, 1, 1)
            self._write_string(out, vo.empty_keyword)
        else:
            self._write_uint(out, 0, 1)
        if vo.base is None:
            self._write_uint(out, _BASE_NONE, 1)
        elif isinstance(vo.base, MultiWayJoinVO):
            self._write_uint(out, _BASE_MULTIWAY, 1)
            self._write_uint(out, len(vo.base.trees), 1)
            for tree in vo.base.trees:
                self._write_string(out, tree)
            self._write_entry(out, vo.base.first_target)
            self._write_uint(out, len(vo.base.rounds), 2)
            for rnd in vo.base.rounds:
                self._write_round(out, rnd)
        else:
            assert isinstance(vo.base, FullScanVO)
            self._write_uint(out, _BASE_FULLSCAN, 1)
            self._write_string(out, vo.base.keyword)
            self._write_uint(out, len(vo.base.entries), 2)
            for entry in vo.base.entries:
                self._write_entry(out, entry)
        self._write_uint(out, len(vo.stages), 1)
        for stage in vo.stages:
            self._write_string(out, stage.keyword)
            self._write_uint(out, len(stage.probes), 2)
            for probe in stage.probes:
                self._write_uint(out, probe.candidate_id, 8)
                self._write_uint(out, 1 if probe.bloom_absent else 0, 1)
                self._write_entry(out, probe.lower)
                self._write_entry(out, probe.upper)

    def _read_conjunct(self, data: io.BytesIO) -> ConjunctiveVO:
        keywords = tuple(
            self._read_string(data) for _ in range(self._read_uint(data, 1))
        )
        empty_keyword = None
        if self._read_uint(data, 1) == 1:
            empty_keyword = self._read_string(data)
        base_tag = self._read_uint(data, 1)
        base: MultiWayJoinVO | FullScanVO | None
        if base_tag == _BASE_NONE:
            base = None
        elif base_tag == _BASE_MULTIWAY:
            trees = tuple(
                self._read_string(data)
                for _ in range(self._read_uint(data, 1))
            )
            first_target = self._read_entry(data)
            assert first_target is not None
            rounds = tuple(
                self._read_round(data)
                for _ in range(self._read_uint(data, 2))
            )
            base = MultiWayJoinVO(
                trees=trees, first_target=first_target, rounds=rounds
            )
        elif base_tag == _BASE_FULLSCAN:
            keyword = self._read_string(data)
            entries = []
            for _ in range(self._read_uint(data, 2)):
                entry = self._read_entry(data)
                assert entry is not None
                entries.append(entry)
            base = FullScanVO(keyword=keyword, entries=tuple(entries))
        else:
            raise ReproError(f"unknown base tag {base_tag}")
        stages = []
        for _ in range(self._read_uint(data, 1)):
            keyword = self._read_string(data)
            probes = []
            for _ in range(self._read_uint(data, 2)):
                candidate_id = self._read_uint(data, 8)
                bloom_absent = self._read_uint(data, 1) == 1
                lower = self._read_entry(data)
                upper = self._read_entry(data)
                probes.append(
                    SemiJoinProbe(
                        candidate_id=candidate_id,
                        bloom_absent=bloom_absent,
                        lower=lower,
                        upper=upper,
                    )
                )
            stages.append(SemiJoinStage(keyword=keyword, probes=tuple(probes)))
        return ConjunctiveVO(
            keywords=keywords,
            base=base,
            stages=tuple(stages),
            empty_keyword=empty_keyword,
        )

    # -- public API ----------------------------------------------------------------

    def encode(self, vo: QueryVO) -> bytes:
        """Serialise a full ``VO_sp`` to its wire form."""
        out = io.BytesIO()
        self._write_uint(out, len(vo.conjuncts), 1)
        for conjunct in vo.conjuncts:
            self._write_conjunct(out, conjunct)
        return out.getvalue()

    def decode(self, payload: bytes) -> QueryVO:
        """Parse a wire-form ``VO_sp``; raises on malformed input."""
        data = io.BytesIO(payload)
        conjuncts = tuple(
            self._read_conjunct(data) for _ in range(self._read_uint(data, 1))
        )
        if data.read(1):
            raise ReproError("trailing bytes in VO payload")
        return QueryVO(conjuncts=conjuncts)
