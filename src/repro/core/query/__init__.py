"""Query processing: DNF parsing, authenticated joins, VOs, verification."""

from repro.core.query.join import (
    IndexView,
    conjunctive_join,
    join_two,
    multiway_join,
    semi_join,
)
from repro.core.query.parser import KeywordQuery
from repro.core.query.verify import (
    ProofSystem,
    VerifiedResults,
    verify_conjunct,
    verify_query,
)
from repro.core.query.vo import (
    ConjunctiveVO,
    FullScanVO,
    JoinRound,
    MultiWayJoinVO,
    ProvenEntry,
    QueryAnswer,
    QueryVO,
    SemiJoinProbe,
    SemiJoinStage,
)

__all__ = [
    "ConjunctiveVO",
    "FullScanVO",
    "IndexView",
    "JoinRound",
    "KeywordQuery",
    "MultiWayJoinVO",
    "ProofSystem",
    "ProvenEntry",
    "QueryAnswer",
    "QueryVO",
    "SemiJoinProbe",
    "SemiJoinStage",
    "VerifiedResults",
    "conjunctive_join",
    "join_two",
    "multiway_join",
    "semi_join",
    "verify_conjunct",
    "verify_query",
]
