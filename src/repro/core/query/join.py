"""Authenticated join processing (Sections III-B and V-C, Algorithm 5).

The SP evaluates each conjunctive component as an authenticated join
over the component keywords' index trees.  The engine is generic over
an :class:`IndexView` adapter so the same round logic serves the
Merkle-inverted family (MB-tree proofs) and the Chameleon family
(membership proofs), with the Chameleon* Bloom-filter optimisation
surfacing as ``skip`` rounds.

Two multiway plans are provided:

* **cyclic** (default) — the k-way generalisation of the paper's
  two-tree role-switching walk (Fig. 4): the target cycles through the
  other trees collecting boundary proofs; a target confirmed in all
  ``k-1`` of them is a result; a failed probe advances the target to
  the probed tree's upper boundary.  For ``k = 2`` this is *exactly*
  the paper's walk; its cost grows with the number of query keywords,
  which is the behaviour the paper's Figs. 11–12 measure.
* **semijoin** — footnote 3 taken literally: join the two smallest
  trees, then probe each surviving candidate in every remaining tree.
  Asymptotically cheaper when intersections are small; compared against
  the cyclic plan in the join-plan ablation.

Protocol invariants (cyclic walk):

1. the first target is the first tree's first entry, proven first;
2. every round probes the tree at cyclic offset 1..k-1 from the
   target's *home* tree, in increasing offset order while the target
   accumulates confirmations;
3. a probe returns the boundary entries ``lower <= target < upper``
   (adjacent, or edged with first/last evidence); ``lower == target``
   is a confirmation, and ``k-1`` confirmations make a result;
4. a failed or completed target advances to the probed tree's upper
   boundary (which becomes the new home); a probe with no upper
   terminates the walk — everything beyond the target is provably
   absent from the probed tree;
5. with Bloom filters, a round whose target is provably absent from
   the probed tree skips the boundary proofs and advances the target
   within its home tree instead.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.query.vo import (
    ConjunctiveVO,
    FullScanVO,
    JoinRound,
    MultiWayJoinVO,
    ProvenEntry,
    SemiJoinProbe,
    SemiJoinStage,
)
from repro.errors import QueryError


@runtime_checkable
class IndexView(Protocol):
    """The SP-side face of one keyword's index tree."""

    keyword: str

    def __len__(self) -> int: ...

    def first_proven(self) -> ProvenEntry | None:
        """The smallest entry with proof, or None when empty."""
        ...

    def boundaries_proven(
        self, target: int
    ) -> tuple[ProvenEntry | None, ProvenEntry | None]:
        """``(lower, upper)`` boundary entries around ``target``."""
        ...

    def all_proven(self) -> list[ProvenEntry]:
        """Every entry with proof, in key order (full scans)."""
        ...

    def definitely_absent(self, object_id: int) -> bool:
        """True when an on-chain-replicable filter proves absence.

        Non-Bloom schemes always return False; returning True obliges
        the *client* to reach the same conclusion from ``VO_chain``.
        """
        ...


def multiway_join(
    views: list[IndexView],
) -> tuple[list[int], MultiWayJoinVO]:
    """The k-way cyclic join walk; trees must all be non-empty.

    Returns the matched IDs and the VO encoding the whole walk.
    """
    k = len(views)
    if k < 2:
        raise QueryError("multiway_join requires at least two trees")
    for view in views:
        if len(view) == 0:
            raise QueryError("multiway_join requires non-empty trees")
    first = views[0].first_proven()
    assert first is not None
    matches: list[int] = []
    rounds: list[JoinRound] = []
    target = first
    home = 0
    confirm = 0
    offset = 1
    while True:
        probe_idx = (home + offset) % k
        view = views[probe_idx]
        if view.definitely_absent(target.object_id):
            _, next_target = views[home].boundaries_proven(target.object_id)
            rounds.append(
                JoinRound(
                    kind="skip", probe_tree=probe_idx, next_target=next_target
                )
            )
            if next_target is None:
                break
            target = next_target
            confirm = 0
            offset = 1
            continue
        lower, upper = view.boundaries_proven(target.object_id)
        rounds.append(
            JoinRound(kind="probe", probe_tree=probe_idx, lower=lower, upper=upper)
        )
        matched = lower is not None and lower.object_id == target.object_id
        if matched:
            confirm += 1
            if confirm == k - 1:
                matches.append(target.object_id)
                if upper is None:
                    break
                target = upper
                home = probe_idx
                confirm = 0
                offset = 1
            else:
                offset += 1
            continue
        if upper is None:
            break
        target = upper
        home = probe_idx
        confirm = 0
        offset = 1
    vo = MultiWayJoinVO(
        trees=tuple(v.keyword for v in views),
        first_target=first,
        rounds=tuple(rounds),
    )
    return matches, vo


def join_two(
    left: IndexView, right: IndexView
) -> tuple[list[int], MultiWayJoinVO]:
    """Authenticated join of two trees (the paper's Fig. 4 walk)."""
    return multiway_join([left, right])


def semi_join(
    candidates: list[int], view: IndexView
) -> tuple[list[int], SemiJoinStage]:
    """Filter ``candidates`` through one more tree with per-ID probes."""
    survivors: list[int] = []
    probes: list[SemiJoinProbe] = []
    for candidate in sorted(candidates):
        if view.definitely_absent(candidate):
            probes.append(
                SemiJoinProbe(candidate_id=candidate, bloom_absent=True)
            )
            continue
        lower, upper = view.boundaries_proven(candidate)
        probe = SemiJoinProbe(candidate_id=candidate, lower=lower, upper=upper)
        probes.append(probe)
        if probe.matched:
            survivors.append(candidate)
    return survivors, SemiJoinStage(keyword=view.keyword, probes=tuple(probes))


def conjunctive_join(
    views: list[IndexView],
    order: str = "size",
    plan: str = "cyclic",
) -> tuple[list[int], ConjunctiveVO]:
    """Evaluate one conjunctive component over its keyword trees.

    ``order="size"`` (default) sorts trees smallest-first per the
    paper's footnote 3; ``order="given"`` keeps the caller's order.
    ``plan`` selects the multiway strategy: the default ``"cyclic"``
    walk, or ``"semijoin"`` (base pair + per-candidate stages).
    """
    if not views:
        raise QueryError("a conjunctive component needs at least one keyword")
    if order not in ("size", "given"):
        raise QueryError(f"unknown join order {order!r}")
    if plan not in ("cyclic", "semijoin"):
        raise QueryError(f"unknown join plan {plan!r}")
    keywords = tuple(v.keyword for v in views)
    for view in views:
        if len(view) == 0:
            return [], ConjunctiveVO(
                keywords=keywords, empty_keyword=view.keyword
            )
    ordered = sorted(views, key=len) if order == "size" else list(views)
    if len(ordered) == 1:
        entries = ordered[0].all_proven()
        vo = FullScanVO(keyword=ordered[0].keyword, entries=tuple(entries))
        return [e.object_id for e in entries], ConjunctiveVO(
            keywords=keywords, base=vo
        )
    if plan == "cyclic" or len(ordered) == 2:
        matches, base_vo = multiway_join(ordered)
        return matches, ConjunctiveVO(keywords=keywords, base=base_vo)
    matches, base_vo = multiway_join(ordered[:2])
    stages: list[SemiJoinStage] = []
    for view in ordered[2:]:
        if not matches:
            # No candidates left: later stages are vacuous; stop here.
            break
        matches, stage = semi_join(matches, view)
        stages.append(stage)
    return matches, ConjunctiveVO(
        keywords=keywords, base=base_vo, stages=tuple(stages)
    )
