"""Boolean keyword-query parsing and DNF normalisation.

The paper's query input is a monotone Boolean expression over keywords,
assumed to be in disjunctive normal form:
``Q = q_1 v q_2 v ... v q_n`` with each ``q_i = w_1 ^ w_2 ^ ... ^ w_l``.
This module accepts arbitrary monotone expressions (with parentheses)
and normalises them to DNF, so callers can write queries naturally:

>>> KeywordQuery.parse('("COVID-19" AND Vaccine) OR ("SARS-CoV-2" AND Vaccine)')
KeywordQuery(conjunctions=[{'covid-19', 'vaccine'}, {'sars-cov-2', 'vaccine'}])

Operators: ``AND``/``&&``/``&``/``∧`` and ``OR``/``||``/``|``/``∨``
(case-insensitive for the word forms).  Negation is rejected — the ADS
schemes authenticate monotone queries only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objects import normalise_keyword
from repro.errors import QueryError

_AND_TOKENS = {"and", "&&", "&", "∧"}
_OR_TOKENS = {"or", "||", "|", "∨"}
_NOT_TOKENS = {"not", "!", "¬"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'kw' | 'and' | 'or' | 'lparen' | 'rparen'
    value: str


def _tokenise(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(":
            tokens.append(_Token("lparen", ch))
            i += 1
            continue
        if ch == ")":
            tokens.append(_Token("rparen", ch))
            i += 1
            continue
        if ch == '"' or ch == "'":
            end = text.find(ch, i + 1)
            if end == -1:
                raise QueryError(f"unterminated quote starting at offset {i}")
            tokens.append(_Token("kw", text[i + 1 : end]))
            i = end + 1
            continue
        # Bare word or symbolic operator.
        j = i
        while j < n and not text[j].isspace() and text[j] not in '()"\'':
            j += 1
        word = text[i:j]
        lowered = word.lower()
        if lowered in _AND_TOKENS:
            tokens.append(_Token("and", word))
        elif lowered in _OR_TOKENS:
            tokens.append(_Token("or", word))
        elif lowered in _NOT_TOKENS:
            raise QueryError(
                "negation is not supported: the ADS schemes authenticate "
                "monotone keyword queries only"
            )
        else:
            tokens.append(_Token("kw", word))
        i = j
    return tokens


class _Parser:
    """Recursive-descent parser for ``or_expr := and_expr (OR and_expr)*``."""

    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> list[frozenset[str]]:
        """Parse from the external representation."""
        dnf = self._or_expr()
        if self._pos != len(self._tokens):
            raise QueryError(
                f"unexpected token {self._tokens[self._pos].value!r}"
            )
        return dnf

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._pos += 1
        return token

    # Each production returns the expression already in DNF: a list of
    # conjunctions, each a frozenset of keywords.

    def _or_expr(self) -> list[frozenset[str]]:
        result = self._and_expr()
        while (tok := self._peek()) is not None and tok.kind == "or":
            self._advance()
            result = result + self._and_expr()
        return result

    def _and_expr(self) -> list[frozenset[str]]:
        result = self._atom()
        while (tok := self._peek()) is not None and tok.kind in ("and", "kw", "lparen"):
            if tok.kind == "and":
                self._advance()
            # Adjacent atoms without an operator read as implicit AND.
            result = _distribute(result, self._atom())
        return result

    def _atom(self) -> list[frozenset[str]]:
        token = self._advance()
        if token.kind == "kw":
            return [frozenset({normalise_keyword(token.value)})]
        if token.kind == "lparen":
            inner = self._or_expr()
            closing = self._advance()
            if closing.kind != "rparen":
                raise QueryError("missing closing parenthesis")
            return inner
        raise QueryError(f"unexpected token {token.value!r}")


def _distribute(
    left: list[frozenset[str]], right: list[frozenset[str]]
) -> list[frozenset[str]]:
    """AND of two DNF expressions: cross-product of conjunctions."""
    return [l | r for l in left for r in right]


def _absorb(conjunctions: list[frozenset[str]]) -> list[frozenset[str]]:
    """Remove duplicate and absorbed conjunctions (a ⊆ b makes b redundant)."""
    unique = list(dict.fromkeys(conjunctions))
    kept: list[frozenset[str]] = []
    for conj in sorted(unique, key=len):
        if not any(existing <= conj for existing in kept):
            kept.append(conj)
    return kept


@dataclass(frozen=True)
class KeywordQuery:
    """A keyword query in disjunctive normal form.

    ``conjunctions`` is a list of keyword sets; an object matches the
    query when it carries every keyword of at least one conjunction.
    """

    conjunctions: tuple[frozenset[str], ...]

    @classmethod
    def parse(cls, text: str) -> "KeywordQuery":
        """Parse an arbitrary monotone Boolean expression into DNF."""
        tokens = _tokenise(text)
        if not tokens:
            raise QueryError("empty query")
        dnf = _Parser(tokens).parse()
        return cls(conjunctions=tuple(_absorb(dnf)))

    @classmethod
    def conjunctive(cls, keywords: list[str]) -> "KeywordQuery":
        """Convenience constructor for a single conjunction."""
        if not keywords:
            raise QueryError("a conjunctive query needs at least one keyword")
        return cls(
            conjunctions=(frozenset(normalise_keyword(w) for w in keywords),)
        )

    def all_keywords(self) -> frozenset[str]:
        """Every keyword mentioned by the query."""
        out: set[str] = set()
        for conj in self.conjunctions:
            out |= conj
        return frozenset(out)

    def matches(self, keywords: frozenset[str]) -> bool:
        """Evaluate the query against an object's keyword set."""
        return any(conj <= keywords for conj in self.conjunctions)

    def __str__(self) -> str:
        parts = [
            " AND ".join(sorted(conj)) if len(conj) > 1 else next(iter(conj))
            for conj in self.conjunctions
        ]
        return " OR ".join(f"({p})" if " AND " in p else p for p in parts)
