"""Client-side result verification (Algorithm 6 and its MB-tree twin).

Given the SP's ``VO_sp`` and the authenticated digests ``VO_chain`` read
from the blockchain, the client re-derives the result set and checks:

* **soundness** — every claimed entry verifies against the on-chain
  digest of its keyword tree, and every returned object hashes to its
  proven digest (so it originated from the DO, unmodified);
* **completeness** — the join walk is *replayed*: each round's probed
  tree must match the walk's deterministic cyclic schedule, targets
  chain from a proven-first entry through probed upper boundaries,
  boundary entries are adjacent, and terminal rounds carry last-entry
  evidence (the termination-vs-``cnt`` check of Algorithm 6).

The scheme-specific crypto lives behind the :class:`ProofSystem`
protocol: the Merkle family implements it over Merkle paths, the
Chameleon family over CVC membership proofs plus the on-chain Bloom
filters for the starred variant.  Every check failure raises
:class:`~repro.errors.VerificationError` naming the violated criterion.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.multiproof import LeafRef
from repro.core.objects import DataObject
from repro.core.query.parser import KeywordQuery
from repro.core.query.vo import (
    ConjunctiveVO,
    FullScanVO,
    MultiWayJoinVO,
    ProvenEntry,
    QueryAnswer,
    SemiJoinProbe,
)
from repro.crypto.hashing import digests_equal
from repro.errors import VerificationError
from repro.parallel import Executor, SerialExecutor


class ProofSystem(Protocol):
    """Scheme-specific verification callbacks bound to ``VO_chain``."""

    value_bytes: int

    def verify_entry(self, keyword: str, entry: ProvenEntry) -> None:
        """Authenticate one proven entry; raise on failure."""
        ...

    def is_first(self, keyword: str, entry: ProvenEntry) -> bool:
        """Is this entry provably the keyword tree's first?"""
        ...

    def is_last(self, keyword: str, entry: ProvenEntry) -> bool:
        """Is this entry provably the keyword tree's last?"""
        ...

    def adjacent(
        self, keyword: str, lower: ProvenEntry, upper: ProvenEntry
    ) -> bool:
        """Are the two (already verified) entries consecutive?"""
        ...

    def keyword_empty(self, keyword: str) -> bool:
        """Does ``VO_chain`` show this keyword's tree as empty?"""
        ...

    def definitely_absent(self, keyword: str, object_id: int) -> bool:
        """Can the client conclude absence from on-chain filters alone?"""
        ...


@dataclass
class VerifiedResults:
    """Outcome of a successful verification."""

    ids: set[int]
    hashes: dict[int, bytes] = field(default_factory=dict)


def _check(condition: bool, reason: str) -> None:
    if not condition:
        raise VerificationError(reason)


def _verify_entry_task(args: tuple[ProofSystem, str, ProvenEntry]) -> None:
    """Executor task: authenticate one entry (module-level, picklable)."""
    ps, keyword, entry = args
    ps.verify_entry(keyword, entry)


def verify_full_scan(
    conj: frozenset[str],
    vo: FullScanVO,
    ps: ProofSystem,
    executor: Executor | None = None,
) -> VerifiedResults:
    """Single-keyword component: the entire posting list is the result.

    Entry authentication is independent per entry, so a parallel
    ``executor`` fans it out; the structural checks stay sequential.
    """
    _check(
        conj == {vo.keyword},
        f"full-scan VO keyword {vo.keyword!r} does not match the query",
    )
    entries = vo.entries
    _check(len(entries) > 0, "full scan of a non-empty keyword returned nothing")
    # Compressed entries share one multiproof whose single fold is
    # memoised on the proof system; fanning them out to a pool would
    # ship one proof-system copy per entry and re-fold the whole proof
    # in every worker — O(n^2) digests for an O(n) check.
    compressed = any(isinstance(e.proof, LeafRef) for e in entries)
    if (
        executor is not None
        and executor.kind != "serial"
        and len(entries) > 1
        and not compressed
    ):
        executor.map(
            _verify_entry_task, [(ps, vo.keyword, e) for e in entries]
        )
    else:
        for entry in entries:
            ps.verify_entry(vo.keyword, entry)
    _check(
        ps.is_first(vo.keyword, entries[0]),
        "full scan does not start at the tree's first entry",
    )
    for prev, nxt in zip(entries, entries[1:]):
        _check(
            prev.object_id < nxt.object_id,
            "full-scan entries are not strictly increasing",
        )
        _check(
            ps.adjacent(vo.keyword, prev, nxt),
            "full scan skips entries (adjacency violated)",
        )
    _check(
        ps.is_last(vo.keyword, entries[-1]),
        "full scan does not end at the tree's last entry",
    )
    return VerifiedResults(
        ids={e.object_id for e in entries},
        hashes={e.object_id: e.object_hash for e in entries},
    )


def verify_multiway(vo: MultiWayJoinVO, ps: ProofSystem) -> VerifiedResults:
    """Replay and verify the k-way cyclic join walk.

    The client recomputes the deterministic walk state — target, home
    tree, confirmation count, cyclic probe offset — and requires every
    round to match the schedule, so the SP cannot silently skip a tree
    or a stretch of the ID space.
    """
    k = len(vo.trees)
    _check(k >= 2, "multiway join needs at least two trees")
    _check(len(set(vo.trees)) == k, "duplicate trees in join VO")
    results = VerifiedResults(ids=set())
    target = vo.first_target
    ps.verify_entry(vo.trees[0], target)
    _check(
        ps.is_first(vo.trees[0], target),
        "join does not start at the first entry of its first tree",
    )
    home = 0
    confirm = 0
    offset = 1
    terminal = False
    for rnd in vo.rounds:
        _check(not terminal, "join rounds continue past the terminal round")
        expected_probe = (home + offset) % k
        _check(
            rnd.probe_tree == expected_probe,
            "round probes the wrong tree (walk schedule violated)",
        )
        probe_kw = vo.trees[rnd.probe_tree]
        home_kw = vo.trees[home]
        if rnd.kind == "skip":
            _check(
                ps.definitely_absent(probe_kw, target.object_id),
                "skip round not justified by the on-chain Bloom filters",
            )
            if rnd.next_target is None:
                _check(
                    ps.is_last(home_kw, target),
                    "skip-terminated join lacks last-entry evidence",
                )
                terminal = True
                continue
            ps.verify_entry(home_kw, rnd.next_target)
            _check(
                ps.adjacent(home_kw, target, rnd.next_target),
                "skip round jumps over entries in the home tree",
            )
            target = rnd.next_target
            confirm = 0
            offset = 1
            continue
        # Standard probe round.
        if rnd.lower is None:
            _check(
                rnd.upper is not None,
                "probe round reports an empty tree mid-join",
            )
            assert rnd.upper is not None
            ps.verify_entry(probe_kw, rnd.upper)
            _check(
                ps.is_first(probe_kw, rnd.upper),
                "missing lower boundary without first-entry evidence",
            )
            _check(
                rnd.upper.object_id > target.object_id,
                "upper boundary does not exceed the target",
            )
            target = rnd.upper
            home = rnd.probe_tree
            confirm = 0
            offset = 1
            continue
        ps.verify_entry(probe_kw, rnd.lower)
        _check(
            rnd.lower.object_id <= target.object_id,
            "lower boundary exceeds the target",
        )
        matched = rnd.lower.object_id == target.object_id
        if rnd.upper is not None:
            ps.verify_entry(probe_kw, rnd.upper)
            _check(
                rnd.upper.object_id > target.object_id,
                "upper boundary does not exceed the target",
            )
            _check(
                ps.adjacent(probe_kw, rnd.lower, rnd.upper),
                "boundary entries are not adjacent (results may be missing)",
            )
        else:
            _check(
                ps.is_last(probe_kw, rnd.lower),
                "open-ended probe lacks last-entry evidence",
            )
        if matched:
            confirm += 1
            if confirm == k - 1:
                results.ids.add(target.object_id)
                results.hashes[target.object_id] = rnd.lower.object_hash
                if rnd.upper is None:
                    terminal = True
                    continue
                target = rnd.upper
                home = rnd.probe_tree
                confirm = 0
                offset = 1
            else:
                offset += 1
            continue
        if rnd.upper is None:
            terminal = True
            continue
        target = rnd.upper
        home = rnd.probe_tree
        confirm = 0
        offset = 1
    _check(terminal, "join ended without a terminal round")
    return results


def verify_semi_join_stage(
    keyword: str,
    candidates: set[int],
    candidate_hashes: dict[int, bytes],
    probes: Sequence[SemiJoinProbe],
    ps: ProofSystem,
) -> set[int]:
    """Verify one semi-join stage: every candidate probed, matches kept."""
    probed = {p.candidate_id for p in probes}
    _check(
        probed == candidates,
        f"semi-join stage for {keyword!r} does not probe every candidate",
    )
    _check(len(probes) == len(probed), "duplicate probes in semi-join stage")
    survivors: set[int] = set()
    for probe in probes:
        cid = probe.candidate_id
        if probe.bloom_absent:
            _check(
                ps.definitely_absent(keyword, cid),
                "Bloom-based absence claim not supported by VO_chain",
            )
            continue
        if probe.lower is not None and probe.lower.object_id == cid:
            ps.verify_entry(keyword, probe.lower)
            _check(
                digests_equal(
                    probe.lower.object_hash,
                    candidate_hashes.get(cid, probe.lower.object_hash),
                ),
                "candidate hash mismatch across trees",
            )
            survivors.add(cid)
            continue
        # Absence proof via boundaries.
        if probe.lower is None:
            _check(
                probe.upper is not None,
                "absence probe carries no boundary evidence",
            )
            assert probe.upper is not None
            ps.verify_entry(keyword, probe.upper)
            _check(
                ps.is_first(keyword, probe.upper)
                and probe.upper.object_id > cid,
                "lower-open absence proof invalid",
            )
            continue
        ps.verify_entry(keyword, probe.lower)
        _check(
            probe.lower.object_id < cid,
            "absence proof's lower boundary does not precede the candidate",
        )
        if probe.upper is None:
            _check(
                ps.is_last(keyword, probe.lower),
                "upper-open absence proof lacks last-entry evidence",
            )
            continue
        ps.verify_entry(keyword, probe.upper)
        _check(
            probe.upper.object_id > cid,
            "absence proof's upper boundary does not follow the candidate",
        )
        _check(
            ps.adjacent(keyword, probe.lower, probe.upper),
            "absence proof boundaries are not adjacent",
        )
    return survivors


def verify_conjunct(
    conj: frozenset[str],
    vo: ConjunctiveVO,
    ps: ProofSystem,
    executor: Executor | None = None,
) -> VerifiedResults:
    """Verify one conjunctive component's VO; returns its result IDs."""
    _check(
        set(vo.keywords) == conj,
        "VO keywords do not match the query conjunction",
    )
    if vo.empty_keyword is not None:
        _check(
            vo.empty_keyword in conj,
            "claimed-empty keyword is not part of the conjunction",
        )
        _check(
            ps.keyword_empty(vo.empty_keyword),
            "keyword claimed empty but VO_chain shows objects",
        )
        return VerifiedResults(ids=set())
    _check(vo.base is not None, "VO carries neither a base join nor emptiness")
    if isinstance(vo.base, FullScanVO):
        _check(not vo.stages, "full scan must not carry semi-join stages")
        return verify_full_scan(conj, vo.base, ps, executor=executor)
    assert isinstance(vo.base, MultiWayJoinVO)
    base = vo.base
    base_trees = set(base.trees)
    _check(
        base_trees <= conj,
        "base join keywords are not part of the conjunction",
    )
    results = verify_multiway(base, ps)
    remaining = set(conj) - base_trees
    if not vo.stages:
        # Either the walk covered every keyword (cyclic plan), or the
        # semi-join plan exited early on an empty intermediate result —
        # in which case the component's result is provably empty.
        _check(
            not remaining or not results.ids,
            "join does not cover every conjunction keyword",
        )
        if remaining:
            return VerifiedResults(ids=set())
        return results
    # Semi-join plan: the base must be the two-tree walk.
    _check(
        len(base.trees) == 2,
        "semi-join stages require a two-tree base join",
    )
    candidates = set(results.ids)
    for stage in vo.stages:
        _check(
            stage.keyword in remaining,
            f"unexpected or repeated semi-join keyword {stage.keyword!r}",
        )
        remaining.discard(stage.keyword)
        candidates = verify_semi_join_stage(
            stage.keyword, candidates, results.hashes, stage.probes, ps
        )
    _check(
        not remaining or not candidates,
        "conjunction keywords left unprobed while candidates remain",
    )
    results.ids = candidates
    results.hashes = {c: results.hashes[c] for c in candidates}
    return results


def _verify_conjunct_task(
    args: tuple[frozenset[str], ConjunctiveVO, ProofSystem]
) -> VerifiedResults:
    """Executor task: verify one conjunct (module-level, picklable)."""
    conj, conj_vo, ps = args
    return verify_conjunct(conj, conj_vo, ps)


def verify_query(
    query: KeywordQuery,
    answer: QueryAnswer,
    ps: ProofSystem,
    executor: Executor | None = None,
) -> VerifiedResults:
    """Verify a full DNF query answer end to end.

    Checks every conjunctive component, unions the verified IDs, matches
    them against the SP's claimed results, and authenticates every
    returned object against its proven digest and the query condition.

    With a parallel ``executor``, independent conjuncts verify
    concurrently; a single conjunct instead fans out its per-entry
    authentication (the pools are never nested).  Failures propagate as
    :class:`~repro.errors.VerificationError` exactly as on the serial
    path.
    """
    _check(
        len(answer.vo.conjuncts) == len(query.conjunctions),
        "VO component count does not match the query's DNF",
    )
    attach = getattr(ps, "attach_multiproofs", None)
    if attach is not None:
        attach(answer.vo.multiproofs)
    else:
        _check(
            not answer.vo.multiproofs,
            "VO carries multiproofs but the proof system cannot verify them",
        )
    if executor is None:
        executor = SerialExecutor()
    union = VerifiedResults(ids=set())
    pairs = list(zip(query.conjunctions, answer.vo.conjuncts))
    if executor.kind != "serial" and len(pairs) > 1:
        partials = executor.map(
            _verify_conjunct_task,
            [(conj, conj_vo, ps) for conj, conj_vo in pairs],
        )
    else:
        partials = [
            verify_conjunct(conj, conj_vo, ps, executor=executor)
            for conj, conj_vo in pairs
        ]
    for partial in partials:
        union.ids |= partial.ids
        union.hashes.update(partial.hashes)
    _check(
        set(answer.result_ids) == union.ids,
        "SP's claimed result set differs from the verified result set",
    )
    for object_id in union.ids:
        obj = answer.objects.get(object_id)
        _check(obj is not None, f"result object {object_id} not returned")
        assert isinstance(obj, DataObject)
        _check(
            obj.object_id == object_id,
            "returned object carries a different ID",
        )
        _check(
            digests_equal(obj.digest(), union.hashes[object_id]),
            f"object {object_id} does not hash to its proven digest",
        )
        _check(
            query.matches(obj.keyword_set()),
            f"object {object_id} does not satisfy the query condition",
        )
    return union
