"""Verification-object (VO) structures.

The SP answers a query with the results plus ``VO_sp``; the client
combines it with the authenticated digests ``VO_chain`` read from the
blockchain.  These dataclasses are scheme-agnostic: the per-entry
``proof`` slot carries a :class:`~repro.core.mbtree.MerklePath` for the
Merkle-inverted family and a
:class:`~repro.core.chameleon.MembershipProof` for the Chameleon family.

Every structure reports its serialised byte size — the paper's "VO size"
metric (Figs. 11–13) — via ``byte_size``; sizes follow the natural wire
encoding (8-byte IDs, 32-byte digests, group elements at the scheme's
value width).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

#: Width of a CVC group element in bytes for default accounting; the
#: schemes override it with their actual modulus size.
DEFAULT_VALUE_BYTES = 128


def _proof_size(proof: object, value_bytes: int) -> int:
    """Size of a scheme proof object."""
    if proof is None:
        return 0
    byte_size = getattr(proof, "byte_size", None)
    if byte_size is None:
        raise TypeError(f"proof {type(proof)!r} lacks byte_size()")
    try:
        return byte_size(value_bytes)
    except TypeError:
        return byte_size()


def _varint_size(value: int) -> int:
    """Bytes of the codec's LEB128 varint encoding."""
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def _slot_size(entry: "ProvenEntry | None", value_bytes: int) -> int:
    """Wire size of an optional-entry slot (1 presence byte when absent)."""
    return 1 if entry is None else entry.byte_size(value_bytes)


@dataclass(frozen=True)
class ProvenEntry:
    """A ``<id, h(o)>`` entry together with its authenticity proof."""

    object_id: int
    object_hash: bytes
    proof: object

    def byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Exact wire size, including the presence and proof-tag bytes.

        A LeafRef-proofed entry (v3 frames only) omits the inline
        ``id + hash`` — the multiproof leaf table carries them — so it
        costs just the presence/tag bytes plus two varints.
        """
        proof = self.proof
        if proof is not None and hasattr(proof, "proof_index"):
            return 2 + _proof_size(proof, value_bytes)
        return 1 + 8 + 32 + 1 + _proof_size(proof, value_bytes)


@dataclass(frozen=True)
class JoinRound:
    """One round of the authenticated join walk.

    ``probe_tree`` indexes the probed tree within the join's tree list.
    ``kind``:

    * ``"probe"`` — the standard round: the probed tree returns the
      boundary entries around the current target (``lower``/``upper``).
      A missing ``upper`` means the probed tree has nothing above the
      target; a missing ``lower`` means the target precedes the probed
      tree's first entry.
    * ``"skip"`` — Chameleon*-only: the probed tree's on-chain Bloom
      filters already prove the target absent, so no boundary proofs
      are shipped; ``next_target`` advances the walk within the
      target's *home* tree (``None`` when the target was its tree's
      last entry, terminating the join).
    """

    kind: Literal["probe", "skip"]
    probe_tree: int = 0
    lower: ProvenEntry | None = None
    upper: ProvenEntry | None = None
    next_target: ProvenEntry | None = None

    def byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Exact wire size (absent entry slots still cost 1 byte)."""
        total = 2  # kind tag + probe index
        for entry in (self.lower, self.upper, self.next_target):
            total += _slot_size(entry, value_bytes)
        return total


@dataclass(frozen=True)
class MultiWayJoinVO:
    """VO for the k-way cyclic join walk (Section III-B generalised).

    ``trees`` lists the joined keywords in walk order (smallest first
    under the default plan).  The walk starts at ``trees[0]``'s first
    entry; each round probes the next tree in cyclic order (skipping
    the target's home tree), a target confirmed in all ``k-1`` other
    trees is a result, and a probe whose ``upper`` is missing while the
    target fails (or completes its confirmations) terminates the walk.
    With two trees this degenerates to the paper's Fig. 4 walk exactly.
    """

    trees: tuple[str, ...]
    first_target: ProvenEntry
    rounds: tuple[JoinRound, ...]

    def byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Exact wire size (tree count + names, target, round count)."""
        total = 1 + sum(len(t) + 1 for t in self.trees) + 2
        total += self.first_target.byte_size(value_bytes)
        total += sum(r.byte_size(value_bytes) for r in self.rounds)
        return total


@dataclass(frozen=True)
class FullScanVO:
    """VO for a single-keyword conjunction: the whole posting list.

    Completeness comes from pairwise adjacency of consecutive entries
    plus first/last evidence, checked by the verifier.
    """

    keyword: str
    entries: tuple[ProvenEntry, ...]

    def byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Exact wire size (keyword length byte + entry count)."""
        return (
            1
            + len(self.keyword)
            + 2
            + sum(e.byte_size(value_bytes) for e in self.entries)
        )


@dataclass(frozen=True)
class SemiJoinProbe:
    """Membership probe of one surviving candidate in a later tree.

    ``bloom_absent`` marks a Chameleon*-style skip: the on-chain filter
    proves absence and no boundary proofs are shipped.
    """

    candidate_id: int
    bloom_absent: bool = False
    lower: ProvenEntry | None = None
    upper: ProvenEntry | None = None

    @property
    def matched(self) -> bool:
        """True when the lower boundary equals the target key."""
        return (
            not self.bloom_absent
            and self.lower is not None
            and self.lower.object_id == self.candidate_id
        )

    def byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Exact wire size (absent boundary slots still cost 1 byte)."""
        total = 9  # candidate id + flag
        for entry in (self.lower, self.upper):
            total += _slot_size(entry, value_bytes)
        return total


@dataclass(frozen=True)
class SemiJoinStage:
    """All probes of one additional keyword tree (semi-join plan)."""

    keyword: str
    probes: tuple[SemiJoinProbe, ...]

    def byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Exact wire size (keyword length byte + probe count)."""
        return (
            1
            + len(self.keyword)
            + 2
            + sum(p.byte_size(value_bytes) for p in self.probes)
        )


@dataclass(frozen=True)
class ConjunctiveVO:
    """VO for one conjunctive component ``w_1 ^ ... ^ w_l``.

    Exactly one of the following shapes:

    * ``empty_keyword`` set — some queried keyword has no objects; the
      client confirms against ``VO_chain`` and the component is empty;
    * ``base`` a :class:`FullScanVO` — single-keyword component;
    * ``base`` a :class:`MultiWayJoinVO` over all component keywords —
      the default cyclic plan; ``stages`` is empty;
    * ``base`` a two-tree :class:`MultiWayJoinVO` plus one
      :class:`SemiJoinStage` per remaining keyword — the semi-join plan
      (footnote 3 taken literally), exposed for the plan ablation.
    """

    keywords: tuple[str, ...]
    base: MultiWayJoinVO | FullScanVO | None = None
    stages: tuple[SemiJoinStage, ...] = ()
    empty_keyword: str | None = None

    def byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Exact wire size (counts, flags and the base/stage tags)."""
        # keyword count + empty flag + base tag + stage count
        total = 4 + sum(len(k) + 1 for k in self.keywords)
        if self.empty_keyword is not None:
            total += len(self.empty_keyword) + 1
        if self.base is not None:
            total += self.base.byte_size(value_bytes)
        total += sum(s.byte_size(value_bytes) for s in self.stages)
        return total


def iter_proven_entries(vo: "QueryVO"):
    """Yield every :class:`ProvenEntry` of a VO in the codec's write order."""
    for conj in vo.conjuncts:
        base = conj.base
        if isinstance(base, MultiWayJoinVO):
            yield base.first_target
            for rnd in base.rounds:
                for entry in (rnd.lower, rnd.upper, rnd.next_target):
                    if entry is not None:
                        yield entry
        elif isinstance(base, FullScanVO):
            yield from base.entries
        for stage in conj.stages:
            for probe in stage.probes:
                for entry in (probe.lower, probe.upper):
                    if entry is not None:
                        yield entry


@dataclass(frozen=True)
class QueryVO:
    """``VO_sp``: the full verification object for a DNF query.

    ``multiproofs`` is the deduplicated proof table of the v3 encoding:
    one :class:`~repro.core.multiproof.TreeMultiproof` per
    ``(tree, commitment)`` referenced by the entries, with each entry's
    per-path proof replaced by a
    :class:`~repro.core.multiproof.LeafRef` into the table.  Empty for
    legacy (v2) VOs and for the Chameleon family.
    """

    conjuncts: tuple[ConjunctiveVO, ...]
    multiproofs: tuple = ()

    def byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Exact wire size under the codec's auto-selected frame version.

        Mirrors :meth:`~repro.core.query.codec.VOCodec.encode`: the v3
        frame (version marker + multiproof table) is chosen exactly when
        the VO carries multiproofs or any LeafRef-proofed entry;
        otherwise the legacy v2 frame (a bare conjunct count).
        """
        total = 1 + sum(c.byte_size(value_bytes) for c in self.conjuncts)
        if self.multiproofs or any(
            entry.proof is not None and hasattr(entry.proof, "proof_index")
            for entry in iter_proven_entries(self)
        ):
            total += 1 + _varint_size(len(self.multiproofs))
            total += sum(mp.byte_size() for mp in self.multiproofs)
        return total

    def proof_byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Proof-only bytes: per-entry proofs plus the multiproof table.

        Excludes the structural framing (IDs, hashes, keywords), so the
        ``vo_proof_bytes`` bench metric attributes compression to the
        proofs it actually deduplicates.  The multiproof leaf table's
        40-byte ``id + hash`` rows are excluded for the same reason:
        they relocate the entry bindings a v2 frame carries inline (the
        LeafRef entries drop theirs), so counting them as proof bytes
        would misattribute framing to the proof side.
        """
        total = sum(
            _proof_size(entry.proof, value_bytes)
            for entry in iter_proven_entries(self)
        )
        total += sum(
            mp.byte_size() - 40 * len(mp.leaves) for mp in self.multiproofs
        )
        return total


@dataclass
class QueryAnswer:
    """What the SP returns: result IDs, the raw objects, and ``VO_sp``."""

    result_ids: list[int]
    objects: dict[int, object]  # id -> DataObject
    vo: QueryVO

    def vo_byte_size(self, value_bytes: int = DEFAULT_VALUE_BYTES) -> int:
        """Serialised VO size in bytes."""
        return self.vo.byte_size(value_bytes)


@dataclass
class VOStatistics:
    """Aggregate accounting for experiments (VO size split by origin)."""

    sp_bytes: int = 0
    chain_bytes: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """Combined byte count."""
        return self.sp_bytes + self.chain_bytes
