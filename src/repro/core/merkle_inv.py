"""The baseline Merkle^inv index (Section IV-A).

The smart contract maintains the *complete* MB-tree of every keyword in
contract storage, so each object insertion pays for tree traversal,
entry storage, ancestor re-hashing and node splits at on-chain prices —
the ``O(L * C_1 * log n)`` cost Table II attributes to the baseline.

The contract mirrors the tree structurally in memory (the simulator's
stand-in for decoded storage) while every cost-bearing step is charged
through an :class:`InsertObserver` exactly where the paper's Section
IV-A cost analysis places it:

* descending to the right-most leaf: one ``C_sload`` per level;
* storing the inserted entry: one ``C_sstore``;
* re-hashing each touched node: ``F`` child-hash ``C_sload``s, one
  ``C_hash`` over the node payload, one ``C_supdate`` of the stored
  hash word;
* a node split: two ``C_sstore`` (new node content + hash) plus
  ``C_supdate`` redistributions of the original node and its parent.
"""

from __future__ import annotations

from repro import obs
from repro.core.mbtree import DEFAULT_FANOUT, MBTree, NodeHandle
from repro.core.objects import ObjectMetadata
from repro.crypto.hashing import word_count
from repro.ethereum.contract import SmartContract
from repro.ethereum.gas import GasMeter


class _ChargingObserver:
    """Translates MB-tree structural events into gas charges."""

    def __init__(self, meter: GasMeter, fanout: int) -> None:
        self._meter = meter
        self._fanout = fanout

    def node_visited(self, node: NodeHandle) -> None:
        """Charge for fetching a node's content word."""
        self._meter.sload(1)  # fetch the node's content word

    def entry_inserted(self, leaf: NodeHandle) -> None:
        """Charge for storing the new entry."""
        self._meter.sstore(1)  # store the new <id, h(o)> entry

    def node_rehashed(self, node: NodeHandle) -> None:
        """Charge for recomputing and storing a node hash."""
        self._meter.sload(node.width)  # load the child/entry hash words
        self._meter.hash(word_count(node.payload()))
        self._meter.supdate(1)  # write the refreshed node hash

    def node_split(self, original: NodeHandle, new_sibling: NodeHandle) -> None:
        """Charge for creating and wiring a split node."""
        self._meter.sstore(2)  # new node: content word + hash word
        self._meter.sload(self._fanout)  # read entries for redistribution
        self._meter.supdate(1)  # rewrite the original node's content
        self._meter.supdate(1)  # parent gains a child pointer

    def root_replaced(self, new_root: NodeHandle) -> None:
        """Charge for materialising a new root node."""
        self._meter.sstore(2)  # new root node: content + hash
        self._meter.supdate(1)  # root pointer word


class MerkleInvContract(SmartContract):
    """On-chain side of the baseline Merkle^inv index.

    A single DO transaction registers the object's meta-data and inserts
    it into every keyword's on-chain MB-tree.
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        super().__init__()
        self.fanout = fanout
        self._trees: dict[str, MBTree] = {}

    def register_and_insert(
        self, object_id: int, object_hash: bytes, keywords: tuple[str, ...]
    ) -> None:
        """DO entry point: store meta-data and update every keyword tree."""
        with obs.span("maintain.mi.insert", keywords=len(keywords)):
            self.env.read_calldata(object_hash)
            self.storage.store(("objhash", object_id), object_hash)
            for keyword in keywords:
                tree = self._trees.get(keyword)
                if tree is None:
                    tree = MBTree(fanout=self.fanout)
                    self._trees[keyword] = tree
                observer = _ChargingObserver(self.env.meter, self.fanout)
                tree.insert(object_id, object_hash, observer=observer)
                # Persist the refreshed root hash word for this keyword.
                self.storage.store(("root", keyword), tree.root_hash)
            self.emit(
                "ObjectInserted", object_id=object_id, keywords=len(keywords)
            )

    # -- free views (client reads of confirmed state) --------------------------

    def view_root(self, keyword: str) -> bytes:
        """The keyword tree's root hash (zero word when unknown)."""
        return self.storage.peek(("root", keyword))

    def view_object_hash(self, object_id: int) -> bytes:
        """Free view: the registered hash of one object."""
        return self.storage.peek(("objhash", object_id))


def fresh_contract(fanout: int = DEFAULT_FANOUT) -> MerkleInvContract:
    """Factory used by the system facade and the benches."""
    return MerkleInvContract(fanout=fanout)


def metadata_payload(metadata: ObjectMetadata) -> bytes:
    """The DO transaction's calldata for one object."""
    return metadata.payload_bytes()
