"""Chameleon trees (Section V): CVC-backed positional trees.

A Chameleon tree for keyword ``w`` is a ``q``-ary tree whose node at
position ``pos`` (BFS numbering, root = 0) carries a chameleon vector
commitment over ``q + 1`` slots: slot 1 holds the node's data value and
slots ``2..q+1`` hold the commitments of its children.  Every node's
commitment is *pre-determined* — ``Com(<0,...,0>, PRF(sk, pos||w))`` —
and never changes; insertions use the trapdoor to find collisions that
splice new values into the fixed commitments.  The on-chain footprint is
therefore constant: the root commitment ``c_0`` (written once) and the
object count ``cnt``.

Data binding.  The paper stores ``h(o)`` in slot 1.  We store the tagged
entry digest ``h(id || h(o))`` (the same binding the MB-tree uses for
its leaf entries) so that the *object ID* claimed for a boundary node is
authenticated even when the verifier does not hold the raw object — a
detail the paper leaves implicit but that completeness checking relies
on.

Positions double as an order index: object IDs arrive monotonically and
node positions are assigned in insertion order, so position order equals
ID order.  Adjacency (completeness) checks reduce to ``pos_u == pos_l + 1``
and termination to ``pos == cnt`` (Algorithm 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mbtree import Entry, entry_digest
from repro.core.nodestore import ChameleonStore
from repro.crypto import vc
from repro.crypto.prf import node_randomness
from repro.errors import ReproError, VerificationError

#: Default tree arity (the paper's running example uses q = 2).
DEFAULT_ARITY = 2


def parent_position(pos: int, arity: int) -> tuple[int, int]:
    """``getPar(pos)``: the parent position and 1-based child index ``j``."""
    if pos < 1:
        raise ReproError("only non-root positions have parents")
    return (pos - 1) // arity, (pos - 1) % arity + 1


def child_position(parent: int, j: int, arity: int) -> int:
    """Inverse of :func:`parent_position`."""
    if not 1 <= j <= arity:
        raise ReproError(f"child index {j} out of range for arity {arity}")
    return parent * arity + j


@dataclass(frozen=True)
class StagedInsertion:
    """An insertion whose collisions are applied but openings deferred.

    Chameleon openings are unique group elements (each slot exponent is
    coprime to the group order, so ``x -> x^e`` is a bijection): the
    opening of a slot depends only on the commitment and the slot's
    content, never on *when* it is computed.  A batch can therefore
    apply every collision first and compute all openings afterwards —
    per commitment, through one divide-and-conquer pass — and still
    produce byte-identical witnesses to the one-at-a-time path.
    """

    position: int
    object_id: int
    object_hash: bytes
    commitment: int  # c_pos
    parent_position: int
    child_index: int  # j, 1-based

    def to_proof(self, slot1_proof: int, parent_link_proof: int) -> "InsertionProof":
        """Finish the insertion proof once the openings arrive."""
        return InsertionProof(
            position=self.position,
            object_id=self.object_id,
            object_hash=self.object_hash,
            commitment=self.commitment,
            slot1_proof=slot1_proof,
            parent_link_proof=parent_link_proof,
            parent_position=self.parent_position,
            child_index=self.child_index,
        )


@dataclass(frozen=True)
class InsertionProof:
    """What the DO hands the SP for one inserted object (Algorithm 4).

    ``<cnt, o, h(o), c_pos, pi_pos, rho_par_j>`` — the object itself
    travels separately; this records the cryptographic material.
    """

    position: int
    object_id: int
    object_hash: bytes
    commitment: int  # c_pos
    slot1_proof: int  # pi_pos
    parent_link_proof: int  # rho_{par, j}
    parent_position: int
    child_index: int  # j, 1-based


@dataclass(frozen=True)
class ChameleonLink:
    """One parent-child edge in a membership proof."""

    child_index: int  # j in 1..q
    child_commitment: int
    proof: int  # parent's slot j+1 opens to child_commitment

    def byte_size(self, value_bytes: int) -> int:
        """Serialised size in bytes."""
        return 1 + 2 * value_bytes


@dataclass(frozen=True)
class MembershipProof:
    """``Pi``: proves ``<id, h(o)>`` sits at ``position`` under ``c_0``.

    ``links`` runs bottom-up; ``links[0]`` connects the proven node to
    its parent and the last link's parent is the root.  Ancestor nodes
    contribute only their link (their slot-1 payloads are irrelevant),
    matching the paper's example proof shape.
    """

    position: int
    entry_commitment: int  # c_pos of the proven node
    slot1_proof: int  # pi_pos
    links: tuple[ChameleonLink, ...]

    def byte_size(self, value_bytes: int = 128) -> int:
        """Serialised size: commitments and proofs are group elements."""
        base = 9 + 2 * value_bytes  # position + c_pos + pi + link count
        return base + sum(link.byte_size(value_bytes) for link in self.links)

    def derived_position(self, arity: int) -> int:
        """Recompute the position from the child-index chain (top-down)."""
        pos = 0
        for link in reversed(self.links):
            pos = child_position(pos, link.child_index, arity)
        return pos


def verify_membership(
    pp: vc.CVCPublicParams,
    root_commitment: int,
    count: int,
    arity: int,
    object_id: int,
    object_hash: bytes,
    proof: MembershipProof,
) -> None:
    """Verify a membership proof against the on-chain ``<c_0, cnt>``.

    Raises :class:`VerificationError` with the failed check's name; the
    position encoded in the link chain is authenticated, not trusted.
    """
    if not proof.links:
        raise VerificationError("membership proof has no links to the root")
    if proof.links[0].child_commitment != proof.entry_commitment:
        raise VerificationError("proof's first link does not carry the node")
    derived = proof.derived_position(arity)
    if derived != proof.position:
        raise VerificationError(
            f"claimed position {proof.position} does not match the "
            f"link-derived position {derived}"
        )
    if not 1 <= proof.position <= count:
        raise VerificationError(
            f"position {proof.position} outside the committed count {count}"
        )
    expected_entry = entry_digest(object_id, object_hash)
    if not vc.verify(
        pp, proof.entry_commitment, 1, expected_entry, proof.slot1_proof
    ):
        raise VerificationError("slot-1 opening of the node commitment failed")
    for depth, link in enumerate(proof.links):
        if depth + 1 < len(proof.links):
            parent_commitment = proof.links[depth + 1].child_commitment
        else:
            parent_commitment = root_commitment
        if not vc.verify(
            pp,
            parent_commitment,
            link.child_index + 1,
            link.child_commitment,
            link.proof,
        ):
            raise VerificationError(
                f"parent link at depth {depth} failed commitment verification"
            )


class ChameleonTreeDO:
    """The data owner's view of one keyword's Chameleon tree.

    Owns the trapdoor and the per-node ``aux`` values; produces the
    insertion proofs consumed by the SP (Algorithms 3 and 4).
    """

    def __init__(
        self,
        cvc: vc.ChameleonVectorCommitment,
        prf_key: bytes,
        keyword: str,
        arity: int = DEFAULT_ARITY,
    ) -> None:
        if not cvc.has_trapdoor:
            raise ReproError("the DO's tree requires the CVC trapdoor")
        if cvc.arity != arity + 1:
            raise ReproError(
                f"CVC arity must be q+1 = {arity + 1}, got {cvc.arity}"
            )
        self.cvc = cvc
        self.prf_key = prf_key
        self.keyword = keyword
        self.arity = arity
        self.count = 0
        self._aux: dict[int, vc.CVCAux] = {}
        self._commitments: dict[int, int] = {}
        self._setup()

    def _setup(self) -> None:
        """Algorithm 3: create the root node's commitment ``c_0``."""
        self.root_commitment, root_aux = self._fresh_node(0)
        self._aux[0] = root_aux
        self._commitments[0] = self.root_commitment

    def _fresh_node(self, position: int) -> tuple[int, vc.CVCAux]:
        """Pre-determined empty commitment for ``position``."""
        randomiser = node_randomness(self.prf_key, position, self.keyword)
        return self.cvc.commit_empty(randomiser)

    def snapshot(self) -> tuple[int, dict[int, vc.CVCAux], dict[int, int]]:
        """Capture the mutable tree state for transactional rollback.

        Shallow copies suffice: ``insert`` replaces aux objects rather
        than mutating them in place.
        """
        return self.count, dict(self._aux), dict(self._commitments)

    def restore(
        self, state: tuple[int, dict[int, vc.CVCAux], dict[int, int]]
    ) -> None:
        """Roll the tree back to a previously captured snapshot."""
        self.count, aux, commitments = state
        self._aux = dict(aux)
        self._commitments = dict(commitments)

    def aux_at(self, position: int) -> vc.CVCAux:
        """The auxiliary information for one node (witness computation)."""
        aux = self._aux.get(position)
        if aux is None:
            raise ReproError(f"no node at position {position}")
        return aux

    def stage_insert(self, object_id: int, object_hash: bytes) -> StagedInsertion:
        """Algorithm 4's collision half: splice the object in, defer opens.

        Applies both trapdoor collisions (the new node's slot 1 and its
        parent's child slot) and updates the tree state; the two
        openings — state-independent, see :class:`StagedInsertion` —
        are left for the caller to compute, typically batched per
        commitment across a whole ingest batch.
        """
        self.count += 1
        pos = self.count
        c_pos, aux_pos = self._fresh_node(pos)
        entry = entry_digest(object_id, object_hash)
        aux_pos = self.cvc.collide(c_pos, 1, None, entry, aux_pos, check=False)
        par, j = parent_position(pos, self.arity)
        c_par = self._commitments[par]
        aux_par = self.cvc.collide(
            c_par, j + 1, None, c_pos, self._aux[par], check=False
        )
        self._aux[pos] = aux_pos
        self._aux[par] = aux_par
        self._commitments[pos] = c_pos
        return StagedInsertion(
            position=pos,
            object_id=object_id,
            object_hash=object_hash,
            commitment=c_pos,
            parent_position=par,
            child_index=j,
        )

    def insert(self, object_id: int, object_hash: bytes) -> InsertionProof:
        """Algorithm 4: add an object, returning its insertion proof."""
        staged = self.stage_insert(object_id, object_hash)
        entry = entry_digest(object_id, object_hash)
        pi_pos = self.cvc.open(1, entry, self._aux[staged.position])
        rho = self.cvc.open(
            staged.child_index + 1,
            staged.commitment,
            self._aux[staged.parent_position],
        )
        return staged.to_proof(pi_pos, rho)


@dataclass(frozen=True)
class ChameleonBoundarySearch:
    """Boundary lookup result mirroring the MB-tree's, in proof form."""

    target: int
    lower: Entry | None
    lower_proof: MembershipProof | None
    upper: Entry | None
    upper_proof: MembershipProof | None

    @property
    def matched(self) -> bool:
        """True when the lower boundary equals the target key."""
        return self.lower is not None and self.lower.key == self.target


#: Group-element width for the default 1024-bit CVC modulus.
DEFAULT_VALUE_BYTES = 128


class ChameleonTreeSP:
    """The SP's complete copy of one keyword's Chameleon tree.

    Stores the insertion proofs streamed by the DO and assembles
    membership proofs for query processing.  All node material lives in
    a flat :class:`~repro.core.nodestore.ChameleonStore` buffer —
    positions are BFS-contiguous, so the position-to-record map and the
    ID order are both pure index arithmetic over the records, and the
    whole tree snapshots/ships as one buffer.  ``value_bytes`` is the
    group-element width (``ceil(modulus_bits / 8)``).
    """

    def __init__(
        self,
        root_commitment: int,
        arity: int = DEFAULT_ARITY,
        value_bytes: int = DEFAULT_VALUE_BYTES,
    ) -> None:
        self.store = ChameleonStore.create(arity=arity, value_bytes=value_bytes)
        self.store.root_commitment = root_commitment

    # -- flat-buffer snapshots ----------------------------------------------------

    def to_blob(self) -> bytes:
        """Snapshot the whole tree as one nodestore-v1 buffer."""
        return self.store.to_blob()

    @classmethod
    def from_blob(cls, blob: bytes | bytearray | memoryview) -> "ChameleonTreeSP":
        """Restore a tree from :meth:`to_blob` output (one buffer read)."""
        tree = cls.__new__(cls)
        tree.store = ChameleonStore.from_blob(blob)
        return tree

    def __getstate__(self) -> dict:
        return {"blob": self.to_blob()}

    def __setstate__(self, state: dict) -> None:
        self.store = ChameleonStore.from_blob(state["blob"])

    @property
    def root_commitment(self) -> int:
        """The invariant root commitment ``c_0``."""
        return self.store.root_commitment

    @root_commitment.setter
    def root_commitment(self, value: int) -> None:
        self.store.root_commitment = value

    @property
    def arity(self) -> int:
        """Tree arity ``q``."""
        return self.store.arity

    def __len__(self) -> int:
        return self.store.count

    @property
    def count(self) -> int:
        """Number of objects in the tree (the on-chain ``cnt``)."""
        return self.store.count

    def apply_insertion(self, proof: InsertionProof) -> None:
        """Ingest one DO insertion proof (in position order)."""
        count = self.store.count
        expected = count + 1
        if proof.position != expected:
            raise ReproError(
                f"insertion proofs must arrive in order; expected position "
                f"{expected}, got {proof.position}"
            )
        if count and proof.object_id <= self.store.object_id(count):
            raise ReproError("object IDs must be strictly increasing")
        self.store.append(
            object_id=proof.object_id,
            object_hash=proof.object_hash,
            commitment=proof.commitment,
            slot1_proof=proof.slot1_proof,
            parent_link_proof=proof.parent_link_proof,
            child_index=proof.child_index,
        )

    def id_at_position(self, pos: int) -> int:
        """The object ID stored at a 1-based position."""
        if not 1 <= pos <= self.count:
            raise ReproError(f"position {pos} outside tree of size {self.count}")
        return self.store.object_id(pos)

    def position_of(self, object_id: int) -> int | None:
        """``getPos``: position of an exact ID, or None."""
        rank = self.store.rank_of(object_id)  # IDs are position-sorted
        if rank > 0 and self.store.object_id(rank) == object_id:
            return rank
        return None

    def entry_at(self, pos: int) -> Entry:
        """The ``<id, h(o)>`` entry at a 1-based position."""
        return Entry(
            key=self.store.object_id(pos),
            value_hash=self.store.object_hash(pos),
        )

    def prove_membership(self, pos: int) -> MembershipProof:
        """Assemble ``Pi`` for the node at ``pos`` from stored material."""
        if not 1 <= pos <= self.count:
            raise ReproError(f"no node at position {pos}")
        store = self.store
        links: list[ChameleonLink] = []
        current = pos
        while current != 0:
            links.append(
                ChameleonLink(
                    child_index=store.child_index(current),
                    child_commitment=store.commitment(current),
                    proof=store.parent_link_proof(current),
                )
            )
            current, _ = parent_position(current, self.arity)
        return MembershipProof(
            position=pos,
            entry_commitment=store.commitment(pos),
            slot1_proof=store.slot1_proof(pos),
            links=tuple(links),
        )

    def first(self) -> tuple[Entry, MembershipProof] | None:
        """The first entry with its membership proof, or None."""
        if not self.count:
            return None
        return self.entry_at(1), self.prove_membership(1)

    def last(self) -> tuple[Entry, MembershipProof] | None:
        """The last entry with its membership proof, or None."""
        if not self.count:
            return None
        return self.entry_at(self.count), self.prove_membership(self.count)

    def boundaries(self, target: int) -> ChameleonBoundarySearch:
        """Boundary entries around ``target`` with membership proofs."""
        idx = self.store.rank_of(target)  # count of ids <= target
        lower = None
        lower_proof = None
        upper = None
        upper_proof = None
        if idx > 0:
            lower = self.entry_at(idx)
            lower_proof = self.prove_membership(idx)
        if idx < self.count:
            upper = self.entry_at(idx + 1)
            upper_proof = self.prove_membership(idx + 1)
        return ChameleonBoundarySearch(
            target=target,
            lower=lower,
            lower_proof=lower_proof,
            upper=upper,
            upper_proof=upper_proof,
        )

    def all_entries(self) -> list[tuple[Entry, MembershipProof]]:
        """Every entry with proof, position order (single-keyword scans)."""
        return [
            (self.entry_at(pos), self.prove_membership(pos))
            for pos in range(1, self.count + 1)
        ]
