"""Merkle B-tree (MB-tree): the multi-way authenticated index of [7].

Each keyword in the Merkle inverted index owns one MB-tree keyed by
object ID.  The tree is a B+-tree of fan-out ``F`` whose every node
carries a digest:

* a *leaf entry* ``<id, h(o)>`` has digest ``h(id || h(o))`` (tagged);
* a *leaf node* hashes the concatenation of its entry digests;
* an *internal node* hashes the concatenation of its child digests.

Storage
-------
Nodes are not Python objects: the whole tree lives in one contiguous
:class:`~repro.core.nodestore.NodeStore` buffer of fixed-width records
(flat-buffer storage, nodestore v1).  Build, insert-spine update and
path extraction are index arithmetic over that buffer; digests are
stored inline, so a leaf re-hash concatenates stored entry digests
instead of recomputing them.  The hash *preimages* —
:func:`entry_payload`, :func:`leaf_payload`, :func:`node_payload` — are
unchanged, so roots, proofs and metered gas are byte-identical to the
object-graph representation this replaced.  :meth:`MBTree.to_blob` /
:meth:`MBTree.from_blob` snapshot and restore the tree as one buffer.

Proof machinery
---------------
:class:`MerklePath` authenticates a single leaf entry and — crucially for
completeness proofs — encodes the entry's *position* at every level
(digests of siblings to the left and right).  Two verified paths can
therefore be checked for adjacency (:func:`paths_adjacent`), for being
the tree's first entry (:meth:`MerklePath.is_leftmost`) and for being its
last (:meth:`MerklePath.is_rightmost`), which is exactly what the
authenticated join of Section III-B needs.

Suppressed maintenance (Section IV)
-----------------------------------
:meth:`MBTree.gen_update_proof` implements Algorithm 1 — the SP extracts
the right-most branch as an :class:`UpdateSpine` — and
:func:`reconstruct_root` / :func:`compute_updated_root` implement the
smart contract's side of Algorithm 2 as pure functions over injectable
hash callables, so the on-chain code can meter every hash while reusing
the identical logic the tests validate against the real tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Protocol

from repro.core.nodestore import NIL, MBTreeStore
from repro.crypto.hashing import EMPTY_DIGEST, sha3, tagged_hash
from repro.errors import IntegrityError, ReproError

#: Default fan-out, per Section VII-A: the largest F with
#: ``(F-1)*l_d + F*l_p + l_p < 32`` bytes.
DEFAULT_FANOUT = 4

_ENTRY_TAG = sha3(b"mb-entry")
_LEAF_TAG = sha3(b"mb-leaf")
_NODE_TAG = sha3(b"mb-node")

HashFn = Callable[[bytes], bytes]


def entry_payload(key: int, value_hash: bytes) -> bytes:
    """Byte layout hashed into a leaf-entry digest."""
    return _ENTRY_TAG + _ENTRY_TAG + key.to_bytes(8, "big") + value_hash


def leaf_payload(entry_digests: tuple[bytes, ...] | list[bytes]) -> bytes:
    """Byte layout hashed into a leaf-node digest."""
    return _LEAF_TAG + _LEAF_TAG + b"".join(entry_digests)


def node_payload(child_digests: tuple[bytes, ...] | list[bytes]) -> bytes:
    """Byte layout hashed into an internal-node digest."""
    return _NODE_TAG + _NODE_TAG + b"".join(child_digests)


def entry_digest(key: int, value_hash: bytes, hash_fn: HashFn = sha3) -> bytes:
    """Digest of one leaf entry."""
    return hash_fn(entry_payload(key, value_hash))


def leaf_digest(entry_digests, hash_fn: HashFn = sha3) -> bytes:
    """Digest of a leaf node from its entry digests."""
    return hash_fn(leaf_payload(entry_digests))


def node_digest(child_digests, hash_fn: HashFn = sha3) -> bytes:
    """Digest of an internal node from its child digests."""
    return hash_fn(node_payload(child_digests))


@dataclass(frozen=True)
class Entry:
    """A leaf entry ``<id, h(o)>``."""

    key: int
    value_hash: bytes

    def digest(self) -> bytes:
        """Canonical digest of this value."""
        return entry_digest(self.key, self.value_hash)


# ---------------------------------------------------------------------------
# Merkle paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathStep:
    """One level of a Merkle path: our index plus sibling digests.

    ``before``/``after`` hold the digests of siblings to our left and
    right at this level, so the verifier can both recompute the parent
    digest and reason about positions.
    """

    index: int
    before: tuple[bytes, ...]
    after: tuple[bytes, ...]

    def fold(self, current: bytes, is_leaf_level: bool) -> bytes:
        """Combine ``current`` with the siblings into the parent digest."""
        digests = self.before + (current,) + self.after
        if is_leaf_level:
            return leaf_digest(digests)
        return node_digest(digests)


@dataclass(frozen=True, eq=True)
class MerklePath:
    """Authentication path of one leaf entry, leaf level first."""

    steps: tuple[PathStep, ...]

    def __hash__(self) -> int:
        # Memoised: paths are immutable but appear in many verification
        # cache keys (once per DNF component referencing the entry), and
        # the generated hash re-walks every sibling digest each call.
        cached = self.__dict__.get("_hash")
        if cached is None:
            # Dict-key hashing only (never serialised or compared across
            # processes); content identity uses cache_token() instead.
            cached = hash(self.steps)  # reprolint: disable=crypto-hygiene
            object.__setattr__(self, "_hash", cached)
        return cached

    def cache_token(self) -> bytes:
        """Collision-resistant digest standing in for the path's content.

        Verification-cache keys must identify the *content* of a proof,
        but DNF answers carry content-equal path objects once per
        component that references the entry — keying on the path itself
        makes every cache hit a deep structural comparison.  The token
        is a domain-separated SHA-3 digest over an injective encoding of
        the steps (digests are fixed 32-byte words, so prefixing each
        level with its shape makes the encoding prefix-free), memoised
        on the immutable path object.
        """
        token = self.__dict__.get("_token")
        if token is None:
            buf = bytearray()
            for step in self.steps:
                buf += (
                    f"{step.index},{len(step.before)},{len(step.after)};"
                ).encode()
                for digest in step.before:
                    buf += digest
                for digest in step.after:
                    buf += digest
            token = tagged_hash("repro/merkle-path-token", bytes(buf))
            object.__setattr__(self, "_token", token)
        return token

    def compute_root(self, entry: Entry) -> bytes:
        """Fold the path upward from ``entry``'s digest to the root."""
        current = entry.digest()
        for level, step in enumerate(self.steps):
            current = step.fold(current, is_leaf_level=(level == 0))
        return current

    def is_leftmost(self) -> bool:
        """True when this is the first entry of the whole tree."""
        return all(step.index == 0 for step in self.steps)

    def is_rightmost(self) -> bool:
        """True when this is the last entry of the whole tree."""
        return all(not step.after for step in self.steps)

    @property
    def depth(self) -> int:
        """Number of levels in the path."""
        return len(self.steps)

    def byte_size(self) -> int:
        """Serialised size in bytes, matching the VO codec's encoding.

        The codec writes one depth byte, then per step a 2-byte index
        and the length-prefixed ``before``/``after`` digest runs (one
        length byte each).  Kept in lock-step by a codec test so VO
        size accounting cannot drift from the wire again.
        """
        digests = sum(len(s.before) + len(s.after) for s in self.steps)
        return 1 + 32 * digests + 4 * len(self.steps)


def paths_adjacent(left: MerklePath, right: MerklePath) -> bool:
    """Check that ``left`` immediately precedes ``right`` in leaf order.

    Both paths must already have been verified against the same root.
    Walking top-down, the paths must agree until a single divergence
    level where ``right``'s branch index is ``left``'s plus one; below
    the divergence ``left`` must hug the right edge and ``right`` the
    left edge of their respective subtrees.
    """
    if left.depth != right.depth:
        return False
    diverged = False
    # steps are leaf-first; iterate from the root downward.
    for step_l, step_r in zip(reversed(left.steps), reversed(right.steps)):
        if not diverged:
            if step_l.index == step_r.index:
                continue
            if step_r.index != step_l.index + 1:
                return False
            diverged = True
            # At the divergence level both steps describe the same node,
            # so their sibling multisets must be mutually consistent.
            full_l = step_l.before + (None,) + step_l.after
            full_r = step_r.before + (None,) + step_r.after
            if len(full_l) != len(full_r):
                return False
        else:
            if step_l.after or step_r.before or step_r.index != 0:
                return False
    return diverged


# ---------------------------------------------------------------------------
# Node handles and the observer protocol
# ---------------------------------------------------------------------------


def _leaf_digests(view: MBTreeStore, index: int) -> list[bytes]:
    """Entry digests of a leaf, recomputed from its stored entries.

    The flat record stores only ``<key, value_hash>`` per slot; the
    canonical entry digests it hashes into the leaf digest are cheap to
    rederive and never persisted.
    """
    return [
        entry_digest(view.leaf_key(index, slot), view.leaf_value_hash(index, slot))
        for slot in range(view.count(index))
    ]


class NodeHandle:
    """A stable reference to one logical tree node in the flat store.

    Handed to :class:`InsertObserver` hooks in place of the node objects
    the tree no longer has.  The handle pins the node's *sequence
    number*, which survives the free-then-reallocate record moves a
    split performs, so observers that defer work per logical node (the
    GEM^2 bulk-merge meter) read the node's final state at settlement —
    the same semantics object identity used to give them.
    """

    __slots__ = ("_view", "seq")

    def __init__(self, view: MBTreeStore, seq: int) -> None:
        self._view = view
        self.seq = seq

    @property
    def index(self) -> int:
        """The node's current record index."""
        return self._view.index_of_seq(self.seq)

    @property
    def is_leaf(self) -> bool:
        """Whether the node is a leaf."""
        return self._view.is_leaf(self.index)

    @property
    def width(self) -> int:
        """Number of entries (leaf) or children (internal)."""
        return self._view.count(self.index)

    @property
    def digest(self) -> bytes:
        """The node's current digest."""
        return self._view.digest(self.index)

    def payload(self) -> bytes:
        """The byte payload this node's digest is computed over."""
        index = self.index
        if self._view.is_leaf(index):
            return leaf_payload(_leaf_digests(self._view, index))
        return node_payload(self._view.child_digests(index))


class InsertObserver(Protocol):
    """Hook interface letting callers meter structural operations.

    The Merkle inverted index's on-chain contract implements this to
    charge gas exactly where the paper's cost analysis places it; the
    SP-side trees pass no observer and pay nothing.
    """

    def node_visited(self, node: NodeHandle) -> None:
        """Hook: a node's content word was fetched."""
        ...

    def entry_inserted(self, leaf: NodeHandle) -> None:
        """Hook: a new entry was stored into ``leaf``."""
        ...

    def node_rehashed(self, node: NodeHandle) -> None:
        """Hook: a node's digest was recomputed and stored."""
        ...

    def node_split(self, original: NodeHandle, new_sibling: NodeHandle) -> None:
        """Hook: an overflowing node was split."""
        ...

    def root_replaced(self, new_root: NodeHandle) -> None:
        """Hook: the tree gained a new root node."""
        ...


@dataclass(frozen=True)
class BoundarySearch:
    """Result of a boundary lookup for a target key.

    ``lower`` is the largest entry with ``key <= target`` (the matching
    object when keys are equal); ``upper`` is the smallest entry with
    ``key > target``.  Either may be ``None`` at the tree edges.
    """

    target: int
    lower: Entry | None
    lower_path: MerklePath | None
    upper: Entry | None
    upper_path: MerklePath | None

    @property
    def matched(self) -> bool:
        """True when the lower boundary equals the target key."""
        return self.lower is not None and self.lower.key == self.target


class MBTree:
    """A Merkle B+-tree over ``<id, h(o)>`` entries, flat-buffer backed.

    Supports arbitrary-order insertion (splits propagate upward), though
    the paper's workload only ever appends monotonically increasing IDs.
    All node state lives in ``self.store`` (an
    :class:`~repro.core.nodestore.MBTreeStore`); the tree keeps only
    scalar mirrors of the header fields for hot-path reads and writes
    them through, so the store's buffer is always a complete snapshot.
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 3:
            raise ReproError("MB-tree fan-out must be at least 3")
        self.fanout = fanout
        self.store = MBTreeStore.create(fanout)
        self._root_idx = NIL
        self._count = 0
        self._max_key: int | None = None

    # -- flat-buffer snapshots ----------------------------------------------------

    def to_blob(self) -> bytes:
        """Snapshot the whole tree as one nodestore-v1 buffer."""
        return self.store.to_blob()

    @classmethod
    def from_blob(cls, blob: bytes | bytearray | memoryview) -> "MBTree":
        """Restore a tree from :meth:`to_blob` output (one buffer read)."""
        view = MBTreeStore.from_blob(blob)
        tree = cls.__new__(cls)
        tree.fanout = view.fanout
        tree.store = view
        top = view.store.root
        tree._root_idx = top
        tree._count = view.store.count
        tree._max_key = view.store.max_key if tree._count else None
        if tree._count and top == NIL:
            raise IntegrityError("non-empty MB-tree blob lacks a root")
        return tree

    def __getstate__(self) -> dict:
        # Pickling ships the buffer, not an object graph: no recursion,
        # one memcpy, and the receiver revalidates the header.
        return {"blob": self.to_blob()}

    def __setstate__(self, state: dict) -> None:
        restored = MBTree.from_blob(state["blob"])
        self.fanout = restored.fanout
        self.store = restored.store
        self._root_idx = restored._root_idx
        self._count = restored._count
        self._max_key = restored._max_key

    # -- basic properties -----------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def root_hash(self) -> bytes:
        """The tree's authenticated digest (EMPTY_DIGEST when empty)."""
        if self._count == 0:
            return EMPTY_DIGEST
        return self.store.digest(self._root_idx)

    @property
    def max_key(self) -> int | None:
        """Largest key inserted so far, or None."""
        return self._max_key

    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree)."""
        if self._count == 0:
            return 0
        levels = 1
        node = self._root_idx
        while not self.store.is_leaf(node):
            levels += 1
            node = self.store.child(node, 0)
        return levels

    def _handle(self, index: int) -> NodeHandle:
        return NodeHandle(self.store, self.store.seq(index))

    def _set_root(self, index: int) -> None:
        self._root_idx = index
        self.store.store.root = index

    def _set_count(self, value: int) -> None:
        self._count = value
        self.store.store.count = value

    def _set_max_key(self, key: int) -> None:
        self._max_key = key
        self.store.store.max_key = key

    # -- insertion --------------------------------------------------------------

    def insert(
        self, key: int, value_hash: bytes, observer: InsertObserver | None = None
    ) -> None:
        """Insert ``<key, value_hash>``; duplicate keys are rejected."""
        view = self.store
        digest = entry_digest(key, value_hash)
        if self._count == 0:
            leaf = view.new_leaf()
            view.leaf_insert(leaf, 0, key, value_hash)
            view.set_digest(leaf, leaf_digest([digest]))
            self._set_root(leaf)
            self._set_count(1)
            self._set_max_key(key)
            if observer is not None:
                observer.root_replaced(self._handle(leaf))
                observer.node_rehashed(self._handle(leaf))
            return
        path = self._descend(key, observer)
        leaf = path[-1]
        position, found = view.leaf_find(leaf, key)
        if found:
            raise ReproError(f"duplicate key {key} in MB-tree")
        view.leaf_insert(leaf, position, key, value_hash)
        if observer is not None:
            observer.entry_inserted(self._handle(leaf))
        self._set_count(self._count + 1)
        if self._max_key is None or key > self._max_key:
            self._set_max_key(key)
        self._split_and_rehash(path, observer)

    def _descend(
        self, key: int, observer: InsertObserver | None
    ) -> list[int]:
        """Root-to-leaf record path guiding an insertion of ``key``."""
        view = self.store
        path: list[int] = []
        node = self._root_idx
        while True:
            if observer is not None:
                observer.node_visited(self._handle(node))
            path.append(node)
            if view.is_leaf(node):
                return path
            width = view.count(node)
            slot = width - 1
            for i in range(1, width):
                if key < view.min_key(view.child(node, i)):
                    slot = i - 1
                    break
            node = view.child(node, slot)

    def _rehash(self, index: int) -> None:
        view = self.store
        if view.is_leaf(index):
            if view.count(index):
                view.set_digest(
                    index, leaf_digest(_leaf_digests(view, index))
                )
            else:
                view.set_digest(index, EMPTY_DIGEST)
        else:
            view.set_digest(index, node_digest(view.child_digests(index)))

    def _split_and_rehash(
        self, path: list[int], observer: InsertObserver | None
    ) -> None:
        """Walk the insert path bottom-up, splitting overflowing nodes."""
        view = self.store
        half = (self.fanout + 2) // 2  # ceil((F + 1) / 2), paper's policy
        carry: tuple[int, tuple[int, int]] | None = None
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if carry is not None:
                view.replace_child(node, carry[0], carry[1])
            carry = None
            if view.count(node) > self.fanout:
                left, right = view.split(node, half)
                self._rehash(left)
                self._rehash(right)
                if observer is not None:
                    observer.node_split(self._handle(left), self._handle(right))
                    observer.node_rehashed(self._handle(left))
                    observer.node_rehashed(self._handle(right))
                carry = (node, (left, right))
            else:
                if not view.is_leaf(node):
                    view.set_min_key(node, view.min_key(view.child(node, 0)))
                self._rehash(node)
                if observer is not None:
                    observer.node_rehashed(self._handle(node))
        if carry is not None:
            root = view.new_internal()
            view.set_children(root, list(carry[1]))
            self._rehash(root)
            self._set_root(root)
            if observer is not None:
                observer.root_replaced(self._handle(root))
                observer.node_rehashed(self._handle(root))

    # -- lookups -----------------------------------------------------------------

    def iter_entries(self) -> Iterator[Entry]:
        """All entries in key order."""
        view = self.store

        def walk(index: int) -> Iterator[Entry]:
            """Depth-first in-order traversal."""
            if view.is_leaf(index):
                for slot in range(view.count(index)):
                    yield Entry(
                        key=view.leaf_key(index, slot),
                        value_hash=view.leaf_value_hash(index, slot),
                    )
            else:
                for child in view.children(index):
                    yield from walk(child)

        if self._count:
            yield from walk(self._root_idx)

    def first_entry(self) -> tuple[Entry, MerklePath] | None:
        """The smallest entry with its path, or None for an empty tree."""
        if self._count == 0:
            return None
        return self._entry_at_edge(leftmost=True)

    def last_entry(self) -> tuple[Entry, MerklePath] | None:
        """The largest entry with its path, or None for an empty tree."""
        if self._count == 0:
            return None
        return self._entry_at_edge(leftmost=False)

    def _entry_at_edge(self, leftmost: bool) -> tuple[Entry, MerklePath]:
        view = self.store
        node = self._root_idx
        steps: list[PathStep] = []
        while not view.is_leaf(node):
            slot = 0 if leftmost else view.count(node) - 1
            steps.append(self._node_step(node, slot))
            node = view.child(node, slot)
        slot = 0 if leftmost else view.count(node) - 1
        steps.append(self._leaf_step(node, slot))
        steps.reverse()
        entry = Entry(
            key=view.leaf_key(node, slot),
            value_hash=view.leaf_value_hash(node, slot),
        )
        return entry, MerklePath(steps=tuple(steps))

    def prove(self, key: int) -> tuple[Entry, MerklePath]:
        """Membership proof for an existing key."""
        search = self.boundaries(key)
        if not search.matched:
            raise ReproError(f"key {key} not present in MB-tree")
        assert search.lower is not None and search.lower_path is not None
        return search.lower, search.lower_path

    def boundaries(self, target: int) -> BoundarySearch:
        """Locate the boundary entries around ``target`` with paths.

        ``lower`` = largest entry with key <= target (the match, if any);
        ``upper`` = smallest entry with key > target.  One O(log n)
        descent finds both boundary keys (the cached per-record minimum
        keys replace the old global sorted-key registry); each proof is
        a fresh O(log n) descent.
        """
        lower_key, upper_key = self._boundary_keys(target)
        lower = self._prove_by_key(lower_key) if lower_key is not None else None
        upper = self._prove_by_key(upper_key) if upper_key is not None else None
        return BoundarySearch(
            target=target,
            lower=lower[0] if lower else None,
            lower_path=lower[1] if lower else None,
            upper=upper[0] if upper else None,
            upper_path=upper[1] if upper else None,
        )

    def _boundary_keys(self, target: int) -> tuple[int | None, int | None]:
        """The keys bracketing ``target``: (largest <=, smallest >)."""
        if self._count == 0:
            return None, None
        view = self.store
        node = self._root_idx
        successor_subtree: int | None = None
        while not view.is_leaf(node):
            width = view.count(node)
            slot = width - 1
            for i in range(1, width):
                if target < view.min_key(view.child(node, i)):
                    slot = i - 1
                    break
            if slot + 1 < width:
                # Deepest right sibling on the path: its subtree minimum
                # is the successor when the reached leaf tops out.
                successor_subtree = view.child(node, slot + 1)
            node = view.child(node, slot)
        position, found = view.leaf_find(node, target)
        rank = position + 1 if found else position  # leaf keys <= target
        lower_key = view.leaf_key(node, rank - 1) if rank > 0 else None
        if rank < view.count(node):
            upper_key: int | None = view.leaf_key(node, rank)
        elif successor_subtree is not None:
            upper_key = view.min_key(successor_subtree)
        else:
            upper_key = None
        return lower_key, upper_key

    def _prove_by_key(self, key: int) -> tuple[Entry, MerklePath]:
        view = self.store
        node = self._root_idx
        steps: list[PathStep] = []
        while not view.is_leaf(node):
            width = view.count(node)
            slot = width - 1
            for i in range(1, width):
                if key < view.min_key(view.child(node, i)):
                    slot = i - 1
                    break
            steps.append(self._node_step(node, slot))
            node = view.child(node, slot)
        position, found = view.leaf_find(node, key)
        if not found:
            raise ReproError(f"key {key} vanished during proof construction")
        steps.append(self._leaf_step(node, position))
        steps.reverse()
        entry = Entry(
            key=key, value_hash=view.leaf_value_hash(node, position)
        )
        return entry, MerklePath(steps=tuple(steps))

    def _node_step(self, index: int, slot: int) -> PathStep:
        digests = self.store.child_digests(index)
        return PathStep(
            index=slot,
            before=tuple(digests[:slot]),
            after=tuple(digests[slot + 1 :]),
        )

    def _leaf_step(self, index: int, slot: int) -> PathStep:
        digests = _leaf_digests(self.store, index)
        return PathStep(
            index=slot,
            before=tuple(digests[:slot]),
            after=tuple(digests[slot + 1 :]),
        )

    # -- suppressed maintenance (Algorithms 1 & 2) --------------------------------

    def gen_update_proof(self, new_key: int) -> "UpdateSpine":
        """Algorithm 1: extract the right-most branch as the ``UpdVO``.

        Must be called *before* inserting ``new_key``; appends only
        (``new_key`` greater than every existing key) are supported,
        matching the monotonic-ID assumption of Section IV-C.
        """
        if self._max_key is not None and new_key <= self._max_key:
            raise ReproError(
                "UpdVO generation requires monotonically increasing keys"
            )
        if self._count == 0:
            return UpdateSpine(internal_levels=(), leaf_entries=())
        view = self.store
        internal_levels: list[tuple[bytes, ...]] = []
        node = self._root_idx
        while not view.is_leaf(node):
            digests = view.child_digests(node)
            internal_levels.append(tuple(digests[:-1]))
            node = view.child(node, view.count(node) - 1)
        leaf_entries = tuple(_leaf_digests(view, node))
        return UpdateSpine(
            internal_levels=tuple(internal_levels), leaf_entries=leaf_entries
        )


@dataclass(frozen=True)
class UpdateSpine:
    """The ``UpdVO`` of Algorithm 1: the tree's right-most branch.

    ``internal_levels`` lists, top-down, the digests of each right-most
    internal node's children *except the last* (the branch continues
    there); ``leaf_entries`` holds every entry digest of the right-most
    leaf.
    """

    internal_levels: tuple[tuple[bytes, ...], ...]
    leaf_entries: tuple[bytes, ...]

    def byte_size(self) -> int:
        """Serialised size in bytes (charged as ``C_txdata``)."""
        digests = sum(len(level) for level in self.internal_levels)
        digests += len(self.leaf_entries)
        # One length byte per level plus the digests themselves.
        return 32 * digests + len(self.internal_levels) + 2

    def serialise(self) -> bytes:
        """Canonical wire encoding (what actually rides in the tx)."""
        out = [len(self.internal_levels).to_bytes(1, "big")]
        for level in self.internal_levels:
            out.append(len(level).to_bytes(1, "big"))
            out.extend(level)
        out.append(len(self.leaf_entries).to_bytes(1, "big"))
        out.extend(self.leaf_entries)
        return b"".join(out)

    @classmethod
    def deserialise(cls, data: bytes) -> "UpdateSpine":
        """Parse the canonical wire encoding."""
        view = memoryview(data)
        offset = 0

        def take(n: int) -> bytes:
            """Consume exactly ``n`` bytes or fail."""
            nonlocal offset
            chunk = bytes(view[offset : offset + n])
            if len(chunk) != n:
                raise IntegrityError("truncated UpdVO payload")
            offset += n
            return chunk

        n_levels = take(1)[0]
        levels = []
        for _ in range(n_levels):
            n_digests = take(1)[0]
            levels.append(tuple(take(32) for _ in range(n_digests)))
        n_entries = take(1)[0]
        entries = tuple(take(32) for _ in range(n_entries))
        if offset != len(data):
            raise IntegrityError("trailing bytes in UpdVO payload")
        return cls(internal_levels=tuple(levels), leaf_entries=entries)


def reconstruct_root(spine: UpdateSpine, hash_fn: HashFn = sha3) -> bytes:
    """Recompute the pre-insertion root hash from an ``UpdVO``.

    The smart contract compares this against its stored root to verify
    the SP's update proof (Algorithm 2, line 1).  Returns
    ``EMPTY_DIGEST`` for the empty-tree spine.
    """
    if not spine.leaf_entries and not spine.internal_levels:
        return EMPTY_DIGEST
    current = leaf_digest(spine.leaf_entries, hash_fn)
    for level in reversed(spine.internal_levels):
        current = node_digest(level + (current,), hash_fn)
    return current


def compute_updated_root(
    spine: UpdateSpine,
    new_entry: bytes,
    fanout: int,
    hash_fn: HashFn = sha3,
) -> bytes:
    """Algorithm 2's root recomputation: append ``new_entry`` and re-fold.

    Handles cascading node splits with the same ``ceil((F+1)/2)`` policy
    as :class:`MBTree`, so the returned digest equals the real tree's
    root after the corresponding insertion — verified by tests.
    """
    half = (fanout + 2) // 2
    entries = spine.leaf_entries + (new_entry,)
    if len(entries) > fanout:
        carry = [
            leaf_digest(entries[:half], hash_fn),
            leaf_digest(entries[half:], hash_fn),
        ]
    else:
        carry = [leaf_digest(entries, hash_fn)]
    for level in reversed(spine.internal_levels):
        children = list(level) + carry
        if len(children) > fanout:
            carry = [
                node_digest(children[:half], hash_fn),
                node_digest(children[half:], hash_fn),
            ]
        else:
            carry = [node_digest(children, hash_fn)]
    if len(carry) == 2:
        return node_digest(carry, hash_fn)
    return carry[0]
