"""Core library: the paper's ADS schemes and query machinery.

Layout:

* ``objects`` — data objects and on-chain meta-data;
* ``mbtree`` — Merkle B-trees with positional proofs and the
  Algorithm 1/2 suppressed-update machinery;
* ``chameleon`` — CVC-backed Chameleon trees (Algorithms 3–6);
* ``merkle_family`` / ``merkle_inv`` / ``suppressed`` — the MI baseline
  and the Suppressed Merkle^inv index;
* ``chameleon_index`` / ``chameleon_star`` — the Chameleon^inv index and
  its Bloom-filter-optimised variant;
* ``query`` — DNF parsing, the authenticated join engine, VO structures
  and client-side verification;
* ``system`` — the :class:`~repro.core.system.HybridStorageSystem`
  facade wiring DO, chain, SP and client together.
"""

from repro.core.objects import DataObject, ObjectMetadata, ObjectStore
from repro.core.system import HybridStorageSystem, Scheme

__all__ = [
    "DataObject",
    "HybridStorageSystem",
    "ObjectMetadata",
    "ObjectStore",
    "Scheme",
]
