"""Data objects and on-chain meta-data (Section II-B system model).

Each data object is a tuple ``o_i = <id, {w_j}, v>``: a monotonically
increasing integer ID, a set of keywords, and the raw content.  The data
owner sends the full object to the SP and only the meta-data
``<id, {w_j}, h(o_i)>`` to the blockchain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import tagged_hash
from repro.errors import DatasetError


#: Maximum keyword size in UTF-8 bytes.  The SP wire codec stores each
#: keyword behind a one-byte length prefix, so this is a protocol limit,
#: not a tunable; it is enforced at ingestion so an over-long keyword can
#: never reach the codec.
MAX_KEYWORD_BYTES = 255


def normalise_keyword(keyword: str) -> str:
    """Canonical keyword form: stripped, lower-cased, non-empty, ≤255 bytes."""
    cleaned = keyword.strip().lower()
    if not cleaned:
        raise DatasetError("keywords must be non-empty")
    encoded_len = len(cleaned.encode("utf-8"))
    if encoded_len > MAX_KEYWORD_BYTES:
        raise DatasetError(
            f"keyword is {encoded_len} UTF-8 bytes; the wire protocol "
            f"limits keywords to {MAX_KEYWORD_BYTES} bytes"
        )
    return cleaned


@dataclass(frozen=True)
class DataObject:
    """A raw data object held off-chain by the SP.

    ``object_id`` plays the role of the paper's monotonically increasing
    32-bit identifier (e.g. a transaction timestamp); ``keywords`` are
    already stop-word-filtered; ``content`` is the opaque payload.
    """

    object_id: int
    keywords: tuple[str, ...]
    content: bytes

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise DatasetError("object IDs are non-negative")
        normalised = tuple(dict.fromkeys(normalise_keyword(w) for w in self.keywords))
        object.__setattr__(self, "keywords", normalised)

    def digest(self) -> bytes:
        """``h(o_i)``: binds the ID, the keyword set and the content."""
        keyword_blob = b"\x00".join(w.encode("utf-8") for w in self.keywords)
        return tagged_hash(
            "data-object",
            self.object_id.to_bytes(8, "big"),
            keyword_blob,
            self.content,
        )

    def keyword_set(self) -> frozenset[str]:
        """The object's keywords as a frozen set."""
        return frozenset(self.keywords)

    def matches_conjunction(self, required: frozenset[str]) -> bool:
        """True when the object carries every keyword in ``required``."""
        return required <= self.keyword_set()


@dataclass(frozen=True)
class ObjectMetadata:
    """The on-chain record ``<id, {w_j}, h(o_i)>`` sent by the DO."""

    object_id: int
    keywords: tuple[str, ...]
    object_hash: bytes

    @classmethod
    def of(cls, obj: DataObject) -> "ObjectMetadata":
        """Build the on-chain meta-data record for an object."""
        return cls(
            object_id=obj.object_id,
            keywords=obj.keywords,
            object_hash=obj.digest(),
        )

    def payload_bytes(self) -> bytes:
        """Wire encoding whose length is charged as ``C_txdata``."""
        keyword_blob = b"\x00".join(w.encode("utf-8") for w in self.keywords)
        return (
            self.object_id.to_bytes(8, "big")
            + len(self.keywords).to_bytes(2, "big")
            + keyword_blob
            + self.object_hash
        )


@dataclass
class ObjectStore:
    """The SP's raw-object repository, addressable by ID."""

    _objects: dict[int, DataObject] = field(default_factory=dict)

    def put(self, obj: DataObject) -> None:
        """Store one item."""
        if obj.object_id in self._objects:
            raise DatasetError(
                f"object {obj.object_id} already stored; objects are immutable"
            )
        self._objects[obj.object_id] = obj

    def get(self, object_id: int) -> DataObject:
        """Fetch one item by ID."""
        try:
            return self._objects[object_id]
        except KeyError as exc:
            raise DatasetError(f"no object with ID {object_id}") from exc

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def all_ids(self) -> list[int]:
        """All stored object IDs in ascending order."""
        return sorted(self._objects)
