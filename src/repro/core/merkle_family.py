"""Shared SP-side machinery for the Merkle inverted index family.

The baseline Merkle^inv (MI) and the Suppressed Merkle^inv (SMI) differ
only in how the *on-chain* side is maintained; the SP keeps identical
complete MB-trees for query processing, and clients verify both with the
same Merkle-path proof system.  This module holds that common ground:

* :class:`MerkleInvertedSP` — the SP's keyword -> MB-tree map;
* :class:`MBTreeView` — the join engine's :class:`IndexView` adapter;
* :class:`MerkleProofSystem` — the client's verifier bound to the root
  hashes read from the blockchain (``VO_chain``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.mbtree import (
    DEFAULT_FANOUT,
    Entry,
    MBTree,
    MerklePath,
    paths_adjacent,
)
from repro.core.multiproof import LeafRef, TreeMultiproof, build_multiproof
from repro.core.objects import ObjectMetadata
from repro.core.proofcache import VerificationCache
from repro.core.query.vo import ProvenEntry
from repro.crypto.hashing import EMPTY_DIGEST, digests_equal
from repro.errors import ReproError, VerificationError


@dataclass
class MBTreeView:
    """Adapts one keyword's MB-tree to the join engine's IndexView."""

    keyword: str
    tree: MBTree

    def __len__(self) -> int:
        return len(self.tree)

    def first_proven(self) -> ProvenEntry | None:
        """The smallest entry with proof, or None when empty."""
        pair = self.tree.first_entry()
        if pair is None:
            return None
        entry, path = pair
        return ProvenEntry(
            object_id=entry.key, object_hash=entry.value_hash, proof=path
        )

    def boundaries_proven(
        self, target: int
    ) -> tuple[ProvenEntry | None, ProvenEntry | None]:
        """Boundary entries with proofs around a target."""
        search = self.tree.boundaries(target)
        lower = None
        upper = None
        if search.lower is not None:
            lower = ProvenEntry(
                object_id=search.lower.key,
                object_hash=search.lower.value_hash,
                proof=search.lower_path,
            )
        if search.upper is not None:
            upper = ProvenEntry(
                object_id=search.upper.key,
                object_hash=search.upper.value_hash,
                proof=search.upper_path,
            )
        return lower, upper

    def all_proven(self) -> list[ProvenEntry]:
        """Every entry with proof, in key order."""
        out: list[ProvenEntry] = []
        for entry in self.tree.iter_entries():
            _, path = self.tree.prove(entry.key)
            out.append(
                ProvenEntry(
                    object_id=entry.key,
                    object_hash=entry.value_hash,
                    proof=path,
                )
            )
        return out

    def definitely_absent(self, object_id: int) -> bool:
        # No on-chain filters in the Merkle family.
        """Whether on-chain filters prove the ID absent."""
        return False


@dataclass
class MerkleInvertedSP:
    """The SP's complete Merkle inverted index (keyword -> MB-tree)."""

    fanout: int = DEFAULT_FANOUT
    trees: dict[str, MBTree] = field(default_factory=dict)

    def tree_for(self, keyword: str) -> MBTree:
        """Get or lazily create the keyword's tree."""
        if keyword not in self.trees:
            self.trees[keyword] = MBTree(fanout=self.fanout)
        return self.trees[keyword]

    def insert(self, metadata: ObjectMetadata) -> None:
        """Mirror a newly confirmed object into every keyword tree."""
        with obs.span("sp.index.insert", keywords=len(metadata.keywords)):
            for keyword in metadata.keywords:
                self.tree_for(keyword).insert(
                    metadata.object_id, metadata.object_hash
                )

    def view(self, keyword: str) -> MBTreeView:
        """The join engine's IndexView for one keyword."""
        return MBTreeView(keyword=keyword, tree=self.tree_for(keyword))

    def root_hash(self, keyword: str) -> bytes:
        """The tree's authenticated root digest."""
        tree = self.trees.get(keyword)
        return tree.root_hash if tree is not None else EMPTY_DIGEST


@dataclass
class MerkleProofSystem:
    """Client verifier for Merkle-path VOs, bound to on-chain roots.

    ``roots`` maps each queried keyword to the root hash fetched from
    the smart contract; keywords absent from the chain map to the empty
    digest, which is itself the completeness evidence for non-existing
    keywords (footnote 4 of the paper).

    ``cache``, when set, memoises successful path verifications keyed on
    the full proven tuple (root, entry, path) — see
    :mod:`repro.core.proofcache` for the soundness argument.  Compressed
    (v3) VOs attach their deduplicated multiproof table via
    :meth:`attach_multiproofs`; each
    :class:`~repro.core.multiproof.TreeMultiproof` folds once per query
    — and caches on ``(root, gindex-set digest)`` so a warmed proof is
    free — with every :class:`~repro.core.multiproof.LeafRef` entry
    resolved against it.
    """

    roots: dict[str, bytes]
    value_bytes: int = 32
    cache: VerificationCache | None = None
    multiproofs: tuple = ()
    _mp_verified: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def _root(self, keyword: str) -> bytes:
        return self.roots.get(keyword, EMPTY_DIGEST)

    def attach_multiproofs(self, multiproofs: tuple) -> None:
        """Bind the current query's deduplicated proof table.

        Called by :func:`~repro.core.query.verify.verify_query` before
        any conjunct verification; replaces any previously attached
        table (per-query state, not per-system).
        """
        self.multiproofs = tuple(multiproofs)
        self._mp_verified = {}

    def _multiproof(self, proof_index: int) -> TreeMultiproof:
        if not 0 <= proof_index < len(self.multiproofs):
            raise VerificationError(
                f"multiproof index {proof_index} out of range "
                f"({len(self.multiproofs)} attached)"
            )
        return self.multiproofs[proof_index]

    def _verify_leafref(
        self, keyword: str, entry: ProvenEntry, ref: LeafRef
    ) -> None:
        mp = self._multiproof(ref.proof_index)
        object_id, object_hash = mp.leaf_entry(ref.ordinal)
        if object_id != entry.object_id or not digests_equal(
            object_hash, entry.object_hash
        ):
            raise VerificationError(
                f"entry {entry.object_id} does not match the multiproof "
                f"leaf it references"
            )
        root = self._root(keyword)
        bound = self._mp_verified.get(ref.proof_index)
        if bound is not None:
            # One fold has one result: a proof that verified against a
            # different keyword's root can never match this one.
            if not digests_equal(bound, root):
                raise VerificationError(
                    f"multiproof {ref.proof_index} is bound to a different "
                    f"tree than keyword {keyword!r}"
                )
            return
        key = None
        if self.cache is not None:
            key = self.cache.key(root, mp.cache_token())
            if self.cache.seen(key):
                self._mp_verified[ref.proof_index] = root
                return
        computed = mp.fold_root()
        if not digests_equal(computed, root):
            raise VerificationError(
                f"multiproof {ref.proof_index} does not match the on-chain "
                f"root of keyword {keyword!r}"
            )
        if self.cache is not None:
            self.cache.add(key)
        self._mp_verified[ref.proof_index] = root

    def verify_entry(self, keyword: str, entry: ProvenEntry) -> None:
        """Authenticate one proven entry; raises on failure."""
        path = entry.proof
        if isinstance(path, LeafRef):
            self._verify_leafref(keyword, entry, path)
            return
        if not isinstance(path, MerklePath):
            raise VerificationError("expected a Merkle path proof")
        root = self._root(keyword)
        key = None
        if self.cache is not None:
            key = self.cache.key(
                root, entry.object_id, entry.object_hash, path.cache_token()
            )
            if self.cache.seen(key):
                return
        computed = path.compute_root(
            Entry(key=entry.object_id, value_hash=entry.object_hash)
        )
        if not digests_equal(computed, root):
            raise VerificationError(
                f"Merkle path for object {entry.object_id} does not match "
                f"the on-chain root of keyword {keyword!r}"
            )
        if self.cache is not None:
            self.cache.add(key)

    def warm_entries(self, keyword: str, entries: list[ProvenEntry]) -> int:
        """Pre-verify a keyword's posting list for the warmer.

        Verifies each per-entry path independently (a tampered entry is
        skipped and left uncached, the rest still warm — fail closed per
        entry) and returns the number that verified.  When *every* entry
        verified, additionally seeds the shared cache with the
        full-cover multiproof those entries deduplicate into — the same
        construction the SP's query-time compression emits for a full
        scan, so its ``(root, gindex-set digest)`` key hits when the
        query arrives.  A partially tampered list seeds nothing batched:
        a multiproof over a subset would not match the query-time cover.
        """
        paths: list[tuple[ProvenEntry, MerklePath]] = []
        warmed = 0
        for entry in entries:
            try:
                self.verify_entry(keyword, entry)
            except VerificationError:
                continue
            warmed += 1
            if isinstance(entry.proof, MerklePath):
                paths.append((entry, entry.proof))
        if warmed < len(entries) or not paths or self.cache is None:
            return warmed
        try:
            multiproof, _ = build_multiproof(paths)
        except ReproError:
            # Mutually inconsistent paths cannot form the query-time
            # cover; the per-entry verifications above still stand.
            return warmed
        root = self._root(keyword)
        if digests_equal(multiproof.fold_root(), root):
            self.cache.add(self.cache.key(root, multiproof.cache_token()))
        return warmed

    def is_first(self, keyword: str, entry: ProvenEntry) -> bool:
        """Whether the entry is provably the tree's first."""
        path = entry.proof
        if isinstance(path, LeafRef):
            try:
                return self._multiproof(path.proof_index).is_leftmost(
                    path.ordinal
                )
            except VerificationError:
                return False
        return isinstance(path, MerklePath) and path.is_leftmost()

    def is_last(self, keyword: str, entry: ProvenEntry) -> bool:
        """Whether the entry is provably the tree's last."""
        path = entry.proof
        if isinstance(path, LeafRef):
            try:
                return self._multiproof(path.proof_index).is_rightmost(
                    path.ordinal
                )
            except VerificationError:
                return False
        return isinstance(path, MerklePath) and path.is_rightmost()

    def adjacent(
        self, keyword: str, lower: ProvenEntry, upper: ProvenEntry
    ) -> bool:
        """Whether two verified entries are consecutive."""
        if isinstance(lower.proof, LeafRef) and isinstance(
            upper.proof, LeafRef
        ):
            if lower.proof.proof_index != upper.proof.proof_index:
                # Compression emits one proof per tree, so two refs into
                # different proofs can never be neighbours of one tree.
                return False
            try:
                return self._multiproof(lower.proof.proof_index).adjacent(
                    lower.proof.ordinal, upper.proof.ordinal
                )
            except VerificationError:
                return False
        if not isinstance(lower.proof, MerklePath) or not isinstance(
            upper.proof, MerklePath
        ):
            return False
        return paths_adjacent(lower.proof, upper.proof)

    def keyword_empty(self, keyword: str) -> bool:
        """Whether VO_chain shows the keyword's tree empty."""
        return digests_equal(self._root(keyword), EMPTY_DIGEST)

    def definitely_absent(self, keyword: str, object_id: int) -> bool:
        """Whether on-chain filters prove the ID absent."""
        return False

    def chain_digest_bytes(self) -> int:
        """``VO_chain`` size: one 32-byte root per queried keyword."""
        return 32 * len(self.roots)
