"""The Chameleon^inv* index (Section V-D): Bloom-filter optimisation.

Identical to the Chameleon^inv index except that the smart contract also
maintains one 256-bit Bloom filter (exactly one storage word) for every
group of ``b`` inserted objects per keyword tree, along with each
filter's smallest inserted ID.  The filters let both the SP (during the
join) and the client (during verification) prove *non-existence* of a
target ID without shipping and checking CVC membership proofs, whose
verification dominates the client's cost.

Per-insert on-chain cost stays constant: read-modify-write of the
current filter word plus the count update, with an amortised
``C_sstore / b`` for each new filter and its range word.
"""

from __future__ import annotations

from repro import obs
from repro.core.chameleon_index import ChameleonContract, CountUpdate
from repro.crypto.bloom import (
    DEFAULT_CAPACITY,
    DEFAULT_FILTER_BITS,
    BloomFilterChain,
)


class ChameleonStarContract(ChameleonContract):
    """On-chain side of Chameleon^inv*: counts plus Bloom filters."""

    def __init__(
        self,
        value_bytes: int = 128,
        bloom_capacity: int = DEFAULT_CAPACITY,
        filter_bits: int = DEFAULT_FILTER_BITS,
    ) -> None:
        super().__init__(value_bytes=value_bytes)
        self.bloom_capacity = bloom_capacity
        self.filter_bits = filter_bits
        # Decoded mirror of the on-chain filter words; the authoritative
        # bits live in storage and are what views read back.
        self._mirrors: dict[str, BloomFilterChain] = {}

    def insert_object(
        self,
        object_id: int,
        object_hash: bytes,
        updates: list[CountUpdate],
        new_keywords: list[tuple[str, int]] = (),
    ) -> None:
        """Counts as in the base contract, plus filter maintenance."""
        super().insert_object(object_id, object_hash, updates, new_keywords)
        with obs.span("maintain.ci*.bloom", keywords=len(updates)):
            for update in updates:
                self._update_bloom(update.keyword, object_id)

    def _update_bloom(self, keyword: str, object_id: int) -> None:
        mirror = self._mirrors.setdefault(
            keyword,
            BloomFilterChain(
                filter_bits=self.filter_bits, capacity=self.bloom_capacity
            ),
        )
        index, created = mirror.add(object_id)
        # Deriving the bit positions costs two one-word hashes in memory.
        self.env.meter.hash(1)
        self.env.meter.hash(1)
        self.env.touch_memory(2)
        if created:
            # New filter: record its range minimum once.
            self.storage.store(("bloommin", keyword, index), object_id)
            self.storage.store(("bloomcount", keyword), index + 1)
        else:
            # Read-modify-write of the live filter word.
            self.storage.load(("bloom", keyword, index))
        self.storage.store(
            ("bloom", keyword, index), mirror.filters[index].to_word()
        )

    # -- free views --------------------------------------------------------------

    def view_bloom_snapshot(self, keyword: str) -> list[tuple[int, int]]:
        """On-chain filter state: ``(min_id, bits)`` per filter word."""
        n_filters = self.storage.peek_int(("bloomcount", keyword))
        snapshot = []
        for index in range(n_filters):
            min_id = self.storage.peek_int(("bloommin", keyword, index))
            bits = int.from_bytes(
                self.storage.peek(("bloom", keyword, index)), "big"
            )
            snapshot.append((min_id, bits))
        return snapshot

    def view_bloom_params(self) -> tuple[int, int]:
        """Free view: filter length and capacity."""
        return self.filter_bits, self.bloom_capacity
