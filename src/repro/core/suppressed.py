"""The Suppressed Merkle^inv index (Section IV).

Only each keyword MB-tree's *root hash* lives on-chain.  When the DO
appends an object, the SP constructs an update proof (``UpdVO``,
Algorithm 1) — the tree's right-most branch — and sends it to the smart
contract, which (Algorithm 2):

1. reconstructs the pre-insertion root from the ``UpdVO`` and compares
   it with the stored root (integrity of the SP's proof);
2. checks the inserted object's hash against the one the DO registered;
3. recomputes the post-insertion root in memory, handling leaf and
   internal node splits, and stores it with a single ``C_supdate``.

The logarithmic work is all cheap (``C_txdata``/``C_hash``/``C_mem``);
the expensive storage operations are constant per keyword — the
``O(L*C_1 + L*C_2*log n)`` row of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.mbtree import (
    DEFAULT_FANOUT,
    MBTree,
    UpdateSpine,
    compute_updated_root,
    entry_payload,
    reconstruct_root,
)
from repro.crypto.hashing import digests_equal, word_count
from repro.errors import IntegrityError
from repro.ethereum.contract import SmartContract


@dataclass(frozen=True)
class KeywordUpdate:
    """One keyword's ``UpdVO`` inside the SP's update transaction."""

    keyword: str
    spine_bytes: bytes

    def payload_size(self) -> int:
        """Wire size of this keyword update in bytes."""
        return len(self.keyword.encode("utf-8")) + 1 + len(self.spine_bytes)


def build_updates(
    trees: dict[str, MBTree], object_id: int, keywords: tuple[str, ...]
) -> list[KeywordUpdate]:
    """SP side: run Algorithm 1 for every keyword of the new object.

    Must be called *before* the SP applies the insertion to its mirror
    trees (the spine describes the pre-insertion state).
    """
    updates = []
    for keyword in keywords:
        tree = trees.get(keyword)
        spine = (
            tree.gen_update_proof(object_id)
            if tree is not None
            else UpdateSpine(internal_levels=(), leaf_entries=())
        )
        updates.append(
            KeywordUpdate(keyword=keyword, spine_bytes=spine.serialise())
        )
    return updates


class SuppressedMerkleContract(SmartContract):
    """On-chain side of the Suppressed Merkle^inv index."""

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        super().__init__()
        self.fanout = fanout

    def register_object(
        self, object_id: int, object_hash: bytes, keywords: tuple[str, ...]
    ) -> None:
        """DO entry point: record the object's meta-data hash."""
        with obs.span("maintain.smi.register", keywords=len(keywords)):
            self.env.read_calldata(object_hash)
            self.storage.store(("objhash", object_id), object_hash)
            self.emit("ObjectRegistered", object_id=object_id)

    def insert(
        self,
        object_id: int,
        object_hash: bytes,
        updates: list[KeywordUpdate],
    ) -> None:
        """SP entry point: Algorithm 2 for every keyword's ``UpdVO``."""
        with obs.span("maintain.smi.insert", keywords=len(updates)):
            self._insert(object_id, object_hash, updates)

    def _insert(
        self,
        object_id: int,
        object_hash: bytes,
        updates: list[KeywordUpdate],
    ) -> None:
        registered = self.storage.load(("objhash", object_id))
        if not digests_equal(registered, object_hash):
            self.emit("InvalidUpdVO", object_id=object_id, reason="hash")
            raise IntegrityError(
                "object hash in UpdVO does not match the DO's registration"
            )
        new_entry = self._hash(entry_payload(object_id, object_hash))
        for update in updates:
            spine = UpdateSpine.deserialise(
                self.env.read_calldata(update.spine_bytes)
            )
            stored_root = self.storage.load(("root", update.keyword))
            # An absent keyword reads as the zero word, which equals the
            # EMPTY_DIGEST an empty spine reconstructs to.
            old_root = reconstruct_root(spine, hash_fn=self._hash)
            if not digests_equal(old_root, stored_root):
                self.emit(
                    "InvalidUpdVO",
                    object_id=object_id,
                    keyword=update.keyword,
                )
                raise IntegrityError(
                    f"UpdVO for keyword {update.keyword!r} does not match "
                    "the stored root hash"
                )
            new_root = compute_updated_root(
                spine, new_entry, self.fanout, hash_fn=self._hash
            )
            self.storage.store(("root", update.keyword), new_root)
        self.emit(
            "SuccessfulUpdate", object_id=object_id, keywords=len(updates)
        )

    def _hash(self, payload: bytes) -> bytes:
        """Metered hash: ``C_mem`` to stage the words, ``C_hash`` to digest."""
        self.env.touch_memory(word_count(payload))
        return self.env.keccak(payload)

    # -- free views --------------------------------------------------------------

    def view_root(self, keyword: str) -> bytes:
        """Free view: the keyword tree's on-chain root hash."""
        return self.storage.peek(("root", keyword))

    def view_object_hash(self, object_id: int) -> bytes:
        """Free view: the registered hash of one object."""
        return self.storage.peek(("objhash", object_id))


def updates_payload(updates: list[KeywordUpdate]) -> bytes:
    """Wire bytes of the SP's update transaction (``C_txdata``)."""
    chunks = []
    for update in updates:
        encoded_kw = update.keyword.encode("utf-8")
        chunks.append(len(encoded_kw).to_bytes(1, "big"))
        chunks.append(encoded_kw)
        chunks.append(len(update.spine_bytes).to_bytes(2, "big"))
        chunks.append(update.spine_bytes)
    return b"".join(chunks)
