"""The ADS scheme selector shared across the system layers.

Lives below :mod:`repro.core.owner` and :mod:`repro.core.system` so the
owner pipeline, the SP front-end wiring and the facade can all dispatch
on the scheme without importing each other.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ReproError


class Scheme(Enum):
    """The four ADS schemes evaluated in the paper."""

    MERKLE_INV = "mi"
    SUPPRESSED = "smi"
    CHAMELEON = "ci"
    CHAMELEON_STAR = "ci*"

    @classmethod
    def parse(cls, value: "Scheme | str") -> "Scheme":
        """Parse from the external representation."""
        if isinstance(value, Scheme):
            return value
        try:
            return cls(value.lower())
        except ValueError as exc:
            names = ", ".join(s.value for s in cls)
            raise ReproError(
                f"unknown scheme {value!r}; expected one of: {names}"
            ) from exc
