"""The paper's analytical gas-cost model (Sections IV and V).

The paper derives closed-form worst-case maintenance costs for each ADS
scheme; this module implements those formulas verbatim so they can be
checked against the simulator's measured gas — reproducing the paper's
claim that "the observed performance differences conform to our
theoretical cost analysis".

Per keyword tree holding ``n`` objects at fan-out ``F``:

* Merkle^inv (Section IV-A)::

    C_MI(n) = log_F n * (2*C_sstore + 2*C_supdate
                         + (2F+1)*C_sload + C_hash) + C_sstore

* Suppressed Merkle^inv (Section IV-C)::

    C_SMI(n) = log_F n * (F*|h|*C_txdata + 3*C_hash + (2F+1)*C_mem)
               + 2*C_sload + C_supdate

* Chameleon^inv (Section V-B): ``C_CI = C_supdate``

* Chameleon^inv* (Section V-D)::

    C_CI* = 2*C_supdate + C_sstore/b + C_sload

A whole-object insertion with ``L`` keywords additionally pays the
transaction base ``C_tx`` and the meta-data calldata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ethereum.gas import (
    GAS_MEM,
    GAS_SLOAD,
    GAS_SSTORE,
    GAS_SUPDATE,
    GAS_TX,
    GAS_TXDATA_PER_BYTE,
    gas_to_usd,
    hash_gas,
)

#: Digest size |h| in bytes, as in the paper's SMI analysis.
HASH_BYTES = 32


def _log_f(n: int, fanout: int) -> float:
    """``log_F n``, floored at 1 (a tree always has at least one level)."""
    if n < 2:
        return 1.0
    return max(1.0, math.log(n, fanout))


def mi_insert_cost(n: int, fanout: int = 4) -> float:
    """Worst-case gas to insert into one on-chain MB-tree (Sec. IV-A)."""
    per_level = (
        2 * GAS_SSTORE
        + 2 * GAS_SUPDATE
        + (2 * fanout + 1) * GAS_SLOAD
        + hash_gas(fanout)
    )
    return _log_f(n, fanout) * per_level + GAS_SSTORE


def smi_insert_cost(n: int, fanout: int = 4) -> float:
    """Worst-case gas to apply one keyword's ``UpdVO`` (Sec. IV-C)."""
    per_level = (
        fanout * HASH_BYTES * GAS_TXDATA_PER_BYTE
        + 3 * hash_gas(fanout)
        + (2 * fanout + 1) * GAS_MEM
    )
    return _log_f(n, fanout) * per_level + 2 * GAS_SLOAD + GAS_SUPDATE


def ci_insert_cost(n: int = 0, fanout: int = 4) -> float:
    """Constant per-keyword cost of the Chameleon^inv index (Sec. V-B)."""
    return float(GAS_SUPDATE)


def ci_star_insert_cost(
    n: int = 0, fanout: int = 4, bloom_capacity: int = 30
) -> float:
    """Constant per-keyword cost of Chameleon^inv* (Sec. V-D)."""
    return 2 * GAS_SUPDATE + GAS_SSTORE / bloom_capacity + GAS_SLOAD


_PER_KEYWORD = {
    "mi": mi_insert_cost,
    "smi": smi_insert_cost,
    "ci": ci_insert_cost,
    "ci*": ci_star_insert_cost,
}


@dataclass(frozen=True)
class CostPrediction:
    """Model output for one (scheme, n, L) point."""

    scheme: str
    tree_size: int
    keywords_per_object: float
    per_keyword_gas: float
    per_object_gas: float

    @property
    def per_object_usd(self) -> float:
        """Predicted per-object cost in US$."""
        return gas_to_usd(self.per_object_gas)


def predict_insert_cost(
    scheme: str,
    tree_size: int,
    keywords_per_object: float,
    fanout: int = 4,
    bloom_capacity: int = 30,
    metadata_bytes: int = 120,
    transactions_per_object: int = 1,
) -> CostPrediction:
    """Predict the per-object maintenance gas for a scheme.

    ``tree_size`` is the per-keyword tree population the insertion hits
    (for Zipf workloads, the posting-list size of a typical keyword);
    ``metadata_bytes`` is the DO's calldata; SMI additionally pays a
    second transaction for the SP's ``UpdVO`` (``transactions_per_object``
    is derived from the scheme when left at 1).
    """
    scheme = scheme.lower()
    if scheme not in _PER_KEYWORD:
        raise ValueError(f"unknown scheme {scheme!r}")
    if scheme == "ci*":
        per_keyword = ci_star_insert_cost(
            tree_size, fanout, bloom_capacity=bloom_capacity
        )
    else:
        per_keyword = _PER_KEYWORD[scheme](tree_size, fanout)
    tx_count = 2 if scheme == "smi" else transactions_per_object
    per_object = (
        keywords_per_object * per_keyword
        + tx_count * GAS_TX
        + metadata_bytes * GAS_TXDATA_PER_BYTE
        # Registering h(o) on-chain: one fresh storage word (all schemes).
        + GAS_SSTORE
    )
    return CostPrediction(
        scheme=scheme,
        tree_size=tree_size,
        keywords_per_object=keywords_per_object,
        per_keyword_gas=per_keyword,
        per_object_gas=per_object,
    )


def predicted_ordering(
    tree_size: int, keywords_per_object: float, fanout: int = 4
) -> list[str]:
    """Schemes sorted by predicted per-object cost, cheapest first."""
    predictions = [
        predict_insert_cost(s, tree_size, keywords_per_object, fanout)
        for s in _PER_KEYWORD
    ]
    return [p.scheme for p in sorted(predictions, key=lambda p: p.per_object_gas)]
