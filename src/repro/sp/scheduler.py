"""Cross-request witness coalescing for the Chameleon schemes.

Witness (opening) computation is the expensive half of the Chameleon
pipeline: each opening is an O(arity) multi-exponentiation, and several
callers routinely need openings of the *same* commitment — a batched
ingest opens slot 1 of a new node plus one child slot per new child, and
concurrent warm-up passes touch overlapping hot keywords.  The
:class:`WitnessScheduler` sits between those callers and
:func:`repro.crypto.vc.open_many`:

* callers **register** the ``(keyword, position, slot)`` openings they
  need and immediately receive a :class:`concurrent.futures.Future`;
* registrations for an opening already pending or in flight are
  **deduplicated** onto the existing future (``sp.batch.deduped``);
* :meth:`flush` groups pending requests **per commitment** and computes
  each group through a single divide-and-conquer
  :func:`~repro.crypto.vc.open_many` call, fanning the results back out
  to every waiting future via the configured executor.

Openings of a chameleon commitment are unique group elements — the slot
exponents are coprime to the group order, so ``x -> x^e`` is a bijection
and the opening does not depend on *when* (at which aux state) it is
computed.  Batch-computed witnesses are therefore byte-identical to the
ones the serial path would have produced, which keeps VOs stable across
scheduling policies.

Telemetry: ``sp.batch.requests`` / ``sp.batch.deduped`` /
``sp.batch.commitments`` / ``sp.batch.openings`` / ``sp.batch.flushes``
counters and an ``sp.batch.flush`` span per drain.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.crypto import vc
from repro.errors import ReproError
from repro.parallel import Executor, SerialExecutor

if TYPE_CHECKING:
    from repro.core.chameleon_index import ChameleonDataOwner

#: A request key: (keyword, node position, 1-based CVC slot).
RequestKey = tuple[str, int, int]


def _open_batch(
    args: tuple[vc.CVCPublicParams, vc.CVCAux, list[int], str],
) -> dict[int, int]:
    """Executor task: all requested slots of one commitment, batched.

    Module-level so process pools can pickle it; ``pp`` and ``aux`` are
    plain dataclasses and travel with the task.
    """
    pp, aux, slots, strategy = args
    with obs.span("sp.batch.open", slots=len(slots)):
        return vc.open_many(pp, slots, aux, strategy=strategy)


@dataclass
class _PendingGroup:
    """Per-commitment accumulator of requested slots and their futures."""

    keyword: str
    position: int
    slots: dict[int, Future] = field(default_factory=dict)


class WitnessScheduler:
    """Dedupes and batches CVC opening requests across concurrent callers.

    ``aux_source(keyword, position)`` resolves the commitment's auxiliary
    information (the DO's per-node state); ``executor`` runs the
    per-commitment batches (serial by default — the batching itself is
    the main win; thread/process pools add overlap on top).

    Thread safety: registration and flushing are serialised by one lock;
    the opening computations run outside it.  A future is removed from
    the in-flight map only after its result is set, so a concurrent
    registration either joins the computation or starts a fresh one —
    never observes a half-resolved entry.
    """

    def __init__(
        self,
        aux_source: Callable[[str, int], vc.CVCAux],
        pp: vc.CVCPublicParams,
        executor: Executor | None = None,
        strategy: str = "auto",
    ) -> None:
        self._aux_source = aux_source
        self._pp = pp
        self._executor = executor if executor is not None else SerialExecutor()
        self._strategy = strategy
        self._lock = threading.Lock()
        self._pending: dict[tuple[str, int], _PendingGroup] = {}
        self._inflight: dict[RequestKey, Future] = {}

    def request(self, keyword: str, position: int, slot: int) -> "Future[int]":
        """Register one opening request; returns a future for its proof.

        Duplicate registrations (same keyword, position and slot) share
        one future and one computation until the result is delivered.
        """
        key: RequestKey = (keyword, position, slot)
        with self._lock:
            obs.inc("sp.batch.requests")
            existing = self._inflight.get(key)
            if existing is not None:
                obs.inc("sp.batch.deduped")
                return existing
            group_key = (keyword, position)
            group = self._pending.get(group_key)
            if group is None:
                group = _PendingGroup(keyword=keyword, position=position)
                self._pending[group_key] = group
            future: "Future[int]" = Future()
            group.slots[slot] = future
            self._inflight[key] = future
        return future

    def request_many(
        self, requests: list[RequestKey]
    ) -> "list[Future[int]]":
        """Register several opening requests at once."""
        return [self.request(kw, pos, slot) for kw, pos, slot in requests]

    def pending_count(self) -> int:
        """Number of distinct openings queued for the next flush."""
        with self._lock:
            return sum(len(group.slots) for group in self._pending.values())

    def flush(self) -> int:
        """Drain the queue: one ``open_many`` per commitment.

        Returns the number of openings computed.  Failures propagate to
        every future waiting on the failed commitment and re-raise here.
        """
        with self._lock:
            groups = list(self._pending.values())
            self._pending.clear()
        if not groups:
            return 0
        obs.inc("sp.batch.flushes")
        computed = 0
        with obs.span(
            "sp.batch.flush",
            commitments=len(groups),
            openings=sum(len(group.slots) for group in groups),
        ):
            try:
                # Aux is resolved at *flush* time, after every staged
                # mutation of the commitment has landed — a group
                # registered early would otherwise open from a vector
                # missing later-staged slot values.
                tasks = [
                    (
                        self._pp,
                        self._aux_source(group.keyword, group.position),
                        sorted(group.slots),
                        self._strategy,
                    )
                    for group in groups
                ]
                results = self._executor.map(
                    _open_batch,
                    tasks,
                    labels=[
                        {
                            "keyword": group.keyword,
                            "position": group.position,
                            "slots": len(group.slots),
                        }
                        for group in groups
                    ],
                )
            except BaseException as exc:
                self._fail(groups, exc)
                raise
            for group, openings in zip(groups, results):
                for slot, future in group.slots.items():
                    future.set_result(openings[slot])
                    computed += 1
                with self._lock:
                    for slot in group.slots:
                        self._inflight.pop(
                            (group.keyword, group.position, slot), None
                        )
        obs.inc("sp.batch.commitments", len(groups))
        obs.inc("sp.batch.openings", computed)
        return computed

    def _fail(self, groups: list[_PendingGroup], exc: BaseException) -> None:
        """Propagate a flush failure to every waiting future."""
        with self._lock:
            for group in groups:
                for slot, future in group.slots.items():
                    if not future.done():
                        future.set_exception(exc)
                    self._inflight.pop(
                        (group.keyword, group.position, slot), None
                    )

    def open(self, keyword: str, position: int, slot: int) -> int:
        """Convenience: request one opening and flush immediately."""
        future = self.request(keyword, position, slot)
        self.flush()
        return future.result()


def tree_aux_source(owner: ChameleonDataOwner) -> Callable[[str, int], vc.CVCAux]:
    """Adapter: resolve aux from a :class:`ChameleonDataOwner`'s trees."""

    def resolve(keyword: str, position: int) -> vc.CVCAux:
        tree = owner.trees.get(keyword)
        if tree is None:
            raise ReproError(f"no tree for keyword {keyword!r}")
        return tree.aux_at(position)

    return resolve
