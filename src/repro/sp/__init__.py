"""Storage-provider layer.

The SP stores the raw objects (:class:`~repro.core.objects.ObjectStore`)
and mirrors the complete ADS of the active scheme.  The scheme-specific
index mirrors live with their schemes; this package re-exports them so
deployment code can depend on a single "SP" namespace:

* :class:`~repro.core.merkle_family.MerkleInvertedSP` — MI/SMI mirror;
* :class:`~repro.core.chameleon_index.ChameleonSP` — CI/CI* mirror.

Sharding (:mod:`repro.sp.engine`) partitions the keyword space across
pluggable :class:`IndexShardEngine` instances behind a deterministic
:class:`ShardRouter`; the scatter-gather front-end that drives them is
:class:`repro.core.sp_frontend.ShardedStorageProvider`.
"""

from repro.core.chameleon_index import ChameleonSP, ChameleonView
from repro.core.merkle_family import MBTreeView, MerkleInvertedSP
from repro.core.objects import ObjectStore
from repro.sp.affine import (
    POOL_KINDS,
    AffineEngineProxy,
    AffineWorkerPool,
    EngineSpec,
    guarded_dumps,
)
from repro.sp.engine import (
    ENGINE_KINDS,
    DiskShardEngine,
    IndexShardEngine,
    MemoryShardEngine,
    ShardRouter,
    make_engine,
)
from repro.sp.protocol import (
    QueryRequest,
    QueryResponse,
    RemoteClient,
    RemoteQueryResult,
    StorageProviderServer,
)
from repro.sp.scheduler import WitnessScheduler, tree_aux_source
from repro.sp.warmer import CacheWarmer, ShardedCacheWarmer

__all__ = [
    "AffineEngineProxy",
    "AffineWorkerPool",
    "CacheWarmer",
    "EngineSpec",
    "POOL_KINDS",
    "guarded_dumps",
    "ChameleonSP",
    "ChameleonView",
    "DiskShardEngine",
    "ENGINE_KINDS",
    "IndexShardEngine",
    "MBTreeView",
    "MemoryShardEngine",
    "MerkleInvertedSP",
    "ObjectStore",
    "ShardRouter",
    "ShardedCacheWarmer",
    "QueryRequest",
    "QueryResponse",
    "RemoteClient",
    "RemoteQueryResult",
    "StorageProviderServer",
    "WitnessScheduler",
    "make_engine",
    "tree_aux_source",
]
