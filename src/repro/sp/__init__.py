"""Storage-provider layer.

The SP stores the raw objects (:class:`~repro.core.objects.ObjectStore`)
and mirrors the complete ADS of the active scheme.  The scheme-specific
index mirrors live with their schemes; this package re-exports them so
deployment code can depend on a single "SP" namespace:

* :class:`~repro.core.merkle_family.MerkleInvertedSP` — MI/SMI mirror;
* :class:`~repro.core.chameleon_index.ChameleonSP` — CI/CI* mirror.
"""

from repro.core.chameleon_index import ChameleonSP, ChameleonView
from repro.core.merkle_family import MBTreeView, MerkleInvertedSP
from repro.core.objects import ObjectStore
from repro.sp.protocol import (
    QueryRequest,
    QueryResponse,
    RemoteClient,
    RemoteQueryResult,
    StorageProviderServer,
)
from repro.sp.scheduler import WitnessScheduler, tree_aux_source
from repro.sp.warmer import CacheWarmer

__all__ = [
    "CacheWarmer",
    "ChameleonSP",
    "ChameleonView",
    "MBTreeView",
    "MerkleInvertedSP",
    "ObjectStore",
    "QueryRequest",
    "QueryResponse",
    "RemoteClient",
    "RemoteQueryResult",
    "StorageProviderServer",
    "WitnessScheduler",
    "tree_aux_source",
]
