"""Background verification-cache warming for hot keywords.

The PR-2 fast path made *repeated* verifications ~free (the shared
:class:`~repro.core.proofcache.VerificationCache`), but the first query
after an insert still pays the full CVC exponentiation chain per entry —
~800 ms at corpus 150 versus ~4 ms warm.  The :class:`CacheWarmer`
closes that gap by doing the first verification *ahead of the query*:

* **on insert** the touched keywords are marked dirty (their on-chain
  digests changed, so previously cached tuples no longer apply);
* **on access** a trailing per-keyword frequency signal accumulates —
  either directly via :meth:`note_access` or pulled from the obs metrics
  registry (``sp.keyword.access.*`` counters) via
  :meth:`sync_from_metrics`;
* :meth:`run_pending` (deterministic, inline) or the background thread
  (:meth:`start`/:meth:`stop`) then warms the hot dirty keywords: it
  assembles each entry's membership proof from the SP's stored material
  and pushes it through the scheme's *real* ``verify_entry`` — the same
  code path a client runs — so only proofs that actually verify land in
  the cache.

Soundness is inherited, not re-argued: the cache stores successful
verifications keyed on the complete proven tuple, and the warmer adds
entries only through ``verify_entry`` itself.  A tampered proof raises
at warm time and caches nothing, so a later query re-verifies (and
fails) from scratch — warming can never turn an invalid proof into an
accepted one.

Telemetry: ``sp.warm.keywords`` / ``sp.warm.entries`` /
``sp.warm.failures`` counters and one ``sp.warm.keyword`` span per
warmed keyword.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING, Any

from repro import obs
from repro.errors import VerificationError

if TYPE_CHECKING:
    from repro.sp.engine import ShardRouter

#: Accesses within the trailing window before a keyword counts as hot.
DEFAULT_HOT_THRESHOLD = 2

#: Metrics-registry counter prefix carrying the access signal.
ACCESS_METRIC_PREFIX = "sp.keyword.access."


class CacheWarmer:
    """Precomputes successful proof verifications for hot keywords.

    ``prove(keyword)`` returns the keyword's proven entries (the SP's
    view assembles them from stored witnesses); ``proof_system(keywords)``
    builds the client-side proof system bound to the *current* on-chain
    digests, sharing the verification cache to be warmed.  Both are
    supplied by :class:`~repro.core.system.HybridStorageSystem`, but any
    pair with the same contract works (the warmer is scheme-agnostic:
    CVC membership proofs and Merkle paths warm identically).

    A keyword is warmed when it is *dirty* (inserted since the last
    warm) and *hot* (trailing accesses ≥ ``hot_threshold``).  Passing
    ``hot_threshold=0`` warms every dirty keyword — the eager on-insert
    policy the witness benchmark uses.
    """

    def __init__(
        self,
        prove: Callable[[str], Sequence[Any]],
        proof_system: Callable[[frozenset[str]], Any],
        hot_threshold: int = DEFAULT_HOT_THRESHOLD,
    ) -> None:
        self._prove = prove
        self._proof_system = proof_system
        self.hot_threshold = hot_threshold
        self._lock = threading.Lock()
        self._dirty: dict[str, None] = {}  # insertion-ordered set
        self._accesses: dict[str, int] = {}
        self._synced: dict[str, int] = {}  # registry counts already consumed
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- signals ----------------------------------------------------------------

    def note_insert(self, keywords: Iterable[str]) -> None:
        """Mark keywords dirty: their digests (and proofs) just changed."""
        with self._lock:
            for keyword in keywords:
                self._dirty[keyword] = None

    def note_access(self, keywords: Iterable[str]) -> None:
        """Record one access to each keyword (the trailing hot signal)."""
        with self._lock:
            for keyword in keywords:
                self._accesses[keyword] = self._accesses.get(keyword, 0) + 1
        for keyword in keywords:
            obs.inc(ACCESS_METRIC_PREFIX + keyword)

    def sync_from_metrics(self) -> int:
        """Pull the access signal from the obs metrics registry.

        Consumes the delta of every ``sp.keyword.access.<kw>`` counter
        since the previous sync, so components that only emit metrics
        (e.g. a remote SP front-end) still feed the warmer.  Returns the
        number of accesses absorbed.
        """
        registry = obs.metrics()
        if registry is None:
            return 0
        snapshot = registry.snapshot()
        absorbed = 0
        with self._lock:
            for name in sorted(snapshot):
                if not name.startswith(ACCESS_METRIC_PREFIX):
                    continue
                keyword = name[len(ACCESS_METRIC_PREFIX):]
                total = int(snapshot[name])
                delta = total - self._synced.get(keyword, 0)
                if delta > 0:
                    self._accesses[keyword] = (
                        self._accesses.get(keyword, 0) + delta
                    )
                    self._synced[keyword] = total
                    absorbed += delta
        return absorbed

    def pending(self) -> list[str]:
        """Dirty keywords whose trailing access count clears the bar."""
        with self._lock:
            return [
                keyword
                for keyword in self._dirty
                if self._accesses.get(keyword, 0) >= self.hot_threshold
            ]

    # -- warming ----------------------------------------------------------------

    def warm(self, keyword: str) -> int:
        """Verify every current proof of one keyword into the cache.

        Returns the number of entries warmed.  A proof that fails
        verification is counted, skipped and left uncached (fail
        closed); the keyword stays dirty so the failure is re-observed.
        """
        entries = self._prove(keyword)
        if not entries:
            with self._lock:
                self._dirty.pop(keyword, None)
            return 0
        ps = self._proof_system(frozenset((keyword,)))
        warmed = 0
        failures = 0
        with obs.span("sp.warm.keyword", keyword=keyword, entries=len(entries)):
            warm_entries = getattr(ps, "warm_entries", None)
            if warm_entries is not None:
                # Scheme-provided batch hook: verifies each per-entry
                # proof (skipping failures, fail closed per entry) and —
                # when the whole list verified — seeds the cache with
                # the deduplicated multiproof a compressed (v3) query
                # will present, so the warmed key hits at query time.
                warmed = warm_entries(keyword, entries)
                failures = len(entries) - warmed
            else:
                for entry in entries:
                    try:
                        ps.verify_entry(keyword, entry)
                        warmed += 1
                    except VerificationError:
                        failures += 1
        obs.inc("sp.warm.entries", warmed)
        if failures:
            obs.inc("sp.warm.failures", failures)
        else:
            with self._lock:
                self._dirty.pop(keyword, None)
                self._accesses[keyword] = 0
        obs.inc("sp.warm.keywords")
        return warmed

    def run_pending(self, limit: int | None = None) -> int:
        """Warm up to ``limit`` pending keywords inline; returns entries."""
        total = 0
        for keyword in self.pending()[: limit if limit is not None else None]:
            total += self.warm(keyword)
        return total

    # -- background mode --------------------------------------------------------

    def start(self, interval_s: float = 0.05) -> None:
        """Run :meth:`run_pending` on a daemon thread every ``interval_s``."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            thread = threading.Thread(
                target=self._loop, args=(interval_s,), daemon=True,
                name="cache-warmer",
            )
            self._thread = thread
        thread.start()

    def stop(self, timeout_s: float = 2.0) -> bool:
        """Stop the background thread and join it (idempotent).

        The stop event is set *before* the thread slot is cleared, so a
        concurrent :meth:`start` cannot race a half-stopped loop; the
        join is bounded by ``timeout_s`` so a warmer wedged inside a
        slow verification can never hang ``close()`` or a test teardown.
        Returns ``True`` once the thread has actually exited (including
        the no-thread case), ``False`` if the join timed out.
        """
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return True
        thread.join(timeout_s)
        return not thread.is_alive()

    def _loop(self, interval_s: float) -> None:
        while not self._stop.wait(interval_s):
            self.sync_from_metrics()
            self.run_pending()

    # -- test hooks -------------------------------------------------------------

    def wait_idle(self, timeout_s: float = 2.0) -> bool:
        """Block until nothing is pending (background-mode tests)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if not self.pending():
                return True
            time.sleep(0.01)
        return not self.pending()


class ShardedCacheWarmer:
    """Routes warming signals to the per-shard :class:`CacheWarmer`\\ s.

    Each shard engine owns the warmer for its keyword partition; this
    facade presents them as one warmer to the system: signals are
    routed to the owning shard, aggregate views iterate the warmers in
    shard-index order (deterministic), and the background thread hooks
    fan out.  A keyword only ever becomes dirty on its owning shard, so
    the per-shard pending sets are disjoint by construction.
    """

    def __init__(
        self, warmers: Iterable[CacheWarmer], router: ShardRouter
    ) -> None:
        self._warmers: list[CacheWarmer] = list(warmers)
        self._router = router

    def _warmer_for(self, keyword: str) -> CacheWarmer:
        return self._warmers[self._router.route(keyword)]

    @property
    def hot_threshold(self) -> int:
        """The shared trailing-access bar (identical across shards)."""
        return self._warmers[0].hot_threshold

    def note_insert(self, keywords: Iterable[str]) -> None:
        """Mark keywords dirty on their owning shards."""
        for keyword in keywords:
            self._warmer_for(keyword).note_insert((keyword,))

    def note_access(self, keywords: Iterable[str]) -> None:
        """Record one access per keyword on its owning shard."""
        for keyword in keywords:
            self._warmer_for(keyword).note_access((keyword,))

    def sync_from_metrics(self) -> int:
        """Absorb the registry access signal on every shard warmer.

        Every warmer consumes the full counter set; accesses to
        keywords a shard does not own are harmless, because those
        keywords never become dirty there.
        """
        return sum(warmer.sync_from_metrics() for warmer in self._warmers)

    def pending(self) -> list[str]:
        """Pending keywords across shards, in shard-index order."""
        out: list[str] = []
        for warmer in self._warmers:
            out.extend(warmer.pending())
        return out

    def warm(self, keyword: str) -> int:
        """Warm one keyword on its owning shard."""
        return self._warmer_for(keyword).warm(keyword)

    def run_pending(self, limit: int | None = None) -> int:
        """Warm up to ``limit`` pending keywords inline; returns entries."""
        total = 0
        for keyword in self.pending()[: limit if limit is not None else None]:
            total += self.warm(keyword)
        return total

    def start(self, interval_s: float = 0.05) -> None:
        """Start every shard warmer's background thread."""
        for warmer in self._warmers:
            warmer.start(interval_s)

    def stop(self, timeout_s: float = 2.0) -> bool:
        """Stop every shard warmer's background thread (idempotent).

        Returns ``True`` only if every thread exited within its join
        timeout; all warmers are stopped regardless.
        """
        return all(
            [warmer.stop(timeout_s) for warmer in self._warmers]
        )

    def wait_idle(self, timeout_s: float = 2.0) -> bool:
        """Block until no shard has pending work."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if not self.pending():
                return True
            time.sleep(0.01)
        return not self.pending()
