"""SP query service over a bytes-only boundary.

In deployment the client and the storage provider are separate
processes; everything they exchange is serialised.  This module
provides that boundary without committing to a transport: a
:class:`StorageProviderServer` turns request bytes into response bytes,
and a :class:`RemoteClient` drives any ``bytes -> bytes`` callable (an
in-process handle, an HTTP POST, a socket) and verifies the results
*locally* against the chain — the SP stays untrusted end to end.

Wire formats reuse the VO codec; objects travel as
``id(8) || n_keywords(2) || keywords || content_len(4) || content``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.core.objects import MAX_KEYWORD_BYTES, DataObject
from repro.core.query.codec import VOCodec
from repro.core.query.parser import KeywordQuery
from repro.core.query.verify import verify_query
from repro.core.query.vo import QueryAnswer

if TYPE_CHECKING:
    from repro.core.system import HybridStorageSystem
from repro.errors import DatasetError, QueryError, ReproError

#: Protocol version byte, bumped on breaking format changes.
#: v2: error responses carry a machine-readable error-code byte.
PROTOCOL_VERSION = 2

_STATUS_OK = 0
_STATUS_ERROR = 1

# -- machine-readable error codes (one byte on the wire) ---------------------

#: No error (never serialised; the OK status byte covers it).
ERR_NONE = 0
#: The request bytes could not be decoded (truncated, bad version...).
ERR_BAD_REQUEST = 1
#: The query expression was malformed or uses an unsupported shape.
ERR_QUERY = 2
#: The SP failed internally while answering a well-formed query.
ERR_INTERNAL = 3

ERROR_CODE_NAMES = {
    ERR_NONE: "none",
    ERR_BAD_REQUEST: "bad-request",
    ERR_QUERY: "query",
    ERR_INTERNAL: "internal",
}


def _write_bytes(out: io.BytesIO, blob: bytes, width: int = 4) -> None:
    out.write(len(blob).to_bytes(width, "big"))
    out.write(blob)


def _read_exact(data: io.BytesIO, length: int) -> bytes:
    raw = data.read(length)
    if len(raw) != length:
        raise ReproError("truncated protocol message")
    return raw


def _read_bytes(data: io.BytesIO, width: int = 4) -> bytes:
    length = int.from_bytes(_read_exact(data, width), "big")
    return _read_exact(data, length)


def encode_object(obj: DataObject) -> bytes:
    """Serialise a data object for the wire."""
    out = io.BytesIO()
    out.write(obj.object_id.to_bytes(8, "big"))
    out.write(len(obj.keywords).to_bytes(2, "big"))
    for keyword in obj.keywords:
        blob = keyword.encode("utf-8")
        if len(blob) > MAX_KEYWORD_BYTES:
            # Ingestion already enforces this; the codec re-checks so a
            # rogue object raises a library error, not an OverflowError
            # from the one-byte length prefix.
            raise ReproError(
                f"keyword is {len(blob)} UTF-8 bytes; the wire format "
                f"caps keywords at {MAX_KEYWORD_BYTES} bytes"
            )
        _write_bytes(out, blob, width=1)
    _write_bytes(out, obj.content)
    return out.getvalue()


def decode_object(data: io.BytesIO) -> DataObject:
    """Parse a data object from the wire."""
    object_id = int.from_bytes(_read_exact(data, 8), "big")
    n_keywords = int.from_bytes(_read_exact(data, 2), "big")
    keywords = tuple(
        _read_bytes(data, width=1).decode("utf-8") for _ in range(n_keywords)
    )
    content = _read_bytes(data)
    return DataObject(object_id=object_id, keywords=keywords, content=content)


@dataclass(frozen=True)
class QueryRequest:
    """A keyword-search request."""

    query_text: str

    def encode(self) -> bytes:
        """Serialise to the canonical wire form."""
        out = io.BytesIO()
        out.write(bytes([PROTOCOL_VERSION]))
        _write_bytes(out, self.query_text.encode("utf-8"), width=2)
        return out.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "QueryRequest":
        """Parse from the canonical wire form."""
        data = io.BytesIO(payload)
        version = _read_exact(data, 1)[0]
        if version != PROTOCOL_VERSION:
            raise ReproError(f"unsupported protocol version {version}")
        text = _read_bytes(data, width=2).decode("utf-8")
        return cls(query_text=text)


@dataclass
class QueryResponse:
    """The SP's serialisable answer."""

    result_ids: list[int]
    objects: list[DataObject]
    vo_bytes: bytes
    error: str | None = None
    error_code: int = ERR_NONE

    def encode(self) -> bytes:
        """Serialise to the canonical wire form."""
        out = io.BytesIO()
        out.write(bytes([PROTOCOL_VERSION]))
        if self.error is not None:
            out.write(bytes([_STATUS_ERROR]))
            code = self.error_code if self.error_code else ERR_INTERNAL
            out.write(bytes([code]))
            _write_bytes(out, self.error.encode("utf-8"), width=2)
            return out.getvalue()
        out.write(bytes([_STATUS_OK]))
        out.write(len(self.result_ids).to_bytes(4, "big"))
        for object_id in self.result_ids:
            out.write(object_id.to_bytes(8, "big"))
        out.write(len(self.objects).to_bytes(4, "big"))
        for obj in self.objects:
            _write_bytes(out, encode_object(obj))
        _write_bytes(out, self.vo_bytes)
        return out.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "QueryResponse":
        """Parse from the canonical wire form."""
        data = io.BytesIO(payload)
        version = _read_exact(data, 1)[0]
        if version != PROTOCOL_VERSION:
            raise ReproError(f"unsupported protocol version {version}")
        status = _read_exact(data, 1)[0]
        if status == _STATUS_ERROR:
            code = _read_exact(data, 1)[0]
            return cls(
                result_ids=[],
                objects=[],
                vo_bytes=b"",
                error=_read_bytes(data, width=2).decode("utf-8"),
                error_code=code,
            )
        n_ids = int.from_bytes(_read_exact(data, 4), "big")
        result_ids = [
            int.from_bytes(_read_exact(data, 8), "big") for _ in range(n_ids)
        ]
        n_objects = int.from_bytes(_read_exact(data, 4), "big")
        objects = [
            decode_object(io.BytesIO(_read_bytes(data)))
            for _ in range(n_objects)
        ]
        vo_bytes = _read_bytes(data)
        return cls(result_ids=result_ids, objects=objects, vo_bytes=vo_bytes)


class StorageProviderServer:
    """Handles serialised query requests against a loaded system's SP.

    Only the SP-side state is touched: the server never consults the
    chain, mirroring the trust boundary of Fig. 1.
    """

    def __init__(self, system: HybridStorageSystem) -> None:
        self._system = system
        self._codec = VOCodec(value_bytes=system.value_bytes)

    def handle(self, request_bytes: bytes) -> bytes:
        """Process one serialised request into a response."""
        with obs.span("sp.request", bytes_in=len(request_bytes)) as req_span:
            obs.inc("sp.requests")
            obs.inc("sp.request_bytes", len(request_bytes))
            response = self._answer(request_bytes)
            if response.error is not None:
                obs.inc("sp.errors")
                req_span.set(
                    error=ERROR_CODE_NAMES.get(
                        response.error_code, response.error_code
                    )
                )
            payload = response.encode()
            obs.inc("sp.response_bytes", len(payload))
            req_span.set(bytes_out=len(payload))
        return payload

    def _answer(self, request_bytes: bytes) -> QueryResponse:
        def error(code: int, exc: Exception) -> QueryResponse:
            return QueryResponse(
                result_ids=[],
                objects=[],
                vo_bytes=b"",
                error=str(exc),
                error_code=code,
            )

        try:
            request = QueryRequest.decode(request_bytes)
        except ReproError as exc:
            return error(ERR_BAD_REQUEST, exc)
        try:
            query = KeywordQuery.parse(request.query_text)
        except QueryError as exc:
            return error(ERR_QUERY, exc)
        except DatasetError as exc:
            # e.g. a keyword beyond the 255-byte wire limit: the request
            # itself is malformed, not the query structure.
            return error(ERR_BAD_REQUEST, exc)
        try:
            answer = self._system.process_query(query)
            return QueryResponse(
                result_ids=answer.result_ids,
                objects=[answer.objects[oid] for oid in answer.result_ids],
                vo_bytes=self._codec.encode(answer.vo),
            )
        except QueryError as exc:
            return error(ERR_QUERY, exc)
        except ReproError as exc:
            return error(ERR_INTERNAL, exc)


@dataclass
class RemoteQueryResult:
    """A verified answer obtained over the wire."""

    result_ids: list[int]
    objects: dict[int, DataObject]
    vo_sp_bytes: int
    vo_chain_bytes: int


class RemoteClient:
    """Queries an untrusted SP over bytes and verifies locally.

    ``transport`` is any ``bytes -> bytes`` callable reaching the SP;
    ``system`` supplies the *chain-side* reads only (``VO_chain`` and
    the proof system) — in a real deployment this is the client's own
    light-client view of the blockchain.
    """

    def __init__(
        self, transport: Callable[[bytes], bytes], system: HybridStorageSystem
    ) -> None:
        self._transport = transport
        self._system = system
        self._codec = VOCodec(value_bytes=system.value_bytes)

    def query(self, text: str) -> RemoteQueryResult:
        """Run a query; returns verified results."""
        with obs.span("client.query") as root_span:
            with obs.span("client.parse"):
                query = KeywordQuery.parse(text)
            with obs.span("client.request"):
                raw = self._transport(QueryRequest(query_text=text).encode())
            response = QueryResponse.decode(raw)
            if response.error is not None:
                code = ERROR_CODE_NAMES.get(
                    response.error_code, str(response.error_code)
                )
                raise QueryError(
                    f"SP returned an error ({code}): {response.error}"
                )
            with obs.span("client.vo_decode", bytes=len(response.vo_bytes)):
                vo = self._codec.decode(response.vo_bytes)
            answer = QueryAnswer(
                result_ids=response.result_ids,
                objects={obj.object_id: obj for obj in response.objects},
                vo=vo,
            )
            with obs.span("client.chain"):
                proof_system = self._system.chain_proof_system(
                    query.all_keywords()
                )
            with obs.span("client.verify"):
                verified = verify_query(query, answer, proof_system)
            root_span.set(results=len(verified.ids))
        return RemoteQueryResult(
            result_ids=sorted(verified.ids),
            objects=answer.objects,
            vo_sp_bytes=len(response.vo_bytes),
            vo_chain_bytes=proof_system.chain_digest_bytes(),
        )
