"""Shard-affine persistent workers: resident engines, delta-only wire.

The stateless process-pool scatter path ships every task's *inputs* —
including each keyword's current MB-tree — to whichever worker the pool
picks, and ships the extended trees back.  Per-batch IPC therefore grows
with total index size, and 4-shard ingest lands below single-shard
(``BENCH_shard.json``): the workers spend their time pickling state they
could simply have kept.

This module keeps it.  Each shard's engine lives *resident* inside one
long-lived worker process, spawned once and keyed by shard id:

* **ingest** ships only the batch's posting deltas to the owning worker,
  in the exact journal-record format the engines already replay — the
  wire format *is* the recovery format, so a delta batch applies through
  the same code path as a crash replay and journals as one append;
* **queries** route each conjunct's join to the worker already holding
  the shard's views; only view/VO material crosses the channel, and
  replies are gathered in request order so VOs stay byte-identical to
  the serial build at any shard count;
* **telemetry** recorded inside a worker travels back as an
  :mod:`repro.obs.xproc` snapshot on the same reply and is adopted under
  the dispatching span, so ``repro obs critpath`` still sees one
  connected trace.

A guarded pickler enforces the contract mechanically: any attempt to
serialise resident shard state (trees, index mirrors, engines) into a
*request* raises :class:`~repro.errors.ParameterError` instead of
silently re-introducing the O(index) payloads this module exists to
remove.  Replies may carry trees — exporting a view is the point.

The pool is transport only; policy (partitioning, batching, fallback to
the stateless executors) stays in
:class:`~repro.core.sp_frontend.ShardedStorageProvider`.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import pickle
import sys
import threading
import traceback
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any, NoReturn

from repro import obs
from repro.errors import ParameterError, ReproError
from repro.obs import trace as obs_trace
from repro.obs import xproc
from repro.parallel import RemoteTraceback
from repro.sp.engine import IndexShardEngine, make_engine

if TYPE_CHECKING:
    from repro.core.objects import DataObject

#: Pool modes accepted by the SP front-end / system facade.
POOL_KINDS = ("stateless", "affine")

#: Span wrapping every request handled inside a resident worker.
RPC_SPAN = "sp.affine.rpc"

#: Journal-format records buffered per proxy before an automatic flush.
DEFAULT_CHUNK_RECORDS = 4096


def build_index_factory(index_spec: tuple) -> Callable[[], object]:
    """Rebuild a per-shard index factory from its picklable spec.

    The system facade's index factories are closures over live config
    (unpicklable under ``spawn``); workers instead receive a
    ``(kind, params)`` spec of plain data and rebuild the closure here.
    """
    kind, params = index_spec
    if kind == "merkle":
        from repro.core.merkle_family import MerkleInvertedSP

        fanout = params["fanout"]
        return lambda: MerkleInvertedSP(fanout=fanout)
    if kind == "chameleon":
        from repro.core.chameleon_index import ChameleonSP

        pp, arity = params["pp"], params["arity"]
        return lambda: ChameleonSP(pp=pp, arity=arity)
    raise ParameterError(f"unknown index spec kind {kind!r}")


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to build its resident shard engine.

    Plain data only (``index_spec`` instead of a factory closure), so a
    spec crosses the process boundary under any start method.
    """

    shard_id: int
    engine: str
    index_spec: tuple
    directory: str | None = None
    star: bool = False
    filter_bits: int = 0
    bloom_capacity: int = 0

    def build(self) -> IndexShardEngine:
        """Construct the engine (replaying its journal if on disk)."""
        return make_engine(
            self.engine,
            self.shard_id,
            build_index_factory(self.index_spec),
            directory=self.directory,
            star=self.star,
            filter_bits=self.filter_bits,
            bloom_capacity=self.bloom_capacity,
        )


# -- request guarding ------------------------------------------------------------


def _resident_state_types() -> tuple:
    """The types that constitute resident shard state (lazy import)."""
    from repro.core.chameleon import ChameleonTreeSP
    from repro.core.chameleon_index import ChameleonSP
    from repro.core.mbtree import MBTree
    from repro.core.merkle_family import MerkleInvertedSP
    from repro.core.nodestore import NodeStore, TreeView

    return (
        MBTree,
        ChameleonTreeSP,
        MerkleInvertedSP,
        ChameleonSP,
        IndexShardEngine,
        NodeStore,
        TreeView,
    )


def _reject_resident_state(obj: object) -> NoReturn:
    raise ParameterError(
        f"affine request must not carry resident shard state "
        f"({type(obj).__name__}); ship deltas, not trees"
    )


def _guard_table() -> dict:
    # Rebuilt on every dumps: subclasses of the resident-state types may
    # be imported or defined at any time, and a cached table would let
    # them pickle straight past the guard.  Walking a handful of small
    # class hierarchies is noise next to the pickling itself.
    table = {}
    stack = list(_resident_state_types())
    while stack:
        cls = stack.pop()
        if cls in table:
            continue
        table[cls] = _reject_resident_state
        stack.extend(cls.__subclasses__())
    return table


def guarded_dumps(obj: object) -> bytes:
    """Pickle a request payload, rejecting resident shard state.

    The dispatch-table guard costs nothing for allowed types (builtin
    containers and scalars never consult it) and fails fast the moment a
    tree, index mirror or engine would cross the channel toward a
    worker — the structural invariant of the affine path.
    """
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.dispatch_table = _guard_table()
    pickler.dump(obj)
    return buffer.getvalue()


# -- worker side -----------------------------------------------------------------


def _handle(engine: IndexShardEngine, op: str, payload: Any) -> object:
    """Execute one request against the resident engine."""
    if op == "apply":
        return engine.apply_records(payload)
    if op == "bulk":
        return engine.apply_bulk(payload)
    if op == "join":
        from repro.core.query.join import conjunctive_join

        conjuncts, order, plan = payload
        outcomes = []
        for keywords in conjuncts:
            views = [engine.view(keyword) for keyword in keywords]
            with obs.span("query.sp.join", keywords=len(views)):
                outcomes.append(
                    conjunctive_join(views, order=order, plan=plan)
                )
        return outcomes
    if op == "adopt":
        from repro.sp.engine import tree_from_blob

        keyword, blob, entries = payload
        engine.adopt_tree(keyword, tree_from_blob(blob), entries)
        return len(entries)
    if op == "compact":
        return engine.compact()
    if op == "views":
        return {keyword: engine.view(keyword) for keyword in payload}
    if op == "tree":
        return engine.tree(payload)
    if op == "get_objects":
        return [engine.get_object(object_id) for object_id in payload]
    if op == "object_ids":
        return engine.all_object_ids()
    if op == "ping":
        return payload
    if op == "close":
        return True
    raise ParameterError(f"unknown affine op {op!r}")


def _worker_main(conn: Connection, spec: EngineSpec) -> None:
    """Resident worker loop: build the engine once, serve until close.

    Runs in the child process.  The fork start method copies the
    parent's installed telemetry collector, which must not absorb the
    worker's spans — uninstall first; traced requests run under a fresh
    local collector whose snapshot rides back on the reply.
    """
    obs_trace.uninstall()
    try:
        engine = spec.build()
    except BaseException as exc:  # noqa: B036 - reported to the parent
        conn.send_bytes(
            pickle.dumps((False, (exc, traceback.format_exc()), None))
        )
        conn.close()
        return
    conn.send_bytes(
        pickle.dumps(
            (
                True,
                {"pid": os.getpid(), "object_ids": engine.all_object_ids()},
                None,
            )
        )
    )
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break  # parent died or closed: release the journal and exit
        op, payload, traced = pickle.loads(raw)
        snapshot = None
        if traced:
            collector = obs_trace.Collector()
            with obs_trace.collect(collector):
                try:
                    with collector.span(
                        RPC_SPAN,
                        op=op,
                        shard=spec.shard_id,
                        worker=os.getpid(),
                    ):
                        result = _handle(engine, op, payload)
                    ok = True
                except BaseException as exc:  # noqa: B036 - re-raised upstream
                    ok, result = False, (exc, traceback.format_exc())
            snapshot = xproc.capture(collector)
        else:
            try:
                ok, result = True, _handle(engine, op, payload)
            except BaseException as exc:  # noqa: B036 - re-raised upstream
                ok, result = False, (exc, traceback.format_exc())
        try:
            conn.send_bytes(pickle.dumps((ok, result, snapshot)))
        except (BrokenPipeError, OSError):
            break
        if op == "close" and ok:
            break
    engine.close()
    conn.close()


# -- parent side -----------------------------------------------------------------


def _mark_pipe_lock(lock: threading.Lock) -> None:
    """Bless a pipe-serialising lock with the runtime sanitizer.

    Resolved through ``sys.modules`` so the analysis package is never
    imported here: it is already loaded iff ``REPRO_SANITIZE=1``.
    """
    sanitize = sys.modules.get("repro.analysis.sanitize")
    if sanitize is not None:
        sanitize.mark_pipe_lock(lock)


@dataclass
class _Worker:
    process: multiprocessing.Process
    conn: object
    lock: threading.Lock = field(default_factory=threading.Lock)


class AffineWorkerPool:
    """One long-lived process per shard, request/reply over pipes.

    Workers are spawned once at construction (handshake carries each
    shard's replayed object IDs, so disk recovery happens *in* the
    worker); every later interaction is :meth:`dispatch`.  Byte counters
    (``request_bytes`` / ``ingest_bytes`` / ``reply_bytes``) accumulate
    on the pool itself so benchmarks can read scatter payloads without a
    telemetry collector installed.
    """

    kind = "affine"

    def __init__(self, specs: list[EngineSpec]) -> None:
        if not specs:
            raise ParameterError("affine pool needs at least one shard spec")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self._workers: list[_Worker] = []
        self._closed = False
        self._broken = False
        self._counter_lock = threading.Lock()
        self.request_bytes = 0
        self.ingest_bytes = 0
        self.reply_bytes = 0
        self.ready_info: list[dict] = []
        for spec in specs:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, spec),
                daemon=True,
                name=f"affine-shard-{spec.shard_id}",
            )
            process.start()
            child_conn.close()
            worker = _Worker(process=process, conn=parent_conn)
            _mark_pipe_lock(worker.lock)
            self._workers.append(worker)
        # Collect handshakes after every spawn so workers boot (and
        # replay their journals) concurrently.
        for spec, worker in zip(specs, self._workers):
            ok, info, _ = pickle.loads(worker.conn.recv_bytes())
            if not ok:
                exc, formatted = info
                self.close()
                raise exc from RemoteTraceback(formatted)
            self.ready_info.append(info)

    @property
    def shards(self) -> int:
        """Number of resident workers (= shards)."""
        return len(self._workers)

    def dispatch(
        self, calls: list[tuple[int, str, object]], ingest: bool = False
    ) -> list:
        """Run ``(shard, op, payload)`` calls; results in call order.

        Per-worker locks are taken in ascending shard order (two
        concurrent dispatches can never deadlock).  Requests are sent
        eagerly, draining any already-ready replies between sends; each
        pipe is FIFO, so the j-th reply from a shard pairs with the j-th
        call to that shard and results land in call order regardless of
        read interleaving.  The drain-before-send also means a worker
        mid-way through a large reply is normally read before we block
        writing to it — but a large request racing a large (>pipe
        buffer) earlier reply on the *same* shard can still wedge, so
        call sites keep one side of any multi-call shard conversation
        small (bulk replies are counts; view/join requests are keyword
        lists).

        Exactly one reply is consumed per successfully sent request,
        even when a send fails partway or a worker reports an error —
        an unread reply would desynchronize that shard's pipe and feed
        a stale result to the *next* dispatch.  The first error (a
        worker-side exception, with the worker's traceback chained, or
        the send-phase failure) is re-raised only after the drain;
        telemetry snapshots are adopted first, so failing spans still
        reach the trace.  If a pipe itself dies mid-protocol the pool
        is marked broken and every later dispatch fails fast.
        """
        if self._closed:
            raise ReproError("affine pool is closed")
        if self._broken:
            raise ReproError(
                "affine pool is broken after a prior pipe failure; "
                "build a new pool"
            )
        if not calls:
            return []
        collector = obs_trace.current()
        traced = collector is not None
        parent_id = None
        if traced:
            stack = collector._stack()
            parent_id = stack[-1].span_id if stack else None
        shard_order = sorted({shard for shard, _, _ in calls})
        held = []
        results: list = [None] * len(calls)
        # Per-shard FIFO of result slots awaiting a reply.
        pending: dict[int, deque] = {shard: deque() for shard in shard_order}
        failure = None  # first worker-side (exc, formatted_traceback)
        sent = 0
        received = 0

        def read_reply(shard: int) -> None:
            nonlocal received, failure
            try:
                raw = self._workers[shard].conn.recv_bytes()
            except BaseException:
                self._broken = True
                raise
            received += len(raw)
            index = pending[shard].popleft()
            ok, result, snapshot = pickle.loads(raw)
            if snapshot is not None and traced:
                xproc.adopt(
                    collector,
                    snapshot,
                    parent_id=parent_id,
                    extra_attributes={"shard": shard},
                )
            if ok:
                results[index] = result
            elif failure is None:
                failure = result

        try:
            for shard in shard_order:
                self._workers[shard].lock.acquire()
                held.append(shard)
            send_failure = None
            try:
                for index, (shard, op, payload) in enumerate(calls):
                    for ready in shard_order:
                        while pending[ready] and self._workers[
                            ready
                        ].conn.poll(0):
                            read_reply(ready)
                    # guarded_dumps may reject the payload: nothing has
                    # hit this call's pipe yet, so the pool stays usable
                    # once already-sent replies are drained below.
                    buffer = guarded_dumps((op, payload, traced))
                    try:
                        self._workers[shard].conn.send_bytes(buffer)
                    except BaseException:
                        # A failed send may have written a partial
                        # frame: this shard's stream is unrecoverable.
                        self._broken = True
                        raise
                    sent += len(buffer)
                    pending[shard].append(index)
            except BaseException as exc:  # noqa: B036 - re-raised after drain
                send_failure = exc
            try:
                for shard in shard_order:
                    while pending[shard]:
                        read_reply(shard)
            except BaseException as exc:  # noqa: B036 - undrainable pipe
                self._broken = True
                if send_failure is None and failure is None:
                    raise
            if failure is not None:
                exc, formatted = failure
                raise exc from RemoteTraceback(formatted)
            if send_failure is not None:
                raise send_failure
        finally:
            for shard in reversed(held):
                self._workers[shard].lock.release()
        with self._counter_lock:
            self.request_bytes += sent
            self.reply_bytes += received
            if ingest:
                self.ingest_bytes += sent
        obs.inc("sp.affine.rpcs", len(calls))
        obs.inc("sp.affine.request.bytes", sent)
        obs.inc("sp.affine.reply.bytes", received)
        if ingest:
            obs.inc("sp.affine.scatter.bytes", sent)
        return results

    def request(self, shard: int, op: str, payload: object = None) -> Any:
        """One call to one worker; returns its result."""
        return self.dispatch([(shard, op, payload)])[0]

    def reset_counters(self) -> None:
        """Zero the byte counters (benchmark phase boundaries)."""
        with self._counter_lock:
            self.request_bytes = 0
            self.ingest_bytes = 0
            self.reply_bytes = 0

    def close(self, timeout_s: float = 5.0) -> None:
        """Shut every worker down (idempotent): close op, join, reap."""
        if self._closed:
            return
        self._closed = True
        if not self._broken:
            for worker in self._workers:
                with worker.lock:
                    if not worker.process.is_alive():
                        continue
                    try:
                        worker.conn.send_bytes(
                            guarded_dumps(("close", None, False))
                        )
                        # Bounded wait for the close ack: a worker wedged
                        # in a long _handle call must not hang close() —
                        # fall through to join/terminate below.
                        if worker.conn.poll(timeout_s):
                            worker.conn.recv_bytes()
                    except (BrokenPipeError, EOFError, OSError):
                        pass
        for worker in self._workers:
            worker.process.join(timeout_s)
            if worker.process.is_alive():  # pragma: no cover - wedged worker
                worker.process.terminate()
                worker.process.join(timeout_s)
            worker.conn.close()


class AffineEngineProxy:
    """The front-end's engine-shaped handle onto one resident worker.

    Mutators buffer journal-format delta records and flush them in
    chunks (one ``apply`` request per chunk); every read flushes first,
    so a query issued right after an ingest sees the complete state —
    the same read-your-writes guarantee the in-process engines give.
    The system facade's readers-writer lock already serialises ingest
    against queries, so the buffer needs no locking of its own.
    """

    def __init__(
        self,
        pool: AffineWorkerPool,
        shard_id: int,
        *,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> None:
        self.pool = pool
        self.shard_id = shard_id
        self.kind = "affine"
        self.chunk_records = chunk_records
        self.warmer = None  # attached by the facade, runs parent-side
        self._pending: list[dict] = []

    # -- resident state must not be reachable here --------------------------------

    @property
    def store(self) -> NoReturn:
        raise ReproError(
            "affine mode keeps the object store resident in the shard "
            "worker; fetch through the storage provider instead"
        )

    @property
    def index(self) -> NoReturn:
        raise ReproError(
            "affine mode keeps the index mirror resident in the shard "
            "worker; query through the storage provider instead"
        )

    # -- buffered mutators ---------------------------------------------------------

    def _queue(self, record: dict) -> None:
        self._pending.append(record)
        if len(self._pending) >= self.chunk_records:
            self.flush()

    def flush(self) -> int:
        """Ship buffered delta records to the worker; returns count."""
        if not self._pending:
            return 0
        records, self._pending = self._pending, []
        self.pool.dispatch(
            [(self.shard_id, "apply", records)], ingest=True
        )
        return len(records)

    def insert_entry(
        self, keyword: str, object_id: int, object_hash: bytes
    ) -> None:
        self._queue(
            {
                "op": "entry",
                "kw": keyword,
                "id": object_id,
                "hash": object_hash.hex(),
            }
        )

    def register_keyword(self, keyword: str, commitment: int) -> None:
        self._queue(
            {"op": "register", "kw": keyword, "c": format(commitment, "x")}
        )

    def apply_insertion(self, keyword: str, proof: object) -> None:
        from repro.sp.engine import _proof_to_record

        self._queue(
            {"op": "apply", "kw": keyword, "proof": _proof_to_record(proof)}
        )

    def bloom_add(self, keyword: str, object_id: int) -> None:
        self._queue({"op": "bloom", "kw": keyword, "id": object_id})

    def put_object(self, obj: DataObject) -> None:
        from repro.sp.engine import _object_to_record

        self._queue({"op": "object", **_object_to_record(obj)})

    def adopt_tree(
        self, keyword: str, tree: object, entries: Iterable[Any]
    ) -> None:
        """Ship a bulk-built tree as one flat buffer, not a pickled graph.

        The parent already paid to build the tree (executor task); its
        node store is a single contiguous blob, so adoption sends
        ``bytes`` — the guarded pickler stays satisfied and the worker
        installs the tree with one buffer read, journaling the postings
        for replay.  Trees without a flat store fall back to shipping
        the raw postings.
        """
        self.flush()
        to_blob = getattr(tree, "to_blob", None)
        if to_blob is None:
            self.pool.dispatch(
                [(self.shard_id, "bulk", [(keyword, list(entries))])],
                ingest=True,
            )
            return
        self.pool.dispatch(
            [(self.shard_id, "adopt", (keyword, to_blob(), list(entries)))],
            ingest=True,
        )

    def apply_bulk(self, groups: list[tuple[str, list]]) -> None:
        """Ship posting groups; the worker extends its trees in place."""
        self.flush()
        self.pool.dispatch(
            [(self.shard_id, "bulk", groups)], ingest=True
        )

    # -- reads (flush first: read-your-writes) ------------------------------------

    def view(self, keyword: str) -> Any:
        self.flush()
        return self.pool.request(self.shard_id, "views", [keyword])[keyword]

    def tree(self, keyword: str) -> Any:
        self.flush()
        return self.pool.request(self.shard_id, "tree", keyword)

    def get_object(self, object_id: int) -> DataObject:
        self.flush()
        return self.pool.request(self.shard_id, "get_objects", [object_id])[0]

    def has_object(self, object_id: int) -> bool:
        self.flush()
        return object_id in self.pool.request(self.shard_id, "object_ids")

    def object_count(self) -> int:
        self.flush()
        return len(self.pool.request(self.shard_id, "object_ids"))

    def all_object_ids(self) -> list[int]:
        self.flush()
        return self.pool.request(self.shard_id, "object_ids")

    def compact(self) -> dict | None:
        """Checkpoint + truncate the resident engine's journal."""
        self.flush()
        return self.pool.request(self.shard_id, "compact")

    def close(self) -> None:
        """Flush any tail records; worker shutdown is the pool's job."""
        if not self.pool._closed:
            self.flush()
