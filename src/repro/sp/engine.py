"""Pluggable index-shard engines: one keyword partition of the SP.

The SP's state — per-keyword ADS mirrors, raw object payloads, Bloom
filter chains — is naturally partitioned by keyword: every proof is
verified against a *single* keyword's on-chain digest, so two keywords
never share cryptographic state.  An :class:`IndexShardEngine` owns one
such partition: the ADS instances of its keywords, the objects homed on
it, and (when attached by the system facade) the cache warmer serving
its keywords.  The witness scheduler stays with the data owner — CVC
openings need the trapdoor-side aux state, which never leaves the DO —
so shards receive ready-made insertion proofs like any SP does.

Two implementations:

* :class:`MemoryShardEngine` — plain in-process state (the default);
* :class:`DiskShardEngine` — the same state fronted by an append-only
  JSONL segment log (``shard-NNN.jsonl``).  Every confirmed mutation is
  journaled after it is applied; reopening the engine replays the log
  through the identical code paths, reusing the event-sourced recovery
  model of :mod:`repro.core.persistence`.

Routing is a pure function: :class:`ShardRouter` hashes each keyword
with a seeded, domain-separated tag, so the keyword -> shard map is
deterministic across processes and runs (no ``PYTHONHASHSEED``
dependence) and every replica of the deployment routes identically.

Telemetry: ``sp.shard.route.hits`` / ``sp.shard.route.misses`` counters
on the routing cache and one ``sp.shard.<i>.objects`` counter per shard.
"""

from __future__ import annotations

import base64
import json
import os
from collections.abc import Iterable
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.core.chameleon import InsertionProof
from repro.core.objects import DataObject, ObjectStore
from repro.crypto.bloom import (
    DEFAULT_CAPACITY,
    DEFAULT_FILTER_BITS,
    BloomFilterChain,
)
from repro.crypto.hashing import tagged_hash
from repro.errors import ParameterError, ReproError

#: Engine kinds accepted by :func:`make_engine`.
ENGINE_KINDS = ("memory", "disk")


class ShardRouter:
    """Deterministic seeded keyword -> shard routing.

    The shard of a keyword is derived from a domain-separated hash of
    the keyword under the system seed, so the mapping is stable across
    processes, replicas and restarts — a prerequisite for the shard
    journals to stay consistent with the routing.  Resolved routes are
    memoised per keyword (``sp.shard.route.hits`` / ``.misses``).
    """

    def __init__(self, shards: int, seed: int | None = None) -> None:
        if shards < 1:
            raise ParameterError("shards must be at least 1")
        self.shards = shards
        self._salt = (seed if seed is not None else 0).to_bytes(
            8, "big", signed=True
        )
        self._cache: dict[str, int] = {}

    def route(self, keyword: str) -> int:
        """The shard index owning ``keyword``."""
        cached = self._cache.get(keyword)
        if cached is not None:
            obs.inc("sp.shard.route.hits")
            return cached
        obs.inc("sp.shard.route.misses")
        digest = tagged_hash("shard-route", self._salt, keyword.encode("utf-8"))
        shard = int.from_bytes(digest[:8], "big") % self.shards
        self._cache[keyword] = shard
        return shard


def _object_to_record(obj: DataObject) -> dict:
    return {
        "id": obj.object_id,
        "keywords": list(obj.keywords),
        "content": base64.b64encode(obj.content).decode("ascii"),
    }


def _record_to_object(record: dict) -> DataObject:
    return DataObject(
        object_id=record["id"],
        keywords=tuple(record["keywords"]),
        content=base64.b64decode(record["content"]),
    )


def _proof_to_record(proof: InsertionProof) -> dict:
    # Group elements are arbitrary-precision ints; hex keeps the journal
    # line compact and round-trips exactly.
    return {
        "position": proof.position,
        "object_id": proof.object_id,
        "object_hash": proof.object_hash.hex(),
        "commitment": format(proof.commitment, "x"),
        "slot1_proof": format(proof.slot1_proof, "x"),
        "parent_link_proof": format(proof.parent_link_proof, "x"),
        "parent_position": proof.parent_position,
        "child_index": proof.child_index,
    }


def _record_to_proof(record: dict) -> InsertionProof:
    return InsertionProof(
        position=record["position"],
        object_id=record["object_id"],
        object_hash=bytes.fromhex(record["object_hash"]),
        commitment=int(record["commitment"], 16),
        slot1_proof=int(record["slot1_proof"], 16),
        parent_link_proof=int(record["parent_link_proof"], 16),
        parent_position=record["parent_position"],
        child_index=record["child_index"],
    )


class IndexShardEngine:
    """One keyword partition's slice of the SP (in-memory base).

    ``index_factory`` builds the scheme's empty per-partition index
    mirror (:class:`~repro.core.merkle_family.MerkleInvertedSP` or
    :class:`~repro.core.chameleon_index.ChameleonSP`); ``star`` attaches
    the partition's Bloom filter chains to its views (CI* only).

    Mutators are only called for *confirmed* insertions — the system
    applies SP-side state after the on-chain receipt succeeds — so an
    engine never needs rollback, and the disk subclass can journal each
    mutation unconditionally.
    """

    kind = "memory"

    def __init__(
        self,
        shard_id: int,
        index_factory: Callable[[], object],
        *,
        star: bool = False,
        filter_bits: int = DEFAULT_FILTER_BITS,
        bloom_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.shard_id = shard_id
        self.index = index_factory()
        self.store = ObjectStore()
        self.blooms: dict[str, BloomFilterChain] = {}
        self.star = star
        self.filter_bits = filter_bits
        self.bloom_capacity = bloom_capacity
        self.warmer = None  # attached by the facade when warming is on
        self._objects_metric = f"sp.shard.{shard_id}.objects"

    # -- mutators (confirmed insertions only) -----------------------------------

    def insert_entry(
        self, keyword: str, object_id: int, object_hash: bytes
    ) -> None:
        """Mirror one confirmed posting into the keyword's MB-tree."""
        record = {
            "op": "entry",
            "kw": keyword,
            "id": object_id,
            "hash": object_hash.hex(),
        }
        self._apply(record)
        self._journal(record)

    def register_keyword(self, keyword: str, commitment: int) -> None:
        """Register a first-seen keyword's root commitment (Chameleon)."""
        record = {"op": "register", "kw": keyword, "c": format(commitment, "x")}
        self._apply(record)
        self._journal(record)

    def apply_insertion(self, keyword: str, proof: InsertionProof) -> None:
        """Ingest one DO insertion proof (Chameleon)."""
        record = {"op": "apply", "kw": keyword, "proof": _proof_to_record(proof)}
        self._apply(record)
        self._journal(record)

    def bloom_add(self, keyword: str, object_id: int) -> None:
        """Mirror one ID into the keyword's Bloom filter chain (CI*)."""
        record = {"op": "bloom", "kw": keyword, "id": object_id}
        self._apply(record)
        self._journal(record)

    def put_object(self, obj: DataObject) -> None:
        """Store one raw object homed on this shard."""
        record = {"op": "object", **_object_to_record(obj)}
        self._apply(record)
        self._journal(record)

    def apply_records(self, records: list[dict]) -> int:
        """Apply a batch of journal-format delta records, then journal
        them as one append.

        This is the resident-worker ingest entry point: the wire format
        of a shard delta *is* the journal record format, so a batch
        shipped over the affine channel replays through the same code
        path as crash recovery and lands in the segment log with one
        write call.  Returns the number of records applied.
        """
        for record in records:
            self._apply(record)
        self._journal_many(records)
        return len(records)

    def adopt_tree(self, keyword: str, tree: Any, entries: Iterable[Any]) -> None:
        """Install a bulk-built MB-tree over the keyword's current one.

        ``tree`` must extend this engine's current tree with exactly
        ``entries`` (stream order) — the bulk-mirror path builds it in
        an executor task; the journal records the individual postings so
        a replay rebuilds the identical tree without the bulk task.
        """
        self.index.trees[keyword] = tree
        self._journal_many(
            [
                {
                    "op": "entry",
                    "kw": keyword,
                    "id": object_id,
                    "hash": object_hash.hex(),
                }
                for object_id, object_hash in entries
            ]
        )

    def apply_bulk(self, groups: list[tuple[str, list]]) -> int:
        """Ingest posting groups ``[(keyword, [(id, hash), ...]), ...]``.

        The resident-worker analogue of the stateless bulk-mirror path:
        the deltas arrive as raw postings and the trees are extended *in
        place* inside the owning process — no tree ever crosses the
        channel.  All groups journal as a single append.  Returns the
        number of postings applied.
        """
        applied = 0
        records = []
        for keyword, entries in groups:
            tree = self.index.tree_for(keyword)
            for object_id, object_hash in entries:
                tree.insert(object_id, object_hash)
                records.append(
                    {
                        "op": "entry",
                        "kw": keyword,
                        "id": object_id,
                        "hash": object_hash.hex(),
                    }
                )
                applied += 1
        self._journal_many(records)
        return applied

    def _apply(self, record: dict) -> None:
        """Apply one journal-format record to in-memory state (no
        journaling) — the single dispatch shared by the public mutators,
        batch ingest and crash replay."""
        op = record.get("op")
        if op == "entry":
            self.index.tree_for(record["kw"]).insert(
                record["id"], bytes.fromhex(record["hash"])
            )
        elif op == "register":
            self.index.register_keyword(record["kw"], int(record["c"], 16))
        elif op == "apply":
            self.index.apply_insertion(
                record["kw"], _record_to_proof(record["proof"])
            )
        elif op == "bloom":
            keyword = record["kw"]
            chain = self.blooms.get(keyword)
            if chain is None:
                chain = self.blooms[keyword] = BloomFilterChain(
                    filter_bits=self.filter_bits, capacity=self.bloom_capacity
                )
            chain.add(record["id"])
        elif op == "object":
            self.store.put(_record_to_object(record))
            obs.inc(self._objects_metric)
        else:
            raise ReproError(f"unknown journal op {op!r}")

    # -- reads ------------------------------------------------------------------

    def view(self, keyword: str) -> Any:
        """The join engine's IndexView for one of this shard's keywords."""
        view = self.index.view(keyword)
        if self.star:
            view.bloom = self.blooms.get(keyword)
        return view

    def tree(self, keyword: str) -> Any:
        """The keyword's raw index tree, or ``None`` if never inserted."""
        return self.index.trees.get(keyword)

    def get_object(self, object_id: int) -> DataObject:
        """Fetch one raw object homed on this shard."""
        return self.store.get(object_id)

    def has_object(self, object_id: int) -> bool:
        """Whether the object is homed on this shard."""
        return object_id in self.store

    def object_count(self) -> int:
        """Number of objects homed on this shard."""
        return len(self.store)

    def all_object_ids(self) -> list[int]:
        """IDs homed on this shard, ascending."""
        return self.store.all_ids()

    # -- durability hooks --------------------------------------------------------

    def _journal(self, record: dict) -> None:
        """Durability hook; the in-memory engine keeps nothing."""

    def _journal_many(self, records: list[dict]) -> None:
        """Batched durability hook; one append for the whole batch."""

    def close(self) -> None:
        """Release any resources (no-op in memory)."""


class MemoryShardEngine(IndexShardEngine):
    """The default engine: plain in-process state, no durability."""

    kind = "memory"


class DiskShardEngine(IndexShardEngine):
    """An engine fronted by an append-only JSONL segment log.

    Every confirmed mutation appends one self-describing record to
    ``<directory>/shard-NNN.jsonl`` after it is applied in memory.
    Opening an engine over an existing log replays it through the same
    public mutators (journaling is disabled during replay because the
    log handle opens only afterwards), rebuilding byte-identical tree
    state — the recovery model of :mod:`repro.core.persistence`, scoped
    to one shard.
    """

    kind = "disk"

    def __init__(
        self,
        shard_id: int,
        index_factory: Callable[[], object],
        directory: str | Path,
        **kwargs,
    ) -> None:
        super().__init__(shard_id, index_factory, **kwargs)
        self.path = Path(directory) / f"shard-{shard_id:03d}.jsonl"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._log = None
        if self.path.exists():
            self._replay()
        self._log = self.path.open("a")

    def _replay(self) -> None:
        """Replay the segment log, truncating a torn tail record.

        A crash mid-append leaves either bytes after the last newline or
        a final newline-terminated line that no longer decodes (the page
        holding its prefix may not have hit disk).  Both are the torn
        tail of an *unconfirmed* append: drop it, truncate the file to
        the last good record and recover everything before it.  A
        non-final line that fails to decode is real corruption and
        raises — silently skipping interior records would desynchronise
        the shard from the on-chain digests.
        """
        data = self.path.read_bytes()
        keep = data.rfind(b"\n") + 1  # bytes past the last newline = torn
        lines = data[:keep].split(b"\n")[:-1]
        good_end = 0
        for lineno, raw in enumerate(lines):
            line = raw.strip()
            if line:
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    if lineno == len(lines) - 1:
                        break  # torn final line: truncate before it
                    raise ReproError(
                        f"corrupt journal record at {self.path.name}:"
                        f"{lineno + 1}"
                    ) from exc
                self._apply(record)
            good_end += len(raw) + 1
        if good_end < len(data):
            os.truncate(self.path, good_end)

    def _journal(self, record: dict) -> None:
        if self._log is not None:
            self._log.write(json.dumps(record) + "\n")
            self._log.flush()

    def _journal_many(self, records: list[dict]) -> None:
        # One write call + flush for the whole batch, not O(k) syscalls.
        if self._log is not None and records:
            self._log.write(
                "".join(json.dumps(record) + "\n" for record in records)
            )
            self._log.flush()

    def close(self) -> None:
        """Flush, fsync and close the segment log (idempotent).

        The engine stays readable in memory; the fsync guarantees every
        journaled record is durable before the handle is released, so a
        clean close is always replayable in full.
        """
        if self._log is not None:
            log, self._log = self._log, None
            log.flush()
            os.fsync(log.fileno())
            log.close()


def make_engine(
    kind: str,
    shard_id: int,
    index_factory: Callable[[], object],
    *,
    directory: str | Path | None = None,
    star: bool = False,
    filter_bits: int = DEFAULT_FILTER_BITS,
    bloom_capacity: int = DEFAULT_CAPACITY,
) -> IndexShardEngine:
    """Build one shard engine of the given kind."""
    if kind == "memory":
        return MemoryShardEngine(
            shard_id,
            index_factory,
            star=star,
            filter_bits=filter_bits,
            bloom_capacity=bloom_capacity,
        )
    if kind == "disk":
        if directory is None:
            raise ParameterError(
                "engine='disk' requires an engine directory"
            )
        return DiskShardEngine(
            shard_id,
            index_factory,
            directory,
            star=star,
            filter_bits=filter_bits,
            bloom_capacity=bloom_capacity,
        )
    raise ParameterError(
        f"unknown engine {kind!r}; expected one of: " + ", ".join(ENGINE_KINDS)
    )
