"""Pluggable index-shard engines: one keyword partition of the SP.

The SP's state — per-keyword ADS mirrors, raw object payloads, Bloom
filter chains — is naturally partitioned by keyword: every proof is
verified against a *single* keyword's on-chain digest, so two keywords
never share cryptographic state.  An :class:`IndexShardEngine` owns one
such partition: the ADS instances of its keywords, the objects homed on
it, and (when attached by the system facade) the cache warmer serving
its keywords.  The witness scheduler stays with the data owner — CVC
openings need the trapdoor-side aux state, which never leaves the DO —
so shards receive ready-made insertion proofs like any SP does.

Two implementations:

* :class:`MemoryShardEngine` — plain in-process state (the default);
* :class:`DiskShardEngine` — the same state fronted by an append-only
  JSONL segment log (``shard-NNN.jsonl``).  Every confirmed mutation is
  journaled after it is applied; reopening the engine replays the log
  through the identical code paths, reusing the event-sourced recovery
  model of :mod:`repro.core.persistence`.

Routing is a pure function: :class:`ShardRouter` hashes each keyword
with a seeded, domain-separated tag, so the keyword -> shard map is
deterministic across processes and runs (no ``PYTHONHASHSEED``
dependence) and every replica of the deployment routes identically.

Telemetry: ``sp.shard.route.hits`` / ``sp.shard.route.misses`` counters
on the routing cache and one ``sp.shard.<i>.objects`` counter per shard.
"""

from __future__ import annotations

import base64
import json
import mmap
import os
import struct
from collections.abc import Iterable
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.core.chameleon import ChameleonTreeSP, InsertionProof
from repro.core.mbtree import MBTree
from repro.core.nodestore import KIND_CHAMELEON, KIND_MBTREE, NODESTORE_VERSION
from repro.core.objects import DataObject, ObjectStore
from repro.crypto.bloom import (
    DEFAULT_CAPACITY,
    DEFAULT_FILTER_BITS,
    BloomFilter,
    BloomFilterChain,
)
from repro.crypto.hashing import digests_equal, sha3, tagged_hash
from repro.errors import IntegrityError, ParameterError, ReproError

#: Engine kinds accepted by :func:`make_engine`.
ENGINE_KINDS = ("memory", "disk")


class ShardRouter:
    """Deterministic seeded keyword -> shard routing.

    The shard of a keyword is derived from a domain-separated hash of
    the keyword under the system seed, so the mapping is stable across
    processes, replicas and restarts — a prerequisite for the shard
    journals to stay consistent with the routing.  Resolved routes are
    memoised per keyword (``sp.shard.route.hits`` / ``.misses``).
    """

    def __init__(self, shards: int, seed: int | None = None) -> None:
        if shards < 1:
            raise ParameterError("shards must be at least 1")
        self.shards = shards
        self._salt = (seed if seed is not None else 0).to_bytes(
            8, "big", signed=True
        )
        self._cache: dict[str, int] = {}

    def route(self, keyword: str) -> int:
        """The shard index owning ``keyword``."""
        cached = self._cache.get(keyword)
        if cached is not None:
            obs.inc("sp.shard.route.hits")
            return cached
        obs.inc("sp.shard.route.misses")
        digest = tagged_hash("shard-route", self._salt, keyword.encode("utf-8"))
        shard = int.from_bytes(digest[:8], "big") % self.shards
        self._cache[keyword] = shard
        return shard


def _object_to_record(obj: DataObject) -> dict:
    return {
        "id": obj.object_id,
        "keywords": list(obj.keywords),
        "content": base64.b64encode(obj.content).decode("ascii"),
    }


def _record_to_object(record: dict) -> DataObject:
    return DataObject(
        object_id=record["id"],
        keywords=tuple(record["keywords"]),
        content=base64.b64decode(record["content"]),
    )


def _proof_to_record(proof: InsertionProof) -> dict:
    # Group elements are arbitrary-precision ints; hex keeps the journal
    # line compact and round-trips exactly.
    return {
        "position": proof.position,
        "object_id": proof.object_id,
        "object_hash": proof.object_hash.hex(),
        "commitment": format(proof.commitment, "x"),
        "slot1_proof": format(proof.slot1_proof, "x"),
        "parent_link_proof": format(proof.parent_link_proof, "x"),
        "parent_position": proof.parent_position,
        "child_index": proof.child_index,
    }


def tree_from_blob(blob: bytes | bytearray | memoryview) -> Any:
    """Restore an ADS tree from a node-store buffer, dispatching on kind.

    The blob is self-describing (header kind byte), so checkpoint
    loading and the affine adopt path need no out-of-band type tag.
    """
    if len(blob) < 7:
        raise IntegrityError("node-store blob shorter than its header")
    kind = blob[6]
    if kind == KIND_MBTREE:
        return MBTree.from_blob(blob)
    if kind == KIND_CHAMELEON:
        return ChameleonTreeSP.from_blob(blob)
    raise IntegrityError(f"unknown node-store kind {kind}")


def _record_to_proof(record: dict) -> InsertionProof:
    return InsertionProof(
        position=record["position"],
        object_id=record["object_id"],
        object_hash=bytes.fromhex(record["object_hash"]),
        commitment=int(record["commitment"], 16),
        slot1_proof=int(record["slot1_proof"], 16),
        parent_link_proof=int(record["parent_link_proof"], 16),
        parent_position=record["parent_position"],
        child_index=record["child_index"],
    )


class IndexShardEngine:
    """One keyword partition's slice of the SP (in-memory base).

    ``index_factory`` builds the scheme's empty per-partition index
    mirror (:class:`~repro.core.merkle_family.MerkleInvertedSP` or
    :class:`~repro.core.chameleon_index.ChameleonSP`); ``star`` attaches
    the partition's Bloom filter chains to its views (CI* only).

    Mutators are only called for *confirmed* insertions — the system
    applies SP-side state after the on-chain receipt succeeds — so an
    engine never needs rollback, and the disk subclass can journal each
    mutation unconditionally.
    """

    kind = "memory"

    def __init__(
        self,
        shard_id: int,
        index_factory: Callable[[], object],
        *,
        star: bool = False,
        filter_bits: int = DEFAULT_FILTER_BITS,
        bloom_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.shard_id = shard_id
        self.index = index_factory()
        self.store = ObjectStore()
        self.blooms: dict[str, BloomFilterChain] = {}
        self.star = star
        self.filter_bits = filter_bits
        self.bloom_capacity = bloom_capacity
        self.warmer = None  # attached by the facade when warming is on
        self._objects_metric = f"sp.shard.{shard_id}.objects"

    # -- mutators (confirmed insertions only) -----------------------------------

    def insert_entry(
        self, keyword: str, object_id: int, object_hash: bytes
    ) -> None:
        """Mirror one confirmed posting into the keyword's MB-tree."""
        record = {
            "op": "entry",
            "kw": keyword,
            "id": object_id,
            "hash": object_hash.hex(),
        }
        self._apply(record)
        self._journal(record)

    def register_keyword(self, keyword: str, commitment: int) -> None:
        """Register a first-seen keyword's root commitment (Chameleon)."""
        record = {"op": "register", "kw": keyword, "c": format(commitment, "x")}
        self._apply(record)
        self._journal(record)

    def apply_insertion(self, keyword: str, proof: InsertionProof) -> None:
        """Ingest one DO insertion proof (Chameleon)."""
        record = {"op": "apply", "kw": keyword, "proof": _proof_to_record(proof)}
        self._apply(record)
        self._journal(record)

    def bloom_add(self, keyword: str, object_id: int) -> None:
        """Mirror one ID into the keyword's Bloom filter chain (CI*)."""
        record = {"op": "bloom", "kw": keyword, "id": object_id}
        self._apply(record)
        self._journal(record)

    def put_object(self, obj: DataObject) -> None:
        """Store one raw object homed on this shard."""
        record = {"op": "object", **_object_to_record(obj)}
        self._apply(record)
        self._journal(record)

    def apply_records(self, records: list[dict]) -> int:
        """Apply a batch of journal-format delta records, then journal
        them as one append.

        This is the resident-worker ingest entry point: the wire format
        of a shard delta *is* the journal record format, so a batch
        shipped over the affine channel replays through the same code
        path as crash recovery and lands in the segment log with one
        write call.  Returns the number of records applied.
        """
        for record in records:
            self._apply(record)
        self._journal_many(records)
        return len(records)

    def adopt_tree(self, keyword: str, tree: Any, entries: Iterable[Any]) -> None:
        """Install a bulk-built MB-tree over the keyword's current one.

        ``tree`` must extend this engine's current tree with exactly
        ``entries`` (stream order) — the bulk-mirror path builds it in
        an executor task; the journal records the individual postings so
        a replay rebuilds the identical tree without the bulk task.
        """
        self.index.trees[keyword] = tree
        self._journal_many(
            [
                {
                    "op": "entry",
                    "kw": keyword,
                    "id": object_id,
                    "hash": object_hash.hex(),
                }
                for object_id, object_hash in entries
            ]
        )

    def apply_bulk(self, groups: list[tuple[str, list]]) -> int:
        """Ingest posting groups ``[(keyword, [(id, hash), ...]), ...]``.

        The resident-worker analogue of the stateless bulk-mirror path:
        the deltas arrive as raw postings and the trees are extended *in
        place* inside the owning process — no tree ever crosses the
        channel.  All groups journal as a single append.  Returns the
        number of postings applied.
        """
        applied = 0
        records = []
        for keyword, entries in groups:
            tree = self.index.tree_for(keyword)
            for object_id, object_hash in entries:
                tree.insert(object_id, object_hash)
                records.append(
                    {
                        "op": "entry",
                        "kw": keyword,
                        "id": object_id,
                        "hash": object_hash.hex(),
                    }
                )
                applied += 1
        self._journal_many(records)
        return applied

    def _apply(self, record: dict) -> None:
        """Apply one journal-format record to in-memory state (no
        journaling) — the single dispatch shared by the public mutators,
        batch ingest and crash replay."""
        op = record.get("op")
        if op == "entry":
            self.index.tree_for(record["kw"]).insert(
                record["id"], bytes.fromhex(record["hash"])
            )
        elif op == "register":
            self.index.register_keyword(record["kw"], int(record["c"], 16))
        elif op == "apply":
            self.index.apply_insertion(
                record["kw"], _record_to_proof(record["proof"])
            )
        elif op == "bloom":
            keyword = record["kw"]
            chain = self.blooms.get(keyword)
            if chain is None:
                chain = self.blooms[keyword] = BloomFilterChain(
                    filter_bits=self.filter_bits, capacity=self.bloom_capacity
                )
            chain.add(record["id"])
        elif op == "object":
            self.store.put(_record_to_object(record))
            obs.inc(self._objects_metric)
        else:
            raise ReproError(f"unknown journal op {op!r}")

    # -- reads ------------------------------------------------------------------

    def view(self, keyword: str) -> Any:
        """The join engine's IndexView for one of this shard's keywords."""
        view = self.index.view(keyword)
        if self.star:
            view.bloom = self.blooms.get(keyword)
        return view

    def tree(self, keyword: str) -> Any:
        """The keyword's raw index tree, or ``None`` if never inserted."""
        return self.index.trees.get(keyword)

    def get_object(self, object_id: int) -> DataObject:
        """Fetch one raw object homed on this shard."""
        return self.store.get(object_id)

    def has_object(self, object_id: int) -> bool:
        """Whether the object is homed on this shard."""
        return object_id in self.store

    def object_count(self) -> int:
        """Number of objects homed on this shard."""
        return len(self.store)

    def all_object_ids(self) -> list[int]:
        """IDs homed on this shard, ascending."""
        return self.store.all_ids()

    # -- durability hooks --------------------------------------------------------

    def _journal(self, record: dict) -> None:
        """Durability hook; the in-memory engine keeps nothing."""

    def _journal_many(self, records: list[dict]) -> None:
        """Batched durability hook; one append for the whole batch."""

    def close(self) -> None:
        """Release any resources (no-op in memory)."""

    def compact(self) -> dict | None:
        """Checkpoint + truncate durable state; ``None`` when stateless.

        Memory engines have nothing to compact; the disk engine returns
        a stats dict (``reclaimed`` journal bytes, checkpoint size).
        """
        return None


class MemoryShardEngine(IndexShardEngine):
    """The default engine: plain in-process state, no durability."""

    kind = "memory"


#: Checkpoint file magic (``shard-NNN.ckpt``).
CKPT_MAGIC = b"RPCK"

#: Checkpoint container version.
CKPT_VERSION = 1

_CKPT_HEAD = struct.Struct(">4sHII")  # magic, version, epoch, meta_len


class DiskShardEngine(IndexShardEngine):
    """An engine fronted by an append-only JSONL segment log.

    Every confirmed mutation appends one self-describing record to
    ``<directory>/shard-NNN.jsonl`` after it is applied in memory.
    Opening an engine over an existing log replays it through the same
    public mutators (journaling is disabled during replay because the
    log handle opens only afterwards), rebuilding byte-identical tree
    state — the recovery model of :mod:`repro.core.persistence`, scoped
    to one shard.

    Checkpoints and compaction
    --------------------------
    :meth:`snapshot` writes the engine's complete state to
    ``shard-NNN.ckpt`` — the flat-buffer tree blobs verbatim, no
    per-node serialisation — then swaps in a fresh journal, so restart
    cost is one mmap'd read plus a (normally empty) journal suffix
    instead of a full-history replay.  Checkpoints and journals carry an
    *epoch* number tying them together:

    * journal epoch == checkpoint epoch: normal restart — load the
      checkpoint, replay the suffix;
    * journal epoch < checkpoint epoch: a crash hit between checkpoint
      rename and journal swap; the checkpoint already covers every
      journaled record, so the stale journal is discarded and the swap
      finished;
    * a ``*.tmp`` file is always a torn write and is removed;
    * a checkpoint that fails its integrity digest is recoverable only
      when the journal still holds full history (epoch 0).

    Every rename is followed by a directory fsync so a crash cannot
    resurrect the superseded file, and the torn-tail tolerance of the
    journal replay is unchanged.
    """

    kind = "disk"

    def __init__(
        self,
        shard_id: int,
        index_factory: Callable[[], object],
        directory: str | Path,
        **kwargs,
    ) -> None:
        super().__init__(shard_id, index_factory, **kwargs)
        self.directory = Path(directory)
        self.path = self.directory / f"shard-{shard_id:03d}.jsonl"
        self.checkpoint_path = self.directory / f"shard-{shard_id:03d}.ckpt"
        self.directory.mkdir(parents=True, exist_ok=True)
        self._log = None
        self.epoch = 0
        self._recover()
        self._log = self.path.open("a")

    # -- recovery ----------------------------------------------------------------

    def _recover(self) -> None:
        """Reassemble state from checkpoint + journal (see class docs)."""
        for stem in (self.checkpoint_path, self.path):
            torn = stem.with_name(stem.name + ".tmp")
            if torn.exists():
                torn.unlink()  # a tmp file never survived its rename
        journal_epoch = self._journal_epoch() if self.path.exists() else None
        if self.checkpoint_path.exists():
            try:
                self.epoch = self.load_snapshot()
            except IntegrityError:
                if journal_epoch == 0:
                    # The journal still holds full history: drop the bad
                    # checkpoint and recover the long way.
                    self.checkpoint_path.unlink()
                    self.epoch = 0
                    self._replay()
                    return
                raise
            if journal_epoch == self.epoch:
                self._replay()  # the suffix written since the checkpoint
            elif journal_epoch is None or journal_epoch < self.epoch:
                # Crash between checkpoint rename and journal swap: the
                # checkpoint supersedes the journal; finish the swap.
                self._reset_journal()
            else:
                raise ReproError(
                    f"journal epoch {journal_epoch} is ahead of checkpoint "
                    f"epoch {self.epoch} for {self.path.name}"
                )
        elif self.path.exists():
            if journal_epoch:
                raise ReproError(
                    f"journal {self.path.name} references a missing "
                    f"checkpoint (epoch {journal_epoch})"
                )
            self._replay()

    def _journal_epoch(self) -> int:
        """The journal's epoch header (0 = pre-epoch / full history)."""
        with self.path.open("rb") as fh:
            first = fh.readline()
        if not first.endswith(b"\n"):
            return 0
        try:
            record = json.loads(first)
        except ValueError:
            return 0
        if isinstance(record, dict) and record.get("op") == "epoch":
            return int(record["n"])
        return 0

    def _replay(self) -> None:
        """Stream-replay the segment log, truncating a torn tail record.

        The journal is read line-by-line — never materialised whole, so
        replay memory is O(record), not O(journal).  A crash mid-append
        leaves either bytes after the last newline or a final
        newline-terminated line that no longer decodes (the page holding
        its prefix may not have hit disk).  Both are the torn tail of an
        *unconfirmed* append: drop it, truncate the file to the last
        good record and recover everything before it.  A non-final line
        that fails to decode is real corruption and raises — silently
        skipping interior records would desynchronise the shard from the
        on-chain digests.
        """
        good_end = 0
        lineno = 0
        with self.path.open("rb") as fh:
            while True:
                raw = fh.readline()
                if not raw:
                    break
                lineno += 1
                if not raw.endswith(b"\n"):
                    break  # bytes past the last newline: torn append
                line = raw.strip()
                if line:
                    try:
                        record = json.loads(line)
                    except ValueError as exc:
                        if not fh.read(1):
                            break  # torn final line: truncate before it
                        raise ReproError(
                            f"corrupt journal record at {self.path.name}:"
                            f"{lineno}"
                        ) from exc
                    if record.get("op") != "epoch":
                        self._apply(record)
                good_end += len(raw)
        if good_end < self.path.stat().st_size:
            os.truncate(self.path, good_end)

    # -- journaling --------------------------------------------------------------

    def _journal(self, record: dict) -> None:
        if self._log is not None:
            self._log.write(json.dumps(record) + "\n")
            self._log.flush()

    def _journal_many(self, records: list[dict]) -> None:
        # One write call + flush for the whole batch, not O(k) syscalls.
        if self._log is not None and records:
            self._log.write(
                "".join(json.dumps(record) + "\n" for record in records)
            )
            self._log.flush()

    def _fsync_dir(self) -> None:
        """Make renames in the shard directory durable."""
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _reset_journal(self) -> None:
        """Atomically replace the journal with a fresh epoch-tagged one."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w") as fh:
            if self.epoch:
                fh.write(json.dumps({"op": "epoch", "n": self.epoch}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fsync_dir()

    # -- checkpoints -------------------------------------------------------------

    def _serialise_state(self, epoch: int) -> bytes:
        """One self-validating buffer holding the whole engine state.

        Tree state is the flat-buffer blobs verbatim — writing a
        checkpoint is a header, one JSON metadata block, and a
        concatenation of buffers already sitting in memory.  The
        trailing SHA-3 digest makes torn or bit-rotted checkpoints
        detectable before any of their state is adopted.
        """
        trees_meta: list[list] = []
        blobs: list[bytes] = []
        for keyword in sorted(self.index.trees):
            blob = self.index.trees[keyword].to_blob()
            trees_meta.append([keyword, len(blob)])
            blobs.append(blob)
        blooms = {
            keyword: [
                {
                    "bits": format(flt.bits, "x"),
                    "count": flt.count,
                    "min": flt.min_id,
                    "max": flt.max_id,
                    "hash_count": flt.hash_count,
                    "members": sorted(flt.exact_members()),
                }
                for flt in chain.filters
            ]
            for keyword, chain in self.blooms.items()
        }
        objects = [
            _object_to_record(self.store.get(object_id))
            for object_id in self.store.all_ids()
        ]
        meta = {
            "shard": self.shard_id,
            "epoch": epoch,
            "node_store": NODESTORE_VERSION,
            "trees": trees_meta,
            "blooms": blooms,
            "objects": objects,
        }
        meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        body = (
            _CKPT_HEAD.pack(CKPT_MAGIC, CKPT_VERSION, epoch, len(meta_bytes))
            + meta_bytes
            + b"".join(blobs)
        )
        return body + sha3(body)

    def snapshot(self) -> Path:
        """Checkpoint the engine and swap in a fresh journal.

        Protocol (each rename followed by a directory fsync):

        1. write ``shard-NNN.ckpt.tmp`` at epoch ``E+1``, fsync, rename
           over ``shard-NNN.ckpt``;
        2. replace the journal with one holding only the new epoch
           header, and reopen it for appends.

        A crash after step 1 is recovered by the epoch rule (stale
        journal discarded — the checkpoint covers it); a crash during
        either tmp write leaves only an ignored ``*.tmp``.
        """
        payload = self._serialise_state(self.epoch + 1)
        tmp = self.checkpoint_path.with_name(self.checkpoint_path.name + ".tmp")
        with tmp.open("wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.checkpoint_path)
        self._fsync_dir()
        self.epoch += 1
        if self._log is not None:
            self._log.close()
            self._log = None
        self._reset_journal()
        self._log = self.path.open("a")
        return self.checkpoint_path

    def load_snapshot(self) -> int:
        """Adopt the checkpoint's state (mmap'd); returns its epoch.

        The file is mapped, digest-verified, and the tree blobs are
        handed to ``from_blob`` as buffer slices — no per-node decode.
        State is built fully before any of it is installed, so a
        failing checkpoint leaves the engine untouched.
        """
        with self.checkpoint_path.open("rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            if len(mapped) < _CKPT_HEAD.size + 32:
                raise IntegrityError("checkpoint shorter than its header")
            if not digests_equal(sha3(mapped[:-32]), mapped[-32:]):
                raise IntegrityError("checkpoint integrity digest mismatch")
            magic, version, epoch, meta_len = _CKPT_HEAD.unpack_from(mapped, 0)
            if magic != CKPT_MAGIC:
                raise IntegrityError("bad checkpoint magic")
            if version != CKPT_VERSION:
                raise IntegrityError(
                    f"unsupported checkpoint version {version}"
                )
            offset = _CKPT_HEAD.size
            meta = json.loads(mapped[offset : offset + meta_len])
            if meta.get("shard") != self.shard_id:
                raise IntegrityError(
                    f"checkpoint belongs to shard {meta.get('shard')}, "
                    f"not {self.shard_id}"
                )
            offset += meta_len
            view = memoryview(mapped)
            trees: dict[str, Any] = {}
            try:
                for keyword, blob_len in meta["trees"]:
                    blob = view[offset : offset + blob_len]
                    try:
                        if len(blob) != blob_len:
                            raise IntegrityError(
                                "checkpoint tree blob truncated"
                            )
                        trees[keyword] = tree_from_blob(blob)
                    finally:
                        blob.release()
                    offset += blob_len
            finally:
                view.release()
            if offset != len(mapped) - 32:
                raise IntegrityError("checkpoint has trailing bytes")
            blooms: dict[str, BloomFilterChain] = {}
            for keyword, filters in meta["blooms"].items():
                chain = BloomFilterChain(
                    filter_bits=self.filter_bits, capacity=self.bloom_capacity
                )
                for rec in filters:
                    flt = BloomFilter(
                        filter_bits=self.filter_bits,
                        capacity=self.bloom_capacity,
                        hash_count=rec["hash_count"],
                        bits=int(rec["bits"], 16),
                        count=rec["count"],
                        min_id=rec["min"],
                        max_id=rec["max"],
                    )
                    flt._members.update(rec["members"])
                    chain.filters.append(flt)
                blooms[keyword] = chain
            objects = [_record_to_object(rec) for rec in meta["objects"]]
        finally:
            mapped.close()
        self.index.trees.clear()
        self.index.trees.update(trees)
        self.blooms = blooms
        self.store = ObjectStore()
        for obj in objects:
            self.store.put(obj)
            obs.inc(self._objects_metric)
        return epoch

    def compact(self) -> dict:
        """Checkpoint + truncate the journal; returns reclaim stats."""
        journal_before = (
            self.path.stat().st_size if self.path.exists() else 0
        )
        self.snapshot()
        journal_after = self.path.stat().st_size
        return {
            "journal_bytes_before": journal_before,
            "journal_bytes_after": journal_after,
            "reclaimed": max(0, journal_before - journal_after),
            "checkpoint_bytes": self.checkpoint_path.stat().st_size,
        }

    def close(self) -> None:
        """Flush, fsync and close the segment log (idempotent).

        The engine stays readable in memory; the fsync guarantees every
        journaled record is durable before the handle is released, so a
        clean close is always replayable in full.
        """
        if self._log is not None:
            log, self._log = self._log, None
            log.flush()
            os.fsync(log.fileno())
            log.close()


def make_engine(
    kind: str,
    shard_id: int,
    index_factory: Callable[[], object],
    *,
    directory: str | Path | None = None,
    star: bool = False,
    filter_bits: int = DEFAULT_FILTER_BITS,
    bloom_capacity: int = DEFAULT_CAPACITY,
) -> IndexShardEngine:
    """Build one shard engine of the given kind."""
    if kind == "memory":
        return MemoryShardEngine(
            shard_id,
            index_factory,
            star=star,
            filter_bits=filter_bits,
            bloom_capacity=bloom_capacity,
        )
    if kind == "disk":
        if directory is None:
            raise ParameterError(
                "engine='disk' requires an engine directory"
            )
        return DiskShardEngine(
            shard_id,
            index_factory,
            directory,
            star=star,
            filter_bits=filter_bits,
            bloom_capacity=bloom_capacity,
        )
    raise ParameterError(
        f"unknown engine {kind!r}; expected one of: " + ", ".join(ENGINE_KINDS)
    )
