"""``repro`` — command-line front end for the hybrid-storage system.

A small operational CLI over the persistence layer (event-sourced
snapshots; see :mod:`repro.core.persistence`).  State lives in a
directory; every command replays the object log, applies its action and
re-saves.  Intended for exploration and demos — long-lived deployments
should embed the library directly.

Examples::

    repro init ./registry --scheme ci* --seed 42
    repro add ./registry --id 1 --keywords covid-19,vaccine --content "trial"
    repro add ./registry --from-jsonl corpus.jsonl
    repro query ./registry "covid-19 AND vaccine"
    repro obs trace ./registry "covid-19 AND vaccine" --trace-out t.jsonl
    repro obs critpath t.jsonl --workers 4
    repro bench compare --baseline BENCH_shard.json --current fresh.json
    repro info ./registry
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import sys
from pathlib import Path

from repro import obs
from repro.core.objects import DataObject
from repro.core.persistence import load_system, save_system
from repro.core.system import HybridStorageSystem
from repro.errors import ReproError
from repro.ethereum.gas import gas_to_usd


def build_parser() -> argparse.ArgumentParser:
    """Construct the command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Authenticated keyword search over a hybrid-storage "
        "blockchain (ICDE 2021 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="create a new system directory")
    init.add_argument("directory")
    init.add_argument(
        "--scheme", default="ci*", choices=["mi", "smi", "ci", "ci*"]
    )
    init.add_argument("--seed", type=int, default=7)
    init.add_argument("--fanout", type=int, default=4)
    init.add_argument("--arity", type=int, default=2)
    init.add_argument("--bloom-capacity", type=int, default=30)
    init.add_argument(
        "--shards",
        type=int,
        default=1,
        help="keyword partitions served by independent shard engines",
    )
    init.add_argument(
        "--engine",
        default="memory",
        choices=["memory", "disk"],
        help="shard engine kind (disk journals live under the system "
        "directory and are rebuilt on load)",
    )
    init.add_argument(
        "--pool",
        default="stateless",
        choices=["stateless", "affine"],
        help="shard execution mode: 'affine' keeps each shard's engine "
        "resident in a long-lived worker process and ships only posting "
        "deltas per batch (stateless executors remain the fallback)",
    )

    add = sub.add_parser("add", help="notarise one or more objects")
    add.add_argument("directory")
    add.add_argument("--id", type=int, help="object ID (monotonic)")
    add.add_argument("--keywords", help="comma-separated keywords")
    add.add_argument("--content", help="object content (text)")
    add.add_argument(
        "--from-jsonl",
        help="bulk-add from a JSONL file with id/keywords/content fields",
    )

    query = sub.add_parser("query", help="run a verified keyword search")
    query.add_argument("directory")
    query.add_argument("expression", help='e.g. "covid-19 AND vaccine"')
    query.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="observability: traced queries and trace analysis",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_trace = obs_sub.add_parser(
        "trace",
        help="run a query under the observability layer and show the trace",
    )
    obs_trace.add_argument("directory")
    obs_trace.add_argument("expression", help='e.g. "covid-19 AND vaccine"')
    obs_trace.add_argument(
        "--trace-out",
        metavar="PATH",
        help="also dump the span trace as JSON lines to PATH",
    )
    obs_trace.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    obs_crit = obs_sub.add_parser(
        "critpath",
        help="attribute a JSONL trace: critical path, per-phase "
        "self-time, parallelism efficiency",
    )
    obs_crit.add_argument(
        "trace", help="JSONL trace file (written by --trace-out)"
    )
    obs_crit.add_argument(
        "--root",
        help="analyse the critical path under root spans of this name "
        "(default: the longest root)",
    )
    obs_crit.add_argument(
        "--workers",
        type=int,
        help="efficiency denominator: configured worker count "
        "(default: observed lanes)",
    )
    obs_crit.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    bench_cmd = sub.add_parser(
        "bench",
        help="benchmark baselines: regression compare and trend history",
    )
    bench_sub = bench_cmd.add_subparsers(dest="bench_command", required=True)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff a fresh bench JSON against a committed baseline "
        "with per-metric tolerance bands",
    )
    bench_compare.add_argument(
        "--baseline", required=True, help="committed baseline BENCH_*.json"
    )
    bench_compare.add_argument(
        "--current", required=True, help="freshly generated bench JSON"
    )
    bench_compare.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression on timing metrics "
        "(0.25 = 25%% slower still passes; default %(default)s)",
    )
    bench_compare.add_argument(
        "--trend-out",
        metavar="PATH",
        help="append a one-line comparison record to this JSONL trend log",
    )
    bench_compare.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    compact = sub.add_parser(
        "compact",
        help="checkpoint disk shard journals into flat-buffer snapshots "
        "and truncate the replayed records",
    )
    compact.add_argument("directory")
    compact.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    info = sub.add_parser("info", help="show system statistics")
    info.add_argument("directory")
    return parser


def _seed_of(directory: str) -> int:
    manifest = json.loads(
        (Path(directory) / "manifest.json").read_text()
    )
    return manifest["seed"]


def cmd_init(args) -> int:
    """Handle ``repro init``."""
    system = HybridStorageSystem(
        scheme=args.scheme,
        seed=args.seed,
        fanout=args.fanout,
        arity=args.arity,
        bloom_capacity=args.bloom_capacity,
        shards=args.shards,
        engine=args.engine,
        pool=args.pool,
        engine_dir=(
            Path(args.directory) / "shard-journals"
            if args.engine == "disk"
            else None
        ),
    )
    path = save_system(system, args.directory, seed=args.seed)
    print(
        f"initialised {args.scheme} system at {path} "
        f"({args.shards} shard(s), {args.engine} engine)"
    )
    return 0


def _objects_from_args(args):
    if args.from_jsonl:
        with open(args.from_jsonl) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                content = record["content"]
                if isinstance(content, str):
                    try:
                        raw = base64.b64decode(content, validate=True)
                    except Exception:
                        raw = content.encode("utf-8")
                else:
                    raw = bytes(content)
                yield DataObject(
                    object_id=record["id"],
                    keywords=tuple(record["keywords"]),
                    content=raw,
                )
        return
    if args.id is None or not args.keywords or args.content is None:
        raise ReproError(
            "either --from-jsonl or all of --id/--keywords/--content required"
        )
    yield DataObject(
        object_id=args.id,
        keywords=tuple(k for k in args.keywords.split(",") if k.strip()),
        content=args.content.encode("utf-8"),
    )


def cmd_add(args) -> int:
    """Handle ``repro add``."""
    system = load_system(args.directory)
    added = 0
    gas = 0
    for obj in _objects_from_args(args):
        report = system.add_object(obj)
        gas += report.gas
        added += 1
    save_system(system, args.directory, seed=_seed_of(args.directory))
    print(
        f"added {added} object(s); maintenance gas {gas:,} "
        f"(US${gas_to_usd(gas):.4f})"
    )
    return 0


def cmd_query(args) -> int:
    """Handle ``repro query``."""
    system = load_system(args.directory)
    result = system.query(args.expression)
    if args.json:
        print(
            json.dumps(
                {
                    "query": str(result.query),
                    "verified": result.verified,
                    "result_ids": result.result_ids,
                    "vo_bytes": result.vo_total_bytes,
                    "objects": {
                        oid: base64.b64encode(obj.content).decode("ascii")
                        for oid, obj in result.objects.items()
                    },
                }
            )
        )
        return 0
    print(f"query:    {result.query}")
    print(f"verified: {result.verified}")
    print(f"results:  {result.result_ids}")
    for oid in result.result_ids:
        preview = result.objects[oid].content[:60]
        print(f"  #{oid}: {preview!r}")
    print(
        f"VO: {result.vo_total_bytes:,} bytes "
        f"(SP {result.vo_sp_bytes:,} + chain {result.vo_chain_bytes:,}); "
        f"verify {1e3 * result.verify_seconds:.1f} ms"
    )
    return 0


def cmd_obs(args) -> int:
    """Dispatch ``repro obs`` to its subcommand."""
    if args.obs_command == "critpath":
        return cmd_obs_critpath(args)
    return cmd_obs_trace(args)


def cmd_obs_critpath(args) -> int:
    """Handle ``repro obs critpath``: attribute a dumped trace."""
    spans = obs.read_jsonl(args.trace)
    report = obs.analyze(spans, root=args.root, workers=args.workers)
    if args.json:
        print(json.dumps(report.to_dict(), default=str))
    else:
        print(report.render())
    return 0


def cmd_obs_trace(args) -> int:
    """Handle ``repro obs trace``: a traced, metered query round trip."""
    system = load_system(args.directory)
    with obs.collect() as col:
        result = system.query(args.expression)
    if args.json:
        print(
            json.dumps(
                {
                    "query": str(result.query),
                    "verified": result.verified,
                    "result_ids": result.result_ids,
                    "vo_bytes": result.vo_total_bytes,
                    "spans": [obs.span_to_dict(s) for s in col.spans],
                    "metrics": col.metrics.snapshot(),
                },
                default=str,
            )
        )
    else:
        print(f"query:    {result.query}")
        print(f"verified: {result.verified}")
        print(f"results:  {result.result_ids}")
        print("\ntrace:")
        print(obs.render_tree(col.spans))
        print("\nmetrics:")
        print(obs.render_summary(col.metrics))
    if args.trace_out:
        obs.write_jsonl(col.spans, args.trace_out)
        print(f"\nwrote {len(col.spans)} spans to {args.trace_out}")
    return 0


def cmd_compact(args) -> int:
    """Handle ``repro compact``: checkpoint and truncate shard journals."""
    manifest_path = Path(args.directory) / "manifest.json"
    if not manifest_path.exists():
        raise ReproError(f"no manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("config", {}).get("engine") != "disk":
        print("nothing to compact: system uses in-memory shard engines")
        return 0
    engine_dir = Path(args.directory) / "shard-journals"
    # Shard journals are derived state (the object log is the durable
    # ground truth); rebuild them from a clean slate so replay does not
    # double-apply records, then checkpoint the rebuilt state.
    if engine_dir.exists():
        for stale in engine_dir.iterdir():
            stale.unlink()
    system = load_system(args.directory, engine_dir=engine_dir)
    report = system.compact() or {}
    system.close()
    if args.json:
        print(json.dumps(report))
        return 0
    print(f"compacted {report.get('shards_compacted', 0)} shard journal(s)")
    print(
        f"journal:     {report.get('journal_bytes_before', 0):,} -> "
        f"{report.get('journal_bytes_after', 0):,} bytes "
        f"({report.get('reclaimed', 0):,} reclaimed)"
    )
    print(f"checkpoints: {report.get('checkpoint_bytes', 0):,} bytes")
    return 0


def cmd_info(args) -> int:
    """Handle ``repro info``."""
    system = load_system(args.directory)
    meter = system.maintenance_meter()
    print(f"scheme:        {system.scheme.value}")
    print(f"objects:       {len(system)}")
    print(f"chain height:  {system.chain.height}")
    print(f"chain linked:  {system.chain.verify_chain()}")
    print(
        f"gas total:     {meter.total:,} (US${gas_to_usd(meter.total):.4f})"
    )
    if len(system):
        avg = system.average_gas_per_object()
        print(f"gas/object:    {avg:,.0f} (US${gas_to_usd(avg):.4f})")
    return 0


def cmd_bench(args) -> int:
    """Dispatch ``repro bench`` to its subcommand."""
    from repro.bench.compare import cmd_compare

    return cmd_compare(args)


_COMMANDS = {
    "init": cmd_init,
    "add": cmd_add,
    "query": cmd_query,
    "obs": cmd_obs,
    "bench": cmd_bench,
    "compact": cmd_compact,
    "info": cmd_info,
}

#: ``repro obs`` grew subcommands; bare ``repro obs <dir> <expr>``
#: (the pre-subcommand form) still works by routing to ``trace``.
_OBS_SUBCOMMANDS = ("trace", "critpath")


def _normalise_argv(argv: list[str]) -> list[str]:
    if (
        len(argv) >= 2
        and argv[0] == "obs"
        and argv[1] not in _OBS_SUBCOMMANDS
        and not argv[1].startswith("-")
    ):
        return [argv[0], "trace", *argv[1:]]
    return argv


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = _normalise_argv(sys.argv[1:] if argv is None else list(argv))
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe; not
        # an error.  Detach stdout so interpreter shutdown does not
        # raise again while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
